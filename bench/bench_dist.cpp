/**
 * @file
 * Distributed-search scaling: one fixed spec run single-process and
 * then through dist::distributed_search at 1/2/4/8 local workers,
 * reporting wall-clock, speedup over serial, and the fan-out
 * accounting (records streamed, workers spawned). Every distributed
 * run is asserted bit-identical to the serial reference first —
 * a scaling number for a ranking that drifted would be meaningless.
 *
 * Perf notes: these sections record *wall clock*, not the process-CPU
 * seconds the other gated benches use — the evaluation burns CPU in
 * the forked worker processes, which the coordinator's CPU clock
 * never sees. Min-of-k (two passes) keeps the gate samples
 * noise-robust. Speedup saturates at the machine's core count: the
 * workers are compute-bound processes, so an 8-worker run on a 2-core
 * host measures oversubscription, not scaling (see EXPERIMENTS.md).
 */
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "circuit/serialize.hpp"
#include "common/table.hpp"
#include "core/checkpoint.hpp"
#include "core/search.hpp"
#include "dist/coordinator.hpp"
#include "server/job.hpp"

#include "harness.hpp"

namespace {

using namespace elv;

double
seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

srv::JobSpec
scaling_spec()
{
    srv::JobSpec spec;
    spec.benchmark = "moons";
    spec.candidates = 32;
    spec.seed = 11;
    spec.scale = 0.2;
    return spec;
}

/** True when the two rankings agree bit for bit. */
bool
identical(const core::SearchResult &a, const core::SearchResult &b)
{
    if (circ::to_text(a.best_circuit) != circ::to_text(b.best_circuit))
        return false;
    if (core::double_to_hex(a.best_score) !=
        core::double_to_hex(b.best_score))
        return false;
    if (a.survivors != b.survivors ||
        a.total_executions() != b.total_executions())
        return false;
    if (a.candidates.size() != b.candidates.size())
        return false;
    for (std::size_t n = 0; n < a.candidates.size(); ++n)
        if (core::double_to_hex(a.candidates[n].score) !=
                core::double_to_hex(b.candidates[n].score) ||
            a.candidates[n].rejected_by_cnr !=
                b.candidates[n].rejected_by_cnr)
            return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    elv::bench::Reporter reporter("dist", argc, argv);
    const srv::JobSpec spec = scaling_spec();
    reporter.set_seed(spec.seed);

    const unsigned cores = std::thread::hardware_concurrency();
    std::printf("spec: %s / %d candidates, seed %llu; host has %u "
                "hardware thread(s)\n\n",
                spec.benchmark.c_str(), spec.candidates,
                static_cast<unsigned long long>(spec.seed), cores);

    // Serial reference: the exact JobSpec -> config mapping the
    // CLI/server use, one thread (the distributed runs give each
    // worker one simulator thread, so this is the like-for-like base).
    const qml::Benchmark bench =
        qml::make_benchmark(spec.benchmark, spec.seed, spec.scale);
    const dev::Device device = dev::make_device(spec.device);
    const core::ElivagarConfig config =
        srv::job_search_config(spec, bench.spec, 1, "");

    const int passes = 2; // min-of-k for the gate samples
    core::SearchResult reference;
    double serial_s = 0.0;
    for (int pass = 0; pass < passes; ++pass) {
        const auto start = std::chrono::steady_clock::now();
        reference = core::elivagar_search(device, bench.train, config);
        const double s = seconds_since(start);
        reporter.record_perf("dist.serial", s);
        if (pass == 0 || s < serial_s)
            serial_s = s;
    }

    Table scaling("Distributed search scaling (wall clock, best of " +
                  std::to_string(passes) + ")");
    scaling.set_header({"workers", "wall (s)", "speedup", "records",
                        "spawned", "identical"});
    scaling.add_row({"serial", Table::fmt(serial_s, 3), "1.00", "-",
                     "-", "ref"});

    bool all_identical = true;
    for (const int workers : {1, 2, 4, 8}) {
        dist::DistResult run;
        double best_s = 0.0;
        for (int pass = 0; pass < passes; ++pass) {
            dist::DistConfig dc;
            dc.workers = workers;
            dc.worker_binary = ELV_WORKER_BIN; // from this build tree
            dc.threads_per_worker = 1;
            dc.coordinator_threads = 1;
            const auto start = std::chrono::steady_clock::now();
            run = dist::distributed_search(spec, dc);
            const double s = seconds_since(start);
            reporter.record_perf(
                "dist.workers." + std::to_string(workers), s);
            if (pass == 0 || s < best_s)
                best_s = s;
        }
        const bool same = identical(reference, run.result);
        all_identical = all_identical && same;
        scaling.add_row(
            {std::to_string(workers), Table::fmt(best_s, 3),
             Table::fmt(serial_s / std::max(1e-9, best_s), 2),
             std::to_string(run.stats.records_received),
             std::to_string(run.stats.workers_spawned),
             same ? "yes" : "NO"});
    }
    reporter.add(scaling);

    std::printf(
        "\nShape check: every distributed ranking is bit-identical to "
        "the serial one\n(the 'identical' column), and speedup climbs "
        "with workers until the host's\ncore count caps it — beyond "
        "that, extra workers only oversubscribe.\n");

    if (!all_identical) {
        std::fprintf(stderr, "FAIL: a distributed ranking diverged "
                             "from the serial reference\n");
        return 1;
    }
    return reporter.perf_gate_exit_code();
}
