/**
 * @file
 * Figure 7: RepCap is a strong predictor of performance across QML
 * tasks. For MNIST-2 and Moons, correlate candidates' RepCap with their
 * trained test *loss* (paper: R = -0.679 on MNIST-2, R = -0.681 on
 * Moons; Spearman R = 0.632 with performance over all benchmarks). The
 * shape: consistently negative loss correlation across tasks.
 */
#include <cstdio>

#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "common/table.hpp"
#include "core/candidate_gen.hpp"
#include "core/repcap.hpp"
#include "device/device.hpp"
#include "qml/synthetic.hpp"
#include "qml/trainer.hpp"

#include "harness.hpp"

int
main(int argc, char **argv)
{
    using namespace elv;

    elv::bench::Reporter reporter("fig7_repcap_tasks", argc, argv);

    struct Task
    {
        const char *name;
        double scale;
        double paper_r;
    };
    const Task tasks[] = {
        {"mnist-2", 0.08, -0.679},
        {"moons", 0.2, -0.681},
    };

    Table table("Fig. 7 - RepCap vs trained loss across tasks");
    table.set_header({"task", "circuits", "Pearson R (loss)",
                      "Spearman R (acc)", "paper R (loss)"});

    for (const Task &task : tasks) {
        const qml::Benchmark bench =
            qml::make_benchmark(task.name, 3, task.scale);
        const dev::Device device = dev::make_device("ibmq_jakarta");

        elv::Rng rng(21);
        core::CandidateConfig config;
        config.num_qubits = bench.spec.qubits;
        config.num_params = bench.spec.params;
        config.num_embeds = std::min(bench.spec.dim * 2, 12);
        config.num_meas = 1;
        config.num_features = bench.spec.dim;

        std::vector<double> repcaps, losses, accs;
        const int circuits = 14;
        for (int n = 0; n < circuits; ++n) {
            const circ::Circuit c =
                core::generate_candidate(device, config, rng);
            core::RepCapOptions options;
            options.samples_per_class = 10;
            options.param_inits = 10;
            elv::Rng rc_rng(300 + static_cast<std::uint64_t>(n));
            repcaps.push_back(core::representational_capacity(
                                  c, bench.train, rc_rng, options)
                                  .repcap);

            double best_loss = 1e9, best_acc = 0.0;
            for (std::uint64_t restart = 0; restart < 2; ++restart) {
                qml::TrainConfig tc;
                tc.epochs = 30;
                tc.seed = 500 + 10 * static_cast<std::uint64_t>(n) +
                          restart;
                const auto trained =
                    qml::train_circuit(c, bench.train, tc);
                const auto eval =
                    qml::evaluate(c, trained.params, bench.test);
                if (eval.loss < best_loss) {
                    best_loss = eval.loss;
                    best_acc = eval.accuracy;
                }
            }
            losses.push_back(best_loss);
            accs.push_back(best_acc);
        }

        table.add_row({task.name, std::to_string(circuits),
                       Table::fmt(pearson_r(repcaps, losses), 3),
                       Table::fmt(spearman_r(repcaps, accs), 3),
                       Table::fmt(task.paper_r, 3)});
    }
    reporter.add(table);
    std::printf("\nShape check: RepCap anti-correlates with trained loss "
                "(and correlates with\naccuracy) on every task, matching "
                "Fig. 7's negative-R scatter plots.\n");
    return 0;
}
