/**
 * @file
 * Fused execution engine benchmarks -> BENCH_fusion.json.
 *
 * Two wall-clock comparisons, both single-threaded:
 *
 *  - state-vector: StateVector::run (per-gate dispatch) vs
 *    FusedProgram::run (adjacent fixed gates collapsed into dense
 *    Mat2/Mat4 groups) on Clifford-heavy and parametric circuits at
 *    4-10 qubits, with a max-|amp-diff| equivalence check;
 *  - noisy density-matrix CNR path: NoisyDensitySimulator::fidelity on
 *    Clifford replicas of a device-native candidate, per-gate channel
 *    loop (per-Kraus full-vector passes) vs compiled NoisyPrograms
 *    (one gathered superoperator apply per gate+noise group), with a
 *    max-|prob-diff| equivalence check on the output distributions.
 *
 * The exit code reflects the *correctness* checks (fused must match
 * unfused) plus, only when `--baseline` names a previous dump, the
 * harness perf gate over the recorded min-of-k section timings —
 * absolute speedups are still reported, not gated, so a loaded CI
 * machine cannot turn a perf report into a flaky failure. `--small`
 * restricts the sweep to the smallest sizes for smoke runs.
 */
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/clifford_replica.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/candidate_gen.hpp"
#include "device/device.hpp"
#include "harness.hpp"
#include "noise/noise_model.hpp"
#include "sim/cpu_features.hpp"
#include "sim/fusion.hpp"
#include "sim/precision.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace elv;

double
seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Layered Clifford circuit: H + CX brickwork + S (fuses maximally). */
circ::Circuit
clifford_brickwork(int qubits, int layers)
{
    circ::Circuit c(qubits);
    for (int l = 0; l < layers; ++l) {
        for (int q = 0; q < qubits; ++q)
            c.add_gate(circ::GateKind::H, {q});
        for (int q = l % 2; q + 1 < qubits; q += 2)
            c.add_gate(circ::GateKind::CX, {q, q + 1});
        for (int q = 0; q < qubits; ++q)
            c.add_gate(circ::GateKind::S, {q});
    }
    std::vector<int> meas;
    for (int q = 0; q < std::min(qubits, 10); ++q)
        meas.push_back(q);
    c.set_measured(meas);
    return c;
}

/** Fixed gates interleaved with variational RZ fusion barriers. */
circ::Circuit
parametric_mix(int qubits, int layers)
{
    circ::Circuit c(qubits);
    for (int l = 0; l < layers; ++l) {
        for (int q = 0; q < qubits; ++q)
            c.add_gate(circ::GateKind::H, {q});
        for (int q = 0; q < qubits; ++q)
            c.add_variational(circ::GateKind::RZ, {q});
        for (int q = l % 2; q + 1 < qubits; q += 2)
            c.add_gate(circ::GateKind::CX, {q, q + 1});
        for (int q = 0; q < qubits; ++q)
            c.add_gate(circ::GateKind::S, {q});
    }
    std::vector<int> meas;
    for (int q = 0; q < std::min(qubits, 10); ++q)
        meas.push_back(q);
    c.set_measured(meas);
    return c;
}

std::vector<double>
fixed_params(const circ::Circuit &c)
{
    std::vector<double> params(
        static_cast<std::size_t>(c.num_params()));
    for (std::size_t i = 0; i < params.size(); ++i)
        params[i] = 0.05 + 0.1 * static_cast<double>(i);
    return params;
}

/** Max |amp| difference between per-gate and fused execution. */
double
fused_max_diff(const circ::Circuit &c, int qubits,
               const std::vector<double> &params)
{
    sim::StateVector plain(qubits), fused(qubits);
    plain.run(c, params);
    sim::FusedProgram::compile(c).run(fused, params);
    double diff = 0.0;
    for (std::size_t i = 0; i < plain.dim(); ++i)
        diff = std::max(diff, std::abs(plain.amp(i) - fused.amp(i)));
    return diff;
}

struct SvTimings
{
    double plain_s = 0.0;
    double fused_scalar_s = 0.0;
    double fused_simd_s = 0.0;
    double fused_f32_s = 0.0;
    std::uint64_t ops_merged = 0;
};

/** Time one fused-program config for the precision `T` runs under the
 *  currently active kernel tier. */
template <typename T>
double
time_fused(const sim::FusedProgram &program, int qubits,
           const std::vector<double> &params, int reps)
{
    sim::BasicStateVector<T> psi(qubits);
    program.run(psi, params); // warm-up
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r)
        program.run(psi, params);
    return seconds_since(start) / reps;
}

SvTimings
time_statevector(const circ::Circuit &c, int qubits, int reps)
{
    SvTimings t;
    const std::vector<double> params = fixed_params(c);
    sim::StateVector psi(qubits);

    psi.run(c, params); // warm-up
    auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r)
        psi.run(c, params);
    t.plain_s = seconds_since(start) / reps;

    // Compile outside the timed loop: the fusion cache amortizes
    // compilation across the thousands of re-executions of real
    // workloads (CNR replicas, RepCap inits, training epochs).
    const sim::FusedProgram program = sim::FusedProgram::compile(c);
    t.ops_merged = program.ops_merged();
    // Scalar vs SIMD vs f32: same compiled program, different kernel
    // tier / amplitude type, so the columns isolate the kernel cost.
    sim::set_forced_tier(sim::KernelTier::Baseline);
    t.fused_scalar_s = time_fused<double>(program, qubits, params, reps);
    sim::clear_forced_tier();
    t.fused_simd_s = time_fused<double>(program, qubits, params, reps);
    t.fused_f32_s = time_fused<float>(program, qubits, params, reps);
    return t;
}

/** Device-native candidate whose Clifford replicas drive the DM bench. */
circ::Circuit
cnr_candidate(const dev::Device &device, int qubits, elv::Rng &rng)
{
    core::CandidateConfig config;
    config.num_qubits = qubits;
    config.num_params = 2 * qubits;
    config.num_embeds = qubits / 2;
    config.num_meas = 2;
    config.num_features = 4;
    return core::generate_candidate(device, config, rng);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace elv;

    bool small = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--small")
            small = true;

    // This bench exists to emit BENCH_fusion.json; force --json on.
    std::vector<char *> args(argv, argv + argc);
    char force_json[] = "--json";
    args.push_back(force_json);
    bench::Reporter reporter("fusion", static_cast<int>(args.size()),
                             args.data());
    reporter.set_seed(11);

    bool ok = true;

    std::printf("kernel dispatch: %s\n",
                sim::kernel_tier_name(sim::active_tier()));

    // Part 1: state-vector, per-gate dispatch vs fused program, with
    // the fused engine timed at every kernel tier / precision.
    Table sv("State-vector: per-gate vs fused (single-threaded)");
    sv.set_header({"circuit", "qubits", "ops merged", "per-gate (ms)",
                   "fused scalar (ms)", "fused simd (ms)",
                   "simd speedup", "fused f32 (ms)", "max |diff|"});
    const std::vector<int> sv_qubits =
        small ? std::vector<int>{4, 6} : std::vector<int>{4, 6, 8, 10};
    for (const int qubits : sv_qubits) {
        struct Case
        {
            const char *name;
            const char *perf; // stable slug for the perf observatory
            circ::Circuit circuit;
        };
        const Case cases[] = {
            {"clifford brickwork", "sv.clifford",
             clifford_brickwork(qubits, 6)},
            {"parametric mix", "sv.parametric",
             parametric_mix(qubits, 6)},
        };
        for (const Case &kc : cases) {
            const int reps = small ? 50 : (qubits >= 10 ? 100 : 400);
            const SvTimings t =
                time_statevector(kc.circuit, qubits, reps);
            const std::string perf_key =
                std::string(kc.perf) + ".q" + std::to_string(qubits);
            reporter.record_perf(perf_key + ".plain", t.plain_s);
            reporter.record_perf(perf_key + ".fused_simd",
                                 t.fused_simd_s);
            const double diff = fused_max_diff(kc.circuit, qubits,
                                               fixed_params(kc.circuit));
            ok = ok && diff <= 1e-12;
            sv.add_row({kc.name, std::to_string(qubits),
                        std::to_string(t.ops_merged),
                        Table::fmt(1e3 * t.plain_s, 4),
                        Table::fmt(1e3 * t.fused_scalar_s, 4),
                        Table::fmt(1e3 * t.fused_simd_s, 4),
                        Table::fmt(t.fused_scalar_s /
                                       std::max(1e-12, t.fused_simd_s),
                                   2),
                        Table::fmt(1e3 * t.fused_f32_s, 4),
                        Table::fmt(diff, 14)});
        }
    }
    reporter.add(sv);

    // Part 2: the noisy density-matrix CNR path — fidelity of Clifford
    // replicas of a device-native candidate, channel loop vs compiled
    // superoperator programs. Replicas are regenerated per size with a
    // fixed seed so both paths see identical circuits.
    const dev::Device device = dev::make_device("ibmq_mumbai");
    Table dm("Noisy DM CNR path: Kraus loop vs superoperator programs "
             "(scalar / SIMD / f32)");
    dm.set_header({"qubits", "replicas", "kraus (ms)",
                   "superop scalar (ms)", "superop simd (ms)",
                   "simd speedup", "superop f32 (ms)",
                   "max |prob diff|"});
    double simd_speedup_at_8 = 0.0;
    // 8 qubits stays in the smoke preset: it is the smallest size whose
    // sections clear the perf gate's 10 ms jitter cutoff.
    const std::vector<int> dm_qubits =
        small ? std::vector<int>{4, 6, 8} : std::vector<int>{4, 6, 8, 10};
    for (const int qubits : dm_qubits) {
        const int replicas = small ? 4 : (qubits >= 10 ? 4 : 8);
        elv::Rng rng(23 + static_cast<std::uint64_t>(qubits));
        const circ::Circuit candidate =
            cnr_candidate(device, qubits, rng);
        std::vector<circ::Circuit> reps;
        for (int m = 0; m < replicas; ++m)
            reps.push_back(circ::make_clifford_replica(candidate, rng));

        noise::NoisyDensitySimulator unfused(device);
        unfused.use_fused_execution(false);
        noise::NoisyDensitySimulator fused(device);
        noise::NoisyDensitySimulator fused32(
            device, 1.0, sim::Precision::Float32Proxy);

        double diff = 0.0;
        for (const circ::Circuit &replica : reps) {
            const auto a = unfused.run_distribution(replica);
            const auto b = fused.run_distribution(replica);
            for (std::size_t i = 0; i < a.size(); ++i)
                diff = std::max(diff, std::abs(a[i] - b[i]));
        }
        ok = ok && diff <= 1e-9;

        // Warm the per-simulator program caches first so the fused
        // timings match CNR's steady state (each replica is compiled
        // once and executed for its fidelity evaluation).
        double f32_warm = 0.0;
        for (const circ::Circuit &replica : reps)
            f32_warm += fused32.fidelity(replica);
        (void)f32_warm;

        // Min-of-k sampling in the smoke preset: the perf gate compares
        // these sections across invocations, and one averaged pass is
        // still hostage to a slow scheduling window. Three interleaved
        // passes per section; record_perf and the table keep the best.
        // The gate samples are process-CPU-second deltas (these
        // sections are single-threaded), so a descheduled process does
        // not read as a regression; the table shows wall clock. Each
        // timed section repeats its replica sweep `inner` times so the
        // span dwarfs the CPU-clock quantum (sandboxed kernels report
        // process CPU time at 10 ms jiffy granularity even when
        // clock_getres claims 1 ns); times are normalized back per
        // sweep before recording.
        const int passes = small ? 3 : 1;
        const int inner = small ? 4 : 1;
        double kraus_s = 0.0, scalar_s = 0.0, simd_s = 0.0, f32_s = 0.0;
        for (int pass = 0; pass < passes; ++pass) {
            double unfused_sum = 0.0, scalar_sum = 0.0, fused_sum = 0.0,
                   f32_sum = 0.0;
            auto start = std::chrono::steady_clock::now();
            double cpu_start = bench::process_cpu_seconds();
            for (int it = 0; it < inner; ++it) {
                unfused_sum = 0.0;
                for (const circ::Circuit &replica : reps)
                    unfused_sum += unfused.fidelity(replica);
            }
            const double kraus_cpu =
                (bench::process_cpu_seconds() - cpu_start) / inner;
            const double kraus_t = seconds_since(start) / inner;

            // The acceptance comparison: identical compiled
            // superoperator programs, scalar kernels vs the dispatched
            // SIMD tier.
            sim::set_forced_tier(sim::KernelTier::Baseline);
            start = std::chrono::steady_clock::now();
            for (int it = 0; it < inner; ++it) {
                scalar_sum = 0.0;
                for (const circ::Circuit &replica : reps)
                    scalar_sum += fused.fidelity(replica);
            }
            const double scalar_t = seconds_since(start) / inner;
            sim::clear_forced_tier();

            start = std::chrono::steady_clock::now();
            cpu_start = bench::process_cpu_seconds();
            for (int it = 0; it < inner; ++it) {
                fused_sum = 0.0;
                for (const circ::Circuit &replica : reps)
                    fused_sum += fused.fidelity(replica);
            }
            const double simd_cpu =
                (bench::process_cpu_seconds() - cpu_start) / inner;
            const double simd_t = seconds_since(start) / inner;

            start = std::chrono::steady_clock::now();
            for (int it = 0; it < inner; ++it) {
                f32_sum = 0.0;
                for (const circ::Circuit &replica : reps)
                    f32_sum += fused32.fidelity(replica);
            }
            const double f32_t = seconds_since(start) / inner;

            ok = ok &&
                 std::abs(unfused_sum - fused_sum) <= 1e-9 * replicas;
            ok = ok &&
                 std::abs(scalar_sum - fused_sum) <= 1e-9 * replicas;
            ok = ok && std::abs(f32_sum - fused_sum) <= 1e-3 * replicas;

            reporter.record_perf(
                "dm.kraus.q" + std::to_string(qubits), kraus_cpu);
            reporter.record_perf(
                "dm.superop_simd.q" + std::to_string(qubits), simd_cpu);
            if (pass == 0 || kraus_t < kraus_s)
                kraus_s = kraus_t;
            if (pass == 0 || scalar_t < scalar_s)
                scalar_s = scalar_t;
            if (pass == 0 || simd_t < simd_s)
                simd_s = simd_t;
            if (pass == 0 || f32_t < f32_s)
                f32_s = f32_t;
        }

        const double simd_speedup = scalar_s / std::max(1e-12, simd_s);
        if (qubits == 8)
            simd_speedup_at_8 = simd_speedup;
        dm.add_row({std::to_string(qubits), std::to_string(replicas),
                    Table::fmt(1e3 * kraus_s, 3),
                    Table::fmt(1e3 * scalar_s, 3),
                    Table::fmt(1e3 * simd_s, 3),
                    Table::fmt(simd_speedup, 2),
                    Table::fmt(1e3 * f32_s, 3),
                    Table::fmt(diff, 12)});
    }
    reporter.add(dm);

    if (simd_speedup_at_8 > 0.0)
        std::printf("noisy CNR path SIMD speedup at 8 qubits: %.2fx "
                    "(target >= 1.5x, f64 SIMD vs scalar)\n",
                    simd_speedup_at_8);
    std::printf("fused-vs-unfused equivalence: %s\n",
                ok ? "ok" : "FAILED");
    const int gate_rc = reporter.perf_gate_exit_code();
    return ok ? gate_rc : 1;
}
