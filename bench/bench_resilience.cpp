/**
 * @file
 * Resilient-execution characterization: how much injected backend
 * failure the search absorbs before its outcome changes, and what the
 * absorption costs in retries and simulated wait time.
 *
 * Sweeps the transient-fault rate for a fixed search (moons, IBM Lagos)
 * and reports retry/degradation counters plus whether the selected
 * circuit still matches the fault-free run. A second table drives the
 * degradation ladder directly by making one backend fail permanently.
 */
#include <cstdio>

#include "circuit/serialize.hpp"
#include "common/table.hpp"
#include "core/search.hpp"
#include "device/device.hpp"
#include "qml/synthetic.hpp"

#include "harness.hpp"

int
main(int argc, char **argv)
{
    using namespace elv;

    elv::bench::Reporter reporter("resilience", argc, argv);

    const qml::Benchmark bench = qml::make_benchmark("moons", 7, 0.1);
    const dev::Device device = dev::make_device("ibm_lagos");

    core::ElivagarConfig config;
    config.num_candidates = 16;
    config.candidate.num_qubits = 4;
    config.candidate.num_params = 12;
    config.candidate.num_embeds = 4;
    config.candidate.num_meas = 1;
    config.candidate.num_features = bench.spec.dim;
    config.cnr.num_replicas = 6;
    config.repcap.samples_per_class = 4;
    config.repcap.param_inits = 2;
    config.seed = 42;
    config.threads = reporter.threads();
    reporter.set_seed(config.seed);
    config.resilience.enabled = true;
    config.resilience.retry.max_attempts = 8;

    const core::SearchResult clean =
        core::elivagar_search(device, bench.train, config);
    const std::string clean_best = circ::to_text(clean.best_circuit);

    Table sweep("Search under injected transient faults "
                "(moons / ibm_lagos, 16 candidates)");
    sweep.set_header({"fault rate", "faults", "retries", "degraded",
                      "sim wait (s)", "best unchanged"});
    for (double rate : {0.0, 0.1, 0.2, 0.4, 0.6}) {
        core::ElivagarConfig faulty = config;
        faulty.resilience.faults.transient_rate = rate;
        const core::SearchResult result =
            core::elivagar_search(device, bench.train, faulty);
        sweep.add_row(
            {Table::fmt(rate, 2),
             std::to_string(result.fault_counters.total()),
             std::to_string(result.exec_counters.retries),
             std::to_string(result.degraded_candidates),
             Table::fmt(result.simulated_wait_ms / 1000.0, 1),
             circ::to_text(result.best_circuit) == clean_best ? "yes"
                                                              : "no"});
    }
    reporter.add(sweep);

    Table ladder("\nDegradation ladder: one backend failing "
                 "permanently");
    ladder.set_header({"failing backend", "degraded candidates",
                       "rungs exhausted", "best unchanged"});
    for (const auto target : {exec::FaultTarget::Density,
                              exec::FaultTarget::Stabilizer}) {
        core::ElivagarConfig broken = config;
        broken.resilience.retry.max_attempts = 2;
        broken.resilience.faults.transient_rate = 1.0;
        broken.resilience.faults.target = target;
        const core::SearchResult result =
            core::elivagar_search(device, bench.train, broken);
        ladder.add_row(
            {target == exec::FaultTarget::Density ? "density"
                                                  : "stabilizer",
             std::to_string(result.degraded_candidates) + "/" +
                 std::to_string(config.num_candidates),
             std::to_string(result.exec_counters.rungs_exhausted),
             circ::to_text(result.best_circuit) == clean_best ? "yes"
                                                              : "no"});
    }
    reporter.add(ladder);

    std::printf(
        "\nShape check: moderate fault rates are absorbed by retries "
        "(same best circuit,\nzero degraded candidates); a permanently "
        "failing density backend pushes every\nCNR call down the "
        "ladder, which changes CNR values but keeps the search "
        "alive.\nA failing stabilizer backend is invisible here because "
        "density is primary.\n");
    return 0;
}
