/**
 * @file
 * Figure 9: component ablation. Four arms per benchmark/device cell:
 *   1. noise-unaware: device-unaware random circuits, SABRE-routed;
 *   2. noise-aware: Algorithm 1 circuits picked at random (no
 *      predictor);
 *   3. noise-aware + RepCap: Elivagar with CNR disabled;
 *   4. noise-aware + RepCap + CNR: full Elivagar.
 *
 * Shape to reproduce: each added component helps — the paper reports
 * +5% from noise-aware generation, +6% from RepCap, +2% from CNR.
 */
#include <cstdio>

#include "common/statistics.hpp"
#include "common/table.hpp"
#include "compiler/compile.hpp"
#include "harness.hpp"

int
main(int argc, char **argv)
{
    using namespace elv;
    using namespace elv::bench;

    elv::bench::Reporter reporter("fig9_ablation", argc, argv);

    struct Cell
    {
        const char *benchmark;
        const char *device;
    };
    const Cell cells[] = {
        {"moons", "ibm_lagos"},
        {"bank", "ibm_perth"},
        {"vowel-2", "ibm_nairobi"},
        {"fmnist-2", "ibmq_jakarta"},
    };

    RunOptions options;
    options.threads = reporter.threads();
    reporter.set_seed(options.seed);
    options.max_train_samples = 120;
    options.epochs = 25;
    // The paper's ablation runs on real hardware; amplify the
    // calibrated simulator noise so routing overhead and CNR ranking
    // matter as they do there (stochastic Pauli noise at calibrated
    // magnitudes barely moves argmax-readout accuracy on these small
    // circuits).
    options.noise_scale = 6.0;
    options.shots = 256;

    Table table("Fig. 9 - ablation of Elivagar's components (accuracy, "
                "percent)");
    table.set_header({"benchmark", "device", "noise-unaware",
                      "noise-aware", "+RepCap", "+CNR (full)"});

    std::vector<double> arm1, arm2, arm3, arm4;
    for (const Cell &cell : cells) {
        const qml::Benchmark bench =
            load_benchmark(cell.benchmark, options);
        const dev::Device device = dev::make_device(cell.device);

        // Arm 1: device-unaware random circuits, routed, averaged.
        double acc1 = 0.0;
        {
            elv::Rng rng(options.seed ^ 0xa1ULL);
            core::CandidateConfig config;
            config.num_qubits = bench.spec.qubits;
            config.num_params = bench.spec.params;
            config.num_embeds =
                std::min(bench.spec.params,
                         std::max(bench.spec.dim,
                                  bench.spec.params / 4));
            config.num_meas = bench.spec.meas;
            config.num_features = bench.spec.dim;
            const int reps = 4;
            for (int r = 0; r < reps; ++r) {
                const circ::Circuit raw =
                    core::generate_device_unaware(config, rng);
                const auto routed =
                    comp::compile_for_device(raw, device, 3, rng);
                acc1 += train_and_evaluate(routed.circuit, bench, device,
                                           options,
                                           60 + 10 * static_cast<std::uint64_t>(r))
                            .noisy_accuracy /
                        reps;
            }
        }

        // Arm 2: Algorithm 1 circuits, no predictor (random pick).
        double acc2 = 0.0;
        {
            elv::Rng rng(options.seed ^ 0xa2ULL);
            core::CandidateConfig config;
            config.num_qubits = bench.spec.qubits;
            config.num_params = bench.spec.params;
            config.num_embeds =
                std::min(bench.spec.params,
                         std::max(bench.spec.dim,
                                  bench.spec.params / 4));
            config.num_meas = bench.spec.meas;
            config.num_features = bench.spec.dim;
            const int reps = 4;
            for (int r = 0; r < reps; ++r) {
                const circ::Circuit c =
                    core::generate_candidate(device, config, rng);
                acc2 += train_and_evaluate(c, bench, device, options,
                                           80 + 10 * static_cast<std::uint64_t>(r))
                            .noisy_accuracy /
                        reps;
            }
        }

        // Arms 3 and 4: RepCap-only and full Elivagar, averaged over
        // two independent searches.
        double acc3 = 0.0, acc4 = 0.0;
        for (std::uint64_t rep = 0; rep < 2; ++rep) {
            RunOptions repeated = options;
            repeated.seed = options.seed + 100 * rep;
            ElivagarKnobs repcap_only;
            repcap_only.use_cnr = false;
            acc3 += run_elivagar(bench, device, repeated, repcap_only)
                        .noisy_accuracy /
                    2.0;
            acc4 += run_elivagar(bench, device, repeated)
                        .noisy_accuracy /
                    2.0;
        }

        arm1.push_back(acc1);
        arm2.push_back(acc2);
        arm3.push_back(acc3);
        arm4.push_back(acc4);
        table.add_row({cell.benchmark, cell.device, Table::pct(acc1),
                       Table::pct(acc2), Table::pct(acc3),
                       Table::pct(acc4)});
        std::fprintf(stderr, "  [fig9] %s done\n", cell.benchmark);
    }
    reporter.add(table);
    std::printf("\nmean deltas: noise-aware %+.1f%% (paper +5%%), "
                "+RepCap %+.1f%% (paper +6%%), +CNR %+.1f%% (paper "
                "+2%%)\n",
                100.0 * (mean(arm2) - mean(arm1)),
                100.0 * (mean(arm3) - mean(arm2)),
                100.0 * (mean(arm4) - mean(arm3)));
    return 0;
}
