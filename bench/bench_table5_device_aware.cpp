/**
 * @file
 * Table 5: Elivagar-generated (no optimization) vs device-unaware
 * random circuits (SABRE + compiler level 3) on OQC Lucy, IBM-Geneva,
 * IBMQ-Kolkata and IBMQ-Mumbai.
 *
 * Matched pairs share the same 1q/2q gate budget before compilation.
 * Shape to reproduce: device-unaware circuits roughly double their
 * 2-qubit gate count after routing while Elivagar circuits run as
 * generated, giving Elivagar higher fidelity on every device (paper:
 * +18.9% fidelity on average).
 */
#include <cstdio>

#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "common/table.hpp"
#include "compiler/compile.hpp"
#include "core/candidate_gen.hpp"
#include "noise/noise_model.hpp"

#include "harness.hpp"

namespace {

using namespace elv;

/**
 * Device-unaware twin of a device-aware circuit: the identical gate
 * sequence (kinds, roles, embedding features, measurement count), but
 * qubit assignments drawn uniformly over a fully-connected register —
 * exactly the paper's "same number of 1- and 2-qubit gates before
 * compilation" pairing.
 */
circ::Circuit
unaware_twin(const circ::Circuit &aware, int num_qubits, elv::Rng &rng)
{
    circ::Circuit out(num_qubits);
    for (const circ::Op &op : aware.ops()) {
        std::vector<int> qubits;
        if (op.num_qubits() == 1) {
            qubits = {static_cast<int>(rng.uniform_index(
                static_cast<std::size_t>(num_qubits)))};
        } else {
            const int a = static_cast<int>(rng.uniform_index(
                static_cast<std::size_t>(num_qubits)));
            int b = static_cast<int>(rng.uniform_index(
                static_cast<std::size_t>(num_qubits - 1)));
            if (b >= a)
                ++b;
            qubits = {a, b};
        }
        switch (op.role) {
          case circ::ParamRole::None:
            out.add_gate(op.kind, qubits);
            break;
          case circ::ParamRole::Variational:
            out.add_variational(op.kind, qubits);
            break;
          case circ::ParamRole::Embedding:
            out.add_embedding(op.kind, qubits, op.data_index,
                              op.data_index2);
            break;
        }
    }
    std::vector<int> meas;
    for (int q = 0; q < static_cast<int>(aware.measured().size()); ++q)
        meas.push_back(q);
    out.set_measured(meas);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace elv;

    elv::bench::Reporter reporter("table5_device_aware", argc, argv);

    struct Row
    {
        const char *device;
        double paper_sabre_fid;
        double paper_elivagar_fid;
    };
    const Row rows[] = {
        {"oqc_lucy", 0.595, 0.706},
        {"ibm_geneva", 0.615, 0.714},
        {"ibmq_kolkata", 0.741, 0.848},
        {"ibmq_mumbai", 0.634, 0.804},
    };

    Table table("Table 5 - device-aware generation vs SABRE-routed "
                "device-unaware circuits");
    table.set_header({"device", "policy", "2q gates", "2q compiled",
                      "fidelity", "paper fid"});

    std::vector<double> gains;
    for (const Row &row : rows) {
        const dev::Device device = dev::make_device(row.device);
        const noise::NoisyDensitySimulator noisy(device);
        elv::Rng rng(17);

        core::CandidateConfig config;
        config.num_qubits = 5;
        config.num_params = 24;
        config.num_embeds = 4;
        config.num_meas = 5; // fidelity measured over the whole subgraph
        config.num_features = 4;

        const int pairs = 8;
        double aware_fid = 0.0, unaware_fid = 0.0;
        double aware_2q = 0.0, unaware_2q_before = 0.0,
               unaware_2q_after = 0.0;

        for (int p = 0; p < pairs; ++p) {
            const circ::Circuit aware =
                core::generate_candidate(device, config, rng);
            const circ::Circuit unaware =
                unaware_twin(aware, config.num_qubits, rng);
            const auto routed =
                comp::compile_for_device(unaware, device, 3, rng);

            const int bindings = 4;
            for (int b = 0; b < bindings; ++b) {
                std::vector<double> params(
                    static_cast<std::size_t>(aware.num_params()));
                for (auto &v : params)
                    v = rng.uniform(-M_PI, M_PI);
                std::vector<double> x(4);
                for (auto &v : x)
                    v = rng.uniform(-M_PI / 2, M_PI / 2);
                aware_fid +=
                    noisy.fidelity(aware, params, x) / (pairs * bindings);
                unaware_fid += noisy.fidelity(routed.circuit, params, x) /
                               (pairs * bindings);
            }
            aware_2q += aware.count_2q() / double(pairs);
            unaware_2q_before += unaware.count_2q() / double(pairs);
            unaware_2q_after += routed.stats.gates_2q / double(pairs);
        }

        table.add_row({row.device, "SABRE",
                       Table::fmt(unaware_2q_before, 2),
                       Table::fmt(unaware_2q_after, 2),
                       Table::fmt(unaware_fid, 3),
                       Table::fmt(row.paper_sabre_fid, 3)});
        table.add_row({row.device, "Elivagar", Table::fmt(aware_2q, 2),
                       Table::fmt(aware_2q, 2), Table::fmt(aware_fid, 3),
                       Table::fmt(row.paper_elivagar_fid, 3)});
        gains.push_back(aware_fid - unaware_fid);
        std::fprintf(stderr, "  [table5] %s done\n", row.device);
    }
    reporter.add(table);
    std::printf("\nmean fidelity gain of device-aware generation: %+.1f%% "
                "(paper: +18.9%% relative)\n",
                100.0 * elv::mean(gains));
    return 0;
}
