/**
 * @file
 * Dataflow-pruning benchmarks -> BENCH_dataflow.json.
 *
 * Measures what `prune_dead_structure` buys at candidate-evaluation
 * time, on an 8-qubit ring-device corpus whose dead fraction is swept
 * from 0% to ~60%:
 *
 *  - analysis cost: one backward lightcone fixpoint per circuit, in
 *    microseconds — the price paid per evaluation before any win;
 *  - CNR (density backend): replicas pruned post-construction, so the
 *    win is proportional to the dead-op fraction of the channel loop;
 *  - RepCap: the source circuit is pruned before compaction, so dead
 *    qubits drop out of the state vector entirely.
 *
 * The exit code reflects the *equivalence* checks (scores within 1e-9
 * and identical candidate rankings with and without pruning — the same
 * invariant test_dataflow's gauntlet enforces) plus, when `--baseline`
 * names a previous dump, the harness perf gate over the recorded
 * process-CPU section minima. Speedups are reported, never gated.
 * `--small` shrinks the sweep for smoke runs.
 */
#include <chrono>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/cnr.hpp"
#include "core/repcap.hpp"
#include "device/device.hpp"
#include "harness.hpp"
#include "lint/dataflow.hpp"
#include "qml/dataset.hpp"

namespace {

using namespace elv;

double
seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * One corpus circuit on the oqc_lucy 8-qubit ring: a live block on
 * qubits 0-3 (measured {0,1}) plus `dead_layers` layers of provably
 * dead structure on qubits 4-7, which never couple back to the live
 * block (the ring edge 7-0 is deliberately unused).
 */
circ::Circuit
corpus_circuit(int dead_layers, int variant)
{
    circ::Circuit c(8);
    c.add_embedding(circ::GateKind::RY, {0}, 0);
    c.add_embedding(circ::GateKind::RY, {1}, 1);
    const circ::GateKind rotations[] = {circ::GateKind::RX,
                                        circ::GateKind::RY,
                                        circ::GateKind::RZ};
    for (int l = 0; l < 2 + variant % 2; ++l) {
        for (int q = 0; q < 4; ++q)
            c.add_variational(rotations[(l + q + variant) % 3], {q});
        for (int q = 0; q < 3; ++q)
            c.add_gate(circ::GateKind::CX, {q, q + 1});
    }
    for (int l = 0; l < dead_layers; ++l) {
        for (int q = 4; q < 8; ++q)
            c.add_variational(rotations[(l + q) % 3], {q});
        for (int q = 4; q < 7; ++q)
            c.add_gate(circ::GateKind::CX, {q, q + 1});
    }
    c.set_measured({0, 1});
    return c;
}

std::vector<circ::Circuit>
corpus(int dead_layers, int count)
{
    std::vector<circ::Circuit> circuits;
    for (int v = 0; v < count; ++v)
        circuits.push_back(corpus_circuit(dead_layers, v));
    return circuits;
}

/** Descending-score index order with index tie-break (stable). */
std::vector<std::size_t>
ranking(const std::vector<double> &scores)
{
    std::vector<std::size_t> order(scores.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&scores](std::size_t a, std::size_t b) {
                         return scores[a] > scores[b];
                     });
    return order;
}

/** Dead-op fraction of one corpus circuit, from the analysis itself. */
double
dead_fraction(const circ::Circuit &c)
{
    const lint::LightconeAnalysis analysis =
        lint::analyze_lightcone(lint::view_of(c));
    return static_cast<double>(analysis.dead_ops().size()) /
           static_cast<double>(c.ops().size());
}

struct SweepTimes
{
    double unpruned_s = 0.0;
    double pruned_s = 0.0;
    double max_diff = 0.0;
    bool ranking_equal = true;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace elv;

    bool small = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--small")
            small = true;

    // This bench exists to emit BENCH_dataflow.json; force --json on.
    std::vector<char *> args(argv, argv + argc);
    char force_json[] = "--json";
    args.push_back(force_json);
    bench::Reporter reporter("dataflow", static_cast<int>(args.size()),
                             args.data());
    reporter.set_seed(7);

    bool ok = true;
    const int circuits = small ? 4 : 6;
    const int passes = small ? 2 : 3;
    const std::vector<int> dead_layer_sweep =
        small ? std::vector<int>{0, 2} : std::vector<int>{0, 1, 2, 4};

    // Part 0: the analysis itself — the per-evaluation overhead every
    // pruned call site pays before it saves anything.
    Table an("Lightcone analysis cost (backward fixpoint per circuit)");
    an.set_header({"dead layers", "ops", "dead frac", "analysis (us)"});
    for (const int layers : dead_layer_sweep) {
        const std::vector<circ::Circuit> cs = corpus(layers, circuits);
        const int reps = 2000;
        double best = 0.0;
        for (int pass = 0; pass < passes; ++pass) {
            const double cpu0 = bench::process_cpu_seconds();
            for (int r = 0; r < reps; ++r)
                for (const circ::Circuit &c : cs)
                    (void)lint::analyze_lightcone(lint::view_of(c));
            const double t = (bench::process_cpu_seconds() - cpu0) /
                             (reps * static_cast<double>(cs.size()));
            if (pass == 0 || t < best)
                best = t;
        }
        reporter.record_perf(
            "dataflow.analyze.l" + std::to_string(layers), best);
        an.add_row({std::to_string(layers),
                    std::to_string(cs[0].ops().size()),
                    Table::fmt(dead_fraction(cs[0]), 2),
                    Table::fmt(1e6 * best, 2)});
    }
    reporter.add(an);

    // Part 1: CNR on the density backend. Identically seeded fresh RNG
    // per candidate on both sides, so both evaluate the exact same
    // Clifford replicas (pruning acts on the replica after its
    // construction draws).
    const dev::Device device = dev::make_device("oqc_lucy");
    Table cnr("CNR density backend: unpruned vs prune_dead_structure");
    cnr.set_header({"dead layers", "dead frac", "unpruned (ms)",
                    "pruned (ms)", "speedup", "max |diff|",
                    "ranking equal"});
    for (const int layers : dead_layer_sweep) {
        const std::vector<circ::Circuit> cs = corpus(layers, circuits);
        core::CnrOptions plain;
        plain.num_replicas = small ? 2 : 4;
        core::CnrOptions pruning = plain;
        pruning.prune_dead_structure = true;

        SweepTimes t;
        std::vector<double> unpruned, pruned;
        for (int pass = 0; pass < passes; ++pass) {
            unpruned.clear();
            pruned.clear();
            auto start = std::chrono::steady_clock::now();
            double cpu0 = bench::process_cpu_seconds();
            for (std::size_t i = 0; i < cs.size(); ++i) {
                elv::Rng rng(1000 + i);
                unpruned.push_back(core::clifford_noise_resilience(
                                       cs[i], device, rng, plain)
                                       .cnr);
            }
            const double unpruned_cpu =
                bench::process_cpu_seconds() - cpu0;
            const double unpruned_t = seconds_since(start);

            start = std::chrono::steady_clock::now();
            cpu0 = bench::process_cpu_seconds();
            for (std::size_t i = 0; i < cs.size(); ++i) {
                elv::Rng rng(1000 + i);
                pruned.push_back(core::clifford_noise_resilience(
                                     cs[i], device, rng, pruning)
                                     .cnr);
            }
            const double pruned_cpu =
                bench::process_cpu_seconds() - cpu0;
            const double pruned_t = seconds_since(start);

            reporter.record_perf(
                "dataflow.cnr.unpruned.l" + std::to_string(layers),
                unpruned_cpu);
            reporter.record_perf(
                "dataflow.cnr.pruned.l" + std::to_string(layers),
                pruned_cpu);
            if (pass == 0 || unpruned_t < t.unpruned_s)
                t.unpruned_s = unpruned_t;
            if (pass == 0 || pruned_t < t.pruned_s)
                t.pruned_s = pruned_t;
        }
        for (std::size_t i = 0; i < unpruned.size(); ++i)
            t.max_diff = std::max(t.max_diff,
                                  std::abs(unpruned[i] - pruned[i]));
        t.ranking_equal = ranking(unpruned) == ranking(pruned);
        ok = ok && t.max_diff <= 1e-9 && t.ranking_equal;
        cnr.add_row({std::to_string(layers),
                     Table::fmt(dead_fraction(cs[0]), 2),
                     Table::fmt(1e3 * t.unpruned_s, 3),
                     Table::fmt(1e3 * t.pruned_s, 3),
                     Table::fmt(t.unpruned_s /
                                    std::max(1e-12, t.pruned_s),
                                2),
                     Table::fmt(t.max_diff, 12),
                     t.ranking_equal ? "yes" : "NO"});
    }
    reporter.add(cnr);

    // Part 2: RepCap. Pruning runs before compaction here, so at high
    // dead fractions the dead qubits leave the register entirely and
    // the state vector shrinks.
    qml::Dataset data;
    data.num_classes = 2;
    {
        elv::Rng drng(7);
        for (int i = 0; i < 12; ++i) {
            const int label = i % 2;
            data.samples.push_back(
                {drng.uniform(0.0, 1.0) + label,
                 drng.uniform(0.0, 1.0)});
            data.labels.push_back(label);
        }
    }
    Table rc("RepCap: unpruned vs prune_dead_structure");
    rc.set_header({"dead layers", "dead frac", "unpruned (ms)",
                   "pruned (ms)", "speedup", "max |diff|",
                   "ranking equal"});
    for (const int layers : dead_layer_sweep) {
        const std::vector<circ::Circuit> cs = corpus(layers, circuits);
        core::RepCapOptions plain;
        plain.samples_per_class = small ? 3 : 4;
        plain.param_inits = small ? 3 : 6;
        plain.num_bases = 2;
        core::RepCapOptions pruning = plain;
        pruning.prune_dead_structure = true;

        SweepTimes t;
        std::vector<double> unpruned, pruned;
        for (int pass = 0; pass < passes; ++pass) {
            unpruned.clear();
            pruned.clear();
            auto start = std::chrono::steady_clock::now();
            double cpu0 = bench::process_cpu_seconds();
            for (std::size_t i = 0; i < cs.size(); ++i) {
                elv::Rng rng(2000 + i);
                unpruned.push_back(core::representational_capacity(
                                       cs[i], data, rng, plain)
                                       .repcap);
            }
            const double unpruned_cpu =
                bench::process_cpu_seconds() - cpu0;
            const double unpruned_t = seconds_since(start);

            start = std::chrono::steady_clock::now();
            cpu0 = bench::process_cpu_seconds();
            for (std::size_t i = 0; i < cs.size(); ++i) {
                elv::Rng rng(2000 + i);
                pruned.push_back(core::representational_capacity(
                                     cs[i], data, rng, pruning)
                                     .repcap);
            }
            const double pruned_cpu =
                bench::process_cpu_seconds() - cpu0;
            const double pruned_t = seconds_since(start);

            reporter.record_perf(
                "dataflow.repcap.unpruned.l" + std::to_string(layers),
                unpruned_cpu);
            reporter.record_perf(
                "dataflow.repcap.pruned.l" + std::to_string(layers),
                pruned_cpu);
            if (pass == 0 || unpruned_t < t.unpruned_s)
                t.unpruned_s = unpruned_t;
            if (pass == 0 || pruned_t < t.pruned_s)
                t.pruned_s = pruned_t;
        }
        for (std::size_t i = 0; i < unpruned.size(); ++i)
            t.max_diff = std::max(t.max_diff,
                                  std::abs(unpruned[i] - pruned[i]));
        t.ranking_equal = ranking(unpruned) == ranking(pruned);
        ok = ok && t.max_diff <= 1e-9 && t.ranking_equal;
        rc.add_row({std::to_string(layers),
                    Table::fmt(dead_fraction(cs[0]), 2),
                    Table::fmt(1e3 * t.unpruned_s, 3),
                    Table::fmt(1e3 * t.pruned_s, 3),
                    Table::fmt(t.unpruned_s /
                                   std::max(1e-12, t.pruned_s),
                               2),
                    Table::fmt(t.max_diff, 12),
                    t.ranking_equal ? "yes" : "NO"});
    }
    reporter.add(rc);

    std::printf("pruned-vs-unpruned equivalence: %s\n",
                ok ? "ok" : "FAILED");
    const int gate_rc = reporter.perf_gate_exit_code();
    return ok ? gate_rc : 1;
}
