/**
 * @file
 * Figure 6b: RepCap predicts circuit performance on FMNIST-2 as well as
 * a trained SuperCircuit does — without any training.
 *
 * Left panel analog: Elivagar candidates' RepCap vs their trained test
 * accuracy (paper: R = 0.708). Right panel analog: SuperCircuit
 * subcircuits' inherited-parameter loss vs their trained test accuracy
 * (paper: R = -0.716). The shape to reproduce: |R_repcap| is comparable
 * to |R_supercircuit| although RepCap required no gradient computation.
 */
#include <cstdio>

#include "baselines/supercircuit.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "common/table.hpp"
#include "core/candidate_gen.hpp"
#include "core/repcap.hpp"
#include "qml/dataset.hpp"
#include "device/device.hpp"
#include "qml/synthetic.hpp"
#include "qml/trainer.hpp"

#include "harness.hpp"

namespace {

using namespace elv;

double
trained_accuracy(const circ::Circuit &circuit, const qml::Benchmark &bench,
                 std::uint64_t seed)
{
    double best = 0.0;
    for (std::uint64_t restart = 0; restart < 2; ++restart) {
        qml::TrainConfig tc;
        tc.epochs = 30;
        tc.seed = seed + restart;
        const auto trained =
            qml::train_circuit(circuit, bench.train, tc);
        best = std::max(
            best,
            qml::evaluate(circuit, trained.params, bench.test).accuracy);
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace elv;

    elv::bench::Reporter reporter("fig6_repcap_fmnist", argc, argv);

    // Candidates span a range of sizes/embedding richness so trained
    // accuracy spreads out (the paper's scatter spans ~0.4-0.8 too).
    qml::Benchmark bench = qml::make_benchmark("fmnist-2", 3, 0.3);
    {
        elv::Rng shuffle_rng(1);
        qml::shuffle_dataset(bench.train, shuffle_rng);
        bench.train = qml::take(bench.train, 130);
    }
    const dev::Device device = dev::make_device("ibmq_jakarta");
    const int circuits = 16;

    // Panel 1: RepCap (no training) vs trained accuracy.
    std::vector<double> repcaps, rc_accs;
    {
        elv::Rng rng(12);
        core::CandidateConfig config;
        config.num_qubits = bench.spec.qubits;
        config.num_meas = 1;
        config.num_features = bench.spec.dim;
        for (int n = 0; n < circuits; ++n) {
            config.num_params = 6 + 2 * n;
            config.num_embeds = std::min(bench.spec.dim, 4 + n);
            const circ::Circuit c =
                core::generate_candidate(device, config, rng);
            core::RepCapOptions options;
            options.samples_per_class = 10;
            options.param_inits = 10;
            elv::Rng rc_rng(100 + static_cast<std::uint64_t>(n));
            repcaps.push_back(core::representational_capacity(
                                  c, bench.train, rc_rng, options)
                                  .repcap);
            rc_accs.push_back(trained_accuracy(
                c, bench, 200 + 10 * static_cast<std::uint64_t>(n)));
        }
    }

    // Panel 2: trained-SuperCircuit predicted loss vs trained accuracy.
    std::vector<double> super_losses, sc_accs;
    {
        const base::SuperCircuit super(bench.spec.qubits, 4,
                                       bench.spec.dim, 1);
        qml::TrainConfig tc;
        tc.epochs = 25;
        tc.seed = 5;
        const auto trained = base::train_supercircuit(
            super, bench.train, bench.spec.params, tc);

        elv::Rng rng(13);
        for (int n = 0; n < circuits; ++n) {
            const auto config = super.random_config(6 + 2 * n, rng);
            std::vector<int> slot_map;
            const circ::Circuit c = super.instantiate(config, slot_map);
            const auto inherited =
                super.inherited_params(config, trained.shared_params);
            super_losses.push_back(
                qml::evaluate(c, inherited, bench.train).loss);
            sc_accs.push_back(trained_accuracy(
                c, bench, 400 + 10 * static_cast<std::uint64_t>(n)));
        }
    }

    Table table("Fig. 6b - predicting circuit performance on FMNIST-2");
    table.set_header({"predictor", "needs training?", "Pearson R",
                      "paper R"});
    table.add_row({"RepCap vs trained accuracy", "no",
                   Table::fmt(pearson_r(repcaps, rc_accs), 3), "0.708"});
    table.add_row({"SuperCircuit loss vs trained accuracy", "yes",
                   Table::fmt(pearson_r(super_losses, sc_accs), 3),
                   "-0.716"});
    reporter.add(table);
    std::printf("\nShape check: RepCap's |R| is comparable to the trained "
                "SuperCircuit's |R|\n(positive for RepCap, negative for "
                "loss), with zero gradient computation\n(Insight 4).\n");
    return 0;
}
