#include "harness.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <numeric>
#include <sstream>

#include "baselines/quantum_supernet.hpp"
#include "baselines/quantumnas.hpp"
#include "baselines/simple.hpp"
#include "baselines/supercircuit.hpp"
#include "common/logging.hpp"
#include "common/runinfo.hpp"
#include "compiler/compile.hpp"
#include "core/search.hpp"
#include "noise/noise_model.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "qml/trainer.hpp"
#include "server/json_value.hpp"
#include "sim/cpu_features.hpp"

namespace elv::bench {

double
process_cpu_seconds()
{
#if defined(CLOCK_PROCESS_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0)
        return static_cast<double>(ts.tv_sec) +
               1e-9 * static_cast<double>(ts.tv_nsec);
#endif
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

namespace {

double
seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

qml::DistributionFn
noisy_fn(const noise::NoisyDensitySimulator &sim)
{
    return [&sim](const circ::Circuit &c, const std::vector<double> &p,
                  const std::vector<double> &x) {
        return sim.run_distribution(c, p, x);
    };
}

/**
 * A fully-connected pseudo-device with the same median error rates as
 * `device`, used to evaluate amplitude-embedding baselines whose state
 * preparation cannot be routed (a substitution that *favors* the
 * baseline: it pays gate noise but no SWAP overhead).
 */
dev::Device
virtual_fully_connected(const dev::Device &device, int num_qubits)
{
    std::vector<std::pair<int, int>> edges;
    for (int a = 0; a < num_qubits; ++a)
        for (int b = a + 1; b < num_qubits; ++b)
            edges.emplace_back(a, b);
    dev::Device out{device.name + "-vfc",
                    dev::Topology(num_qubits, std::move(edges)),
                    {},
                    {},
                    {},
                    {},
                    {}};
    const std::size_t n = static_cast<std::size_t>(num_qubits);
    out.t1_us.assign(n, dev::Device::median(device.t1_us));
    out.t2_us.assign(n, dev::Device::median(device.t2_us));
    out.readout_error.assign(n,
                             dev::Device::median(device.readout_error));
    out.error_1q.assign(n, dev::Device::median(device.error_1q));
    out.error_2q.assign(out.topology.edges().size(),
                        dev::Device::median(device.error_2q));
    out.duration_1q_ns = device.duration_1q_ns;
    out.duration_2q_ns = device.duration_2q_ns;
    out.duration_readout_ns = device.duration_readout_ns;
    return out;
}

} // namespace

Reporter::Reporter(std::string name, int argc, char **argv)
    : name_(std::move(name))
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json_ = true;
        } else if (arg == "--threads" && i + 1 < argc) {
            threads_ = std::atoi(argv[++i]);
            if (threads_ < 0)
                threads_ = 0;
        } else if (arg == "--trace" && i + 1 < argc) {
            trace_path_ = argv[++i];
        } else if (arg == "--metrics") {
            metrics_ = true;
        } else if (arg == "--baseline" && i + 1 < argc) {
            baseline_path_ = argv[++i];
        } else if (arg == "--profile" && i + 1 < argc) {
            profile_path_ = argv[++i];
        } else if (arg == "--perf-report" && i + 1 < argc) {
            perf_report_path_ = argv[++i];
        } else if (arg == "--gate-threshold" && i + 1 < argc) {
            const double v = std::atof(argv[++i]);
            if (v > 0.0)
                gate_threshold_ = v;
        } else if (arg == "--small" || arg == "--gbench") {
            // Bench-local presets, parsed by the binary itself.
        } else {
            std::cerr << "bench_" << name_ << ": ignoring unknown option '"
                      << arg
                      << "' (known: --json, --threads N, --trace FILE, "
                         "--metrics, --baseline FILE, --profile FILE, "
                         "--perf-report FILE, --gate-threshold F)\n";
        }
    }
    // CI's perf-gate self-test: scale every recorded sample so a known
    // synthetic regression provably trips the gate.
    if (const char *sd = std::getenv("ELV_PERF_SLOWDOWN")) {
        const double v = std::atof(sd);
        if (v > 0.0 && v != 1.0) {
            slowdown_ = v;
            std::cerr << "bench_" << name_ << ": ELV_PERF_SLOWDOWN=" << v
                      << " scales recorded perf samples\n";
        }
    }
    if (metrics_)
        elv::obs::Registry::global().set_enabled(true);
    if (!trace_path_.empty())
        elv::obs::Tracer::global().start();
    if (!profile_path_.empty())
        elv::obs::Profiler::global().start();
}

Reporter::~Reporter()
{
    if (!trace_path_.empty() &&
        elv::obs::Tracer::global().write(trace_path_))
        std::cout << "wrote " << trace_path_ << "\n";
    if (!profile_path_.empty() &&
        elv::obs::Profiler::global().write_collapsed(profile_path_))
        std::cout << "wrote " << profile_path_ << "\n";
    // The gate normally runs from main() (for the exit code); run it
    // here too so the verdict report exists even when a bench forgets.
    if (!baseline_path_.empty() && !gate_done_)
        run_perf_gate();
    if (metrics_) {
        // The snapshot is name-sorted (map-backed registry), so this
        // print is deterministic across runs — diffable in CI logs.
        const auto snap = elv::obs::Registry::global().snapshot();
        std::cout << "metrics:\n";
        for (const auto &counter : snap.counters)
            std::cout << "  " << counter.name << " " << counter.value
                      << "\n";
        for (const auto &gauge : snap.gauges)
            std::cout << "  " << gauge.name << " " << gauge.value
                      << " (max " << gauge.max << ")\n";
        for (const auto &hist : snap.histograms) {
            char line[160];
            std::snprintf(line, sizeof line,
                          "  %s count %llu sum %.6g q50 %.6g q99 %.6g",
                          hist.name.c_str(),
                          static_cast<unsigned long long>(
                              std::accumulate(hist.counts.begin(),
                                              hist.counts.end(),
                                              std::uint64_t{0})),
                          hist.sum, hist.quantile(0.5),
                          hist.quantile(0.99));
            std::cout << line << "\n";
        }
    }
    if (!json_)
        return;
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
        std::cerr << "bench_" << name_ << ": cannot write " << path
                  << "\n";
        return;
    }
    out << "{\"bench\": " << Table::json_escape(name_)
        << ", \"threads\": " << threads_
        << ", \"seed\": " << seed_
        << ", \"version\": " << Table::json_escape(elv::version_string())
        << ", \"timestamp\": "
        << Table::json_escape(elv::iso8601_utc_now())
        // Which SIMD tier the simulator kernels dispatched to: perf
        // numbers from different tiers are not comparable, so archived
        // trajectories must record it.
        << ", \"kernel_dispatch\": "
        << Table::json_escape(
               elv::sim::kernel_tier_name(elv::sim::active_tier()));
    if (metrics_) {
        const auto snap = elv::obs::Registry::global().snapshot();
        out << ", \"metrics\": {";
        for (std::size_t c = 0; c < snap.counters.size(); ++c) {
            if (c)
                out << ", ";
            out << Table::json_escape(snap.counters[c].name) << ": "
                << snap.counters[c].value;
        }
        out << "}";
    }
    if (!perf_.empty()) {
        // Min-of-k wall-clock samples; the map keys keep the section
        // name-sorted, so dumps diff cleanly run to run.
        out.precision(12);
        out << ", \"perf\": {";
        bool first = true;
        for (const auto &[pname, seconds] : perf_) {
            if (!first)
                out << ", ";
            first = false;
            out << Table::json_escape(pname) << ": " << seconds;
        }
        out << "}";
    }
    out << ", \"tables\": [";
    for (std::size_t t = 0; t < tables_.size(); ++t) {
        if (t)
            out << ", ";
        out << tables_[t];
    }
    out << "]}\n";
    std::cout << "wrote " << path << "\n";
}

void
Reporter::add(const elv::Table &table)
{
    table.print();
    tables_.push_back(table.to_json());
}

void
Reporter::record_perf(const std::string &name, double seconds)
{
    const double scaled = seconds * slowdown_;
    const auto it = perf_.find(name);
    if (it == perf_.end() || scaled < it->second)
        perf_[name] = scaled;
}

int
Reporter::perf_gate_exit_code()
{
    if (!gate_done_)
        run_perf_gate();
    return gate_rc_;
}

void
Reporter::run_perf_gate()
{
    gate_done_ = true;
    gate_rc_ = 0;
    if (baseline_path_.empty())
        return;

    // Load the baseline dump and pin its provenance. A baseline from a
    // different kernel tier or thread count measures a different
    // machine-shape; gating against it would flag phantom regressions,
    // so mismatches skip the gate loudly instead of failing it.
    std::map<std::string, double> base_perf;
    std::string base_tier;
    int base_threads = -1;
    std::string skip_reason;

    std::ifstream in(baseline_path_);
    if (!in) {
        skip_reason = "baseline unreadable: " + baseline_path_;
    } else {
        std::ostringstream buf;
        buf << in.rdbuf();
        srv::JsonValue doc;
        std::string error;
        if (!srv::json_parse(buf.str(), doc, error)) {
            skip_reason = "baseline parse error: " + error;
        } else {
            if (const srv::JsonValue *v = doc.get("kernel_dispatch"))
                base_tier = v->as_string();
            if (const srv::JsonValue *v = doc.get("threads"))
                base_threads = static_cast<int>(v->as_int(-1));
            if (const srv::JsonValue *v = doc.get("perf"))
                for (const auto &[key, val] : v->members)
                    if (val.is_number())
                        base_perf[key] = val.number;
            const std::string tier =
                sim::kernel_tier_name(sim::active_tier());
            if (base_tier != tier)
                skip_reason = "kernel_dispatch mismatch: baseline '" +
                              base_tier + "' vs current '" + tier + "'";
            else if (base_threads >= 0 && base_threads != threads_)
                skip_reason = "threads mismatch: baseline " +
                              std::to_string(base_threads) +
                              " vs current " + std::to_string(threads_);
            else if (base_perf.empty())
                skip_reason = "baseline has no perf section";
        }
    }

    // Sections faster than this are jitter-dominated: sandboxed and
    // virtualized kernels report process CPU time at scheduler-jiffy
    // (10 ms) granularity even when clock_getres claims nanoseconds,
    // so anything under one jiffy is pure quantization noise. They
    // are still reported, just never gated.
    constexpr double kMinGateSeconds = 0.01;

    struct Entry
    {
        std::string name;
        double current = 0.0;
        double baseline = 0.0;
        bool has_baseline = false;
        bool gated = false;
        double ratio = 0.0;
        bool regressed = false;
    };
    std::vector<Entry> entries;
    int regressions = 0;
    int gated = 0;
    for (const auto &[pname, current] : perf_) {
        Entry e;
        e.name = pname;
        e.current = current;
        if (skip_reason.empty()) {
            const auto it = base_perf.find(pname);
            if (it != base_perf.end() && it->second > 0.0) {
                e.has_baseline = true;
                e.baseline = it->second;
                e.ratio = current / it->second;
                e.gated = it->second >= kMinGateSeconds;
                if (e.gated)
                    ++gated;
                e.regressed =
                    e.gated &&
                    current > it->second * (1.0 + gate_threshold_);
                if (e.regressed)
                    ++regressions;
            }
        }
        entries.push_back(std::move(e));
    }

    if (!skip_reason.empty()) {
        std::cerr << "bench_" << name_ << ": perf gate skipped ("
                  << skip_reason << ")\n";
    } else {
        for (const Entry &e : entries) {
            if (!e.regressed)
                continue;
            char line[256];
            std::snprintf(line, sizeof line,
                          "perf gate: %s %.6gs vs baseline %.6gs "
                          "(%+.1f%%) REGRESSED",
                          e.name.c_str(), e.current, e.baseline,
                          100.0 * (e.ratio - 1.0));
            std::cout << line << "\n";
        }
        char verdict[192];
        std::snprintf(verdict, sizeof verdict,
                      "perf gate: %s (%zu entries, %d gated, "
                      "%d regression%s, threshold +%.0f%%)",
                      regressions ? "FAIL" : "PASS", entries.size(),
                      gated, regressions,
                      regressions == 1 ? "" : "s",
                      100.0 * gate_threshold_);
        std::cout << verdict << "\n";
        gate_rc_ = regressions ? 1 : 0;
    }

    // The verdict document, machine-readable for CI artifact triage.
    obs::JsonWriter json;
    json.begin_object();
    json.kv("report", "perf_gate");
    json.kv("bench", name_);
    json.kv("baseline", baseline_path_);
    json.kv("kernel_dispatch",
            sim::kernel_tier_name(sim::active_tier()));
    json.kv("threads", threads_);
    json.kv("threshold", gate_threshold_);
    json.kv("min_gate_seconds", kMinGateSeconds);
    json.kv("slowdown", slowdown_);
    if (!skip_reason.empty())
        json.kv("skip_reason", skip_reason);
    json.key("entries").begin_array();
    for (const Entry &e : entries) {
        json.begin_object();
        json.kv("name", e.name);
        json.kv("current_seconds", e.current);
        if (e.has_baseline) {
            json.kv("baseline_seconds", e.baseline);
            json.kv("ratio", e.ratio);
        }
        json.kv("gated", e.gated);
        json.kv("regressed", e.regressed);
        json.end_object();
    }
    json.end_array();
    json.kv("regressions", regressions);
    json.kv("pass", gate_rc_ == 0);
    json.end_object();

    std::ofstream report(perf_report_path_);
    if (!report) {
        std::cerr << "bench_" << name_ << ": cannot write "
                  << perf_report_path_ << "\n";
        return;
    }
    report << json.str() << "\n";
    std::cout << "wrote " << perf_report_path_ << "\n";
}

qml::Benchmark
load_benchmark(const std::string &name, const RunOptions &options)
{
    const qml::BenchmarkSpec spec = qml::benchmark_spec(name);
    // Pick the scale so that the test split keeps at least ~64 samples
    // (accuracy quantization would otherwise dominate the comparisons),
    // then cap the training split at max_train_samples.
    const double train_scale =
        static_cast<double>(options.max_train_samples) /
        static_cast<double>(spec.train);
    const double test_scale = 64.0 / static_cast<double>(spec.test);
    const double scale =
        std::min(1.0, std::max(train_scale, test_scale));
    qml::Benchmark bench = qml::make_benchmark(name, options.seed, scale);
    if (static_cast<int>(bench.train.size()) >
        options.max_train_samples) {
        elv::Rng rng(options.seed ^ 0x7472756eULL);
        qml::shuffle_dataset(bench.train, rng);
        bench.train = qml::take(
            bench.train,
            static_cast<std::size_t>(options.max_train_samples));
    }
    return bench;
}

MethodRun
train_and_evaluate(const circ::Circuit &physical,
                   const qml::Benchmark &bench, const dev::Device &device,
                   const RunOptions &options, std::uint64_t seed_offset)
{
    MethodRun run;
    run.stats = comp::circuit_stats(physical);

    const noise::NoisyDensitySimulator noisy(device,
                                             options.noise_scale);

    double best_train_acc = -1.0;
    std::vector<double> best_params;
    for (int restart = 0; restart < std::max(1, options.train_restarts);
         ++restart) {
        qml::TrainConfig tc;
        tc.epochs = options.epochs;
        tc.threads = options.threads;
        tc.seed = options.seed + seed_offset + 1000 +
                  static_cast<std::uint64_t>(restart);
        const auto trained =
            qml::train_circuit(physical, bench.train, tc);
        const double train_acc =
            qml::evaluate(physical, trained.params, bench.train)
                .accuracy;
        if (train_acc > best_train_acc) {
            best_train_acc = train_acc;
            best_params = trained.params;
        }
    }

    run.ideal_accuracy =
        qml::evaluate(physical, best_params, bench.test).accuracy;
    // Circuits whose routing spread over many physical qubits make the
    // exact noisy simulation exponentially expensive; bound the cost by
    // subsampling the noisy test evaluation for them.
    qml::Dataset noisy_test = bench.test;
    if (physical.touched_qubits().size() > 10 &&
        noisy_test.size() > 24) {
        elv::Rng sub_rng(options.seed + seed_offset + 77);
        qml::shuffle_dataset(noisy_test, sub_rng);
        noisy_test = qml::take(noisy_test, 24);
    }
    qml::DistributionFn noisy_provider = noisy_fn(noisy);
    if (options.shots > 0)
        noisy_provider = qml::with_shot_noise(
            std::move(noisy_provider), options.shots,
            options.seed + seed_offset);
    run.noisy_accuracy = qml::evaluate(physical, best_params, noisy_test,
                                       noisy_provider)
                             .accuracy;
    run.circuit = physical;
    run.params = std::move(best_params);
    return run;
}

MethodRun
run_random(const qml::Benchmark &bench, const dev::Device &device,
           const RunOptions &options)
{
    elv::Rng rng(options.seed ^ 0x52414e44ULL);
    base::BaselineShape shape;
    shape.num_qubits = bench.spec.qubits;
    shape.num_features = bench.spec.dim;
    shape.num_params = bench.spec.params;
    shape.num_meas = bench.spec.meas;

    const auto circuits =
        base::random_baseline(shape, options.random_circuits, rng);

    MethodRun total;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < circuits.size(); ++i) {
        // Random circuits assume all-to-all connectivity: route first
        // (Qiskit level 3 in the paper).
        const auto compiled =
            comp::compile_for_device(circuits[i], device, 3, rng);
        const MethodRun one = train_and_evaluate(
            compiled.circuit, bench, device, options, 10 * i);
        total.noisy_accuracy +=
            one.noisy_accuracy / static_cast<double>(circuits.size());
        total.ideal_accuracy +=
            one.ideal_accuracy / static_cast<double>(circuits.size());
        total.stats.gates_1q += one.stats.gates_1q /
                                static_cast<int>(circuits.size());
        total.stats.gates_2q += one.stats.gates_2q /
                                static_cast<int>(circuits.size());
        total.stats.depth +=
            one.stats.depth / static_cast<int>(circuits.size());
        total.circuit = one.circuit;
        total.params = one.params;
    }
    total.search_seconds = seconds_since(start);
    return total;
}

MethodRun
run_human(const qml::Benchmark &bench, const dev::Device &device,
          const RunOptions &options)
{
    elv::Rng rng(options.seed ^ 0x48554dULL);
    base::BaselineShape shape;
    shape.num_qubits = bench.spec.qubits;
    shape.num_features = bench.spec.dim;
    shape.num_params = bench.spec.params;
    shape.num_meas = bench.spec.meas;

    const auto circuits = base::human_baseline(shape);
    const dev::Device vfc =
        virtual_fully_connected(device, bench.spec.qubits);

    MethodRun total;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < circuits.size(); ++i) {
        MethodRun one;
        if (circuits[i].has_amplitude_embedding()) {
            // Amplitude state preparation cannot be routed; evaluate on
            // the fully-connected pseudo-device (favors the baseline).
            one = train_and_evaluate(circuits[i], bench, vfc, options,
                                     20 * i);
        } else {
            const auto compiled =
                comp::compile_for_device(circuits[i], device, 3, rng);
            one = train_and_evaluate(compiled.circuit, bench, device,
                                     options, 20 * i);
        }
        total.noisy_accuracy +=
            one.noisy_accuracy / static_cast<double>(circuits.size());
        total.ideal_accuracy +=
            one.ideal_accuracy / static_cast<double>(circuits.size());
        total.stats.gates_1q += one.stats.gates_1q /
                                static_cast<int>(circuits.size());
        total.stats.gates_2q += one.stats.gates_2q /
                                static_cast<int>(circuits.size());
        total.stats.depth +=
            one.stats.depth / static_cast<int>(circuits.size());
        if (!circuits[i].has_amplitude_embedding()) {
            total.circuit = one.circuit;
            total.params = one.params;
        }
    }
    total.search_seconds = seconds_since(start);
    return total;
}

MethodRun
run_supernet(const qml::Benchmark &bench, const dev::Device &device,
             const RunOptions &options)
{
    elv::Rng rng(options.seed ^ 0x53557045ULL);
    const auto start = std::chrono::steady_clock::now();

    const int layers = std::max(
        options.super_layers,
        (bench.spec.params + 3 * bench.spec.qubits - 1) /
                (3 * bench.spec.qubits) +
            1);
    const base::SuperCircuit super(bench.spec.qubits, layers,
                                   bench.spec.dim, bench.spec.meas,
                                   /*cry_embedding=*/true);
    qml::TrainConfig tc;
    tc.epochs = options.super_epochs;
    tc.threads = options.threads;
    tc.seed = options.seed ^ 0x1111ULL;
    const auto trained = base::train_supercircuit(
        super, bench.train, bench.spec.params, tc);

    base::SupernetConfig config;
    config.num_samples = options.supernet_samples;
    config.target_params = bench.spec.params;
    config.valid_samples = options.nas_valid_samples;
    config.seed = options.seed ^ 0x2222ULL;
    const auto found = base::supernet_search(
        super, trained.shared_params, bench.train, config);

    const auto compiled =
        comp::compile_for_device(found.best_logical, device, 3, rng);
    const double search_time = seconds_since(start);

    MethodRun run = train_and_evaluate(compiled.circuit, bench, device,
                                       options, 30);
    run.search_seconds = search_time;
    run.search_executions =
        trained.circuit_executions + found.search_executions;
    return run;
}

MethodRun
run_quantumnas(const qml::Benchmark &bench, const dev::Device &device,
               const RunOptions &options)
{
    elv::Rng rng(options.seed ^ 0x714eULL);
    const auto start = std::chrono::steady_clock::now();

    const int layers = std::max(
        options.super_layers,
        (bench.spec.params + 3 * bench.spec.qubits - 1) /
                (3 * bench.spec.qubits) +
            1);
    const base::SuperCircuit super(bench.spec.qubits, layers,
                                   bench.spec.dim, bench.spec.meas);
    qml::TrainConfig tc;
    tc.epochs = options.super_epochs;
    tc.threads = options.threads;
    tc.seed = options.seed ^ 0x3333ULL;
    const auto trained = base::train_supercircuit(
        super, bench.train, bench.spec.params, tc);

    base::QuantumNasConfig config;
    config.population = options.nas_population;
    config.generations = options.nas_generations;
    config.target_params = bench.spec.params;
    config.valid_samples = options.nas_valid_samples;
    config.seed = options.seed ^ 0x4444ULL;
    const auto found = base::quantumnas_search(
        super, trained.shared_params, device, bench.train, config);

    // Paper setting: QuantumNAS circuits are compiled at level 2.
    const auto compiled =
        comp::compile_for_device(found.best_physical, device, 2, rng);
    const double search_time = seconds_since(start);

    MethodRun run = train_and_evaluate(compiled.circuit, bench, device,
                                       options, 40);
    run.search_seconds = search_time;
    run.search_executions =
        trained.circuit_executions + found.search_executions;
    return run;
}

MethodRun
run_elivagar(const qml::Benchmark &bench, const dev::Device &device,
             const RunOptions &options, const ElivagarKnobs &knobs)
{
    const auto start = std::chrono::steady_clock::now();

    core::ElivagarConfig config;
    config.num_candidates = options.candidates;
    config.candidate.num_qubits = bench.spec.qubits;
    config.candidate.num_params = bench.spec.params;
    config.candidate.num_embeds =
        std::max(bench.spec.dim, bench.spec.params / 4);
    config.candidate.num_meas = bench.spec.meas;
    config.candidate.num_features = bench.spec.dim;
    config.candidate.embedding = knobs.embedding;
    config.candidate.noise_aware = knobs.noise_aware;
    config.use_cnr = knobs.use_cnr;
    config.cnr.num_replicas = options.cnr_replicas;
    config.cnr.noise_scale = options.noise_scale;
    config.repcap.samples_per_class = options.repcap_samples_per_class;
    config.repcap.param_inits = options.repcap_param_inits;
    config.seed = options.seed ^ 0xe1ULL;
    config.threads = options.threads;

    // Embedding budget cannot exceed the rotation budget.
    config.candidate.num_embeds =
        std::min(config.candidate.num_embeds, bench.spec.params);

    const auto found = core::elivagar_search(device, bench.train, config);
    const double search_time = seconds_since(start);

    MethodRun run =
        train_and_evaluate(found.best_circuit, bench, device, options, 50);
    run.search_executions = found.total_executions();
    run.search_seconds = search_time;
    return run;
}

} // namespace elv::bench
