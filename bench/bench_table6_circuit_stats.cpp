/**
 * @file
 * Table 6: compiled circuit statistics (1q gates, 2q gates, depth) and
 * noisy accuracy for every method, on the paper's three cells:
 * Vowel-2/IBM Nairobi, MNIST-4/IBM Lagos and MNIST-10/IBM Osaka (the
 * paper omits QuantumSupernet for MNIST-10; so does this harness).
 *
 * Shape to reproduce: Random/Human/Supernet circuits are large and deep
 * after compilation; QuantumNAS and Elivagar circuits are shallow with
 * few 2-qubit gates, and Elivagar's accuracy leads on the small tasks.
 */
#include <cstdio>

#include "common/table.hpp"
#include "harness.hpp"

int
main(int argc, char **argv)
{
    using namespace elv;
    using namespace elv::bench;

    elv::bench::Reporter reporter("table6_circuit_stats", argc, argv);

    struct Cell
    {
        const char *benchmark;
        const char *device;
        bool include_supernet;
    };
    const Cell cells[] = {
        {"vowel-2", "ibm_nairobi", true},
        {"mnist-4", "ibm_lagos", true},
        {"mnist-10", "ibm_osaka", false},
    };

    RunOptions options;
    options.threads = reporter.threads();
    reporter.set_seed(options.seed);
    options.max_train_samples = 120;
    options.epochs = 20;
    options.train_restarts = 1;
    options.candidates = 16;
    options.supernet_samples = 10;
    options.nas_population = 6;
    options.nas_generations = 3;

    for (const Cell &cell : cells) {
        const qml::Benchmark bench =
            load_benchmark(cell.benchmark, options);
        const dev::Device device = dev::make_device(cell.device);

        Table table(std::string("Table 6 - ") + cell.benchmark + " (" +
                    std::to_string(bench.spec.params) + " params) on " +
                    cell.device);
        table.set_header(
            {"method", "1Q gates", "2Q gates", "depth", "acc (noisy)"});

        auto add = [&table](const char *name, const MethodRun &run) {
            table.add_row({name, std::to_string(run.stats.gates_1q),
                           std::to_string(run.stats.gates_2q),
                           std::to_string(run.stats.depth),
                           Table::fmt(run.noisy_accuracy, 3)});
        };

        add("Random", run_random(bench, device, options));
        add("Human Designed", run_human(bench, device, options));
        if (cell.include_supernet)
            add("QuantumSupernet", run_supernet(bench, device, options));
        add("QuantumNAS", run_quantumnas(bench, device, options));
        add("Elivagar", run_elivagar(bench, device, options));
        reporter.add(table);
        std::printf("\n");
        std::fprintf(stderr, "  [table6] %s done\n", cell.benchmark);
    }
    std::printf("Shape check: the searched methods (QuantumNAS, Elivagar) "
                "produce far\nshallower circuits with fewer 2-qubit "
                "gates than the unsearched baselines,\nand Elivagar needs "
                "no routing at all (paper Sec. 9.2).\n");
    return 0;
}
