/**
 * @file
 * Shared experiment harness for the per-table/per-figure benchmark
 * binaries. Each `run_*` function executes one method (Sec. 7.4) on one
 * benchmark/device cell end to end — search (if any), final training
 * with the common Sec. 7.3 methodology, and evaluation on the noisy
 * device simulator — and reports accuracy, compiled-circuit statistics,
 * execution counts and wall-clock time.
 *
 * Sizes are scaled down from the paper (Sec. 7 trains for 200 epochs,
 * repeats 25 times, and uses cloud QPUs; every knob here is in
 * RunOptions) — the harness reproduces the *shape* of each result:
 * method ordering, ablation deltas and speedup trends.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "compiler/passes.hpp"
#include "core/candidate_gen.hpp"
#include "device/device.hpp"
#include "qml/synthetic.hpp"

namespace elv::bench {

/**
 * CPU seconds consumed by the whole process (all threads). The perf
 * gate's time base: load-robust where wall clock is hostage to every
 * other tenant of the machine.
 */
double process_cpu_seconds();

/** Scaled-down experiment sizes (see the paper-scale notes above). */
struct RunOptions
{
    /** Cap on training samples (the benchmark is scaled to fit). */
    int max_train_samples = 160;
    /** Final-training epochs (paper: 200). */
    int epochs = 30;
    /** Optimizer restarts; the best by train accuracy is kept. */
    int train_restarts = 2;

    /** Elivagar: candidate pool (paper: larger) and predictor sizes. */
    int candidates = 24;
    int cnr_replicas = 8;
    /** Paper defaults (Sec. 7.5): d_c = 16, n_p = 32. */
    int repcap_samples_per_class = 16;
    int repcap_param_inits = 32;

    /** Random baseline: circuits averaged (paper: 25). */
    int random_circuits = 3;

    /** SuperCircuit training epochs for QCS baselines. */
    int super_epochs = 15;
    int super_layers = 3;

    /** QuantumNAS evolutionary settings. */
    int nas_population = 8;
    int nas_generations = 4;
    int nas_valid_samples = 10;

    /** QuantumSupernet random-search samples. */
    int supernet_samples = 16;

    /** Shots per noisy inference (hardware estimates probabilities
     * from finite samples; 0 = exact distributions). */
    int shots = 512;

    /** Device-noise multiplier (1 = calibrated). The Fig. 9 ablation
     * uses a higher value: the paper's ablation ran on real hardware,
     * whose effective noise exceeds our calibrated simulators'. */
    double noise_scale = 1.0;

    /** Search threads (0 = one per hardware thread, 1 = serial). */
    int threads = 0;

    std::uint64_t seed = 1;
};

/**
 * Shared reporting sink for the bench binaries. Parses the common CLI
 * flags — `--json` (dump the run's tables to BENCH_<name>.json in the
 * working directory on destruction), `--threads N` (search parallelism;
 * 0 = one per hardware thread), `--trace FILE` (record a Chrome trace
 * of the whole run, written on destruction), `--metrics` (collect
 * pipeline metrics; printed on destruction and embedded in the JSON
 * dump), `--profile FILE` (sampling profiler over the whole run;
 * collapsed stacks written on destruction), `--baseline FILE` (a prior
 * BENCH_<name>.json to gate perf samples against) and
 * `--perf-report FILE` (where the gate verdict lands; default
 * perf_report.json) — echoes every table to stdout as it is added, and
 * buffers its JSON form for the dump.
 *
 * JSON dumps carry run provenance (seed, thread count, build version,
 * ISO-8601 timestamp, dispatched kernel tier) so archived result
 * trajectories stay comparable across machines and commits.
 *
 * Perf-regression observatory: benches call `record_perf(name, s)` for
 * each timed section (the minimum over repeated records is kept —
 * min-of-k is the standard noise-robust estimator). Gated sections
 * should record *process CPU seconds* (`process_cpu_seconds()` deltas),
 * not wall clock: CPU time is immune to the scheduler descheduling the
 * whole process, which on shared CI runners dwarfs any real regression.
 * The samples land in the BENCH json under "perf"; when `--baseline`
 * names a previous dump, `perf_gate_exit_code()` compares current
 * minima against the baseline's and fails (exit 1) on any regression
 * beyond the threshold. Baselines whose provenance (kernel tier, threads)
 * differs are skipped with a warning instead of producing bogus
 * verdicts. The ELV_PERF_SLOWDOWN env var scales every recorded sample
 * (CI uses it to prove the gate actually fails on a slowdown).
 */
class Reporter
{
  public:
    Reporter(std::string name, int argc, char **argv);

    /** Writes BENCH_<name>.json / the trace file when requested. */
    ~Reporter();

    Reporter(const Reporter &) = delete;
    Reporter &operator=(const Reporter &) = delete;

    /** Print the table to stdout and buffer it for the JSON report. */
    void add(const elv::Table &table);

    bool json_enabled() const { return json_; }

    /** --threads value; feed into RunOptions::threads. */
    int threads() const { return threads_; }

    /** Record the run's seed for the JSON metadata. */
    void set_seed(std::uint64_t seed) { seed_ = seed; }

    /**
     * Record one wall-clock perf sample in seconds. Repeated records
     * under the same name keep the minimum (min-of-k). Scaled by
     * ELV_PERF_SLOWDOWN when set (see the class comment).
     */
    void record_perf(const std::string &name, double seconds);

    /**
     * Run the perf gate against the `--baseline` dump (idempotent;
     * the first call decides). Returns the process exit code the bench
     * should propagate: 0 when no baseline was given, the baseline is
     * unusable (unreadable / provenance mismatch — warned, not
     * failed), or every entry is within the regression threshold; 1
     * when any shared entry regressed. Writes the `--perf-report`
     * verdict document whenever a baseline was requested.
     */
    int perf_gate_exit_code();

  private:
    void run_perf_gate();

    std::string name_;
    bool json_ = false;
    int threads_ = 0;
    std::uint64_t seed_ = 0;
    std::string trace_path_;
    bool metrics_ = false;
    std::vector<std::string> tables_;
    /** @name Perf-regression observatory state @{ */
    std::map<std::string, double> perf_;
    std::string baseline_path_;
    std::string profile_path_;
    std::string perf_report_path_ = "perf_report.json";
    /** Relative regression tolerance (0.15 = fail beyond +15%). */
    double gate_threshold_ = 0.15;
    /** ELV_PERF_SLOWDOWN multiplier applied to recorded samples. */
    double slowdown_ = 1.0;
    bool gate_done_ = false;
    int gate_rc_ = 0;
    /** @} */
};

/** One method-on-cell outcome. */
struct MethodRun
{
    /** Final physical circuit (the last/representative one for averaged
     * baselines) and its trained parameters; used by the companion-
     * framework bench (Fig. 11). */
    circ::Circuit circuit;
    std::vector<double> params;
    /** Test accuracy on the noisy device simulator. */
    double noisy_accuracy = 0.0;
    /** Test accuracy on the noiseless simulator. */
    double ideal_accuracy = 0.0;
    /** Compiled-circuit statistics (Tables 5-6). */
    comp::CircuitStats stats;
    /** Device-style circuit executions spent on the search phase. */
    std::uint64_t search_executions = 0;
    /** Wall-clock seconds of the search phase (Table 4 'C'). */
    double search_seconds = 0.0;
};

/** Elivagar ablation knobs (Figs. 9-10). */
struct ElivagarKnobs
{
    core::EmbeddingMode embedding = core::EmbeddingMode::Searched;
    bool use_cnr = true;
    bool noise_aware = true;
};

/** Generate the benchmark scaled per RunOptions. */
qml::Benchmark load_benchmark(const std::string &name,
                              const RunOptions &options);

/** The Random baseline (average of random RXYZ + CZ circuits). */
MethodRun run_random(const qml::Benchmark &bench,
                     const dev::Device &device, const RunOptions &options);

/** The Human-designed baseline (angle / IQP / amplitude, averaged). */
MethodRun run_human(const qml::Benchmark &bench, const dev::Device &device,
                    const RunOptions &options);

/** QuantumSupernet: SuperCircuit + random search. */
MethodRun run_supernet(const qml::Benchmark &bench,
                       const dev::Device &device,
                       const RunOptions &options);

/** QuantumNAS: SuperCircuit + evolutionary circuit-mapping co-search. */
MethodRun run_quantumnas(const qml::Benchmark &bench,
                         const dev::Device &device,
                         const RunOptions &options);

/** Elivagar (optionally ablated). */
MethodRun run_elivagar(const qml::Benchmark &bench,
                       const dev::Device &device,
                       const RunOptions &options,
                       const ElivagarKnobs &knobs = {});

/**
 * Train a physical circuit with the shared methodology and evaluate it
 * noiselessly and on the noisy device simulator. Exposed for benches
 * that evaluate custom circuits (Figs. 10-11).
 */
MethodRun train_and_evaluate(const circ::Circuit &physical,
                             const qml::Benchmark &bench,
                             const dev::Device &device,
                             const RunOptions &options,
                             std::uint64_t seed_offset = 0);

} // namespace elv::bench
