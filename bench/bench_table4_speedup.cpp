/**
 * @file
 * Table 4: Elivagar vs QuantumNAS search cost.
 *
 * Two regimes, as in the paper:
 *  - 'C' (classical simulators): measured wall-clock of both searches in
 *    this process (SuperCircuit training + evolutionary co-search vs
 *    candidate generation + CNR + RepCap), both using adjoint/"backprop"
 *    gradients.
 *  - 'Q' (quantum hardware): circuit-execution counts at PAPER scale,
 *    which is how the paper itself estimates this column (Sec. 8.2.2:
 *    wall-clock on cloud QPUs is unreliable, so executions are
 *    compared). QuantumNAS costs 2 t |D_train| p parameter-shift
 *    executions for SuperCircuit training plus fitness evaluations;
 *    Elivagar costs M per candidate for CNR plus n_c d_c n_p per
 *    survivor for RepCap (Sec. 6.1).
 *
 * Shape to reproduce: Elivagar is faster in both regimes and the 'Q'
 * speedup grows with problem size (paper: 11.7x geomean 'C', 271x
 * geomean 'Q', 5220x on MNIST-10). The measured 'C' column is
 * compressed relative to the paper's because our scaled-down
 * SuperCircuit training (40 epochs x 240 samples vs 200 x full set)
 * shrinks QuantumNAS's dominant cost while Elivagar's predictor costs
 * are size-independent.
 */
#include <cstdio>

#include "common/statistics.hpp"
#include "common/table.hpp"
#include "harness.hpp"
#include "qml/trainer.hpp"

int
main(int argc, char **argv)
{
    using namespace elv;
    using namespace elv::bench;

    elv::bench::Reporter reporter("table4_speedup", argc, argv);

    struct Row
    {
        const char *benchmark;
        double paper_speedup_c;
        double paper_speedup_q;
    };
    const Row rows[] = {
        {"moons", 5.6, 44.0},     {"vowel-4", 7.0, 77.0},
        {"vowel-2", 6.2, 104.0},  {"bank", 6.4, 119.0},
        {"mnist-2", 18.6, 182.0}, {"fmnist-2", 22.0, 282.0},
        {"fmnist-4", 20.7, 646.0}, {"mnist-4", 11.3, 1046.0},
        {"mnist-10", 28.4, 5220.0},
    };

    RunOptions options;
    options.threads = reporter.threads();
    reporter.set_seed(options.seed);
    options.max_train_samples = 240;
    options.epochs = 20;
    // Tilt toward the paper's training-heavy regime: SuperCircuit
    // training dominates QuantumNAS cost there (200 epochs over the
    // full training sets).
    options.super_epochs = 40;

    Table table("Table 4 - QuantumNAS vs Elivagar search cost");
    table.set_header({"benchmark", "QNAS (s)", "Elivagar (s)",
                      "speedup C", "paper C", "speedup Q", "paper Q"});

    std::vector<double> speedups_c, speedups_q;
    for (const Row &row : rows) {
        const qml::Benchmark bench =
            load_benchmark(row.benchmark, options);
        const dev::Device device = dev::make_device("ibmq_jakarta");

        const MethodRun qnas = run_quantumnas(bench, device, options);
        const MethodRun elivagar = run_elivagar(bench, device, options);

        // 'Q' regime at PAPER scale. The paper itself estimates this
        // column from circuit-execution counts (Sec. 8.2.2), so we
        // evaluate the same model with Table 2's full sizes and the
        // paper's hyperparameters: SuperCircuit training costs
        // (1 + 2p) |D_train| parameter-shift executions per epoch
        // (t = 200 epochs; the +1 is the forward evaluation every
        // gradient step needs, and the count is what a quantum device
        // executes regardless of how the simulator batches samples
        // across threads), the co-search evaluates ~500 genomes on a
        // |D_test|-sized validation set, and Elivagar spends M = 32
        // executions per candidate on CNR plus n_c d_c n_p = 512 n_c
        // per survivor on RepCap (128 candidates, top 50% kept).
        const std::uint64_t qnas_q =
            qml::parameter_shift_execution_count_dataset(
                bench.spec.params, /*epochs=*/200, bench.spec.train,
                /*batch_size=*/32) +
            std::uint64_t{500} *
                static_cast<std::uint64_t>(bench.spec.test);
        const std::uint64_t elv_q =
            std::uint64_t{128 * 32} +
            std::uint64_t{64 * 512} *
                static_cast<std::uint64_t>(bench.spec.classes);

        const double speedup_c =
            qnas.search_seconds / std::max(1e-9,
                                           elivagar.search_seconds);
        const double speedup_q = static_cast<double>(qnas_q) /
                                 static_cast<double>(
                                     std::max<std::uint64_t>(1, elv_q));
        speedups_c.push_back(speedup_c);
        speedups_q.push_back(speedup_q);

        table.add_row({row.benchmark,
                       Table::fmt(qnas.search_seconds, 2),
                       Table::fmt(elivagar.search_seconds, 2),
                       Table::fmt(speedup_c, 1) + "x",
                       Table::fmt(row.paper_speedup_c, 1) + "x",
                       Table::fmt(speedup_q, 0) + "x",
                       Table::fmt(row.paper_speedup_q, 0) + "x"});
        std::fprintf(stderr, "  [table4] %s done\n", row.benchmark);
    }
    table.add_row({"GMean", "", "",
                   Table::fmt(geometric_mean(speedups_c), 1) + "x",
                   "11.7x",
                   Table::fmt(geometric_mean(speedups_q), 0) + "x",
                   "271x"});
    reporter.add(table);
    std::printf("\nShape check: Elivagar wins in both regimes and the "
                "hardware ('Q') speedup\ngrows with benchmark size, "
                "because SuperCircuit training scales with the\n"
                "parameter count under parameter-shift gradients.\n");
    return 0;
}
