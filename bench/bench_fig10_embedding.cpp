/**
 * @file
 * Figure 10: searching for data embeddings vs fixing one. Three
 * Elivagar variants per benchmark — fixed IQP embedding, fixed angle
 * embedding, and searched embeddings — evaluated *noiselessly* (as in
 * the paper, to isolate the embedding effect from hardware noise).
 *
 * Shape to reproduce: searched embeddings lead (paper: +5.5% over fixed
 * angle, +20% over fixed IQP on average).
 */
#include <cstdio>

#include "common/statistics.hpp"
#include "common/table.hpp"
#include "harness.hpp"

int
main(int argc, char **argv)
{
    using namespace elv;
    using namespace elv::bench;

    elv::bench::Reporter reporter("fig10_embedding", argc, argv);

    const char *benchmarks[] = {"moons", "bank", "mnist-2", "fmnist-4"};

    RunOptions options;
    options.threads = reporter.threads();
    reporter.set_seed(options.seed);
    options.max_train_samples = 120;
    options.epochs = 25;
    options.candidates = 32;

    Table table("Fig. 10 - fixed vs searched data embeddings "
                "(noiseless accuracy, percent, mean of 3 runs)");
    table.set_header(
        {"benchmark", "fixed IQP", "fixed angle", "searched"});

    std::vector<double> iqp_acc, angle_acc, searched_acc;
    for (const char *name : benchmarks) {
        const dev::Device device = dev::make_device("ibmq_jakarta");

        ElivagarKnobs iqp;
        iqp.embedding = core::EmbeddingMode::FixedIQP;
        ElivagarKnobs angle;
        angle.embedding = core::EmbeddingMode::FixedAngle;

        // Mean over independent runs (the paper averages 25 repeats).
        const int repeats = 3;
        double a_iqp = 0.0, a_angle = 0.0, a_search = 0.0;
        for (int rep = 0; rep < repeats; ++rep) {
            options.seed = 1 + static_cast<std::uint64_t>(rep);
            const qml::Benchmark bench = load_benchmark(name, options);
            a_iqp += run_elivagar(bench, device, options, iqp)
                         .ideal_accuracy /
                     repeats;
            a_angle += run_elivagar(bench, device, options, angle)
                           .ideal_accuracy /
                       repeats;
            a_search +=
                run_elivagar(bench, device, options).ideal_accuracy /
                repeats;
        }

        iqp_acc.push_back(a_iqp);
        angle_acc.push_back(a_angle);
        searched_acc.push_back(a_search);
        table.add_row({name, Table::pct(a_iqp), Table::pct(a_angle),
                       Table::pct(a_search)});
        std::fprintf(stderr, "  [fig10] %s done\n", name);
    }
    reporter.add(table);
    std::printf("\nmean deltas: searched - angle = %+.1f%% (paper "
                "+5.5%%), searched - IQP = %+.1f%% (paper +20%%)\n",
                100.0 * (mean(searched_acc) - mean(angle_acc)),
                100.0 * (mean(searched_acc) - mean(iqp_acc)));
    return 0;
}
