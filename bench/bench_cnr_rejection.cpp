/**
 * @file
 * Sec. 5.3 rejection-rate claim: "when searching for a 250-parameter
 * circuit on IBMQ-Manila with a CNR threshold of 0.9, Elivagar can
 * reject 95% of circuits, achieving an almost 20x reduction in circuit
 * executions."
 *
 * This bench sweeps the CNR threshold for 250-parameter candidates on
 * the IBMQ-Manila model and reports the rejection rate and the
 * execution-reduction factor relative to evaluating every candidate's
 * performance (RepCap cost per survivor vs CNR cost per candidate).
 */
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/candidate_gen.hpp"
#include "core/cnr.hpp"
#include "device/device.hpp"

#include "harness.hpp"

int
main(int argc, char **argv)
{
    using namespace elv;

    elv::bench::Reporter reporter("cnr_rejection", argc, argv);
    reporter.set_seed(42);

    const dev::Device device = dev::make_device("ibmq_manila");
    elv::Rng rng(42);

    core::CandidateConfig config;
    config.num_qubits = device.num_qubits();
    config.num_params = 250;
    config.num_embeds = 8;
    config.num_meas = 4;
    config.num_features = 8;

    // CNR for a pool of deep candidates (stabilizer backend: 250-
    // parameter 5-qubit circuits are slow for the exact density route).
    const int pool = 24;
    std::vector<double> cnrs;
    for (int n = 0; n < pool; ++n) {
        const circ::Circuit c =
            core::generate_candidate(device, config, rng);
        core::CnrOptions options;
        options.backend = core::CnrBackend::Stabilizer;
        options.num_replicas = 8;
        options.shots = 512;
        cnrs.push_back(
            core::clifford_noise_resilience(c, device, rng, options)
                .cnr);
    }

    // Cost model (paper hyperparameters): CNR costs M = 32 executions
    // per candidate; performance evaluation costs n_c d_c n_p = 1024
    // executions per surviving circuit (2 classes).
    const double cnr_cost = 32.0;
    const double perf_cost = 2.0 * 16.0 * 32.0;

    Table table("Sec. 5.3 - CNR early rejection on IBMQ-Manila "
                "(250-parameter circuits)");
    table.set_header({"CNR threshold", "rejected", "exec reduction",
                      "paper"});
    for (double threshold : {0.5, 0.6, 0.7, 0.8, 0.9}) {
        int rejected = 0;
        for (double cnr : cnrs)
            if (cnr < threshold)
                ++rejected;
        const double survivors = pool - rejected;
        // Without rejection: pool * perf_cost. With: pool * cnr_cost +
        // survivors * perf_cost.
        const double reduction =
            (pool * perf_cost) /
            (pool * cnr_cost + survivors * perf_cost);
        table.add_row(
            {Table::fmt(threshold, 2),
             Table::pct(static_cast<double>(rejected) / pool) + "%",
             Table::fmt(reduction, 1) + "x",
             threshold == 0.9 ? "95% rejected, ~20x" : ""});
    }
    reporter.add(table);
    std::printf("\nShape check: deep circuits on a noisy device mostly "
                "fail a 0.9 CNR threshold,\nso the cheap CNR pass "
                "eliminates most of the expensive performance "
                "evaluations\n(paper Sec. 5.3).\n");
    return 0;
}
