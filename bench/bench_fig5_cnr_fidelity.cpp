/**
 * @file
 * Figure 5c/5d: Clifford noise resilience predicts circuit fidelity.
 *
 * For each of the paper's three devices (IBMQ-Guadalupe, IBMQ-Kolkata,
 * Rigetti Aspen-M-2 noise model), generate device-aware candidate
 * circuits of varying size, compute CNR (Eqs. 1-2) and the true fidelity
 * (1 - TVD of noisy vs ideal outputs, averaged over parameter/input
 * bindings), and report the correlation. Paper reference: R = 0.924 on
 * IBMQ-Kolkata and R = 0.935 on the Aspen-M-2 noise model, with a
 * similarly strong correlation on IBMQ-Guadalupe — CNR is "highly
 * predictive of circuit fidelity" (Sec. 5.3).
 */
#include <cstdio>

#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "common/table.hpp"
#include "core/candidate_gen.hpp"
#include "core/cnr.hpp"
#include "noise/noise_model.hpp"

#include "harness.hpp"

int
main(int argc, char **argv)
{
    using namespace elv;

    elv::bench::Reporter reporter("fig5_cnr_fidelity", argc, argv);

    struct Cell
    {
        const char *device;
        double paper_r; // paper-reported correlation (<= 0: unreported)
        /** Circuit-size step: low-noise devices need larger circuits
         * for fidelities to spread (the paper's hardware runs use up to
         * 250 parameters). */
        int param_step;
    };
    const Cell cells[] = {
        {"ibm_guadalupe", -1.0, 4},
        {"ibmq_kolkata", 0.924, 8},
        {"rigetti_aspen_m2", 0.935, 3},
    };

    Table table("Fig. 5c/d - CNR vs circuit fidelity correlation");
    table.set_header({"device", "circuits", "CNR range", "fid range",
                      "Pearson R", "paper R"});

    for (const Cell &cell : cells) {
        const dev::Device device = dev::make_device(cell.device);
        const noise::NoisyDensitySimulator noisy(device);
        elv::Rng rng(8);

        std::vector<double> cnrs, fidelities;
        core::CandidateConfig config;
        config.num_qubits = 4;
        config.num_meas = 4;
        config.num_features = 4;
        config.num_embeds = 4;

        const int circuits = 36;
        for (int n = 0; n < circuits; ++n) {
            config.num_params = 4 + cell.param_step * (n % 10);
            const circ::Circuit c =
                core::generate_candidate(device, config, rng);
            core::CnrOptions options;
            options.num_replicas = 24;
            cnrs.push_back(
                core::clifford_noise_resilience(c, device, rng, options)
                    .cnr);

            double fid = 0.0;
            const int bindings = 8;
            for (int b = 0; b < bindings; ++b) {
                std::vector<double> params(
                    static_cast<std::size_t>(c.num_params()));
                for (auto &p : params)
                    p = rng.uniform(-M_PI, M_PI);
                std::vector<double> x(4);
                for (auto &v : x)
                    v = rng.uniform(-M_PI / 2, M_PI / 2);
                fid += noisy.fidelity(c, params, x) / bindings;
            }
            fidelities.push_back(fid);
        }

        table.add_row(
            {cell.device, std::to_string(circuits),
             Table::fmt(min_value(cnrs), 2) + "-" +
                 Table::fmt(max_value(cnrs), 2),
             Table::fmt(min_value(fidelities), 2) + "-" +
                 Table::fmt(max_value(fidelities), 2),
             Table::fmt(pearson_r(cnrs, fidelities), 3),
             cell.paper_r > 0 ? Table::fmt(cell.paper_r, 3) : "(high)"});
    }
    reporter.add(table);
    std::printf("\nShape check: CNR correlates strongly and positively "
                "with fidelity on every\ndevice, enabling early "
                "rejection of low-fidelity circuits (Insight 3).\n");
    return 0;
}
