/**
 * @file
 * Supporting microbenchmarks (google-benchmark) for the paper's Sec. 5
 * efficiency claim: Clifford circuits are efficiently simulable. The
 * stabilizer tableau scales polynomially with qubit count while the
 * dense state-vector and density-matrix backends scale exponentially —
 * which is what makes Clifford-replica CNR cheap even for circuits far
 * beyond dense simulation.
 */
#include <benchmark/benchmark.h>

#include "circuit/circuit.hpp"
#include "circuit/clifford_replica.hpp"
#include "common/rng.hpp"
#include "core/candidate_gen.hpp"
#include "core/cnr.hpp"
#include "device/device.hpp"
#include "sim/density_matrix.hpp"
#include "sim/statevector.hpp"
#include "stabilizer/tableau.hpp"

namespace {

using namespace elv;

/** Layered Clifford circuit: H + CX brickwork + S, depth ~3 * layers. */
circ::Circuit
clifford_brickwork(int qubits, int layers)
{
    circ::Circuit c(qubits);
    for (int l = 0; l < layers; ++l) {
        for (int q = 0; q < qubits; ++q)
            c.add_gate(circ::GateKind::H, {q});
        for (int q = l % 2; q + 1 < qubits; q += 2)
            c.add_gate(circ::GateKind::CX, {q, q + 1});
        for (int q = 0; q < qubits; ++q)
            c.add_gate(circ::GateKind::S, {q});
    }
    std::vector<int> meas;
    for (int q = 0; q < std::min(qubits, 10); ++q)
        meas.push_back(q);
    c.set_measured(meas);
    return c;
}

void
BM_StateVectorClifford(benchmark::State &state)
{
    const int qubits = static_cast<int>(state.range(0));
    const circ::Circuit c = clifford_brickwork(qubits, 4);
    sim::StateVector psi(qubits);
    for (auto _ : state) {
        psi.run(c);
        benchmark::DoNotOptimize(psi.amps().data());
    }
    state.SetLabel(std::to_string(qubits) + " qubits (dense 2^n)");
}

void
BM_DensityMatrixClifford(benchmark::State &state)
{
    const int qubits = static_cast<int>(state.range(0));
    const circ::Circuit c = clifford_brickwork(qubits, 4);
    sim::DensityMatrix rho(qubits);
    for (auto _ : state) {
        rho.run(c);
        benchmark::DoNotOptimize(rho.trace());
    }
    state.SetLabel(std::to_string(qubits) + " qubits (dense 4^n)");
}

void
BM_StabilizerClifford(benchmark::State &state)
{
    const int qubits = static_cast<int>(state.range(0));
    const circ::Circuit c = clifford_brickwork(qubits, 4);
    Rng rng(5);
    for (auto _ : state) {
        const std::size_t outcome = stab::run_shot(c, rng);
        benchmark::DoNotOptimize(outcome);
    }
    state.SetLabel(std::to_string(qubits) +
                   " qubits (tableau, poly n)");
}

void
BM_CnrDensityBackend(benchmark::State &state)
{
    const dev::Device device = dev::make_device("ibm_guadalupe");
    Rng rng(7);
    core::CandidateConfig config;
    config.num_qubits = static_cast<int>(state.range(0));
    config.num_params = 16;
    config.num_embeds = 4;
    config.num_meas = 2;
    config.num_features = 4;
    const circ::Circuit c = core::generate_candidate(device, config, rng);
    core::CnrOptions options;
    options.num_replicas = 4;
    for (auto _ : state) {
        const auto result =
            core::clifford_noise_resilience(c, device, rng, options);
        benchmark::DoNotOptimize(result.cnr);
    }
}

void
BM_CnrStabilizerBackend(benchmark::State &state)
{
    const dev::Device device = dev::make_device("ibm_guadalupe");
    Rng rng(7);
    core::CandidateConfig config;
    config.num_qubits = static_cast<int>(state.range(0));
    config.num_params = 16;
    config.num_embeds = 4;
    config.num_meas = 2;
    config.num_features = 4;
    const circ::Circuit c = core::generate_candidate(device, config, rng);
    core::CnrOptions options;
    options.num_replicas = 4;
    options.backend = core::CnrBackend::Stabilizer;
    options.shots = 512;
    for (auto _ : state) {
        const auto result =
            core::clifford_noise_resilience(c, device, rng, options);
        benchmark::DoNotOptimize(result.cnr);
    }
}

void
BM_AdjointVsParameterShiftGap(benchmark::State &state)
{
    // The Table 4 'Q'-regime cost driver: executions per gradient.
    const int params = static_cast<int>(state.range(0));
    state.counters["param_shift_execs"] =
        static_cast<double>(1 + 2 * params);
    state.counters["adjoint_execs"] = 1.0;
    for (auto _ : state)
        benchmark::DoNotOptimize(params);
}

} // namespace

BENCHMARK(BM_StateVectorClifford)->DenseRange(4, 16, 4)->Arg(18);
BENCHMARK(BM_DensityMatrixClifford)->DenseRange(4, 8, 2)->Arg(9);
BENCHMARK(BM_StabilizerClifford)->RangeMultiplier(2)->Range(4, 64);
BENCHMARK(BM_CnrDensityBackend)->DenseRange(3, 7, 2);
BENCHMARK(BM_CnrStabilizerBackend)->DenseRange(3, 7, 2);
BENCHMARK(BM_AdjointVsParameterShiftGap)->Arg(16)->Arg(40)->Arg(72);

BENCHMARK_MAIN();
