/**
 * @file
 * Simulator and search-engine scaling benchmarks.
 *
 * Default mode measures the two perf-critical comparisons of the
 * parallel search engine and dumps them to BENCH_parallel.json:
 *
 *  - generic dense matmul kernels vs the specialized CX/CZ/SWAP and
 *    diagonal-1q kernels, single-threaded, with a bit-level
 *    equivalence check;
 *  - `elivagar_search` at --threads 1 vs --threads N on an
 *    8-qubit/64-candidate search, with a bit-identity check of the
 *    full ranking (the determinism contract of src/parallel/).
 *
 * `--small` restricts the comparisons to the smallest sizes and a
 * reduced candidate pool — the CI smoke/perf-gate preset. `--baseline
 * FILE` gates the recorded section timings against a previous dump
 * (see the harness perf observatory).
 *
 * `--gbench` instead runs the original google-benchmark microbenches
 * for the paper's Sec. 5 efficiency claim: the stabilizer tableau
 * scales polynomially with qubit count while the dense state-vector
 * and density-matrix backends scale exponentially — which is what
 * makes Clifford-replica CNR cheap even for circuits far beyond dense
 * simulation.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/clifford_replica.hpp"
#include "circuit/serialize.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/candidate_gen.hpp"
#include "core/cnr.hpp"
#include "core/search.hpp"
#include "device/device.hpp"
#include "harness.hpp"
#include "parallel/thread_pool.hpp"
#include "qml/synthetic.hpp"
#include "sim/cpu_features.hpp"
#include "sim/density_matrix.hpp"
#include "sim/statevector.hpp"
#include "stabilizer/tableau.hpp"

namespace {

using namespace elv;

/** Layered Clifford circuit: H + CX brickwork + S, depth ~3 * layers. */
circ::Circuit
clifford_brickwork(int qubits, int layers)
{
    circ::Circuit c(qubits);
    for (int l = 0; l < layers; ++l) {
        for (int q = 0; q < qubits; ++q)
            c.add_gate(circ::GateKind::H, {q});
        for (int q = l % 2; q + 1 < qubits; q += 2)
            c.add_gate(circ::GateKind::CX, {q, q + 1});
        for (int q = 0; q < qubits; ++q)
            c.add_gate(circ::GateKind::S, {q});
    }
    std::vector<int> meas;
    for (int q = 0; q < std::min(qubits, 10); ++q)
        meas.push_back(q);
    c.set_measured(meas);
    return c;
}

void
BM_StateVectorClifford(benchmark::State &state)
{
    const int qubits = static_cast<int>(state.range(0));
    const circ::Circuit c = clifford_brickwork(qubits, 4);
    sim::StateVector psi(qubits);
    for (auto _ : state) {
        psi.run(c);
        benchmark::DoNotOptimize(psi.amps().data());
    }
    state.SetLabel(std::to_string(qubits) + " qubits (dense 2^n)");
}

void
BM_DensityMatrixClifford(benchmark::State &state)
{
    const int qubits = static_cast<int>(state.range(0));
    const circ::Circuit c = clifford_brickwork(qubits, 4);
    sim::DensityMatrix rho(qubits);
    for (auto _ : state) {
        rho.run(c);
        benchmark::DoNotOptimize(rho.trace());
    }
    state.SetLabel(std::to_string(qubits) + " qubits (dense 4^n)");
}

void
BM_StabilizerClifford(benchmark::State &state)
{
    const int qubits = static_cast<int>(state.range(0));
    const circ::Circuit c = clifford_brickwork(qubits, 4);
    Rng rng(5);
    for (auto _ : state) {
        const std::size_t outcome = stab::run_shot(c, rng);
        benchmark::DoNotOptimize(outcome);
    }
    state.SetLabel(std::to_string(qubits) +
                   " qubits (tableau, poly n)");
}

void
BM_CnrDensityBackend(benchmark::State &state)
{
    const dev::Device device = dev::make_device("ibm_guadalupe");
    Rng rng(7);
    core::CandidateConfig config;
    config.num_qubits = static_cast<int>(state.range(0));
    config.num_params = 16;
    config.num_embeds = 4;
    config.num_meas = 2;
    config.num_features = 4;
    const circ::Circuit c = core::generate_candidate(device, config, rng);
    core::CnrOptions options;
    options.num_replicas = 4;
    for (auto _ : state) {
        const auto result =
            core::clifford_noise_resilience(c, device, rng, options);
        benchmark::DoNotOptimize(result.cnr);
    }
}

void
BM_CnrStabilizerBackend(benchmark::State &state)
{
    const dev::Device device = dev::make_device("ibm_guadalupe");
    Rng rng(7);
    core::CandidateConfig config;
    config.num_qubits = static_cast<int>(state.range(0));
    config.num_params = 16;
    config.num_embeds = 4;
    config.num_meas = 2;
    config.num_features = 4;
    const circ::Circuit c = core::generate_candidate(device, config, rng);
    core::CnrOptions options;
    options.num_replicas = 4;
    options.backend = core::CnrBackend::Stabilizer;
    options.shots = 512;
    for (auto _ : state) {
        const auto result =
            core::clifford_noise_resilience(c, device, rng, options);
        benchmark::DoNotOptimize(result.cnr);
    }
}

void
BM_AdjointVsParameterShiftGap(benchmark::State &state)
{
    // The Table 4 'Q'-regime cost driver: executions per gradient.
    const int params = static_cast<int>(state.range(0));
    state.counters["param_shift_execs"] =
        static_cast<double>(1 + 2 * params);
    state.counters["adjoint_execs"] = 1.0;
    for (auto _ : state)
        benchmark::DoNotOptimize(params);
}

/** An entangler-heavy circuit that mixes every specialized kernel. */
circ::Circuit
kernel_mix(int qubits, int layers)
{
    circ::Circuit c(qubits);
    for (int l = 0; l < layers; ++l) {
        for (int q = 0; q < qubits; ++q)
            c.add_variational(circ::GateKind::RZ, {q});
        for (int q = l % 2; q + 1 < qubits; q += 2)
            c.add_gate(circ::GateKind::CX, {q, q + 1});
        for (int q = 0; q < qubits; ++q)
            c.add_gate(circ::GateKind::S, {q});
        for (int q = (l + 1) % 2; q + 1 < qubits; q += 2)
            c.add_gate(circ::GateKind::CZ, {q, q + 1});
        c.add_gate(circ::GateKind::SWAP, {0, qubits - 1});
        for (int q = 0; q < qubits; ++q)
            c.add_gate(circ::GateKind::Z, {q});
    }
    std::vector<int> meas;
    for (int q = 0; q < std::min(qubits, 10); ++q)
        meas.push_back(q);
    c.set_measured(meas);
    return c;
}

double
seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Fixed angles for a circuit's variational slots. */
std::vector<double>
fixed_params(const circ::Circuit &c)
{
    std::vector<double> params(
        static_cast<std::size_t>(c.num_params()));
    for (std::size_t i = 0; i < params.size(); ++i)
        params[i] = 0.05 + 0.1 * static_cast<double>(i);
    return params;
}

/** Seconds per run of `c` on a fresh state with the given kernels. */
double
time_statevector(const circ::Circuit &c, int qubits, bool specialized,
                 int reps)
{
    sim::StateVector psi(qubits);
    psi.use_specialized_kernels(specialized);
    const std::vector<double> params = fixed_params(c);
    psi.run(c, params); // warm-up
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r)
        psi.run(c, params);
    return seconds_since(start) / reps;
}

/** Seconds per run of `c` at amplitude precision T (active tier). */
template <typename T>
double
time_statevector_t(const circ::Circuit &c, int qubits, int reps)
{
    sim::BasicStateVector<T> psi(qubits);
    const std::vector<double> params = fixed_params(c);
    psi.run(c, params); // warm-up
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r)
        psi.run(c, params);
    return seconds_since(start) / reps;
}

/** True when scalar and SIMD kernels produce bit-identical states. */
bool
tiers_bit_identical(const circ::Circuit &c, int qubits)
{
    const std::vector<double> params = fixed_params(c);
    sim::set_forced_tier(sim::KernelTier::Baseline);
    sim::StateVector scalar(qubits);
    scalar.run(c, params);
    sim::clear_forced_tier();
    sim::StateVector simd(qubits);
    simd.run(c, params);
    for (std::size_t i = 0; i < scalar.dim(); ++i)
        if (std::memcmp(&scalar.amps()[i], &simd.amps()[i],
                        sizeof(scalar.amps()[i])) != 0)
            return false;
    return true;
}

/** Max |amp difference| between the two kernel paths for `c`. */
double
kernel_max_diff(const circ::Circuit &c, int qubits)
{
    sim::StateVector generic(qubits), fast(qubits);
    generic.use_specialized_kernels(false);
    const std::vector<double> params = fixed_params(c);
    generic.run(c, params);
    fast.run(c, params);
    double diff = 0.0;
    for (std::size_t i = 0; i < generic.dim(); ++i)
        diff = std::max(diff, std::abs(generic.amp(i) - fast.amp(i)));
    return diff;
}

/** The 8-qubit search of the parallel acceptance bench (64 candidates,
 *  16 under the `--small` smoke preset). */
core::ElivagarConfig
search_config(const qml::Benchmark &bench, int threads, bool small)
{
    core::ElivagarConfig config;
    config.num_candidates = small ? 16 : 64;
    config.candidate.num_qubits = 8;
    config.candidate.num_params = 24;
    config.candidate.num_embeds = 8;
    config.candidate.num_meas = 1;
    config.candidate.num_features = bench.spec.dim;
    // Stabilizer CNR keeps each candidate cheap enough that the bench
    // finishes in seconds while still being execution-bound.
    config.cnr.backend = core::CnrBackend::Stabilizer;
    config.cnr.num_replicas = 8;
    config.cnr.shots = 512;
    config.repcap.samples_per_class = 8;
    config.repcap.param_inits = 8;
    config.seed = 7;
    config.threads = threads;
    return config;
}

bool
identical_rankings(const core::SearchResult &a, const core::SearchResult &b)
{
    if (circ::to_text(a.best_circuit) != circ::to_text(b.best_circuit) ||
        a.best_score != b.best_score ||
        a.candidates.size() != b.candidates.size())
        return false;
    for (std::size_t n = 0; n < a.candidates.size(); ++n) {
        if (a.candidates[n].cnr != b.candidates[n].cnr ||
            a.candidates[n].repcap != b.candidates[n].repcap ||
            a.candidates[n].score != b.candidates[n].score ||
            a.candidates[n].rejected_by_cnr !=
                b.candidates[n].rejected_by_cnr)
            return false;
    }
    return true;
}

int
run_comparisons(int argc, char **argv)
{
    bool small = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--small")
            small = true;

    // This bench exists to emit BENCH_parallel.json; force --json on.
    std::vector<char *> args(argv, argv + argc);
    char force_json[] = "--json";
    args.push_back(force_json);
    bench::Reporter reporter("parallel", static_cast<int>(args.size()),
                             args.data());
    reporter.set_seed(7);

    // Part 1: specialized kernels vs generic dense matmul, one thread.
    Table kernels(
        "Specialized vs generic gate kernels (single-threaded)");
    kernels.set_header({"circuit", "qubits", "generic (ms)",
                        "specialized (ms)", "speedup", "max |diff|"});
    struct KernelCase
    {
        const char *name;
        const char *perf; // stable slug for the perf observatory
        circ::Circuit circuit;
        int qubits;
    };
    const std::vector<int> case_qubits =
        small ? std::vector<int>{8, 12} : std::vector<int>{8, 12, 16};
    std::vector<KernelCase> cases;
    for (const int qubits : case_qubits)
        cases.push_back({"clifford brickwork", "clifford",
                         clifford_brickwork(qubits, 6), qubits});
    for (const int qubits : case_qubits)
        cases.push_back(
            {"entangler mix", "mix", kernel_mix(qubits, 6), qubits});
    for (const KernelCase &kc : cases) {
        const int reps = small ? 10 : (kc.qubits >= 16 ? 10 : 40);
        const double generic_s =
            time_statevector(kc.circuit, kc.qubits, false, reps);
        const double fast_s =
            time_statevector(kc.circuit, kc.qubits, true, reps);
        reporter.record_perf("kernels.specialized." +
                                 std::string(kc.perf) + ".q" +
                                 std::to_string(kc.qubits),
                             fast_s);
        const double diff = kernel_max_diff(kc.circuit, kc.qubits);
        kernels.add_row({kc.name, std::to_string(kc.qubits),
                         Table::fmt(1e3 * generic_s, 3),
                         Table::fmt(1e3 * fast_s, 3),
                         Table::fmt(generic_s / fast_s, 2),
                         Table::fmt(diff, 12)});
    }
    reporter.add(kernels);

    // Part 1b: runtime SIMD dispatch and the f32 proxy precision, on
    // the same circuits. The scalar-vs-SIMD columns share one binary —
    // the tier is forced at runtime — and the bit-identical column is
    // the dispatch contract (ELV_FORCE_KERNEL=baseline reproduces the
    // dispatched results exactly).
    bool tiers_ok = true;
    Table simd("SIMD dispatch: scalar vs " +
               std::string(sim::kernel_tier_name(sim::active_tier())) +
               ", f64 vs f32 (single-threaded)");
    simd.set_header({"circuit", "qubits", "scalar f64 (ms)",
                     "simd f64 (ms)", "simd speedup", "simd f32 (ms)",
                     "f32 gain", "bit-identical"});
    for (const KernelCase &kc : cases) {
        const int reps = small ? 10 : (kc.qubits >= 16 ? 10 : 40);
        sim::set_forced_tier(sim::KernelTier::Baseline);
        const double scalar_s =
            time_statevector_t<double>(kc.circuit, kc.qubits, reps);
        sim::clear_forced_tier();
        const double simd_s =
            time_statevector_t<double>(kc.circuit, kc.qubits, reps);
        const double f32_s =
            time_statevector_t<float>(kc.circuit, kc.qubits, reps);
        reporter.record_perf("simd.f64." + std::string(kc.perf) +
                                 ".q" + std::to_string(kc.qubits),
                             simd_s);
        const bool identical = tiers_bit_identical(kc.circuit, kc.qubits);
        tiers_ok = tiers_ok && identical;
        simd.add_row({kc.name, std::to_string(kc.qubits),
                      Table::fmt(1e3 * scalar_s, 3),
                      Table::fmt(1e3 * simd_s, 3),
                      Table::fmt(scalar_s / std::max(1e-12, simd_s), 2),
                      Table::fmt(1e3 * f32_s, 3),
                      Table::fmt(simd_s / std::max(1e-12, f32_s), 2),
                      identical ? "yes" : "NO"});
    }
    reporter.add(simd);

    // Part 2: serial vs parallel search, with the bit-identity check
    // the determinism contract promises.
    const int threads = reporter.threads()
                            ? reporter.threads()
                            : par::ThreadPool::hardware_threads();
    const qml::Benchmark bench = qml::make_benchmark("moons", 11, 0.15);
    const dev::Device device = dev::make_device("ibmq_mumbai");

    // The ~1 s search timings are the perf gate's anchor entries, and
    // one wall-clock sample on a shared runner is too noisy to hold a
    // 15% threshold. The smoke preset times each leg three times
    // (record_perf keeps the minimum; the table shows the best wall
    // pair), and the gate samples are process-CPU-second deltas: the
    // search does a deterministic amount of work, so its CPU time is
    // stable even when the whole process gets descheduled.
    const int samples = small ? 3 : 1;
    core::SearchResult serial, parallel;
    double serial_s = 0.0, parallel_s = 0.0;
    for (int s = 0; s < samples; ++s) {
        auto serial_start = std::chrono::steady_clock::now();
        double cpu_start = bench::process_cpu_seconds();
        serial = core::elivagar_search(device, bench.train,
                                       search_config(bench, 1, small));
        const double serial_cpu = bench::process_cpu_seconds() - cpu_start;
        const double serial_t = seconds_since(serial_start);

        auto parallel_start = std::chrono::steady_clock::now();
        cpu_start = bench::process_cpu_seconds();
        parallel =
            core::elivagar_search(device, bench.train,
                                  search_config(bench, threads, small));
        const double parallel_cpu = bench::process_cpu_seconds() - cpu_start;
        const double parallel_t = seconds_since(parallel_start);
        reporter.record_perf("search.serial", serial_cpu);
        reporter.record_perf("search.parallel", parallel_cpu);
        if (s == 0 || serial_t < serial_s)
            serial_s = serial_t;
        if (s == 0 || parallel_t < parallel_s)
            parallel_s = parallel_t;
    }

    Table search("Elivagar search: serial vs parallel (8 qubits, " +
                 std::string(small ? "16" : "64") + " candidates)");
    search.set_header({"threads", "serial (s)", "parallel (s)",
                       "speedup", "bit-identical"});
    search.add_row({std::to_string(threads), Table::fmt(serial_s, 3),
                    Table::fmt(parallel_s, 3),
                    Table::fmt(serial_s / parallel_s, 2),
                    identical_rankings(serial, parallel) ? "yes" : "NO"});
    reporter.add(search);
    const bool ok = identical_rankings(serial, parallel) && tiers_ok;
    const int gate_rc = reporter.perf_gate_exit_code();
    return ok ? gate_rc : 1;
}

} // namespace

BENCHMARK(BM_StateVectorClifford)->DenseRange(4, 16, 4)->Arg(18);
BENCHMARK(BM_DensityMatrixClifford)->DenseRange(4, 8, 2)->Arg(9);
BENCHMARK(BM_StabilizerClifford)->RangeMultiplier(2)->Range(4, 64);
BENCHMARK(BM_CnrDensityBackend)->DenseRange(3, 7, 2);
BENCHMARK(BM_CnrStabilizerBackend)->DenseRange(3, 7, 2);
BENCHMARK(BM_AdjointVsParameterShiftGap)->Arg(16)->Arg(40)->Arg(72);

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--gbench") {
            std::vector<char *> args;
            for (int j = 0; j < argc; ++j)
                if (j != i)
                    args.push_back(argv[j]);
            int bench_argc = static_cast<int>(args.size());
            benchmark::Initialize(&bench_argc, args.data());
            benchmark::RunSpecifiedBenchmarks();
            return 0;
        }
    }
    return run_comparisons(argc, argv);
}
