/**
 * @file
 * Design-choice ablation (DESIGN.md): why RepCap, and why random
 * Clifford replicas?
 *
 * Part 1 — performance predictors. The paper's related work (Sec. 10.1)
 * notes that established metrics like expressibility are "unsuitable for
 * QCS due to their high cost"; this bench measures both the predictive
 * power (correlation with trained test accuracy) and the execution cost
 * of RepCap vs expressibility on the same candidate pool.
 *
 * Part 2 — replica construction. Sec. 5.1 argues for *random* Clifford
 * replicas over the nearest-Clifford snapping used by compilation-time
 * prior work, because parameters are unknown before training. This part
 * compares the fidelity-prediction quality of both replica modes.
 */
#include <cstdio>

#include "circuit/clifford_replica.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "common/table.hpp"
#include "core/candidate_gen.hpp"
#include "core/cnr.hpp"
#include "core/expressibility.hpp"
#include "core/repcap.hpp"
#include "noise/noise_model.hpp"
#include "qml/synthetic.hpp"
#include "qml/trainer.hpp"

#include "harness.hpp"

namespace {

using namespace elv;

double
trained_accuracy(const circ::Circuit &c, const qml::Benchmark &bench,
                 std::uint64_t seed)
{
    double best = 0.0;
    for (std::uint64_t restart = 0; restart < 2; ++restart) {
        qml::TrainConfig tc;
        tc.epochs = 30;
        tc.seed = seed + restart;
        const auto trained = qml::train_circuit(c, bench.train, tc);
        best = std::max(
            best,
            qml::evaluate(c, trained.params, bench.test).accuracy);
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace elv;

    elv::bench::Reporter reporter("predictor_ablation", argc, argv);

    // ---- Part 1: RepCap vs expressibility as performance predictors.
    const qml::Benchmark bench = qml::make_benchmark("moons", 3, 0.3);
    const dev::Device device = dev::make_device("ibmq_jakarta");
    elv::Rng rng(12);

    core::CandidateConfig config;
    config.num_qubits = bench.spec.qubits;
    config.num_meas = 1;
    config.num_features = bench.spec.dim;

    std::vector<double> repcaps, expr_neg, accs;
    std::uint64_t repcap_cost = 0, expr_cost = 0;
    const int circuits = 14;
    for (int n = 0; n < circuits; ++n) {
        config.num_params = 8 + 2 * n;
        config.num_embeds = 4;
        const circ::Circuit c =
            core::generate_candidate(device, config, rng);

        core::RepCapOptions rc_options;
        rc_options.samples_per_class = 12;
        rc_options.param_inits = 12;
        elv::Rng rc_rng(100 + static_cast<std::uint64_t>(n));
        const auto rc = core::representational_capacity(
            c, bench.train, rc_rng, rc_options);
        repcaps.push_back(rc.repcap);
        repcap_cost += rc.circuit_executions;

        core::ExpressibilityOptions ex_options;
        ex_options.num_pairs = 96;
        elv::Rng ex_rng(200 + static_cast<std::uint64_t>(n));
        const auto ex = core::expressibility(c, ex_rng, ex_options);
        // Lower KL = more expressive; negate so "bigger is better"
        // aligns across predictors.
        expr_neg.push_back(-ex.kl_divergence);
        expr_cost += ex.circuit_executions;

        accs.push_back(trained_accuracy(
            c, bench, 300 + 10 * static_cast<std::uint64_t>(n)));
    }

    Table predictor_table(
        "Predictor ablation - RepCap vs expressibility (moons)");
    predictor_table.set_header({"predictor", "Spearman R vs accuracy",
                                "executions (pool)", "task-aware?"});
    predictor_table.add_row(
        {"RepCap", Table::fmt(spearman_r(repcaps, accs), 3),
         std::to_string(repcap_cost), "yes"});
    predictor_table.add_row(
        {"-Expressibility (Sim et al.)",
         Table::fmt(spearman_r(expr_neg, accs), 3),
         std::to_string(expr_cost), "no"});
    reporter.add(predictor_table);

    // ---- Part 2: random vs nearest-Clifford replicas for CNR.
    const noise::NoisyDensitySimulator noisy(device);
    std::vector<double> cnr_random, cnr_nearest, fidelities;
    elv::Rng rng2(31);
    config.num_meas = bench.spec.qubits;
    for (int n = 0; n < 20; ++n) {
        config.num_params = 6 + 3 * (n % 8);
        const circ::Circuit c =
            core::generate_candidate(device, config, rng2);

        // Random replicas: the shipped CNR.
        core::CnrOptions options;
        options.num_replicas = 16;
        cnr_random.push_back(
            core::clifford_noise_resilience(c, device, rng2, options)
                .cnr);

        // Nearest-Clifford replica of ONE particular binding — the
        // compilation-time strategy; cheap but binding-specific.
        std::vector<double> params(
            static_cast<std::size_t>(c.num_params()));
        for (auto &p : params)
            p = rng2.uniform(-M_PI, M_PI);
        std::vector<double> x(4);
        for (auto &v : x)
            v = rng2.uniform(-M_PI / 2, M_PI / 2);
        const circ::Circuit nearest = circ::make_clifford_replica(
            c, rng2, circ::ReplicaMode::Nearest, params, x);
        cnr_nearest.push_back(noisy.fidelity(nearest));

        // Ground truth: binding-averaged fidelity over fresh bindings.
        double fid = 0.0;
        const int bindings = 6;
        for (int b = 0; b < bindings; ++b) {
            for (auto &p : params)
                p = rng2.uniform(-M_PI, M_PI);
            for (auto &v : x)
                v = rng2.uniform(-M_PI / 2, M_PI / 2);
            fid += noisy.fidelity(c, params, x) / bindings;
        }
        fidelities.push_back(fid);
    }

    Table replica_table(
        "Replica-mode ablation - predicting binding-averaged fidelity");
    replica_table.set_header({"replica mode", "Pearson R vs fidelity"});
    replica_table.add_row(
        {"random x16 (Elivagar, Sec. 5.1)",
         Table::fmt(pearson_r(cnr_random, fidelities), 3)});
    replica_table.add_row(
        {"nearest-Clifford x1 (compile-time prior work)",
         Table::fmt(pearson_r(cnr_nearest, fidelities), 3)});
    reporter.add(replica_table);

    std::printf("\nShape check: RepCap predicts trained accuracy better "
                "than the task-agnostic\nexpressibility metric, and "
                "averaging random replicas predicts fidelity over\nthe "
                "course of training better than one nearest-Clifford "
                "snapshot.\n");
    return 0;
}
