/**
 * @file
 * Figure 8: main accuracy comparison of the five methods across the 9
 * QML benchmarks, on noisy simulators of the Table 3 devices (8a) and
 * on the "real hardware" device set (8b; simulated here, see DESIGN.md
 * substitutions).
 *
 * Each bar of the figure is one (benchmark, device) cell; as in the
 * paper, every cell runs Random, Human-designed, QuantumSupernet,
 * QuantumNAS and Elivagar with the same parameter budget and the shared
 * Sec. 7.3 training methodology. Shape to reproduce: Elivagar is
 * competitive with or better than QuantumNAS on nearly every cell and
 * clearly ahead of Random / Human-designed / QuantumSupernet; the paper
 * reports +5.3% over QuantumNAS and +22.6% over Human-designed on
 * average.
 */
#include <cstdio>

#include "common/statistics.hpp"
#include "common/table.hpp"
#include "harness.hpp"

int
main(int argc, char **argv)
{
    using namespace elv;
    using namespace elv::bench;

    elv::bench::Reporter reporter("fig8_main_accuracy", argc, argv);

    struct Cell
    {
        const char *benchmark;
        const char *device;
    };
    // One device per bar, following the Fig. 8a device/benchmark lanes.
    const Cell fig8a[] = {
        {"fmnist-4", "rigetti_aspen_m3"}, {"mnist-2", "oqc_lucy"},
        {"moons", "ibm_lagos"},           {"vowel-2", "ibm_lagos"},
        {"mnist-4", "ibm_perth"},         {"bank", "ibm_nairobi"},
        {"vowel-4", "ibm_nairobi"},       {"fmnist-2", "ibmq_jakarta"},
        {"mnist-10", "ibm_guadalupe"},
    };
    // Fig. 8b lanes (hardware devices; simulated substitutes).
    const Cell fig8b[] = {
        {"fmnist-2", "rigetti_aspen_m3"}, {"vowel-2", "oqc_lucy"},
        {"mnist-2", "ibmq_jakarta"},      {"fmnist-4", "ibmq_jakarta"},
        {"vowel-4", "ibm_osaka"},         {"mnist-10", "ibm_kyoto"},
    };

    RunOptions options;
    options.threads = reporter.threads();
    reporter.set_seed(options.seed);
    options.max_train_samples = 120;
    options.epochs = 25;
    options.candidates = 24;

    auto run_panel = [&options, &reporter](const char *title, const Cell *cells,
                                std::size_t count) {
        Table table(title);
        table.set_header({"benchmark", "device", "Random", "Human",
                          "Supernet", "QNAS", "Elivagar"});

        std::vector<double> elv_acc, qnas_acc, human_acc;
        for (std::size_t i = 0; i < count; ++i) {
            const qml::Benchmark bench =
                load_benchmark(cells[i].benchmark, options);
            const dev::Device device =
                dev::make_device(cells[i].device);

            const MethodRun random = run_random(bench, device, options);
            const MethodRun human = run_human(bench, device, options);
            const MethodRun supernet =
                run_supernet(bench, device, options);
            const MethodRun qnas =
                run_quantumnas(bench, device, options);
            const MethodRun elivagar =
                run_elivagar(bench, device, options);

            elv_acc.push_back(elivagar.noisy_accuracy);
            qnas_acc.push_back(qnas.noisy_accuracy);
            human_acc.push_back(human.noisy_accuracy);
            table.add_row({cells[i].benchmark, cells[i].device,
                           Table::pct(random.noisy_accuracy),
                           Table::pct(human.noisy_accuracy),
                           Table::pct(supernet.noisy_accuracy),
                           Table::pct(qnas.noisy_accuracy),
                           Table::pct(elivagar.noisy_accuracy)});
            std::fprintf(stderr, "  [fig8] %s / %s done\n",
                         cells[i].benchmark, cells[i].device);
        }
        reporter.add(table);
        std::printf("mean Elivagar - QuantumNAS: %+.1f%% (paper: +5.3%% "
                    "avg over both panels)\n",
                    100.0 * (mean(elv_acc) - mean(qnas_acc)));
        std::printf("mean Elivagar - Human:      %+.1f%% (paper: +22.6%%)"
                    "\n\n",
                    100.0 * (mean(elv_acc) - mean(human_acc)));
    };

    run_panel("Fig. 8a - accuracy on noisy simulators (percent)", fig8a,
              sizeof(fig8a) / sizeof(fig8a[0]));
    run_panel("Fig. 8b - accuracy on (simulated) hardware devices "
              "(percent)",
              fig8b, sizeof(fig8b) / sizeof(fig8b[0]));
    return 0;
}
