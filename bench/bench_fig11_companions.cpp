/**
 * @file
 * Figure 11: composing QCS with companion frameworks (Sec. 9.5).
 *
 * 11a: Elivagar and QuantumNAS with and without QuantumNAT
 *      (post-measurement normalization calibrated against the noisy
 *      backend); noisy accuracy. Paper: Elivagar + QuantumNAT beats
 *      QuantumNAS + QuantumNAT by 2.2%, and QuantumNAT adds 5.5% to
 *      Elivagar.
 *
 * 11b: the same two methods with and without a QTN-VQC trainable
 *      classical frontend, trained jointly; noisy accuracy. Paper:
 *      Elivagar + QTN-VQC beats QuantumNAS + QTN-VQC by 2.4%.
 */
#include <cstdio>

#include "common/statistics.hpp"
#include "common/table.hpp"
#include "extensions/qtnvqc.hpp"
#include "extensions/quantumnat.hpp"
#include "harness.hpp"
#include "noise/noise_model.hpp"

namespace {

using namespace elv;

qml::DistributionFn
make_noisy_fn(const noise::NoisyDensitySimulator &sim)
{
    return [&sim](const circ::Circuit &c, const std::vector<double> &p,
                  const std::vector<double> &x) {
        return sim.run_distribution(c, p, x);
    };
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace elv;
    using namespace elv::bench;

    elv::bench::Reporter reporter("fig11_companions", argc, argv);

    struct Cell
    {
        const char *benchmark;
        const char *device;
    };
    const Cell cells[] = {
        {"bank", "ibm_perth"},
        {"moons", "ibm_nairobi"},
        {"vowel-2", "ibmq_jakarta"},
    };

    RunOptions options;
    options.threads = reporter.threads();
    reporter.set_seed(options.seed);
    options.max_train_samples = 120;
    options.epochs = 25;

    Table nat_table("Fig. 11a - composing with QuantumNAT (noisy "
                    "accuracy, percent)");
    nat_table.set_header({"benchmark", "QNAS", "QNAS+NAT", "Elivagar",
                          "Elivagar+NAT"});
    Table qtn_table("Fig. 11b - composing with QTN-VQC (noisy accuracy, "
                    "percent)");
    qtn_table.set_header({"benchmark", "QNAS", "QNAS+QTN", "Elivagar",
                          "Elivagar+QTN"});

    std::vector<double> elv_nat, qnas_nat, elv_plain, qnas_plain;
    for (const Cell &cell : cells) {
        const dev::Device device = dev::make_device(cell.device);
        // Strong noise so post-measurement bias is worth correcting (the
        // paper's QuantumNAT runs are on real hardware, whose effective
        // noise exceeds our calibrated stochastic-Pauli simulators').
        const noise::NoisyDensitySimulator noisy(device, 4.0);
        const qml::DistributionFn noisy_fn = make_noisy_fn(noisy);

        double qnas_noisy = 0.0, elv_noisy = 0.0;
        double qnas_with_nat = 0.0, elv_with_nat = 0.0;
        double qnas_with_qtn = 0.0, elv_with_qtn = 0.0;
        const int repeats = 2;
        for (int rep = 0; rep < repeats; ++rep) {
            options.seed = 1 + static_cast<std::uint64_t>(rep);
            const qml::Benchmark bench =
                load_benchmark(cell.benchmark, options);

            const MethodRun qnas =
                run_quantumnas(bench, device, options);
            const MethodRun elivagar =
                run_elivagar(bench, device, options);

            auto noisy_acc = [&](const MethodRun &run) {
                return qml::evaluate(run.circuit, run.params, bench.test,
                                     noisy_fn)
                    .accuracy;
            };
            auto nat_acc = [&](const MethodRun &run) {
                ext::QuantumNat nat;
                nat.calibrate(run.circuit, run.params, bench.train,
                              noisy_fn, qml::statevector_distribution());
                return nat
                    .evaluate(run.circuit, run.params, bench.test,
                              noisy_fn)
                    .accuracy;
            };
            auto qtn_acc = [&](const MethodRun &run,
                               std::uint64_t seed) {
                const int features =
                    std::max(1, run.circuit.num_data_features());
                ext::QtnVqcConfig qc;
                qc.epochs = options.epochs;
                qc.seed = seed;
                ext::QtnVqc frontend(bench.spec.dim, features, qc);
                const auto params =
                    frontend.train_joint(run.circuit, bench.train);
                return frontend
                    .evaluate(run.circuit, params, bench.test, noisy_fn)
                    .accuracy;
            };

            qnas_noisy += noisy_acc(qnas) / repeats;
            elv_noisy += noisy_acc(elivagar) / repeats;
            qnas_with_nat += nat_acc(qnas) / repeats;
            elv_with_nat += nat_acc(elivagar) / repeats;
            qnas_with_qtn += qtn_acc(qnas, 31 + static_cast<std::uint64_t>(rep)) / repeats;
            elv_with_qtn += qtn_acc(elivagar, 63 + static_cast<std::uint64_t>(rep)) / repeats;
        }

        nat_table.add_row({cell.benchmark, Table::pct(qnas_noisy),
                           Table::pct(qnas_with_nat),
                           Table::pct(elv_noisy),
                           Table::pct(elv_with_nat)});
        qtn_table.add_row({cell.benchmark, Table::pct(qnas_noisy),
                           Table::pct(qnas_with_qtn),
                           Table::pct(elv_noisy),
                           Table::pct(elv_with_qtn)});

        qnas_plain.push_back(qnas_noisy);
        elv_plain.push_back(elv_noisy);
        qnas_nat.push_back(qnas_with_nat);
        elv_nat.push_back(elv_with_nat);
        std::fprintf(stderr, "  [fig11] %s done\n", cell.benchmark);
    }

    reporter.add(nat_table);
    std::printf("mean Elivagar+NAT - QNAS+NAT: %+.1f%% (paper +2.2%%)\n\n",
                100.0 * (mean(elv_nat) - mean(qnas_nat)));
    reporter.add(qtn_table);
    std::printf("\nShape check: both companions compose with both QCS "
                "methods, and Elivagar\nkeeps its lead when composed "
                "(paper Sec. 9.5).\n");
    return 0;
}
