/**
 * @file
 * Search-service characterization: what the daemon's admission control
 * and graceful-degradation ladder do to a burst of submissions, and
 * what per-job deadlines cost.
 *
 * Table 1 floods servers of increasing queue capacity with a fixed
 * burst and reports the accepted/rejected/shed split plus end-to-end
 * drain time — overload shows up as explicit rejections, never as
 * queue growth or hangs. Table 2 runs one fixed job under tightening
 * deadlines and reports the terminal state and observed wall time,
 * showing the cooperative-cancellation bound.
 */
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "common/table.hpp"
#include "server/server.hpp"

#include "harness.hpp"

namespace {

using namespace elv;

double
seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

std::string
bench_dir(const std::string &name)
{
    const std::string path =
        std::filesystem::temp_directory_path().string() +
        "/elv_bench_server_" + name;
    std::filesystem::remove_all(path);
    return path;
}

srv::JobSpec
burst_spec(std::uint64_t seed)
{
    srv::JobSpec spec;
    spec.benchmark = "moons";
    spec.candidates = 6;
    spec.scale = 0.05;
    spec.seed = seed;
    return spec;
}

/** Wait until every known job is terminal (bounded). */
void
drain_all(srv::Server &server)
{
    const auto start = std::chrono::steady_clock::now();
    while (seconds_since(start) < 300.0) {
        bool pending = false;
        for (const auto &snap : server.jobs())
            pending |= !srv::job_state_terminal(snap.state);
        if (!pending)
            return;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    elv::bench::Reporter reporter("server", argc, argv);
    reporter.set_seed(7);

    const int burst = 24;

    Table admission("Burst of 24 submissions vs queue capacity "
                    "(1 worker, moons / 6 candidates)");
    admission.set_header({"capacity", "accepted", "rejected", "shed",
                          "completed", "drain (s)"});
    for (const std::size_t capacity : {2u, 4u, 8u, 16u}) {
        srv::ServerConfig config;
        config.data_dir =
            bench_dir("cap" + std::to_string(capacity));
        config.queue_capacity = capacity;
        config.workers = 1;
        config.thread_budget = reporter.threads();
        srv::Server server(config);

        const auto start = std::chrono::steady_clock::now();
        int accepted = 0, rejected = 0;
        for (int i = 0; i < burst; ++i) {
            srv::JobSpec spec =
                burst_spec(static_cast<std::uint64_t>(100 + i));
            // A sprinkling of priorities exercises the shed path.
            spec.priority = i % 3;
            if (server.submit(spec).accepted)
                ++accepted;
            else
                ++rejected;
        }
        drain_all(server);
        const double drain_s = seconds_since(start);

        int shed = 0, completed = 0;
        for (const auto &snap : server.jobs()) {
            shed += snap.state == srv::JobState::Rejected;
            completed += snap.state == srv::JobState::Completed;
        }
        admission.add_row({std::to_string(capacity),
                           std::to_string(accepted),
                           std::to_string(rejected),
                           std::to_string(shed),
                           std::to_string(completed),
                           Table::fmt(drain_s, 2)});
        std::filesystem::remove_all(config.data_dir);
    }
    reporter.add(admission);

    Table deadlines("\nOne 64-candidate job under tightening "
                    "deadlines");
    deadlines.set_header(
        {"deadline (s)", "state", "observed wall (s)"});
    for (const double deadline : {0.0, 5.0, 0.25, 0.05}) {
        srv::ServerConfig config;
        config.data_dir = bench_dir("deadline");
        config.workers = 1;
        config.thread_budget = reporter.threads();
        srv::Server server(config);

        srv::JobSpec spec = burst_spec(7);
        spec.candidates = 64;
        spec.scale = 0.1;
        spec.deadline_sec = deadline;
        const auto start = std::chrono::steady_clock::now();
        const auto outcome = server.submit(spec);
        drain_all(server);
        const double wall = seconds_since(start);
        const auto snap = server.status(outcome.id);
        deadlines.add_row(
            {deadline == 0.0 ? "none" : Table::fmt(deadline, 2),
             snap ? srv::job_state_name(snap->state) : "?",
             Table::fmt(wall, 2)});
        std::filesystem::remove_all(config.data_dir);
    }
    reporter.add(deadlines);

    std::printf(
        "\nShape check: smaller queues convert overload into explicit "
        "rejections (and\npriority sheds) while the drain time tracks "
        "the accepted count — memory and\nlatency stay bounded. "
        "Deadlines cut the observed wall time to roughly the\nbudget, "
        "with the job reported cancelled, not failed.\n");
    return 0;
}
