#!/usr/bin/env bash
# Crash-recovery smoke test for the search daemon.
#
# Runs the same job twice: once on an undisturbed server, and once on a
# server that is killed with SIGKILL mid-job and restarted. The daemon
# must re-queue the interrupted job from its manifest, resume it from
# its checkpoint journal, and produce a result whose best_score_hex and
# circuit are byte-identical to the uninterrupted run's.
#
# The clean reference run also serves as the telemetry smoke: it is
# started with --metrics-port, its GET /metrics scrape must return a
# non-empty Prometheus exposition, and the scraped server.queue.depth
# gauge must agree with the JSON {"op":"metrics"} verb.
#
# Usage: ci/server_smoke.sh [BUILD_DIR] (default: build)
set -euo pipefail

BUILD=${1:-build}
CLI="$BUILD/examples/elivagar_cli"
SRV="$BUILD/examples/elivagar_server"
PORT=${SMOKE_PORT:-7461}
MPORT=${SMOKE_METRICS_PORT:-$((PORT + 1))}
WORK=$(mktemp -d)
SRV_PID=""

cleanup() {
    [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

SPEC=(--benchmark moons --candidates 48 --scale 0.1 --seed 55)

wait_up() {
    for _ in $(seq 1 100); do
        if "$CLI" health --port "$PORT" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "FAIL: server never came up" >&2
    return 1
}

json_field() { # file field -> value
    python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
print(doc["result"][sys.argv[2]])' "$1" "$2"
}

echo "== clean reference run (with telemetry port) =="
"$SRV" --port "$PORT" --data-dir "$WORK/clean" --drain-sec 10 \
    --metrics-port "$MPORT" \
    > "$WORK/clean.log" 2>&1 &
SRV_PID=$!
wait_up
"$CLI" submit --port "$PORT" "${SPEC[@]}" --watch > /dev/null
"$CLI" result --port "$PORT" --id job-1 > "$WORK/clean_result.json"

echo "== telemetry: /metrics scrape agrees with the metrics verb =="
curl -fsS "http://127.0.0.1:$MPORT/metrics" > "$WORK/scrape.txt"
if ! [ -s "$WORK/scrape.txt" ]; then
    echo "FAIL: GET /metrics returned an empty exposition" >&2
    exit 1
fi
if ! grep -q '^elv_server_queue_depth ' "$WORK/scrape.txt"; then
    echo "FAIL: exposition lacks elv_server_queue_depth" >&2
    exit 1
fi
scrape_depth=$(awk '$1 == "elv_server_queue_depth" {print $2}' \
    "$WORK/scrape.txt")
verb_depth=$("$CLI" metrics --port "$PORT" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
print(int(doc["metrics"]["metrics"]["gauges"]["server.queue.depth"]["value"]))')
echo "queue depth: scrape=$scrape_depth verb=$verb_depth"
if [ "$scrape_depth" != "$verb_depth" ]; then
    echo "FAIL: /metrics and the metrics verb disagree on queue depth" >&2
    exit 1
fi
kill -TERM "$SRV_PID"
wait "$SRV_PID"
SRV_PID=""

echo "== interrupted run: SIGKILL mid-job =="
"$SRV" --port "$PORT" --data-dir "$WORK/crash" --drain-sec 10 \
    > "$WORK/crash1.log" 2>&1 &
SRV_PID=$!
wait_up
"$CLI" submit --port "$PORT" "${SPEC[@]}" > /dev/null
# Wait until the job has journaled CNR progress, then pull the plug.
for _ in $(seq 1 400); do
    if "$CLI" status --port "$PORT" --id job-1 \
            | grep -Eq '"phase": "cnr", "done": [1-9]'; then
        break
    fi
    sleep 0.02
done
"$CLI" status --port "$PORT" --id job-1
kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""

echo "== restart: the job must resume and complete =="
"$SRV" --port "$PORT" --data-dir "$WORK/crash" --drain-sec 10 \
    > "$WORK/crash2.log" 2>&1 &
SRV_PID=$!
wait_up
"$CLI" watch --port "$PORT" --id job-1 > "$WORK/crash_watch.txt"
"$CLI" result --port "$PORT" --id job-1 > "$WORK/crash_result.json"
kill -TERM "$SRV_PID"
wait "$SRV_PID"
SRV_PID=""

echo "== compare =="
clean_hex=$(json_field "$WORK/clean_result.json" best_score_hex)
crash_hex=$(json_field "$WORK/crash_result.json" best_score_hex)
clean_circuit=$(json_field "$WORK/clean_result.json" circuit)
crash_circuit=$(json_field "$WORK/crash_result.json" circuit)
resumed=$(json_field "$WORK/crash_result.json" resumed)

echo "clean best_score_hex:   $clean_hex"
echo "resumed best_score_hex: $crash_hex (resumed=$resumed)"

if [ "$clean_hex" != "$crash_hex" ]; then
    echo "FAIL: best_score_hex differs after crash recovery" >&2
    exit 1
fi
if [ "$clean_circuit" != "$crash_circuit" ]; then
    echo "FAIL: selected circuit differs after crash recovery" >&2
    exit 1
fi
if [ "$resumed" != "True" ] && [ "$resumed" != "true" ]; then
    echo "FAIL: recovered run did not resume from the journal" >&2
    exit 1
fi
echo "PASS: crash recovery is bit-identical and resumed"
