#!/usr/bin/env bash
# Distributed-search smoke test: the merged multi-process ranking must
# be byte-identical to the single-process one.
#
# Three legs, all compared with cmp(1) against the serial reference
# ranking dump (hexfloat, so "identical" means bit-identical doubles):
#
#  1. 4 forked workers — the plain fan-out path.
#  2. 2 workers with --dist-test-crash 2: the first worker SIGKILLs
#     itself after streaming two records, mid CNR shard; the
#     coordinator must reissue the shard remainder to a fresh worker
#     and still merge the same bytes.
#  3. A state-dir run interrupted by leg 2's crash machinery, re-run
#     at a different worker count: must resume from the shard journals
#     (no re-evaluation) to the same bytes.
#
# Usage: ci/dist_smoke.sh [BUILD_DIR] (default: build)
set -euo pipefail

BUILD=${1:-build}
CLI="$BUILD/examples/elivagar_cli"
WORKER="$BUILD/examples/elivagar_worker"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

SPEC=(--benchmark moons --candidates 24 --seed 11 --scale 0.1
      --threads 1 --search-only)

echo "== serial reference =="
"$CLI" "${SPEC[@]}" --dump-ranking "$WORK/serial.txt"

echo "== 4 forked workers =="
"$CLI" "${SPEC[@]}" --workers 4 --worker-bin "$WORKER" \
    --dump-ranking "$WORK/w4.txt"
cmp "$WORK/serial.txt" "$WORK/w4.txt" || {
    echo "FAIL: 4-worker ranking differs from serial" >&2
    exit 1
}

echo "== worker SIGKILLed mid-shard, shard reissued =="
"$CLI" "${SPEC[@]}" --workers 2 --worker-bin "$WORKER" \
    --dist-test-crash 2 --dump-ranking "$WORK/crash.txt" \
    | tee "$WORK/crash.log"
cmp "$WORK/serial.txt" "$WORK/crash.txt" || {
    echo "FAIL: ranking differs after a mid-shard worker crash" >&2
    exit 1
}
grep -q "1 reissue" "$WORK/crash.log" || {
    echo "FAIL: the crashed shard was not reported as reissued" >&2
    exit 1
}

echo "== state-dir resume at a different worker count =="
"$CLI" "${SPEC[@]}" --workers 2 --worker-bin "$WORKER" \
    --dist-state "$WORK/state" --dump-ranking /dev/null
"$CLI" "${SPEC[@]}" --workers 3 --worker-bin "$WORKER" \
    --dist-state "$WORK/state" --dump-ranking "$WORK/resume.txt" \
    | tee "$WORK/resume.log"
cmp "$WORK/serial.txt" "$WORK/resume.txt" || {
    echo "FAIL: ranking differs after a state-dir resume" >&2
    exit 1
}
grep -q "resumed from checkpoint" "$WORK/resume.log" || {
    echo "FAIL: the second run did not resume from the shard journals" >&2
    exit 1
}

echo "PASS: distributed rankings are byte-identical to serial"
