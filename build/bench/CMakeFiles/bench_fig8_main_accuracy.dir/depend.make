# Empty dependencies file for bench_fig8_main_accuracy.
# This may be replaced when dependencies are built.
