# Empty dependencies file for bench_table5_device_aware.
# This may be replaced when dependencies are built.
