
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table6_circuit_stats.cpp" "bench/CMakeFiles/bench_table6_circuit_stats.dir/bench_table6_circuit_stats.cpp.o" "gcc" "bench/CMakeFiles/bench_table6_circuit_stats.dir/bench_table6_circuit_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/elv_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/elv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/elv_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/extensions/CMakeFiles/elv_extensions.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/elv_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/elv_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/qml/CMakeFiles/elv_qml.dir/DependInfo.cmake"
  "/root/repo/build/src/stabilizer/CMakeFiles/elv_stabilizer.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/elv_device.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/elv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/elv_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/elv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
