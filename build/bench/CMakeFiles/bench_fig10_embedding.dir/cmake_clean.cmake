file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_embedding.dir/bench_fig10_embedding.cpp.o"
  "CMakeFiles/bench_fig10_embedding.dir/bench_fig10_embedding.cpp.o.d"
  "bench_fig10_embedding"
  "bench_fig10_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
