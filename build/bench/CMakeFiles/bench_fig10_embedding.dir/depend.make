# Empty dependencies file for bench_fig10_embedding.
# This may be replaced when dependencies are built.
