# Empty compiler generated dependencies file for bench_cnr_rejection.
# This may be replaced when dependencies are built.
