file(REMOVE_RECURSE
  "CMakeFiles/bench_cnr_rejection.dir/bench_cnr_rejection.cpp.o"
  "CMakeFiles/bench_cnr_rejection.dir/bench_cnr_rejection.cpp.o.d"
  "bench_cnr_rejection"
  "bench_cnr_rejection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cnr_rejection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
