file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_cnr_fidelity.dir/bench_fig5_cnr_fidelity.cpp.o"
  "CMakeFiles/bench_fig5_cnr_fidelity.dir/bench_fig5_cnr_fidelity.cpp.o.d"
  "bench_fig5_cnr_fidelity"
  "bench_fig5_cnr_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cnr_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
