# Empty dependencies file for bench_fig5_cnr_fidelity.
# This may be replaced when dependencies are built.
