file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_companions.dir/bench_fig11_companions.cpp.o"
  "CMakeFiles/bench_fig11_companions.dir/bench_fig11_companions.cpp.o.d"
  "bench_fig11_companions"
  "bench_fig11_companions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_companions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
