file(REMOVE_RECURSE
  "../lib/libelv_bench_harness.a"
  "../lib/libelv_bench_harness.pdb"
  "CMakeFiles/elv_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/elv_bench_harness.dir/harness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elv_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
