# Empty dependencies file for elv_bench_harness.
# This may be replaced when dependencies are built.
