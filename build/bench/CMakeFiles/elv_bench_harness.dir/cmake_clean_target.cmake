file(REMOVE_RECURSE
  "../lib/libelv_bench_harness.a"
)
