# Empty compiler generated dependencies file for bench_fig7_repcap_tasks.
# This may be replaced when dependencies are built.
