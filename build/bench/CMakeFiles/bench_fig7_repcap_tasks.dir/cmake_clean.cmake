file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_repcap_tasks.dir/bench_fig7_repcap_tasks.cpp.o"
  "CMakeFiles/bench_fig7_repcap_tasks.dir/bench_fig7_repcap_tasks.cpp.o.d"
  "bench_fig7_repcap_tasks"
  "bench_fig7_repcap_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_repcap_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
