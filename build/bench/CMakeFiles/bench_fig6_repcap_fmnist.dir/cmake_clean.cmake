file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_repcap_fmnist.dir/bench_fig6_repcap_fmnist.cpp.o"
  "CMakeFiles/bench_fig6_repcap_fmnist.dir/bench_fig6_repcap_fmnist.cpp.o.d"
  "bench_fig6_repcap_fmnist"
  "bench_fig6_repcap_fmnist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_repcap_fmnist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
