# Empty dependencies file for bench_fig6_repcap_fmnist.
# This may be replaced when dependencies are built.
