file(REMOVE_RECURSE
  "CMakeFiles/noise_aware_deployment.dir/noise_aware_deployment.cpp.o"
  "CMakeFiles/noise_aware_deployment.dir/noise_aware_deployment.cpp.o.d"
  "noise_aware_deployment"
  "noise_aware_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_aware_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
