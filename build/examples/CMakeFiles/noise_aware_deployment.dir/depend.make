# Empty dependencies file for noise_aware_deployment.
# This may be replaced when dependencies are built.
