file(REMOVE_RECURSE
  "CMakeFiles/large_scale_cnr.dir/large_scale_cnr.cpp.o"
  "CMakeFiles/large_scale_cnr.dir/large_scale_cnr.cpp.o.d"
  "large_scale_cnr"
  "large_scale_cnr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/large_scale_cnr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
