# Empty dependencies file for large_scale_cnr.
# This may be replaced when dependencies are built.
