# Empty compiler generated dependencies file for device_aware_search.
# This may be replaced when dependencies are built.
