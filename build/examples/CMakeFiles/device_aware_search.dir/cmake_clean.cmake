file(REMOVE_RECURSE
  "CMakeFiles/device_aware_search.dir/device_aware_search.cpp.o"
  "CMakeFiles/device_aware_search.dir/device_aware_search.cpp.o.d"
  "device_aware_search"
  "device_aware_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_aware_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
