file(REMOVE_RECURSE
  "CMakeFiles/embedding_matters.dir/embedding_matters.cpp.o"
  "CMakeFiles/embedding_matters.dir/embedding_matters.cpp.o.d"
  "embedding_matters"
  "embedding_matters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_matters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
