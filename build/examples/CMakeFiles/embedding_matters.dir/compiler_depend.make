# Empty compiler generated dependencies file for embedding_matters.
# This may be replaced when dependencies are built.
