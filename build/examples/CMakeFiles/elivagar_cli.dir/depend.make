# Empty dependencies file for elivagar_cli.
# This may be replaced when dependencies are built.
