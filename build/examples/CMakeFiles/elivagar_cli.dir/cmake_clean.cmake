file(REMOVE_RECURSE
  "CMakeFiles/elivagar_cli.dir/elivagar_cli.cpp.o"
  "CMakeFiles/elivagar_cli.dir/elivagar_cli.cpp.o.d"
  "elivagar_cli"
  "elivagar_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elivagar_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
