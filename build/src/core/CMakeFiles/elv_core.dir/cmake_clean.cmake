file(REMOVE_RECURSE
  "CMakeFiles/elv_core.dir/candidate_gen.cpp.o"
  "CMakeFiles/elv_core.dir/candidate_gen.cpp.o.d"
  "CMakeFiles/elv_core.dir/cnr.cpp.o"
  "CMakeFiles/elv_core.dir/cnr.cpp.o.d"
  "CMakeFiles/elv_core.dir/expressibility.cpp.o"
  "CMakeFiles/elv_core.dir/expressibility.cpp.o.d"
  "CMakeFiles/elv_core.dir/repcap.cpp.o"
  "CMakeFiles/elv_core.dir/repcap.cpp.o.d"
  "CMakeFiles/elv_core.dir/search.cpp.o"
  "CMakeFiles/elv_core.dir/search.cpp.o.d"
  "libelv_core.a"
  "libelv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
