# Empty compiler generated dependencies file for elv_core.
# This may be replaced when dependencies are built.
