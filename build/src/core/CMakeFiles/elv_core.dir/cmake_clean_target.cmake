file(REMOVE_RECURSE
  "libelv_core.a"
)
