file(REMOVE_RECURSE
  "libelv_baselines.a"
)
