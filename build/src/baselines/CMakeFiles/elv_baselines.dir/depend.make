# Empty dependencies file for elv_baselines.
# This may be replaced when dependencies are built.
