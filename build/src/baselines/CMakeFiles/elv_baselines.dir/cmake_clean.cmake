file(REMOVE_RECURSE
  "CMakeFiles/elv_baselines.dir/quantum_supernet.cpp.o"
  "CMakeFiles/elv_baselines.dir/quantum_supernet.cpp.o.d"
  "CMakeFiles/elv_baselines.dir/quantumnas.cpp.o"
  "CMakeFiles/elv_baselines.dir/quantumnas.cpp.o.d"
  "CMakeFiles/elv_baselines.dir/simple.cpp.o"
  "CMakeFiles/elv_baselines.dir/simple.cpp.o.d"
  "CMakeFiles/elv_baselines.dir/supercircuit.cpp.o"
  "CMakeFiles/elv_baselines.dir/supercircuit.cpp.o.d"
  "libelv_baselines.a"
  "libelv_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elv_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
