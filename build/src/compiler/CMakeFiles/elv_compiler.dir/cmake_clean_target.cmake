file(REMOVE_RECURSE
  "libelv_compiler.a"
)
