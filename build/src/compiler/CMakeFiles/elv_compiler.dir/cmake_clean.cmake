file(REMOVE_RECURSE
  "CMakeFiles/elv_compiler.dir/compile.cpp.o"
  "CMakeFiles/elv_compiler.dir/compile.cpp.o.d"
  "CMakeFiles/elv_compiler.dir/passes.cpp.o"
  "CMakeFiles/elv_compiler.dir/passes.cpp.o.d"
  "CMakeFiles/elv_compiler.dir/sabre.cpp.o"
  "CMakeFiles/elv_compiler.dir/sabre.cpp.o.d"
  "libelv_compiler.a"
  "libelv_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elv_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
