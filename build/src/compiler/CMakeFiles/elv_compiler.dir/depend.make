# Empty dependencies file for elv_compiler.
# This may be replaced when dependencies are built.
