file(REMOVE_RECURSE
  "CMakeFiles/elv_common.dir/logging.cpp.o"
  "CMakeFiles/elv_common.dir/logging.cpp.o.d"
  "CMakeFiles/elv_common.dir/rng.cpp.o"
  "CMakeFiles/elv_common.dir/rng.cpp.o.d"
  "CMakeFiles/elv_common.dir/statistics.cpp.o"
  "CMakeFiles/elv_common.dir/statistics.cpp.o.d"
  "CMakeFiles/elv_common.dir/table.cpp.o"
  "CMakeFiles/elv_common.dir/table.cpp.o.d"
  "libelv_common.a"
  "libelv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
