# Empty dependencies file for elv_common.
# This may be replaced when dependencies are built.
