file(REMOVE_RECURSE
  "libelv_common.a"
)
