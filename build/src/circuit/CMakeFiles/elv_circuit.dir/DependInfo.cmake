
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/builders.cpp" "src/circuit/CMakeFiles/elv_circuit.dir/builders.cpp.o" "gcc" "src/circuit/CMakeFiles/elv_circuit.dir/builders.cpp.o.d"
  "/root/repo/src/circuit/circuit.cpp" "src/circuit/CMakeFiles/elv_circuit.dir/circuit.cpp.o" "gcc" "src/circuit/CMakeFiles/elv_circuit.dir/circuit.cpp.o.d"
  "/root/repo/src/circuit/clifford_replica.cpp" "src/circuit/CMakeFiles/elv_circuit.dir/clifford_replica.cpp.o" "gcc" "src/circuit/CMakeFiles/elv_circuit.dir/clifford_replica.cpp.o.d"
  "/root/repo/src/circuit/gate.cpp" "src/circuit/CMakeFiles/elv_circuit.dir/gate.cpp.o" "gcc" "src/circuit/CMakeFiles/elv_circuit.dir/gate.cpp.o.d"
  "/root/repo/src/circuit/serialize.cpp" "src/circuit/CMakeFiles/elv_circuit.dir/serialize.cpp.o" "gcc" "src/circuit/CMakeFiles/elv_circuit.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/elv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
