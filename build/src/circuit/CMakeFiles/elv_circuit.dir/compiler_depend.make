# Empty compiler generated dependencies file for elv_circuit.
# This may be replaced when dependencies are built.
