file(REMOVE_RECURSE
  "CMakeFiles/elv_circuit.dir/builders.cpp.o"
  "CMakeFiles/elv_circuit.dir/builders.cpp.o.d"
  "CMakeFiles/elv_circuit.dir/circuit.cpp.o"
  "CMakeFiles/elv_circuit.dir/circuit.cpp.o.d"
  "CMakeFiles/elv_circuit.dir/clifford_replica.cpp.o"
  "CMakeFiles/elv_circuit.dir/clifford_replica.cpp.o.d"
  "CMakeFiles/elv_circuit.dir/gate.cpp.o"
  "CMakeFiles/elv_circuit.dir/gate.cpp.o.d"
  "CMakeFiles/elv_circuit.dir/serialize.cpp.o"
  "CMakeFiles/elv_circuit.dir/serialize.cpp.o.d"
  "libelv_circuit.a"
  "libelv_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elv_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
