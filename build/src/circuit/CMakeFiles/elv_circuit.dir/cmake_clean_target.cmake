file(REMOVE_RECURSE
  "libelv_circuit.a"
)
