file(REMOVE_RECURSE
  "CMakeFiles/elv_extensions.dir/qtnvqc.cpp.o"
  "CMakeFiles/elv_extensions.dir/qtnvqc.cpp.o.d"
  "CMakeFiles/elv_extensions.dir/quantumnat.cpp.o"
  "CMakeFiles/elv_extensions.dir/quantumnat.cpp.o.d"
  "libelv_extensions.a"
  "libelv_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elv_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
