# Empty compiler generated dependencies file for elv_extensions.
# This may be replaced when dependencies are built.
