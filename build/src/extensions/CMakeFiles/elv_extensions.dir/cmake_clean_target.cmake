file(REMOVE_RECURSE
  "libelv_extensions.a"
)
