
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qml/classifier.cpp" "src/qml/CMakeFiles/elv_qml.dir/classifier.cpp.o" "gcc" "src/qml/CMakeFiles/elv_qml.dir/classifier.cpp.o.d"
  "/root/repo/src/qml/dataset.cpp" "src/qml/CMakeFiles/elv_qml.dir/dataset.cpp.o" "gcc" "src/qml/CMakeFiles/elv_qml.dir/dataset.cpp.o.d"
  "/root/repo/src/qml/diagnostics.cpp" "src/qml/CMakeFiles/elv_qml.dir/diagnostics.cpp.o" "gcc" "src/qml/CMakeFiles/elv_qml.dir/diagnostics.cpp.o.d"
  "/root/repo/src/qml/optimizer.cpp" "src/qml/CMakeFiles/elv_qml.dir/optimizer.cpp.o" "gcc" "src/qml/CMakeFiles/elv_qml.dir/optimizer.cpp.o.d"
  "/root/repo/src/qml/pca.cpp" "src/qml/CMakeFiles/elv_qml.dir/pca.cpp.o" "gcc" "src/qml/CMakeFiles/elv_qml.dir/pca.cpp.o.d"
  "/root/repo/src/qml/synthetic.cpp" "src/qml/CMakeFiles/elv_qml.dir/synthetic.cpp.o" "gcc" "src/qml/CMakeFiles/elv_qml.dir/synthetic.cpp.o.d"
  "/root/repo/src/qml/trainer.cpp" "src/qml/CMakeFiles/elv_qml.dir/trainer.cpp.o" "gcc" "src/qml/CMakeFiles/elv_qml.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/elv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/elv_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/elv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
