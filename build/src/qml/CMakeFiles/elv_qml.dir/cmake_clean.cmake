file(REMOVE_RECURSE
  "CMakeFiles/elv_qml.dir/classifier.cpp.o"
  "CMakeFiles/elv_qml.dir/classifier.cpp.o.d"
  "CMakeFiles/elv_qml.dir/dataset.cpp.o"
  "CMakeFiles/elv_qml.dir/dataset.cpp.o.d"
  "CMakeFiles/elv_qml.dir/diagnostics.cpp.o"
  "CMakeFiles/elv_qml.dir/diagnostics.cpp.o.d"
  "CMakeFiles/elv_qml.dir/optimizer.cpp.o"
  "CMakeFiles/elv_qml.dir/optimizer.cpp.o.d"
  "CMakeFiles/elv_qml.dir/pca.cpp.o"
  "CMakeFiles/elv_qml.dir/pca.cpp.o.d"
  "CMakeFiles/elv_qml.dir/synthetic.cpp.o"
  "CMakeFiles/elv_qml.dir/synthetic.cpp.o.d"
  "CMakeFiles/elv_qml.dir/trainer.cpp.o"
  "CMakeFiles/elv_qml.dir/trainer.cpp.o.d"
  "libelv_qml.a"
  "libelv_qml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elv_qml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
