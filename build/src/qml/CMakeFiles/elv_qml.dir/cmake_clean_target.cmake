file(REMOVE_RECURSE
  "libelv_qml.a"
)
