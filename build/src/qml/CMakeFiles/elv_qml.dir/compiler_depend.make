# Empty compiler generated dependencies file for elv_qml.
# This may be replaced when dependencies are built.
