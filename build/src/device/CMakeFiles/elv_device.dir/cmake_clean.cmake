file(REMOVE_RECURSE
  "CMakeFiles/elv_device.dir/device.cpp.o"
  "CMakeFiles/elv_device.dir/device.cpp.o.d"
  "CMakeFiles/elv_device.dir/topology.cpp.o"
  "CMakeFiles/elv_device.dir/topology.cpp.o.d"
  "libelv_device.a"
  "libelv_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elv_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
