file(REMOVE_RECURSE
  "libelv_device.a"
)
