# Empty dependencies file for elv_device.
# This may be replaced when dependencies are built.
