file(REMOVE_RECURSE
  "CMakeFiles/elv_stabilizer.dir/tableau.cpp.o"
  "CMakeFiles/elv_stabilizer.dir/tableau.cpp.o.d"
  "libelv_stabilizer.a"
  "libelv_stabilizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elv_stabilizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
