# Empty dependencies file for elv_stabilizer.
# This may be replaced when dependencies are built.
