file(REMOVE_RECURSE
  "libelv_stabilizer.a"
)
