file(REMOVE_RECURSE
  "libelv_sim.a"
)
