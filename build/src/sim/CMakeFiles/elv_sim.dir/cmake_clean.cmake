file(REMOVE_RECURSE
  "CMakeFiles/elv_sim.dir/density_matrix.cpp.o"
  "CMakeFiles/elv_sim.dir/density_matrix.cpp.o.d"
  "CMakeFiles/elv_sim.dir/gradients.cpp.o"
  "CMakeFiles/elv_sim.dir/gradients.cpp.o.d"
  "CMakeFiles/elv_sim.dir/observable.cpp.o"
  "CMakeFiles/elv_sim.dir/observable.cpp.o.d"
  "CMakeFiles/elv_sim.dir/statevector.cpp.o"
  "CMakeFiles/elv_sim.dir/statevector.cpp.o.d"
  "CMakeFiles/elv_sim.dir/unitaries.cpp.o"
  "CMakeFiles/elv_sim.dir/unitaries.cpp.o.d"
  "libelv_sim.a"
  "libelv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
