# Empty compiler generated dependencies file for elv_sim.
# This may be replaced when dependencies are built.
