
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/density_matrix.cpp" "src/sim/CMakeFiles/elv_sim.dir/density_matrix.cpp.o" "gcc" "src/sim/CMakeFiles/elv_sim.dir/density_matrix.cpp.o.d"
  "/root/repo/src/sim/gradients.cpp" "src/sim/CMakeFiles/elv_sim.dir/gradients.cpp.o" "gcc" "src/sim/CMakeFiles/elv_sim.dir/gradients.cpp.o.d"
  "/root/repo/src/sim/observable.cpp" "src/sim/CMakeFiles/elv_sim.dir/observable.cpp.o" "gcc" "src/sim/CMakeFiles/elv_sim.dir/observable.cpp.o.d"
  "/root/repo/src/sim/statevector.cpp" "src/sim/CMakeFiles/elv_sim.dir/statevector.cpp.o" "gcc" "src/sim/CMakeFiles/elv_sim.dir/statevector.cpp.o.d"
  "/root/repo/src/sim/unitaries.cpp" "src/sim/CMakeFiles/elv_sim.dir/unitaries.cpp.o" "gcc" "src/sim/CMakeFiles/elv_sim.dir/unitaries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/elv_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/elv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
