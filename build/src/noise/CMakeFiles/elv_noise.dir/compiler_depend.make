# Empty compiler generated dependencies file for elv_noise.
# This may be replaced when dependencies are built.
