file(REMOVE_RECURSE
  "libelv_noise.a"
)
