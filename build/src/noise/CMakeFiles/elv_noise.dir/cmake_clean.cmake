file(REMOVE_RECURSE
  "CMakeFiles/elv_noise.dir/channels.cpp.o"
  "CMakeFiles/elv_noise.dir/channels.cpp.o.d"
  "CMakeFiles/elv_noise.dir/noise_model.cpp.o"
  "CMakeFiles/elv_noise.dir/noise_model.cpp.o.d"
  "libelv_noise.a"
  "libelv_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elv_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
