file(REMOVE_RECURSE
  "CMakeFiles/test_qml.dir/test_qml.cpp.o"
  "CMakeFiles/test_qml.dir/test_qml.cpp.o.d"
  "test_qml"
  "test_qml.pdb"
  "test_qml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
