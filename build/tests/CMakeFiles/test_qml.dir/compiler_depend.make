# Empty compiler generated dependencies file for test_qml.
# This may be replaced when dependencies are built.
