# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_stabilizer[1]_include.cmake")
include("/root/repo/build/tests/test_device[1]_include.cmake")
include("/root/repo/build/tests/test_noise[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_qml[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_device_sweep[1]_include.cmake")
