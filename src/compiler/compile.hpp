/**
 * @file
 * End-to-end compilation pipeline: SABRE mapping/routing followed by
 * SWAP decomposition and cancellation passes, organized into
 * optimization levels 0-3 in the spirit of the Qiskit levels the paper
 * configures for each method (level 0 for Elivagar's already-physical
 * circuits, level 2 for QuantumNAS, level 3 for everything else).
 */
#pragma once

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "compiler/passes.hpp"
#include "compiler/sabre.hpp"
#include "device/device.hpp"

namespace elv::comp {

/** Result of compiling a logical circuit onto a device. */
struct CompileResult
{
    /** Physical circuit, natively executable on the device. */
    circ::Circuit circuit;
    /** Logical -> physical initial mapping chosen by the router. */
    std::vector<int> initial_mapping;
    /** SWAPs inserted by routing (before decomposition). */
    int swaps_inserted = 0;
    /** Statistics of the final circuit. */
    CircuitStats stats;
};

/**
 * Compile a logical circuit for a device at the given optimization
 * level:
 *   0 — route only (single SABRE trial), decompose SWAPs;
 *   1 — + one cancellation pass;
 *   2 — + cancellation to fixpoint, 2 SABRE trials;
 *   3 — + 4 SABRE trials with deeper bidirectional refinement.
 * Circuits that are already hardware-native (every 2-qubit gate on a
 * coupled pair) skip routing and keep their qubit labels.
 */
CompileResult compile_for_device(const circ::Circuit &logical,
                                 const dev::Device &device, int opt_level,
                                 elv::Rng &rng);

/** True iff every 2-qubit gate acts on a coupled physical pair. */
bool is_hardware_native(const circ::Circuit &circuit,
                        const dev::Topology &topology);

} // namespace elv::comp
