#include "compiler/passes.hpp"

#include "common/logging.hpp"

namespace elv::comp {

using circ::Circuit;
using circ::GateKind;
using circ::Op;
using circ::ParamRole;

namespace {

/** Append an op verbatim, keeping its parameter slot. */
void
copy_op(Circuit &out, const Op &op)
{
    out.append_op(op);
}

/** True when `a` followed immediately by `b` is the identity. */
bool
are_inverse_pair(const Op &a, const Op &b)
{
    if (a.role != ParamRole::None || b.role != ParamRole::None)
        return false;
    if (a.qubits != b.qubits) {
        // CZ and SWAP are symmetric in their operands.
        const bool symmetric =
            (a.kind == GateKind::CZ || a.kind == GateKind::SWAP) &&
            a.kind == b.kind && a.qubits[0] == b.qubits[1] &&
            a.qubits[1] == b.qubits[0];
        if (!symmetric)
            return false;
        return true;
    }
    if (a.kind == b.kind) {
        switch (a.kind) {
          case GateKind::H:
          case GateKind::X:
          case GateKind::Y:
          case GateKind::Z:
          case GateKind::CX:
          case GateKind::CZ:
          case GateKind::SWAP:
            return true;
          default:
            return false;
        }
    }
    return (a.kind == GateKind::S && b.kind == GateKind::Sdg) ||
           (a.kind == GateKind::Sdg && b.kind == GateKind::S);
}

} // namespace

Circuit
decompose_swaps(const Circuit &circuit)
{
    Circuit out(circuit.num_qubits());
    for (const Op &op : circuit.ops()) {
        if (op.kind == GateKind::SWAP) {
            out.add_gate(GateKind::CX, {op.qubits[0], op.qubits[1]});
            out.add_gate(GateKind::CX, {op.qubits[1], op.qubits[0]});
            out.add_gate(GateKind::CX, {op.qubits[0], op.qubits[1]});
        } else {
            copy_op(out, op);
        }
    }
    out.set_measured(circuit.measured());
    return out;
}

Circuit
cancel_adjacent_inverses(const Circuit &circuit)
{
    const auto &ops = circuit.ops();
    std::vector<bool> removed(ops.size(), false);

    // For each op, find the next op that shares a qubit; if it is the
    // exact inverse and no other op touches either qubit in between,
    // drop both.
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (removed[i] || ops[i].role != ParamRole::None ||
            ops[i].kind == GateKind::AmpEmbed)
            continue;
        for (std::size_t j = i + 1; j < ops.size(); ++j) {
            if (removed[j])
                continue;
            const Op &a = ops[i];
            const Op &b = ops[j];
            // Does b touch any qubit of a? (AmpEmbed touches all.)
            bool touches = b.kind == GateKind::AmpEmbed;
            for (std::size_t qa = 0;
                 qa < static_cast<std::size_t>(a.num_qubits()); ++qa)
                for (std::size_t qb = 0;
                     qb < static_cast<std::size_t>(b.num_qubits()); ++qb)
                    if (a.qubits[qa] == b.qubits[qb])
                        touches = true;
            if (!touches)
                continue;
            // First touching op: cancel only on an exact inverse whose
            // qubit set equals a's (otherwise a is blocked).
            if (are_inverse_pair(a, b) &&
                a.num_qubits() == b.num_qubits()) {
                // For 2-qubit pairs, also require that no op between i
                // and j touched the *other* qubit.
                bool blocked = false;
                for (std::size_t k = i + 1; k < j && !blocked; ++k) {
                    if (removed[k])
                        continue;
                    for (std::size_t qa = 0;
                         qa < static_cast<std::size_t>(a.num_qubits());
                         ++qa)
                        for (std::size_t qk = 0;
                             qk < static_cast<std::size_t>(
                                      ops[k].num_qubits());
                             ++qk)
                            if (ops[k].qubits[qk] == a.qubits[qa])
                                blocked = true;
                }
                if (!blocked) {
                    removed[i] = removed[j] = true;
                }
            }
            break;
        }
    }

    Circuit out(circuit.num_qubits());
    for (std::size_t i = 0; i < ops.size(); ++i)
        if (!removed[i])
            copy_op(out, ops[i]);
    out.set_measured(circuit.measured());
    return out;
}

Circuit
cancel_to_fixpoint(const Circuit &circuit)
{
    Circuit current = circuit;
    while (true) {
        Circuit next = cancel_adjacent_inverses(current);
        if (next.ops().size() == current.ops().size())
            return current;
        current = std::move(next);
    }
}

CircuitStats
circuit_stats(const Circuit &circuit)
{
    CircuitStats stats;
    for (const Op &op : circuit.ops()) {
        switch (op.kind) {
          case GateKind::AmpEmbed:
            break;
          case GateKind::SWAP:
            stats.gates_2q += 3;
            break;
          case GateKind::CRY:
            // CRY lowers to RY, CX, RY, CX on hardware.
            stats.gates_2q += 2;
            stats.gates_1q += 2;
            break;
          default:
            if (op.num_qubits() == 2)
                ++stats.gates_2q;
            else
                ++stats.gates_1q;
        }
    }
    stats.depth = circuit.depth();
    return stats;
}

} // namespace elv::comp
