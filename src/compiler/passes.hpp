/**
 * @file
 * Circuit optimization passes, mirroring (coarsely) what the Qiskit
 * optimization levels the paper uses do for its baselines: gate
 * decomposition into native gates, adjacent-inverse cancellation, and
 * compiled-circuit statistics (the quantities of Tables 5-6).
 */
#pragma once

#include "circuit/circuit.hpp"

namespace elv::comp {

/**
 * Decompose non-native gates for superconducting backends:
 * SWAP -> 3 CX. (CRY stays in the IR; its doubled two-qubit cost is
 * accounted for by the simulators and by stats().)
 */
circ::Circuit decompose_swaps(const circ::Circuit &circuit);

/**
 * Cancel adjacent self-inverse / inverse fixed-gate pairs (H-H, X-X,
 * Y-Y, Z-Z, S-Sdg, Sdg-S, CX-CX, CZ-CZ, SWAP-SWAP) that have no
 * intervening op on any shared qubit. One pass; call repeatedly (or use
 * cancel_to_fixpoint) for cascading cancellations.
 */
circ::Circuit cancel_adjacent_inverses(const circ::Circuit &circuit);

/** Iterate cancel_adjacent_inverses until no further reduction. */
circ::Circuit cancel_to_fixpoint(const circ::Circuit &circuit);

/** Compiled-circuit statistics reported in Tables 5 and 6. */
struct CircuitStats
{
    /** 1-qubit gate count (CRY contributes 2 per its decomposition). */
    int gates_1q = 0;
    /** 2-qubit gate count (SWAP counts 3, CRY counts 2). */
    int gates_2q = 0;
    /** Circuit depth. */
    int depth = 0;
};

/** Compute gate-count/depth statistics of a circuit. */
CircuitStats circuit_stats(const circ::Circuit &circuit);

} // namespace elv::comp
