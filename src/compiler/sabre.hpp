/**
 * @file
 * SABRE qubit mapping and routing (Li, Ding, Xie — ASPLOS 2019), built
 * from scratch. This is the routing baseline of Table 5: device-unaware
 * circuits are mapped/routed with SABRE and then compared against
 * Elivagar's natively hardware-efficient circuits.
 *
 * The implementation follows the paper: a front layer of unresolved
 * 2-qubit gates, a lookahead extended set, a distance-based heuristic
 * with per-qubit decay to encourage SWAP diversity, and bidirectional
 * passes to refine the initial mapping.
 */
#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "device/topology.hpp"

namespace elv::comp {

/** Output of routing: a physical circuit plus the mappings used. */
struct RouteResult
{
    /** Routed circuit over the device's physical qubits (with SWAPs). */
    circ::Circuit circuit;
    /** Initial logical -> physical mapping. */
    std::vector<int> initial_mapping;
    /** Final logical -> physical mapping (after all SWAPs). */
    std::vector<int> final_mapping;
    /** Number of SWAP gates inserted. */
    int swaps_inserted = 0;
};

/** SABRE tuning knobs. */
struct SabreOptions
{
    /** Size cap of the lookahead extended set. */
    int extended_set_size = 20;
    /** Weight of the extended set in the heuristic. */
    double extended_set_weight = 0.5;
    /** Per-use decay added to a qubit's decay factor. */
    double decay_increment = 0.001;
    /** Rounds between decay resets. */
    int decay_reset_interval = 5;
    /** Bidirectional mapping-refinement passes (forward+backward). */
    int refinement_rounds = 1;
    /** Independent restarts with random initial mappings; best kept. */
    int trials = 1;
};

/**
 * Map and route `logical` onto `topology`. The logical circuit may use
 * any qubit pairs; the result uses only coupled physical pairs, with
 * SWAPs inserted where needed. Measurement qubits are relocated through
 * the final mapping.
 */
RouteResult sabre_route(const circ::Circuit &logical,
                        const dev::Topology &topology, elv::Rng &rng,
                        const SabreOptions &options = {});

} // namespace elv::comp
