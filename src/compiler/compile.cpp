#include "compiler/compile.hpp"

#include "common/logging.hpp"
#include "lint/preflight.hpp"

namespace elv::comp {

bool
is_hardware_native(const circ::Circuit &circuit,
                   const dev::Topology &topology)
{
    if (circuit.num_qubits() > topology.num_qubits())
        return false;
    for (const circ::Op &op : circuit.ops())
        if (op.num_qubits() == 2 &&
            !topology.has_edge(op.qubits[0], op.qubits[1]))
            return false;
    return true;
}

CompileResult
compile_for_device(const circ::Circuit &logical, const dev::Device &device,
                   int opt_level, elv::Rng &rng)
{
    ELV_REQUIRE(opt_level >= 0 && opt_level <= 3, "bad optimization level");

    CompileResult result;
    if (is_hardware_native(logical, device.topology)) {
        // Already physical (the Elivagar path): identity mapping.
        std::vector<int> identity(
            static_cast<std::size_t>(logical.num_qubits()));
        for (std::size_t q = 0; q < identity.size(); ++q)
            identity[q] = static_cast<int>(q);
        result.circuit = logical.num_qubits() == device.num_qubits()
                             ? logical
                             : logical.remapped(identity,
                                                device.num_qubits());
        result.initial_mapping = identity;
        result.swaps_inserted = 0;
    } else {
        SabreOptions options;
        switch (opt_level) {
          case 0:
          case 1:
            options.trials = 1;
            options.refinement_rounds = 1;
            break;
          case 2:
            options.trials = 2;
            options.refinement_rounds = 1;
            break;
          default:
            options.trials = 4;
            options.refinement_rounds = 2;
            break;
        }
        RouteResult routed = sabre_route(logical, device.topology, rng,
                                         options);
        result.circuit = std::move(routed.circuit);
        result.initial_mapping = std::move(routed.initial_mapping);
        result.swaps_inserted = routed.swaps_inserted;
    }

    result.circuit = decompose_swaps(result.circuit);
    if (opt_level == 1)
        result.circuit = cancel_adjacent_inverses(result.circuit);
    else if (opt_level >= 2)
        result.circuit = cancel_to_fixpoint(result.circuit);

    result.stats = circuit_stats(result.circuit);

    // Pre-flight: compiled output must be physically executable —
    // every 2-qubit gate on a coupling edge, parameter slots intact.
    // A violation here is a routing/decomposition bug.
    lint::LintOptions lint_options;
    lint_options.device = &device;
    lint::preflight(result.circuit, lint::Boundary::CompilerOutput,
                    lint_options);
    return result;
}

} // namespace elv::comp
