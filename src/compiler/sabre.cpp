#include "compiler/sabre.hpp"

#include <algorithm>
#include <limits>

#include "common/logging.hpp"

namespace elv::comp {

using circ::Circuit;
using circ::GateKind;
using circ::Op;
using circ::ParamRole;

namespace {

/** Per-qubit program order used to find ready ops cheaply. */
struct OpSchedule
{
    /** op_lists[q] = indices of ops touching qubit q, in order. */
    std::vector<std::vector<std::size_t>> op_lists;
    /** heads[q] = position of the next unexecuted op in op_lists[q]. */
    std::vector<std::size_t> heads;

    explicit OpSchedule(const Circuit &c)
        : op_lists(static_cast<std::size_t>(c.num_qubits())),
          heads(static_cast<std::size_t>(c.num_qubits()), 0)
    {
        const auto &ops = c.ops();
        for (std::size_t i = 0; i < ops.size(); ++i) {
            ELV_REQUIRE(ops[i].kind != GateKind::AmpEmbed,
                        "cannot route amplitude-embedding circuits");
            op_lists[static_cast<std::size_t>(ops[i].qubits[0])]
                .push_back(i);
            if (ops[i].num_qubits() == 2)
                op_lists[static_cast<std::size_t>(ops[i].qubits[1])]
                    .push_back(i);
        }
    }

    bool
    is_ready(const Op &op, std::size_t index) const
    {
        for (std::size_t k = 0;
             k < static_cast<std::size_t>(op.num_qubits()); ++k) {
            const auto &list =
                op_lists[static_cast<std::size_t>(op.qubits[k])];
            const std::size_t head =
                heads[static_cast<std::size_t>(op.qubits[k])];
            if (head >= list.size() || list[head] != index)
                return false;
        }
        return true;
    }

    void
    advance(const Op &op)
    {
        for (std::size_t k = 0;
             k < static_cast<std::size_t>(op.num_qubits()); ++k)
            ++heads[static_cast<std::size_t>(op.qubits[k])];
    }
};

/**
 * Copy one logical op into the physical circuit under `mapping`,
 * preserving its parameter slot (routing may reorder commuting gates, so
 * slots must stay aligned with the logical circuit's parameter vector).
 */
void
emit_mapped(Circuit &out, const Op &op, const std::vector<int> &mapping)
{
    out.append_op(op, mapping);
}

struct PassResult
{
    Circuit circuit;
    std::vector<int> final_mapping;
    int swaps = 0;
};

/**
 * One routing pass. When `emit` is false only the final mapping is
 * tracked (used by the reverse refinement passes).
 */
PassResult
route_pass(const Circuit &logical, const dev::Topology &topo,
           const std::vector<int> &distances,
           std::vector<int> initial_mapping, const SabreOptions &opt,
           elv::Rng &rng)
{
    const std::size_t n_phys = static_cast<std::size_t>(topo.num_qubits());
    const auto dist = [&distances, n_phys](int a, int b) {
        return distances[static_cast<std::size_t>(a) * n_phys +
                         static_cast<std::size_t>(b)];
    };

    std::vector<int> mapping = std::move(initial_mapping);
    std::vector<int> inverse(n_phys, -1);
    for (std::size_t lq = 0; lq < mapping.size(); ++lq)
        inverse[static_cast<std::size_t>(mapping[lq])] =
            static_cast<int>(lq);

    PassResult result{Circuit(topo.num_qubits()), {}, 0};
    OpSchedule sched(logical);
    const auto &ops = logical.ops();
    std::vector<bool> done(ops.size(), false);
    std::size_t remaining = ops.size();
    std::vector<double> decay(n_phys, 1.0);
    int rounds_since_reset = 0;

    while (remaining > 0) {
        // Execute everything executable.
        bool progressed = true;
        while (progressed) {
            progressed = false;
            for (std::size_t i = 0; i < ops.size(); ++i) {
                if (done[i] || !sched.is_ready(ops[i], i))
                    continue;
                const Op &op = ops[i];
                const bool executable =
                    op.num_qubits() == 1 ||
                    dist(mapping[static_cast<std::size_t>(op.qubits[0])],
                         mapping[static_cast<std::size_t>(
                             op.qubits[1])]) == 1;
                if (!executable)
                    continue;
                emit_mapped(result.circuit, op, mapping);
                sched.advance(op);
                done[i] = true;
                --remaining;
                progressed = true;
            }
        }
        if (remaining == 0)
            break;

        // Front layer: ready but blocked 2-qubit ops.
        std::vector<std::size_t> front;
        for (std::size_t i = 0; i < ops.size(); ++i)
            if (!done[i] && sched.is_ready(ops[i], i))
                front.push_back(i);
        ELV_REQUIRE(!front.empty(), "router wedged with work remaining");

        // Extended set: the next 2-qubit ops in program order.
        std::vector<std::size_t> extended;
        for (std::size_t i = 0;
             i < ops.size() &&
             static_cast<int>(extended.size()) < opt.extended_set_size;
             ++i) {
            if (!done[i] && ops[i].num_qubits() == 2 &&
                std::find(front.begin(), front.end(), i) == front.end())
                extended.push_back(i);
        }

        // Candidate SWAPs: edges touching any front physical qubit.
        std::vector<std::pair<int, int>> candidates;
        for (std::size_t fi : front) {
            for (std::size_t k = 0; k < 2; ++k) {
                const int pq = mapping[static_cast<std::size_t>(
                    ops[fi].qubits[k])];
                for (int nb : topo.neighbors(pq))
                    candidates.emplace_back(std::min(pq, nb),
                                            std::max(pq, nb));
            }
        }
        std::sort(candidates.begin(), candidates.end());
        candidates.erase(
            std::unique(candidates.begin(), candidates.end()),
            candidates.end());
        ELV_REQUIRE(!candidates.empty(), "no candidate swaps");

        auto score_with = [&](const std::pair<int, int> &swap_edge) {
            // Build the trial mapping lazily via the two changed slots.
            auto mapped = [&](int lq) {
                int pq = mapping[static_cast<std::size_t>(lq)];
                if (pq == swap_edge.first)
                    return swap_edge.second;
                if (pq == swap_edge.second)
                    return swap_edge.first;
                return pq;
            };
            double front_cost = 0.0;
            for (std::size_t fi : front)
                front_cost += dist(mapped(ops[fi].qubits[0]),
                                   mapped(ops[fi].qubits[1]));
            front_cost /= static_cast<double>(front.size());
            double ext_cost = 0.0;
            if (!extended.empty()) {
                for (std::size_t ei : extended)
                    ext_cost += dist(mapped(ops[ei].qubits[0]),
                                     mapped(ops[ei].qubits[1]));
                ext_cost *= opt.extended_set_weight /
                            static_cast<double>(extended.size());
            }
            const double decay_factor = std::max(
                decay[static_cast<std::size_t>(swap_edge.first)],
                decay[static_cast<std::size_t>(swap_edge.second)]);
            return decay_factor * (front_cost + ext_cost);
        };

        double best = std::numeric_limits<double>::infinity();
        std::pair<int, int> best_edge = candidates.front();
        for (const auto &edge : candidates) {
            const double s = score_with(edge);
            if (s < best - 1e-12 ||
                (std::abs(s - best) <= 1e-12 && rng.bernoulli(0.5))) {
                best = s;
                best_edge = edge;
            }
        }

        // Apply the SWAP.
        result.circuit.add_gate(GateKind::SWAP,
                                {best_edge.first, best_edge.second});
        ++result.swaps;
        const int la = inverse[static_cast<std::size_t>(best_edge.first)];
        const int lb = inverse[static_cast<std::size_t>(best_edge.second)];
        if (la >= 0)
            mapping[static_cast<std::size_t>(la)] = best_edge.second;
        if (lb >= 0)
            mapping[static_cast<std::size_t>(lb)] = best_edge.first;
        std::swap(inverse[static_cast<std::size_t>(best_edge.first)],
                  inverse[static_cast<std::size_t>(best_edge.second)]);
        decay[static_cast<std::size_t>(best_edge.first)] +=
            opt.decay_increment;
        decay[static_cast<std::size_t>(best_edge.second)] +=
            opt.decay_increment;
        if (++rounds_since_reset >= opt.decay_reset_interval) {
            std::fill(decay.begin(), decay.end(), 1.0);
            rounds_since_reset = 0;
        }
    }

    result.final_mapping = std::move(mapping);
    return result;
}

/** Structurally reverse a circuit (routing cares only about operands). */
Circuit
reversed(const Circuit &c)
{
    Circuit out(c.num_qubits());
    const auto &ops = c.ops();
    for (std::size_t i = ops.size(); i-- > 0;) {
        const Op &op = ops[i];
        std::vector<int> qubits = {op.qubits[0]};
        if (op.num_qubits() == 2)
            qubits.push_back(op.qubits[1]);
        if (op.role == ParamRole::Variational)
            out.add_variational(op.kind, qubits);
        else if (op.role == ParamRole::Embedding)
            out.add_embedding(op.kind, qubits, op.data_index,
                              op.data_index2);
        else
            out.add_gate(op.kind, qubits);
    }
    return out;
}

} // namespace

RouteResult
sabre_route(const Circuit &logical, const dev::Topology &topology,
            elv::Rng &rng, const SabreOptions &options)
{
    ELV_REQUIRE(logical.num_qubits() <= topology.num_qubits(),
                "circuit needs more qubits than the device has");
    const auto distances = topology.all_pairs_distances();
    for (int d : distances)
        if (d < 0)
            elv::fatal("SABRE requires a connected device topology");

    const std::size_t n_logical =
        static_cast<std::size_t>(logical.num_qubits());
    const Circuit backward = reversed(logical);

    RouteResult best;
    best.swaps_inserted = std::numeric_limits<int>::max();

    const int trials = std::max(1, options.trials);
    for (int trial = 0; trial < trials; ++trial) {
        // Random injective initial mapping over a *connected* region:
        // scattering logical qubits across a large device would force
        // routing through long SWAP chains before refinement can help.
        std::vector<int> mapping(n_logical);
        auto region = dev::sample_connected_subgraph(
            topology, static_cast<int>(n_logical), rng);
        rng.shuffle(region);
        for (std::size_t i = 0; i < n_logical; ++i)
            mapping[i] = region[i];

        // Bidirectional refinement: each backward pass turns the final
        // mapping of the forward pass into a better initial mapping.
        for (int round = 0; round < options.refinement_rounds; ++round) {
            PassResult fwd = route_pass(logical, topology, distances,
                                        mapping, options, rng);
            PassResult bwd = route_pass(backward, topology, distances,
                                        fwd.final_mapping, options, rng);
            mapping = bwd.final_mapping;
        }

        PassResult final_pass = route_pass(logical, topology, distances,
                                           mapping, options, rng);
        if (final_pass.swaps < best.swaps_inserted) {
            best.circuit = final_pass.circuit;
            best.initial_mapping = mapping;
            best.final_mapping = final_pass.final_mapping;
            best.swaps_inserted = final_pass.swaps;
        }
    }

    // Relocate measurements through the final mapping.
    std::vector<int> measured;
    measured.reserve(logical.measured().size());
    for (int lq : logical.measured())
        measured.push_back(
            best.final_mapping[static_cast<std::size_t>(lq)]);
    best.circuit.set_measured(std::move(measured));
    return best;
}

} // namespace elv::comp
