#include "server/job.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "obs/json.hpp"
#include "sim/precision.hpp"

namespace elv::srv {

const char *
job_state_name(JobState state)
{
    switch (state) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Completed: return "completed";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
    case JobState::Rejected: return "rejected";
    }
    return "unknown";
}

std::optional<JobState>
job_state_from_name(const std::string &name)
{
    for (const JobState state :
         {JobState::Queued, JobState::Running, JobState::Completed,
          JobState::Failed, JobState::Cancelled, JobState::Rejected})
        if (name == job_state_name(state))
            return state;
    return std::nullopt;
}

bool
job_state_terminal(JobState state)
{
    return state == JobState::Completed || state == JobState::Failed ||
           state == JobState::Cancelled || state == JobState::Rejected;
}

void
JobSpec::check() const
{
    if (benchmark.empty() || device.empty())
        elv::fatal("job needs a benchmark and a device");
    if (candidates < 1 || candidates > 4096)
        elv::fatal("job candidates must lie in [1, 4096]");
    if (scale <= 0.0 || scale > 1.0)
        elv::fatal("job scale must lie in (0, 1]");
    if (deadline_sec < 0.0)
        elv::fatal("job deadline must be non-negative");
    if (!sim::precision_from_name(precision))
        elv::fatal("job precision must be \"f64\" or \"f32\"");
    if (workers < 0 || workers > 64)
        elv::fatal("job workers must lie in [0, 64]");
}

std::string
JobSpec::to_json() const
{
    obs::JsonWriter json;
    json.begin_object();
    json.kv("benchmark", benchmark);
    json.kv("device", device);
    json.kv("candidates", candidates);
    json.kv("seed", static_cast<std::uint64_t>(seed));
    json.kv("scale", scale);
    json.kv("priority", priority);
    json.kv("deadline_sec", deadline_sec);
    json.kv("precision", precision);
    json.kv("workers", workers);
    json.end_object();
    return json.str();
}

bool
JobSpec::from_json(const JsonValue &value, JobSpec &out,
                   std::string &error)
{
    if (!value.is_object()) {
        error = "job spec must be a JSON object";
        return false;
    }
    out = JobSpec{};
    if (const JsonValue *v = value.get("benchmark"))
        out.benchmark = v->as_string(out.benchmark);
    if (const JsonValue *v = value.get("device"))
        out.device = v->as_string(out.device);
    if (const JsonValue *v = value.get("candidates"))
        out.candidates = static_cast<int>(v->as_int(out.candidates));
    if (const JsonValue *v = value.get("seed"))
        out.seed = v->as_uint(out.seed);
    if (const JsonValue *v = value.get("scale"))
        out.scale = v->as_number(out.scale);
    if (const JsonValue *v = value.get("priority"))
        out.priority = static_cast<int>(v->as_int(out.priority));
    if (const JsonValue *v = value.get("deadline_sec"))
        out.deadline_sec = v->as_number(out.deadline_sec);
    if (const JsonValue *v = value.get("precision"))
        out.precision = v->as_string(out.precision);
    if (const JsonValue *v = value.get("workers"))
        out.workers = static_cast<int>(v->as_int(out.workers));
    try {
        out.check();
    } catch (const elv::UsageError &e) {
        error = e.what();
        return false;
    }
    return true;
}

core::ElivagarConfig
job_search_config(const JobSpec &spec, const qml::BenchmarkSpec &bench,
                  int threads, const std::string &journal_path)
{
    // Mirrors the elivagar_cli mapping so a job submitted to the server
    // and a one-shot CLI run with the same knobs produce bit-identical
    // results (and interchangeable journals).
    core::ElivagarConfig config;
    config.num_candidates = spec.candidates;
    config.candidate.num_qubits = bench.qubits;
    config.candidate.num_params = bench.params;
    config.candidate.num_embeds = std::min(
        bench.params, std::max(bench.dim, bench.params / 4));
    config.candidate.num_meas = bench.meas;
    config.candidate.num_features = bench.dim;
    config.seed = spec.seed;
    config.threads = threads;
    // check() guarantees the name parses; both proxies follow the job's
    // precision while training (if any) stays double (see trainer.hpp).
    const sim::Precision precision =
        sim::precision_from_name(spec.precision)
            .value_or(sim::Precision::Float64);
    config.cnr.precision = precision;
    config.repcap.precision = precision;
    config.resilience.checkpoint_path = journal_path;
    // Server jobs retry with bounded full jitter: many tenants share
    // the backends, and synchronized backoff from concurrent jobs is
    // exactly the stampede the jitter exists to break.
    config.resilience.retry.full_jitter = true;
    return config;
}

} // namespace elv::srv
