/**
 * @file
 * Job model of the search service: what a client submits, the lifecycle
 * state machine the server drives it through, and the mapping from a
 * job spec to the ElivagarConfig the search pipeline runs.
 *
 * Lifecycle:
 *
 *       submit                 worker picks up           search returns
 *   --> Queued --------------> Running -----------------> Completed
 *         |                      |        \----throw----> Failed
 *         |  shed (overload)     |  cancel() / deadline
 *         +--> Rejected          +-----------------------> Cancelled
 *         +--> Cancelled (cancel before start)
 *
 * Rejected/Cancelled/Failed/Completed are terminal. A job abandoned by
 * a crash or a drain deadline is *not* terminal: its manifest record
 * still reads Queued/Running, so the next server start re-queues it
 * and the search resumes from the job's checkpoint journal.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/search.hpp"
#include "qml/synthetic.hpp"
#include "server/json_value.hpp"

namespace elv::srv {

/** Job lifecycle states (see the diagram above). */
enum class JobState {
    Queued,
    Running,
    Completed,
    Failed,
    Cancelled,
    Rejected,
};

/** Wire/manifest name of a state ("queued", "running", ...). */
const char *job_state_name(JobState state);

/** Inverse of job_state_name; nullopt for unknown names. */
std::optional<JobState> job_state_from_name(const std::string &name);

/** True for states a job can never leave. */
bool job_state_terminal(JobState state);

/** What a client submits: one search over a catalog benchmark. */
struct JobSpec
{
    /** Catalog benchmark name (Table 2). */
    std::string benchmark = "moons";
    /** Catalog device name (Table 3). */
    std::string device = "ibm_lagos";
    /** Candidate pool size. */
    int candidates = 16;
    /** Search/data seed. */
    std::uint64_t seed = 7;
    /** Dataset scale in (0, 1]. */
    double scale = 0.2;
    /**
     * Admission priority (higher = more important). Under overload the
     * lowest-priority queued jobs are shed first.
     */
    int priority = 0;
    /**
     * Per-job wall-clock deadline in seconds, measured from the moment
     * the job starts running; 0 disables. Enforced by cooperative
     * cancellation checkpoints inside the search phases.
     */
    double deadline_sec = 0.0;
    /**
     * Amplitude precision of the CNR/RepCap proxy evaluations: "f64"
     * (default) or "f32" (mixed-precision fast path; see
     * sim/precision.hpp). Part of the config fingerprint — a journal
     * written under one precision does not resume under the other.
     */
    std::string precision = "f64";
    /**
     * Distributed fan-out: > 0 runs the search through
     * dist::distributed_search with this many local worker processes
     * sharing the job's thread quota; 0 (default) evaluates in-process.
     * Deliberately outside the config fingerprint — like the thread
     * quota, it changes how the work is executed, never the result, so
     * a journaled run resumes under a different worker count.
     */
    int workers = 0;

    /** Reject out-of-range fields with fatal(). Catalog names are
     * checked separately at admission (they need the catalogs). */
    void check() const;

    /** Single-line JSON rendering (manifest + protocol). */
    std::string to_json() const;

    /**
     * Read a spec from a parsed JSON object (unknown keys ignored,
     * missing keys defaulted). Returns false and sets `error` on a
     * non-object or type-mangled field.
     */
    static bool from_json(const JsonValue &value, JobSpec &out,
                          std::string &error);
};

/**
 * The ElivagarConfig a job runs with. Pure function of (spec,
 * thread quota, journal path): the same spec always produces the same
 * fingerprint, which is what makes a journal written before a crash
 * resumable after a restart — and the thread quota and hooks are
 * deliberately outside the fingerprint, so the degradation ladder can
 * hand a resumed job a different quota.
 */
core::ElivagarConfig job_search_config(const JobSpec &spec,
                                       const qml::BenchmarkSpec &bench,
                                       int threads,
                                       const std::string &journal_path);

} // namespace elv::srv
