#include "server/protocol.hpp"

#include "obs/json.hpp"

namespace elv::srv {

namespace {

std::string
error_response(const std::string &what)
{
    obs::JsonWriter json;
    json.begin_object();
    json.kv("ok", false);
    json.kv("error", what);
    json.end_object();
    return json.str();
}

std::string
require_id(const JsonValue &request, std::string &id)
{
    const JsonValue *value = request.get("id");
    if (!value || !value->is_string() || value->text.empty())
        return "request needs a job \"id\" string";
    id = value->text;
    return "";
}

std::string
handle_submit(Server &server, const JsonValue &request)
{
    const JsonValue *spec_value = request.get("spec");
    if (!spec_value)
        return error_response("submit needs a \"spec\" object");
    JobSpec spec;
    std::string error;
    if (!JobSpec::from_json(*spec_value, spec, error))
        return error_response(error);
    const SubmitOutcome outcome = server.submit(spec);
    obs::JsonWriter json;
    json.begin_object();
    json.kv("ok", outcome.accepted);
    if (outcome.accepted) {
        json.kv("id", outcome.id);
    } else {
        json.kv("error", outcome.error);
        if (outcome.retry_after_ms > 0.0)
            json.kv("retry_after_ms", outcome.retry_after_ms);
    }
    json.end_object();
    return json.str();
}

std::string
handle_status(Server &server, const JsonValue &request)
{
    std::string id;
    const std::string error = require_id(request, id);
    if (!error.empty())
        return error_response(error);
    const auto snap = server.status(id);
    if (!snap)
        return error_response("unknown job: " + id);
    obs::JsonWriter json;
    json.begin_object();
    json.kv("ok", true);
    json.key("job").raw(status_json(*snap));
    json.end_object();
    return json.str();
}

std::string
handle_jobs(Server &server)
{
    obs::JsonWriter json;
    json.begin_object();
    json.kv("ok", true);
    json.key("jobs").begin_array();
    for (const auto &snap : server.jobs())
        json.raw(status_json(snap));
    json.end_array();
    json.end_object();
    return json.str();
}

std::string
handle_cancel(Server &server, const JsonValue &request)
{
    std::string id;
    const std::string error = require_id(request, id);
    if (!error.empty())
        return error_response(error);
    if (!server.cancel(id))
        return error_response("unknown job: " + id);
    obs::JsonWriter json;
    json.begin_object();
    json.kv("ok", true);
    json.kv("id", id);
    json.end_object();
    return json.str();
}

std::string
handle_result(Server &server, const JsonValue &request)
{
    std::string id;
    const std::string error = require_id(request, id);
    if (!error.empty())
        return error_response(error);
    const auto doc = server.result_json(id);
    if (!doc)
        return error_response("no result for " + id +
                              " (not completed?)");
    obs::JsonWriter json;
    json.begin_object();
    json.kv("ok", true);
    json.key("result").raw(*doc);
    json.end_object();
    return json.str();
}

std::string
wrap_document(const char *key, const std::string &doc)
{
    obs::JsonWriter json;
    json.begin_object();
    json.kv("ok", true);
    json.key(key).raw(doc);
    json.end_object();
    return json.str();
}

std::string
simple_request(const char *op)
{
    obs::JsonWriter json;
    json.begin_object();
    json.kv("op", op);
    json.end_object();
    return json.str();
}

std::string
id_request(const char *op, const std::string &id)
{
    obs::JsonWriter json;
    json.begin_object();
    json.kv("op", op);
    json.kv("id", id);
    json.end_object();
    return json.str();
}

} // namespace

std::string
status_json(const JobStatusSnapshot &snap)
{
    obs::JsonWriter json;
    json.begin_object();
    json.kv("id", snap.id);
    json.kv("state", job_state_name(snap.state));
    json.key("spec").raw(snap.spec.to_json());
    if (!snap.phase.empty()) {
        json.kv("phase", snap.phase);
        json.kv("done", static_cast<std::uint64_t>(snap.done));
        json.kv("total", static_cast<std::uint64_t>(snap.total));
    }
    if (!snap.detail.empty())
        json.kv("detail", snap.detail);
    if (snap.thread_quota > 0)
        json.kv("thread_quota", snap.thread_quota);
    if (snap.recovered)
        json.kv("recovered", true);
    if (snap.search_resumed)
        json.kv("resumed", true);
    if (!snap.trace_path.empty())
        json.kv("trace", snap.trace_path);
    if (snap.state == JobState::Completed)
        json.kv("best_score", snap.best_score);
    json.end_object();
    return json.str();
}

RequestOutcome
handle_request(Server &server, const std::string &line,
               bool allow_shutdown)
{
    RequestOutcome outcome;
    JsonValue request;
    std::string error;
    if (!json_parse(line, request, error)) {
        outcome.response = error_response("bad request: " + error);
        return outcome;
    }
    const JsonValue *op_value = request.get("op");
    if (!op_value || !op_value->is_string()) {
        outcome.response =
            error_response("request needs an \"op\" string");
        return outcome;
    }
    const std::string &op = op_value->text;

    if (op == "submit") {
        outcome.response = handle_submit(server, request);
    } else if (op == "status") {
        outcome.response = handle_status(server, request);
    } else if (op == "jobs") {
        outcome.response = handle_jobs(server);
    } else if (op == "cancel") {
        outcome.response = handle_cancel(server, request);
    } else if (op == "result") {
        outcome.response = handle_result(server, request);
    } else if (op == "health") {
        outcome.response = wrap_document("health", server.health_json());
    } else if (op == "metrics") {
        outcome.response =
            wrap_document("metrics", server.metrics_json());
    } else if (op == "events") {
        std::uint64_t since = 0;
        std::uint64_t limit = 64;
        if (const JsonValue *v = request.get("since"))
            since = v->as_uint(0);
        if (const JsonValue *v = request.get("limit"))
            limit = v->as_uint(64);
        outcome.response = wrap_document(
            "events", server.events_json(
                          since, static_cast<std::size_t>(limit)));
    } else if (op == "watch") {
        std::string id;
        const std::string id_error = require_id(request, id);
        if (!id_error.empty()) {
            outcome.response = error_response(id_error);
            return outcome;
        }
        const auto snap = server.status(id);
        if (!snap) {
            outcome.response = error_response("unknown job: " + id);
            return outcome;
        }
        outcome.response = handle_status(server, request);
        outcome.action = RequestAction::Watch;
        outcome.watch_id = id;
    } else if (op == "shutdown") {
        if (!allow_shutdown) {
            outcome.response =
                error_response("shutdown is not allowed on this "
                               "connection");
            return outcome;
        }
        if (const JsonValue *v = request.get("drain_sec"))
            outcome.drain_sec = v->as_number(0.0);
        obs::JsonWriter json;
        json.begin_object();
        json.kv("ok", true);
        json.kv("draining", true);
        json.end_object();
        outcome.response = json.str();
        outcome.action = RequestAction::Shutdown;
    } else {
        outcome.response = error_response("unknown op: " + op);
    }
    return outcome;
}

std::string
make_submit_request(const JobSpec &spec)
{
    obs::JsonWriter json;
    json.begin_object();
    json.kv("op", "submit");
    json.key("spec").raw(spec.to_json());
    json.end_object();
    return json.str();
}

std::string
make_status_request(const std::string &id)
{
    return id_request("status", id);
}

std::string
make_jobs_request()
{
    return simple_request("jobs");
}

std::string
make_cancel_request(const std::string &id)
{
    return id_request("cancel", id);
}

std::string
make_result_request(const std::string &id)
{
    return id_request("result", id);
}

std::string
make_watch_request(const std::string &id)
{
    return id_request("watch", id);
}

std::string
make_health_request()
{
    return simple_request("health");
}

std::string
make_metrics_request()
{
    return simple_request("metrics");
}

std::string
make_events_request(std::uint64_t since, std::size_t limit)
{
    obs::JsonWriter json;
    json.begin_object();
    json.kv("op", "events");
    json.kv("since", since);
    json.kv("limit", static_cast<std::uint64_t>(limit));
    json.end_object();
    return json.str();
}

std::string
make_shutdown_request(double drain_sec)
{
    obs::JsonWriter json;
    json.begin_object();
    json.kv("op", "shutdown");
    json.kv("drain_sec", drain_sec);
    json.end_object();
    return json.str();
}

} // namespace elv::srv
