#include "server/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.hpp"
#include "obs/metrics.hpp"

namespace elv::srv {

namespace {

/** Whole request must arrive within this budget, and fit this cap. */
constexpr int kReadDeadlineMs = 2000;
constexpr std::size_t kMaxRequestBytes = 8192;

bool
send_all(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

std::string
http_response(const char *status, const std::string &content_type,
              const std::string &body)
{
    std::string out = "HTTP/1.0 ";
    out += status;
    out += "\r\nContent-Type: " + content_type;
    out += "\r\nContent-Length: " + std::to_string(body.size());
    out += "\r\nConnection: close\r\n\r\n";
    out += body;
    return out;
}

} // namespace

MetricsHttpServer::MetricsHttpServer(Server &server,
                                     const HttpConfig &config)
    : server_(server), config_(config),
      epoch_(std::chrono::steady_clock::now())
{
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        elv::fatal("cannot create metrics socket: " +
                   std::string(std::strerror(errno)));
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1)
        elv::fatal("bad metrics bind address: " + config_.host);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0)
        elv::fatal("cannot bind metrics port " + config_.host + ":" +
                   std::to_string(config_.port) + ": " +
                   std::string(std::strerror(errno)));
    if (::listen(listen_fd_, 16) != 0)
        elv::fatal("cannot listen on metrics port: " +
                   std::string(std::strerror(errno)));

    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&bound),
                      &len) == 0)
        port_ = ntohs(bound.sin_port);

    thread_ = std::thread([this] { serve_loop(); });
}

MetricsHttpServer::~MetricsHttpServer()
{
    stop();
    if (thread_.joinable())
        thread_.join();
    if (listen_fd_ >= 0)
        ::close(listen_fd_);
}

void
MetricsHttpServer::stop()
{
    stop_.store(true);
}

std::string
MetricsHttpServer::handle(const std::string &target,
                          std::string &content_type)
{
    if (target == "/metrics" || target.rfind("/metrics?", 0) == 0) {
        content_type = "text/plain; version=0.0.4; charset=utf-8";
        const double now_sec =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - epoch_)
                .count();
        return exposition_.render(obs::Registry::global(), now_sec);
    }
    if (target == "/healthz") {
        content_type = "application/json";
        return server_.health_json() + "\n";
    }
    content_type = "";
    return "";
}

void
MetricsHttpServer::serve_loop()
{
    while (!stop_.load()) {
        pollfd pfd{};
        pfd.fd = listen_fd_;
        pfd.events = POLLIN;
        // Same short tick as TcpServer::run so stop() is honoured
        // promptly on an idle port.
        const int ready = ::poll(&pfd, 1, 200);
        if (ready < 0 && errno != EINTR)
            break;
        if (ready <= 0 || !(pfd.revents & POLLIN))
            continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        handle_connection(fd);
        ::close(fd);
    }
}

void
MetricsHttpServer::handle_connection(int fd)
{
    // Read until the header terminator, a hard deadline, or the byte
    // cap — scrapers send a few hundred bytes immediately, so anything
    // slower forfeits its connection rather than stalling the loop.
    std::string request;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(kReadDeadlineMs);
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.find("\n\n") == std::string::npos) {
        if (request.size() > kMaxRequestBytes)
            return;
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now());
        if (left.count() <= 0)
            return;
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = POLLIN;
        const int ready =
            ::poll(&pfd, 1, static_cast<int>(left.count()));
        if (ready <= 0) {
            if (ready < 0 && errno == EINTR)
                continue;
            return;
        }
        char chunk[4096];
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return;
        }
        request.append(chunk, static_cast<std::size_t>(n));
    }

    // "GET <target> HTTP/1.x" — the only line we care about.
    const std::size_t eol = request.find('\n');
    std::string line = request.substr(0, eol);
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    std::string method, target;
    const std::size_t sp1 = line.find(' ');
    if (sp1 != std::string::npos) {
        method = line.substr(0, sp1);
        const std::size_t sp2 = line.find(' ', sp1 + 1);
        target = line.substr(sp1 + 1, sp2 == std::string::npos
                                          ? std::string::npos
                                          : sp2 - sp1 - 1);
    }
    if (method != "GET") {
        send_all(fd, http_response("405 Method Not Allowed",
                                   "text/plain",
                                   "only GET is supported\n"));
        return;
    }
    std::string content_type;
    const std::string body = handle(target, content_type);
    if (content_type.empty()) {
        send_all(fd, http_response("404 Not Found", "text/plain",
                                   "unknown path (try /metrics or "
                                   "/healthz)\n"));
        return;
    }
    send_all(fd, http_response("200 OK", content_type, body));
}

} // namespace elv::srv
