/**
 * @file
 * Minimal HTTP/1.0 responder for the daemon's telemetry port.
 *
 * Serves exactly two read-only endpoints on a second port, separate
 * from the JSON-line control port so scrapes can never contend with
 * job traffic or trip admission control:
 *
 *   GET /metrics  -> Prometheus text exposition (obs/exposition.hpp),
 *                    including EWMA `_rate` gauges fed by the scrapes
 *                    themselves
 *   GET /healthz  -> the server's health JSON document
 *
 * The implementation is deliberately not a web server: one accept
 * loop thread (same 200 ms poll-tick pattern as `TcpServer::run`),
 * each connection handled inline under a hard read deadline and
 * byte cap, response written, connection closed. A scraper is a
 * well-behaved machine client; a slow or malicious peer costs at most
 * one deadline, never a thread or unbounded memory.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/exposition.hpp"
#include "server/server.hpp"

namespace elv::srv {

struct HttpConfig
{
    std::string host = "127.0.0.1";
    /** 0 = ephemeral (query the bound port with port()). */
    std::uint16_t port = 0;
};

/** Owns its serving thread: constructing starts it, destroying joins. */
class MetricsHttpServer
{
  public:
    /** Binds and starts serving; fatal() when the port cannot bind. */
    MetricsHttpServer(Server &server, const HttpConfig &config);
    ~MetricsHttpServer();

    MetricsHttpServer(const MetricsHttpServer &) = delete;
    MetricsHttpServer &operator=(const MetricsHttpServer &) = delete;

    void stop();

    /** The bound port (resolves an ephemeral request). */
    std::uint16_t port() const { return port_; }

    /** Response document for a request target ("/metrics", ...). The
     * transport-free core, also what the tests drive directly. */
    std::string handle(const std::string &target, std::string &content_type);

  private:
    void serve_loop();
    void handle_connection(int fd);

    Server &server_;
    HttpConfig config_;
    obs::Exposition exposition_;
    std::chrono::steady_clock::time_point epoch_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

} // namespace elv::srv
