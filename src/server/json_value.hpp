/**
 * @file
 * Minimal JSON document model + recursive-descent parser for the wire
 * protocol. The obs layer only ever *writes* JSON; the server must also
 * *read* it (requests arrive as one JSON object per line), and a
 * network-facing parser has to reject malformed input without taking
 * the daemon down — parse() therefore reports errors by value, never
 * by throwing.
 *
 * Scope is deliberately small: objects, arrays, strings (with the
 * standard escapes incl. \uXXXX), numbers, booleans, null. Numbers
 * keep their raw token next to the double value so 64-bit integers
 * (seeds) round-trip without the 2^53 precision cliff.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace elv::srv {

/** One parsed JSON value (a tree; cheap enough for protocol lines). */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    /** String payload, or the raw numeric token for Kind::Number. */
    std::string text;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> members;

    bool is_object() const { return kind == Kind::Object; }
    bool is_string() const { return kind == Kind::String; }
    bool is_number() const { return kind == Kind::Number; }

    /** Object member by key, or nullptr (also for non-objects). */
    const JsonValue *get(const std::string &key) const;

    /** @name Typed accessors with defaults (wrong kind = default) @{ */
    std::string as_string(const std::string &fallback = "") const;
    double as_number(double fallback = 0.0) const;
    std::int64_t as_int(std::int64_t fallback = 0) const;
    std::uint64_t as_uint(std::uint64_t fallback = 0) const;
    bool as_bool(bool fallback = false) const;
    /** @} */
};

/**
 * Parse one JSON document. Returns false and sets `error` (with a byte
 * offset) on malformed input; trailing non-whitespace is an error.
 * Depth is bounded so hostile input cannot blow the stack.
 */
bool json_parse(const std::string &text, JsonValue &out,
                std::string &error);

} // namespace elv::srv
