/**
 * @file
 * Crash-safe search-as-a-service core: a bounded job queue with
 * admission control, worker threads that run Elivagar searches under
 * per-job isolation (seeded RNG streams via the job seed, a thread
 * quota handed to the search pool, a wall-clock deadline enforced by
 * cooperative cancellation), and durable state so a `kill -9` at any
 * instant loses no accepted job.
 *
 * Durability model — two layers of append-only checksummed records:
 *
 *  - the *manifest* (`<data_dir>/jobs.manifest`) records every accepted
 *    job spec and every terminal state transition. On startup the
 *    manifest is replayed: jobs whose last state is non-terminal are
 *    re-queued.
 *  - each job's *checkpoint journal* (`<data_dir>/job-N.journal`, the
 *    PR 1 search journal) records per-candidate stages. A re-queued job
 *    resumes from it, so the recovered SearchResult is bit-identical to
 *    an uninterrupted run.
 *
 * Overload ladder (graceful degradation, in escalation order):
 *
 *  1. queue depth >= 1/2 capacity: new jobs start with half their
 *     thread quota; >= 3/4 capacity: quota 1.
 *  2. queue full: submissions are rejected with an explicit
 *     retry-after estimate (admission control — memory stays bounded).
 *  3. queue full + higher-priority arrival: the lowest-priority queued
 *     job is shed with an explicit Rejected state (poll/watch sees
 *     "rejected: shed under overload" — never a silent drop).
 *
 * Shutdown: drain() stops admission and gives in-flight jobs a
 * deadline; jobs that miss it are cancelled in-process but keep their
 * Queued/Running manifest state, so the next start resumes them.
 * stop_hard() (and the destructor) is the crash-equivalent path used
 * by tests: abandon everything immediately, recording nothing.
 *
 * Thread safety: every public method is safe to call from any thread
 * (the TCP transport calls them from per-connection threads).
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "obs/events.hpp"
#include "obs/trace.hpp"
#include "server/job.hpp"

namespace elv::srv {

/** Daemon-level knobs. */
struct ServerConfig
{
    /** Directory for the manifest, journals, results and reports. */
    std::string data_dir;
    /** Bounded queue: submissions past this are rejected, never held. */
    std::size_t queue_capacity = 16;
    /** Concurrent jobs (worker threads). */
    int workers = 1;
    /**
     * Total simulator threads shared by concurrent jobs; each job's
     * quota is carved from this by the overload ladder. 0 = one per
     * hardware thread.
     */
    int thread_budget = 0;
    /** Enable the global metrics registry for the metrics endpoint. */
    bool metrics = false;
    /** Retry-after floor reported on rejected submissions (ms). */
    double default_retry_after_ms = 1000.0;

    void check() const;
};

/** Outcome of a submission: accepted with an id, or explicit reject. */
struct SubmitOutcome
{
    bool accepted = false;
    /** Job id ("job-N"), valid when accepted. */
    std::string id;
    /** Rejection reason, valid when not accepted. */
    std::string error;
    /** Suggested client backoff before retrying (0 = do not retry). */
    double retry_after_ms = 0.0;
};

/** Point-in-time public view of one job. */
struct JobStatusSnapshot
{
    std::string id;
    JobSpec spec;
    JobState state = JobState::Queued;
    /** Current pipeline phase while running ("generate", "cnr", ...). */
    std::string phase;
    /** Per-candidate progress within the phase. */
    std::size_t done = 0, total = 0;
    /** Failure text / cancel reason / shed explanation. */
    std::string detail;
    /** Thread quota the job runs with (0 until scheduled). */
    int thread_quota = 0;
    /** Job was re-queued from the manifest after a restart. */
    bool recovered = false;
    /** The search replayed journaled stages when it ran. */
    bool search_resumed = false;
    /** Composite score of the winner (valid when completed). */
    double best_score = 0.0;
    /** Path of the job's trace artifact (empty until written). */
    std::string trace_path;
};

/** The service core (transport-agnostic; see tcp.hpp for the wire). */
class Server
{
  public:
    /** Recovers from `config.data_dir` and starts the workers. */
    explicit Server(const ServerConfig &config);

    /** Equivalent to stop_hard(): abandoned jobs stay resumable. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Admission-controlled submit; never blocks on a full queue. */
    SubmitOutcome submit(const JobSpec &spec);

    /** Snapshot of one job, or nullopt for an unknown id. */
    std::optional<JobStatusSnapshot> status(const std::string &id) const;

    /** Snapshots of every known job, in submission order. */
    std::vector<JobStatusSnapshot> jobs() const;

    /**
     * Cancel a queued or running job (cooperative; a running job
     * unwinds at its next checkpoint). True unless the id is unknown;
     * cancelling a terminal job is a harmless no-op.
     */
    bool cancel(const std::string &id);

    /**
     * The completed job's result document (one JSON object), or
     * nullopt when the job is unknown or not completed.
     */
    std::optional<std::string> result_json(const std::string &id) const;

    /** Server-wide health: queue, workers, lifetime tallies. */
    std::string health_json() const;

    /** health + a snapshot of the global metrics registry. */
    std::string metrics_json() const;

    /**
     * Operational events after sequence `cursor` (0 = oldest held),
     * newest-clipped to `limit`. Readers page with the returned
     * last_seq and detect loss via first_seq.
     */
    obs::EventSlice events_since(std::uint64_t cursor,
                                 std::size_t limit) const;

    /** events_since rendered as one JSON object. */
    std::string events_json(std::uint64_t cursor,
                            std::size_t limit) const;

    /**
     * Graceful shutdown: stop admission, let in-flight jobs run for up
     * to `deadline_sec`, cancel the rest (they stay resumable), then
     * stop the workers. Queued jobs are left queued for the next start.
     */
    void drain(double deadline_sec);

    /**
     * Crash-equivalent stop for tests: cancel in-flight jobs and join
     * workers WITHOUT recording terminal states, exactly as if the
     * process had died. A new Server on the same data_dir re-queues
     * and resumes everything that was in flight.
     */
    void stop_hard();

    /** @name Change notification (watch/streaming support) @{ */
    /** Monotonic counter bumped on every observable state change. */
    std::uint64_t change_epoch() const;
    /**
     * Block until the epoch differs from `last_seen`, the timeout
     * elapses, or the server stops; returns the current epoch.
     */
    std::uint64_t wait_for_change(std::uint64_t last_seen,
                                  double timeout_sec) const;
    /** @} */

    /** Simulator threads currently granted to running jobs. */
    int threads_in_use() const;

    bool draining() const;
    const ServerConfig &config() const { return config_; }

  private:
    struct JobRecord
    {
        std::string id;
        std::uint64_t number = 0;
        JobSpec spec;
        JobState state = JobState::Queued;
        std::string phase;
        std::size_t done = 0, total = 0;
        std::string detail;
        int thread_quota = 0;
        bool recovered = false;
        bool search_resumed = false;
        /** Set under mutex_ before the token trips for shutdown, so
         * run_job can tell "abandoned" from a real cancel. */
        bool abandoned = false;
        double best_score = 0.0;
        std::shared_ptr<elv::CancelToken> token;
        /** @name Per-job trace context (epoch = admission time) @{ */
        std::chrono::steady_clock::time_point submitted_at;
        std::shared_ptr<obs::SpanLog> trace;
        /** Open phase span while running (mutated under mutex_). */
        std::string trace_phase;
        double trace_phase_start_us = 0.0;
        /** The .trace.json artifact exists (links in status/result). */
        bool trace_written = false;
        /** @} */
    };
    using RecordPtr = std::shared_ptr<JobRecord>;

    void recover_from_manifest();
    void append_manifest_locked(const std::string &body);
    void record_state_locked(JobRecord &rec, JobState state,
                             const std::string &detail);
    void bump_epoch_locked();
    /** Overload-ladder thread quota for the given queue depth. */
    int quota_for_depth_locked(std::size_t depth) const;
    /** Emit a ladder.level event when the queue depth crosses a rung. */
    void note_ladder_locked();
    double retry_after_estimate_locked() const;
    RecordPtr pop_best_locked();
    void worker_loop();
    void run_job(const RecordPtr &rec);
    void stop_workers(bool abandon_running);

    std::string job_path(const std::string &id,
                         const char *suffix) const;
    JobStatusSnapshot snapshot_locked(const JobRecord &rec) const;

    ServerConfig config_;
    int thread_budget_ = 1;

    mutable std::mutex mutex_;
    mutable std::condition_variable cv_;
    std::map<std::uint64_t, RecordPtr> records_; // keyed by number
    std::vector<RecordPtr> queue_;
    std::vector<std::thread> workers_;
    std::uint64_t next_number_ = 1;
    std::uint64_t epoch_ = 0;
    int running_ = 0;
    int threads_in_use_ = 0;
    bool draining_ = false;
    bool stopping_ = false;
    bool stopped_ = false;

    /** Lifetime tallies (health endpoint). */
    std::uint64_t submitted_ = 0, completed_ = 0, failed_ = 0,
                  cancelled_ = 0, rejected_ = 0, shed_ = 0,
                  recovered_ = 0;
    /** EWMA of completed-job wall time (retry-after estimates). */
    double job_ms_ewma_ = 0.0;

    /** Operational event ring (its own lock; safe under mutex_). */
    obs::EventRing events_{256};
    /** Current degradation rung (0 full, 1 half, 2 min quota). */
    int ladder_level_ = 0;

    std::chrono::steady_clock::time_point start_time_;
};

} // namespace elv::srv
