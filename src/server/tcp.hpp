/**
 * @file
 * TCP transport for the search service: line-delimited JSON over a
 * loopback (by default) socket. One thread per connection, with a hard
 * connection cap and a per-line byte cap so a hostile or broken client
 * can neither exhaust threads nor buffer unbounded input; over-cap
 * connections get an explicit JSON error line, never a silent hang.
 *
 * The transport owns no job state — it parses lines and calls the
 * Server core (see protocol.hpp). "watch" requests hold their
 * connection and stream one status line per observable change until
 * the watched job reaches a terminal state.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <thread>

#include "server/server.hpp"

namespace elv::srv {

/** Transport knobs. */
struct TcpConfig
{
    /** Bind address; keep the default unless you mean to be reachable. */
    std::string host = "127.0.0.1";
    /** Bind port; 0 picks a free port (see TcpServer::port()). */
    std::uint16_t port = 0;
    /** Honour {"op":"shutdown"} requests from clients. */
    bool allow_shutdown = false;
    /** Concurrent connections; the excess is rejected explicitly. */
    std::size_t max_connections = 64;
    /** Per-request line cap (bytes); longer lines end the connection. */
    std::size_t max_line_bytes = 64 * 1024;
};

/** Accept loop + per-connection threads in front of a Server core. */
class TcpServer
{
  public:
    /** Binds and listens immediately; fatal() when the bind fails. */
    TcpServer(Server &server, const TcpConfig &config);

    /** Stops the loop and joins every connection thread. */
    ~TcpServer();

    TcpServer(const TcpServer &) = delete;
    TcpServer &operator=(const TcpServer &) = delete;

    /** The bound port (the chosen one when config.port was 0). */
    std::uint16_t port() const { return port_; }

    /**
     * Accept loop. Returns when stop() is called or a permitted
     * shutdown request arrives; in-flight connections are then closed
     * and joined. Callers typically run this on the main thread and
     * call stop() from a signal-watching thread.
     */
    void run();

    /**
     * Ask run() to return; safe from any thread and from more than
     * one caller. Also half-closes every live connection socket so
     * threads blocked in recv() wake up and exit — without this an
     * idle client would pin the destructor's join forever.
     */
    void stop();

    /** A client requested shutdown (valid after run() returns). */
    bool shutdown_requested() const
    {
        return shutdown_requested_.load();
    }
    /** Drain budget from the shutdown request. */
    double shutdown_drain_sec() const
    {
        return shutdown_drain_sec_.load();
    }

  private:
    struct Connection
    {
        std::thread thread;
        /** The socket; -1 once the owning thread has closed it.
         * Guarded by conns_mutex_ so stop() never shuts down a
         * recycled descriptor. */
        int fd = -1;
        std::atomic<bool> done{false};
    };

    void handle_connection(int fd);
    void watch_job(int fd, const std::string &id);
    /** Join finished connection threads (called from the accept loop). */
    void reap_locked();

    Server &server_;
    TcpConfig config_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;

    std::mutex conns_mutex_;
    std::list<Connection> conns_;
    std::atomic<std::size_t> active_{0};

    std::atomic<bool> stop_{false};
    std::atomic<bool> shutdown_requested_{false};
    // Atomic: written by a connection thread, read by the thread that
    // ran run() — which may have left run() via a concurrent stop()
    // rather than by observing this connection's stop_ store.
    std::atomic<double> shutdown_drain_sec_{0.0};
};

/** @name Blocking client helpers (CLI client mode, tests) @{ */

/** One TCP connection speaking the line protocol. */
class Client
{
  public:
    /** Connects; sets `error` and leaves the client closed on failure. */
    Client(const std::string &host, std::uint16_t port,
           std::string &error);
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    bool connected() const { return fd_ >= 0; }

    /** Send one request line, wait for the one response line. */
    bool request(const std::string &line, std::string &response,
                 std::string &error);

    /** Send one line (request() for streaming ops like watch). */
    bool send_line(const std::string &line, std::string &error);

    /**
     * Read the next line; false at EOF or error. `timeout_sec` <= 0
     * blocks indefinitely.
     */
    bool read_line(std::string &line, std::string &error,
                   double timeout_sec = 0.0);

  private:
    int fd_ = -1;
    std::string buffer_;
};

/** @} */

} // namespace elv::srv
