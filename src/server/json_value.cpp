#include "server/json_value.hpp"

#include <cctype>
#include <cstdlib>

namespace elv::srv {

namespace {

/** Recursive-descent parser over a byte range; no exceptions. */
class Parser
{
  public:
    Parser(const std::string &text, std::string &error)
        : text_(text), error_(error)
    {
    }

    bool
    run(JsonValue &out)
    {
        skip_ws();
        if (!parse_value(out, 0))
            return false;
        skip_ws();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    /** Hostile-input guard: protocol documents are never this deep. */
    static constexpr int kMaxDepth = 32;

    bool
    fail(const std::string &what)
    {
        error_ = what + " at byte " + std::to_string(pos_);
        return false;
    }

    void
    skip_ws()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (text_.compare(pos_, len, word) != 0)
            return fail(std::string("bad literal, expected '") + word +
                        "'");
        pos_ += len;
        return true;
    }

    bool
    parse_value(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of document");
        const char c = text_[pos_];
        switch (c) {
        case '{':
            return parse_object(out, depth);
        case '[':
            return parse_array(out, depth);
        case '"':
            out.kind = JsonValue::Kind::String;
            return parse_string(out.text);
        case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true", 4);
        case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false", 5);
        case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null", 4);
        default:
            return parse_number(out);
        }
    }

    bool
    parse_object(JsonValue &out, int depth)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skip_ws();
        if (consume('}'))
            return true;
        while (true) {
            skip_ws();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key string");
            std::string key;
            if (!parse_string(key))
                return false;
            skip_ws();
            if (!consume(':'))
                return fail("expected ':' after object key");
            skip_ws();
            JsonValue value;
            if (!parse_value(value, depth + 1))
                return false;
            out.members[key] = std::move(value);
            skip_ws();
            if (consume(','))
                continue;
            if (consume('}'))
                return true;
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parse_array(JsonValue &out, int depth)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skip_ws();
        if (consume(']'))
            return true;
        while (true) {
            skip_ws();
            JsonValue value;
            if (!parse_value(value, depth + 1))
                return false;
            out.items.push_back(std::move(value));
            skip_ws();
            if (consume(','))
                continue;
            if (consume(']'))
                return true;
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parse_string(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            const unsigned char c =
                static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                if (++pos_ >= text_.size())
                    break;
                switch (text_[pos_]) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (!append_unicode(out))
                        return false;
                    break;
                }
                default:
                    return fail("bad escape sequence");
                }
                ++pos_;
                continue;
            }
            if (c < 0x20)
                return fail("unescaped control character in string");
            out += static_cast<char>(c);
            ++pos_;
        }
        return fail("unterminated string");
    }

    /** \uXXXX (BMP only; surrogate pairs rejected) encoded as UTF-8. */
    bool
    append_unicode(std::string &out)
    {
        if (pos_ + 4 >= text_.size())
            return fail("truncated \\u escape");
        unsigned value = 0;
        for (int i = 1; i <= 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            value <<= 4;
            if (h >= '0' && h <= '9')
                value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
                value |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
                value |= static_cast<unsigned>(h - 'A' + 10);
            else
                return fail("bad \\u escape digit");
        }
        if (value >= 0xd800 && value <= 0xdfff)
            return fail("surrogate \\u escapes are not supported");
        if (value < 0x80) {
            out += static_cast<char>(value);
        } else if (value < 0x800) {
            out += static_cast<char>(0xc0 | (value >> 6));
            out += static_cast<char>(0x80 | (value & 0x3f));
        } else {
            out += static_cast<char>(0xe0 | (value >> 12));
            out += static_cast<char>(0x80 | ((value >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (value & 0x3f));
        }
        pos_ += 4;
        return true;
    }

    bool
    parse_number(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (consume('-')) {
        }
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (consume('.'))
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (token.empty() || end != token.c_str() + token.size()) {
            pos_ = start;
            return fail("bad numeric token");
        }
        out.kind = JsonValue::Kind::Number;
        out.number = value;
        out.text = token;
        return true;
    }

    const std::string &text_;
    std::string &error_;
    std::size_t pos_ = 0;
};

} // namespace

const JsonValue *
JsonValue::get(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    const auto it = members.find(key);
    return it == members.end() ? nullptr : &it->second;
}

std::string
JsonValue::as_string(const std::string &fallback) const
{
    return kind == Kind::String ? text : fallback;
}

double
JsonValue::as_number(double fallback) const
{
    return kind == Kind::Number ? number : fallback;
}

std::int64_t
JsonValue::as_int(std::int64_t fallback) const
{
    if (kind != Kind::Number)
        return fallback;
    // Integer tokens re-parse from the raw text so values past 2^53
    // stay exact; anything fractional falls back to the double.
    char *end = nullptr;
    const long long exact = std::strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() + text.size())
        return exact;
    return static_cast<std::int64_t>(number);
}

std::uint64_t
JsonValue::as_uint(std::uint64_t fallback) const
{
    if (kind != Kind::Number)
        return fallback;
    char *end = nullptr;
    const unsigned long long exact =
        std::strtoull(text.c_str(), &end, 10);
    if (!text.empty() && text[0] != '-' &&
        end == text.c_str() + text.size())
        return exact;
    if (number < 0)
        return fallback;
    return static_cast<std::uint64_t>(number);
}

bool
JsonValue::as_bool(bool fallback) const
{
    return kind == Kind::Bool ? boolean : fallback;
}

bool
json_parse(const std::string &text, JsonValue &out, std::string &error)
{
    Parser parser(text, error);
    out = JsonValue{};
    return parser.run(out);
}

} // namespace elv::srv
