#include "server/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/logging.hpp"
#include "obs/json.hpp"
#include "server/protocol.hpp"

namespace elv::srv {

namespace {

/** Write the whole buffer plus a newline; false on a broken peer. */
bool
send_all_line(int fd, const std::string &line)
{
    std::string framed = line;
    framed.push_back('\n');
    std::size_t sent = 0;
    while (sent < framed.size()) {
        const ssize_t n =
            ::send(fd, framed.data() + sent, framed.size() - sent,
                   MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

/** Pop one complete line off `buffer` (terminators stripped);
 * false when no full line has arrived yet. */
bool
extract_line(std::string &buffer, std::string &line)
{
    const std::size_t eol = buffer.find('\n');
    if (eol == std::string::npos)
        return false;
    line = buffer.substr(0, eol);
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    buffer.erase(0, eol + 1);
    return true;
}

/**
 * Read one '\n'-terminated line into `line` (terminator stripped),
 * buffering leftovers in `buffer`. Returns false on EOF/error, and
 * fails the connection outright past `max_bytes` — a peer that never
 * sends a newline must not grow our memory.
 */
bool
recv_line(int fd, std::string &buffer, std::string &line,
          std::size_t max_bytes)
{
    while (true) {
        if (extract_line(buffer, line))
            return true;
        if (buffer.size() > max_bytes)
            return false;
        char chunk[4096];
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n == 0)
            return false;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
    }
}

std::string
transport_error_line(const std::string &what)
{
    obs::JsonWriter json;
    json.begin_object();
    json.kv("ok", false);
    json.kv("error", what);
    json.end_object();
    return json.str();
}

} // namespace

TcpServer::TcpServer(Server &server, const TcpConfig &config)
    : server_(server), config_(config)
{
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        elv::fatal("cannot create server socket: " +
                   std::string(std::strerror(errno)));
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1)
        elv::fatal("bad bind address: " + config_.host);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0)
        elv::fatal("cannot bind " + config_.host + ":" +
                   std::to_string(config_.port) + ": " +
                   std::string(std::strerror(errno)));
    if (::listen(listen_fd_, 16) != 0)
        elv::fatal("cannot listen: " +
                   std::string(std::strerror(errno)));

    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&bound),
                      &len) == 0)
        port_ = ntohs(bound.sin_port);
}

TcpServer::~TcpServer()
{
    stop();
    // Join without holding conns_mutex_: a live connection thread
    // takes it to invalidate its fd on the way out, so joining under
    // the lock would deadlock. Swapping the list keeps the nodes (and
    // the `conn` references the threads hold) alive.
    std::list<Connection> conns;
    {
        std::lock_guard<std::mutex> lock(conns_mutex_);
        conns.swap(conns_);
    }
    for (Connection &conn : conns)
        if (conn.thread.joinable())
            conn.thread.join();
    if (listen_fd_ >= 0)
        ::close(listen_fd_);
}

void
TcpServer::stop()
{
    stop_.store(true);
    // Half-close every live connection so threads blocked in recv()
    // see EOF and exit; otherwise an idle client would block the
    // destructor's join indefinitely.
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (Connection &conn : conns_)
        if (conn.fd >= 0)
            ::shutdown(conn.fd, SHUT_RDWR);
}

void
TcpServer::reap_locked()
{
    for (auto it = conns_.begin(); it != conns_.end();) {
        if (it->done.load()) {
            if (it->thread.joinable())
                it->thread.join();
            it = conns_.erase(it);
        } else {
            ++it;
        }
    }
}

void
TcpServer::run()
{
    while (!stop_.load()) {
        pollfd pfd{};
        pfd.fd = listen_fd_;
        pfd.events = POLLIN;
        // Short poll tick so stop() and signal handlers are honoured
        // promptly even when no client ever connects.
        const int ready = ::poll(&pfd, 1, 200);
        if (ready < 0 && errno != EINTR)
            break;
        if (ready <= 0 || !(pfd.revents & POLLIN))
            continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        if (active_.load() >= config_.max_connections) {
            // Explicit rejection, mirroring job admission control.
            send_all_line(
                fd, transport_error_line("too many connections"));
            ::close(fd);
            continue;
        }
        std::lock_guard<std::mutex> lock(conns_mutex_);
        reap_locked();
        conns_.emplace_back();
        Connection &conn = conns_.back();
        conn.fd = fd;
        ++active_;
        conn.thread = std::thread([this, fd, &conn] {
            handle_connection(fd);
            {
                // Invalidate before close so a concurrent stop()
                // cannot shutdown() a recycled descriptor.
                std::lock_guard<std::mutex> inner(conns_mutex_);
                conn.fd = -1;
            }
            ::close(fd);
            --active_;
            conn.done.store(true);
        });
    }
}

void
TcpServer::handle_connection(int fd)
{
    std::string buffer, line;
    while (!stop_.load() &&
           recv_line(fd, buffer, line, config_.max_line_bytes)) {
        if (line.empty())
            continue;
        const RequestOutcome outcome =
            handle_request(server_, line, config_.allow_shutdown);
        if (!send_all_line(fd, outcome.response))
            return;
        if (outcome.action == RequestAction::Watch) {
            watch_job(fd, outcome.watch_id);
        } else if (outcome.action == RequestAction::Shutdown) {
            shutdown_drain_sec_.store(outcome.drain_sec);
            shutdown_requested_.store(true);
            stop_.store(true);
            return;
        }
    }
}

void
TcpServer::watch_job(int fd, const std::string &id)
{
    std::uint64_t epoch = server_.change_epoch();
    while (!stop_.load()) {
        const auto snap = server_.status(id);
        if (!snap)
            return;
        if (!send_all_line(fd, status_json(*snap)))
            return;
        if (job_state_terminal(snap->state))
            return;
        // Wake on any state change; the timeout keeps the stop flag
        // honoured even on an idle server.
        epoch = server_.wait_for_change(epoch, 0.5);
    }
}

Client::Client(const std::string &host, std::uint16_t port,
               std::string &error)
{
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        error = std::strerror(errno);
        return;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        error = "bad address: " + host;
        ::close(fd_);
        fd_ = -1;
        return;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        error = std::strerror(errno);
        ::close(fd_);
        fd_ = -1;
    }
}

Client::~Client()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
Client::send_line(const std::string &line, std::string &error)
{
    if (fd_ < 0) {
        error = "not connected";
        return false;
    }
    if (!send_all_line(fd_, line)) {
        error = "connection lost while sending";
        return false;
    }
    return true;
}

bool
Client::read_line(std::string &line, std::string &error,
                  double timeout_sec)
{
    if (fd_ < 0) {
        error = "not connected";
        return false;
    }
    constexpr std::size_t max_bytes = 1024 * 1024;
    if (timeout_sec <= 0.0) {
        if (!recv_line(fd_, buffer_, line, max_bytes)) {
            error = "connection closed by the server";
            return false;
        }
        return true;
    }
    // The deadline covers the whole line, not just the first byte: a
    // server that stalls mid-line must not hang the client past its
    // requested timeout.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_sec));
    while (true) {
        if (extract_line(buffer_, line))
            return true;
        if (buffer_.size() > max_bytes) {
            error = "response line too long";
            return false;
        }
        const auto left = std::chrono::duration_cast<
            std::chrono::milliseconds>(deadline -
                                       std::chrono::steady_clock::now());
        if (left.count() <= 0) {
            error = "timed out waiting for the server";
            return false;
        }
        pollfd pfd{};
        pfd.fd = fd_;
        pfd.events = POLLIN;
        const int ready =
            ::poll(&pfd, 1, static_cast<int>(left.count()));
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            error = std::strerror(errno);
            return false;
        }
        if (ready == 0) {
            error = "timed out waiting for the server";
            return false;
        }
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n == 0) {
            error = "connection closed by the server";
            return false;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = std::strerror(errno);
            return false;
        }
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

bool
Client::request(const std::string &line, std::string &response,
                std::string &error)
{
    return send_line(line, error) && read_line(response, error);
}

} // namespace elv::srv
