/**
 * @file
 * Wire protocol of the search service: line-delimited JSON over a byte
 * stream. Every request is one JSON object on one line with an "op"
 * field; every response is one JSON object on one line with an "ok"
 * field. The protocol layer is transport-agnostic and side-effect-free
 * beyond the Server calls it makes, so tests drive it without sockets.
 *
 * Operations:
 *
 *   {"op":"submit","spec":{...JobSpec...}}
 *     -> {"ok":true,"id":"job-3"}
 *     -> {"ok":false,"error":"queue full","retry_after_ms":2500}
 *   {"op":"status","id":"job-3"}        job snapshot (or every job
 *   {"op":"jobs"}                        when no id is given)
 *   {"op":"cancel","id":"job-3"}
 *   {"op":"result","id":"job-3"}        completed job's result doc
 *   {"op":"health"} / {"op":"metrics"}
 *   {"op":"events","since":S,"limit":N} operational events with
 *                                        seq > S (default 0, newest-
 *                                        clipped to N, default 64)
 *   {"op":"watch","id":"job-3"}         transport streams one status
 *                                        line per state change until
 *                                        the job is terminal
 *   {"op":"shutdown","drain_sec":N}     only when the daemon allows it
 *
 * Unknown ops and malformed JSON get {"ok":false,"error":...} — a bad
 * client cannot crash or wedge the daemon.
 */
#pragma once

#include <string>

#include "server/server.hpp"

namespace elv::srv {

/** What the transport should do after writing the response line. */
enum class RequestAction {
    /** Just send the response. */
    Reply,
    /** Send it, then stream status lines until the job is terminal. */
    Watch,
    /** Send it, then begin daemon shutdown. */
    Shutdown,
};

/** A handled request: the response line plus transport instructions. */
struct RequestOutcome
{
    std::string response;
    RequestAction action = RequestAction::Reply;
    /** Job id to stream (valid when action == Watch). */
    std::string watch_id;
    /** Drain budget requested by a shutdown op. */
    double drain_sec = 0.0;
};

/**
 * Parse and execute one request line against `server`. Never throws:
 * every failure becomes an {"ok":false,...} response. Shutdown requests
 * are only honoured when `allow_shutdown` is set (the transport decides
 * who may stop the daemon); otherwise they are rejected like any other
 * bad request.
 */
RequestOutcome handle_request(Server &server, const std::string &line,
                              bool allow_shutdown);

/** One job snapshot rendered as a single-line JSON object. */
std::string status_json(const JobStatusSnapshot &snap);

/** @name Client-side request builders (single line, no newline) @{ */
std::string make_submit_request(const JobSpec &spec);
std::string make_status_request(const std::string &id);
std::string make_jobs_request();
std::string make_cancel_request(const std::string &id);
std::string make_result_request(const std::string &id);
std::string make_watch_request(const std::string &id);
std::string make_health_request();
std::string make_metrics_request();
std::string make_events_request(std::uint64_t since = 0,
                                std::size_t limit = 64);
std::string make_shutdown_request(double drain_sec);
/** @} */

} // namespace elv::srv
