#include "server/server.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "circuit/serialize.hpp"
#include "common/logging.hpp"
#include "core/checkpoint.hpp"
#include "core/run_report.hpp"
#include "device/device.hpp"
#include "dist/coordinator.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/cpu_features.hpp"

namespace elv::srv {

namespace {

/** Manifest header line (format version 1). */
constexpr const char *kManifestHeader = "elv-server-manifest 1";

double
seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Microseconds since `start` — trace-span timestamps. */
double
us_since(std::chrono::steady_clock::time_point start)
{
    return seconds_since(start) * 1e6;
}

const std::vector<double> &
job_seconds_edges()
{
    static const std::vector<double> edges{0.01, 0.05, 0.1,  0.5,  1.0,
                                           5.0,  15.0, 60.0, 300.0};
    return edges;
}

bool
known_benchmark(const std::string &name)
{
    for (const auto &spec : qml::benchmark_table())
        if (spec.name == name)
            return true;
    return false;
}

bool
known_device(const std::string &name)
{
    for (const auto &entry : dev::device_catalog())
        if (entry == name)
            return true;
    return false;
}

/** Write `doc` to `path` atomically (tmp + rename). */
bool
write_file_atomic(const std::string &path, const std::string &doc)
{
    const std::string tmp = path + ".tmp";
    std::FILE *file = std::fopen(tmp.c_str(), "w");
    if (!file)
        return false;
    const bool ok =
        std::fwrite(doc.data(), 1, doc.size(), file) == doc.size() &&
        std::fputc('\n', file) != EOF;
    std::fclose(file);
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace

void
ServerConfig::check() const
{
    if (data_dir.empty())
        elv::fatal("server needs a data directory");
    if (queue_capacity < 1)
        elv::fatal("server queue capacity must be >= 1");
    if (workers < 1)
        elv::fatal("server needs at least one worker");
    if (thread_budget < 0)
        elv::fatal("server thread budget must be >= 0");
    if (default_retry_after_ms < 0.0)
        elv::fatal("server retry-after must be non-negative");
}

Server::Server(const ServerConfig &config)
    : config_(config), start_time_(std::chrono::steady_clock::now())
{
    config_.check();
    thread_budget_ = config_.thread_budget > 0
                         ? config_.thread_budget
                         : par::ThreadPool::hardware_threads();
    std::filesystem::create_directories(config_.data_dir);
    if (config_.metrics)
        obs::Registry::global().set_enabled(true);
    recover_from_manifest();
    workers_.reserve(static_cast<std::size_t>(config_.workers));
    for (int w = 0; w < config_.workers; ++w)
        workers_.emplace_back([this] { worker_loop(); });
}

Server::~Server()
{
    stop_hard();
}

std::string
Server::job_path(const std::string &id, const char *suffix) const
{
    return config_.data_dir + "/" + id + suffix;
}

void
Server::bump_epoch_locked()
{
    ++epoch_;
    cv_.notify_all();
}

void
Server::append_manifest_locked(const std::string &body)
{
    const std::string path = config_.data_dir + "/jobs.manifest";
    const bool fresh = !std::filesystem::exists(path) ||
                       std::filesystem::file_size(path) == 0;
    std::ofstream out(path, std::ios::app);
    if (!out)
        elv::fatal("cannot append to manifest " + path);
    if (fresh)
        out << kManifestHeader << "\n";
    out << core::record_with_checksum(body) << "\n";
    out.flush();
    if (!out)
        elv::fatal("failed to append to manifest " + path);
}

void
Server::record_state_locked(JobRecord &rec, JobState state,
                            const std::string &detail)
{
    rec.state = state;
    rec.detail = detail;
    std::string body = std::string("state ") + rec.id + " " +
                       job_state_name(state);
    if (!detail.empty())
        body += " " + detail;
    append_manifest_locked(body);
    bump_epoch_locked();
}

void
Server::recover_from_manifest()
{
    const std::string path = config_.data_dir + "/jobs.manifest";
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return;

    std::string line;
    if (!std::getline(in, line))
        return;
    if (line != kManifestHeader) {
        // Torn header with nothing after it = empty manifest; with
        // records after it = corruption (same policy as the journal).
        if (std::getline(in, line))
            elv::fatal("manifest " + path + ": bad header");
        elv::warn("manifest " + path + ": dropping torn header");
        in.close();
        std::filesystem::resize_file(path, 0);
        return;
    }

    struct Recovered
    {
        JobSpec spec;
        JobState state = JobState::Queued;
        std::string detail;
        bool have_spec = false;
    };
    std::map<std::uint64_t, Recovered> seen;

    auto parse_line = [&](std::string &record) -> bool {
        std::istringstream ls(record);
        std::string keyword, id;
        ls >> keyword >> id;
        if (id.rfind("job-", 0) != 0)
            return false;
        char *end = nullptr;
        const std::uint64_t number =
            std::strtoull(id.c_str() + 4, &end, 10);
        if (*end != '\0' || number == 0)
            return false;
        if (keyword == "job") {
            std::string spec_json;
            std::getline(ls >> std::ws, spec_json);
            JsonValue value;
            std::string error;
            JobSpec spec;
            if (!json_parse(spec_json, value, error) ||
                !JobSpec::from_json(value, spec, error))
                return false;
            Recovered &r = seen[number];
            r.spec = spec;
            r.have_spec = true;
            return true;
        }
        if (keyword == "state") {
            std::string name;
            ls >> name;
            const auto state = job_state_from_name(name);
            if (!state)
                return false;
            Recovered &r = seen[number];
            std::getline(ls >> std::ws, r.detail);
            r.state = *state;
            return true;
        }
        return false;
    };

    // Same torn-tail policy as the search journal: a record damaged at
    // any byte offset fails its checksum; final = crash artifact
    // (drop + truncate), interior = corruption.
    std::streampos line_start = in.tellg();
    std::streampos torn_at(-1);
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (!line.empty() &&
            !(core::strip_record_checksum(line) && parse_line(line))) {
            torn_at = line_start;
            if (std::getline(in, line))
                elv::fatal("manifest " + path + ": corrupt record");
            break;
        }
        line_start = in.tellg();
    }
    in.close();
    if (torn_at >= std::streampos(0)) {
        elv::warn("manifest " + path +
                  ": dropping record torn by an interrupted write");
        std::filesystem::resize_file(
            path, static_cast<std::uintmax_t>(torn_at));
    }

    for (auto &[number, r] : seen) {
        if (!r.have_spec)
            continue; // state record for a job whose spec line tore
        auto rec = std::make_shared<JobRecord>();
        rec->number = number;
        rec->id = "job-" + std::to_string(number);
        rec->spec = r.spec;
        rec->token = std::make_shared<elv::CancelToken>();
        next_number_ = std::max(next_number_, number + 1);
        if (job_state_terminal(r.state)) {
            rec->state = r.state;
            rec->detail = r.detail;
            if (r.state == JobState::Completed) {
                // Status fields like best_score live in the result
                // document, not the manifest; rehydrate them.
                std::ifstream doc(job_path(rec->id, ".result.json"),
                                  std::ios::binary);
                std::ostringstream text;
                text << doc.rdbuf();
                JsonValue value;
                std::string error;
                if (doc && json_parse(text.str(), value, error)) {
                    if (const JsonValue *v = value.get("best_score"))
                        rec->best_score = v->as_number(0.0);
                    if (const JsonValue *v = value.get("resumed"))
                        rec->search_resumed = v->as_bool(false);
                }
            }
        } else {
            // Interrupted mid-queue or mid-run: re-queue. The job's
            // checkpoint journal replays everything it completed, so
            // the re-run is a resume, not a restart.
            rec->state = JobState::Queued;
            rec->recovered = true;
            rec->detail = "recovered after restart";
            rec->submitted_at = std::chrono::steady_clock::now();
            rec->trace = std::make_shared<obs::SpanLog>();
            queue_.push_back(rec);
            ELV_METRIC_GAUGE_ADD("server.queue.depth", 1);
            ++recovered_;
            events_.emit("job.admitted", rec->id,
                         "recovered after restart");
        }
        records_[number] = rec;
    }
    if (recovered_ > 0)
        elv::inform("server: recovered " + std::to_string(recovered_) +
                    " interrupted job(s) from " + path);
    std::sort(queue_.begin(), queue_.end(),
              [](const RecordPtr &a, const RecordPtr &b) {
                  return a->number < b->number;
              });
    note_ladder_locked();
}

int
Server::quota_for_depth_locked(std::size_t depth) const
{
    int quota = std::max(1, thread_budget_ / config_.workers);
    // Ladder step 1: under backlog pressure every job runs narrower,
    // trading single-job latency for queue drain rate.
    if (depth * 4 >= config_.queue_capacity * 3)
        return 1;
    if (depth * 2 >= config_.queue_capacity)
        quota = std::max(1, quota / 2);
    return quota;
}

void
Server::note_ladder_locked()
{
    // Mirrors the quota thresholds in quota_for_depth_locked; kept as
    // a rung index so the event stream shows each transition once.
    const std::size_t depth = queue_.size();
    int level = 0;
    if (depth * 4 >= config_.queue_capacity * 3)
        level = 2;
    else if (depth * 2 >= config_.queue_capacity)
        level = 1;
    if (level == ladder_level_)
        return;
    static constexpr const char *kRungs[] = {"full-quota", "half-quota",
                                             "min-quota"};
    events_.emit("ladder.level", "",
                 std::string(kRungs[ladder_level_]) + " -> " +
                     kRungs[level] + " (queue " +
                     std::to_string(depth) + "/" +
                     std::to_string(config_.queue_capacity) + ")");
    ladder_level_ = level;
}

double
Server::retry_after_estimate_locked() const
{
    const double per_job =
        job_ms_ewma_ > 0.0 ? job_ms_ewma_ : config_.default_retry_after_ms;
    const double backlog =
        static_cast<double>(queue_.size() + 1) /
        static_cast<double>(config_.workers);
    return std::max(config_.default_retry_after_ms, per_job * backlog);
}

SubmitOutcome
Server::submit(const JobSpec &spec)
{
    SubmitOutcome outcome;
    try {
        spec.check();
    } catch (const elv::UsageError &e) {
        outcome.error = e.what();
        return outcome;
    }
    if (!known_benchmark(spec.benchmark)) {
        outcome.error = "unknown benchmark: " + spec.benchmark;
        return outcome;
    }
    if (!known_device(spec.device)) {
        outcome.error = "unknown device: " + spec.device;
        return outcome;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ || stopping_) {
        outcome.error = "server is draining";
        outcome.retry_after_ms = config_.default_retry_after_ms;
        ELV_METRIC_COUNT("server.jobs.rejected");
        ++rejected_;
        events_.emit("job.rejected", "", outcome.error);
        return outcome;
    }
    if (queue_.size() >= config_.queue_capacity) {
        // Ladder step 3: a higher-priority arrival may displace the
        // lowest-priority queued job — explicitly, with a Rejected
        // state the shed job's owner can observe.
        auto lowest = std::min_element(
            queue_.begin(), queue_.end(),
            [](const RecordPtr &a, const RecordPtr &b) {
                if (a->spec.priority != b->spec.priority)
                    return a->spec.priority < b->spec.priority;
                return a->number > b->number; // shed the newest
            });
        if (lowest != queue_.end() &&
            (*lowest)->spec.priority < spec.priority) {
            const RecordPtr shed = *lowest;
            queue_.erase(lowest);
            ELV_METRIC_GAUGE_ADD("server.queue.depth", -1);
            record_state_locked(
                *shed, JobState::Rejected,
                "shed under overload by a higher-priority job");
            ++shed_;
            ELV_METRIC_COUNT("server.jobs.shed");
            events_.emit("job.shed", shed->id,
                         "displaced by a priority-" +
                             std::to_string(spec.priority) +
                             " submission");
        } else {
            // Ladder step 2: plain admission rejection. No record is
            // allocated, so a submission flood cannot grow memory.
            outcome.error = "queue full";
            outcome.retry_after_ms = retry_after_estimate_locked();
            ++rejected_;
            ELV_METRIC_COUNT("server.jobs.rejected");
            events_.emit("job.rejected", "", outcome.error);
            return outcome;
        }
    }

    auto rec = std::make_shared<JobRecord>();
    rec->number = next_number_++;
    rec->id = "job-" + std::to_string(rec->number);
    rec->spec = spec;
    rec->token = std::make_shared<elv::CancelToken>();
    rec->submitted_at = std::chrono::steady_clock::now();
    rec->trace = std::make_shared<obs::SpanLog>();
    append_manifest_locked("job " + rec->id + " " + spec.to_json());
    records_[rec->number] = rec;
    queue_.push_back(rec);
    ++submitted_;
    ELV_METRIC_COUNT("server.jobs.submitted");
    ELV_METRIC_GAUGE_ADD("server.queue.depth", 1);
    events_.emit("job.admitted", rec->id,
                 "priority=" + std::to_string(spec.priority) +
                     " depth=" + std::to_string(queue_.size()) + "/" +
                     std::to_string(config_.queue_capacity));
    note_ladder_locked();
    bump_epoch_locked();

    outcome.accepted = true;
    outcome.id = rec->id;
    return outcome;
}

Server::RecordPtr
Server::pop_best_locked()
{
    auto best = std::max_element(
        queue_.begin(), queue_.end(),
        [](const RecordPtr &a, const RecordPtr &b) {
            if (a->spec.priority != b->spec.priority)
                return a->spec.priority < b->spec.priority;
            return a->number > b->number; // FIFO within a priority
        });
    RecordPtr rec = *best;
    queue_.erase(best);
    ELV_METRIC_GAUGE_ADD("server.queue.depth", -1);
    return rec;
}

void
Server::worker_loop()
{
    while (true) {
        RecordPtr rec;
        int quota = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] {
                return stopping_ || (!draining_ && !queue_.empty());
            });
            if (stopping_)
                return;
            rec = pop_best_locked();
            quota = quota_for_depth_locked(queue_.size());
            rec->thread_quota = quota;
            rec->state = JobState::Running;
            append_manifest_locked("state " + rec->id + " running");
            ++running_;
            threads_in_use_ += quota;
            ELV_METRIC_GAUGE_ADD("server.jobs.running", 1);
            events_.emit("job.started", rec->id,
                         "quota=" + std::to_string(quota));
            note_ladder_locked();
            bump_epoch_locked();
        }

        const auto job_start = std::chrono::steady_clock::now();
        run_job(rec);

        {
            std::lock_guard<std::mutex> lock(mutex_);
            --running_;
            threads_in_use_ -= quota;
            ELV_METRIC_GAUGE_ADD("server.jobs.running", -1);
            const double ms = seconds_since(job_start) * 1000.0;
            job_ms_ewma_ = job_ms_ewma_ <= 0.0
                               ? ms
                               : 0.7 * job_ms_ewma_ + 0.3 * ms;
            bump_epoch_locked();
        }
    }
}

void
Server::run_job(const RecordPtr &rec)
{
    const std::shared_ptr<elv::CancelToken> token = rec->token;
    token->set_deadline_after(rec->spec.deadline_sec);

    // Trace timeline: µs since admission, so the queue-wait span
    // starts at t=0 and the run picks up where it ends.
    const double run_start_us = us_since(rec->submitted_at);
    rec->trace->add_span("queue.wait", "server", 0.0, run_start_us);
    ELV_METRIC_OBSERVE("server.queue.wait_seconds", job_seconds_edges(),
                       run_start_us / 1e6);

    JobState final_state = JobState::Completed;
    std::string detail;
    bool have_result = false;
    core::SearchResult result;
    core::ElivagarConfig config;

    try {
        const qml::Benchmark bench = qml::make_benchmark(
            rec->spec.benchmark, rec->spec.seed, rec->spec.scale);
        const dev::Device device = dev::make_device(rec->spec.device);
        config = job_search_config(rec->spec, bench.spec,
                                   rec->thread_quota,
                                   job_path(rec->id, ".journal"));
        config.hooks.cancel = token;
        config.hooks.progress = [this, rec](const char *phase,
                                            std::size_t done,
                                            std::size_t total) {
            std::lock_guard<std::mutex> lock(mutex_);
            rec->phase = phase;
            rec->done = done;
            rec->total = total;
            if (rec->trace_phase != phase) {
                // Phase transition: close the open span, start the
                // next. Spans land in the job's own timeline.
                const double now_us = us_since(rec->submitted_at);
                if (!rec->trace_phase.empty())
                    rec->trace->add_span(
                        "phase." + rec->trace_phase, "search",
                        rec->trace_phase_start_us,
                        now_us - rec->trace_phase_start_us);
                rec->trace_phase = phase;
                rec->trace_phase_start_us = now_us;
            }
            bump_epoch_locked();
        };
        if (rec->spec.workers > 0) {
            // Distributed fan-out: shard journals live next to the
            // job's other artifacts, so an abandoned job resumes its
            // distributed search exactly like an in-process one
            // resumes its journal — at any worker count.
            dist::DistConfig dc;
            dc.workers = rec->spec.workers;
            dc.threads_per_worker =
                std::max(1, rec->thread_quota / rec->spec.workers);
            dc.coordinator_threads = std::max(1, rec->thread_quota);
            dc.state_dir = job_path(rec->id, ".dist");
            dc.hooks = config.hooks;
            result = dist::distributed_search(rec->spec, dc).result;
        } else {
            result = core::elivagar_search(device, bench.train, config);
        }
        have_result = true;
    } catch (const elv::CancelledError &e) {
        // Deadline expiry and client cancel both land here: the job is
        // cancelled, not failed, and its journal keeps the finished
        // prefix for a possible future resubmission.
        final_state = JobState::Cancelled;
        detail = e.what();
    } catch (const std::exception &e) {
        final_state = JobState::Failed;
        detail = e.what();
    }

    const double end_us = us_since(rec->submitted_at);
    {
        // The progress hook mutates the open-phase fields under
        // mutex_; close the trailing span under the same lock.
        std::lock_guard<std::mutex> lock(mutex_);
        if (!rec->trace_phase.empty()) {
            rec->trace->add_span("phase." + rec->trace_phase, "search",
                                 rec->trace_phase_start_us,
                                 end_us - rec->trace_phase_start_us);
            rec->trace_phase.clear();
        }
    }
    rec->trace->add_span("job.run", "server", run_start_us,
                         end_us - run_start_us);
    const int nominal_quota =
        std::max(1, thread_budget_ / config_.workers);
    if (rec->thread_quota < nominal_quota) {
        // Degradation span: the overload ladder narrowed this job, so
        // "why was it slow" is visible in the artifact itself (arg =
        // granted quota).
        rec->trace->add_span("quota.degraded", "server", run_start_us,
                             end_us - run_start_us, rec->thread_quota,
                             true);
    }
    const bool trace_ok =
        rec->trace->write(job_path(rec->id, ".trace.json"));
    ELV_METRIC_OBSERVE("server.job.seconds", job_seconds_edges(),
                       (end_us - run_start_us) / 1e6);

    double best_score = 0.0;
    if (have_result) {
        best_score = result.best_score;
        obs::JsonWriter json;
        json.begin_object();
        json.kv("id", rec->id);
        json.kv("benchmark", rec->spec.benchmark);
        json.kv("device", rec->spec.device);
        json.kv("seed", static_cast<std::uint64_t>(rec->spec.seed));
        json.kv("candidates", rec->spec.candidates);
        json.kv("best_score", result.best_score);
        // Hexfloat survives the JSON round-trip bit-exactly; this is
        // what the crash-recovery smoke test compares.
        json.kv("best_score_hex",
                core::double_to_hex(result.best_score));
        json.kv("survivors", result.survivors);
        json.kv("cnr_executions", result.cnr_executions);
        json.kv("repcap_executions", result.repcap_executions);
        json.kv("degraded_candidates", result.degraded_candidates);
        json.kv("resumed", result.resumed);
        json.kv("total_seconds", result.total_seconds);
        // Execution provenance: which kernel tier and precision this
        // result was computed with (PR 7), so artifacts from mixed
        // fleets stay self-describing.
        json.kv("kernel_dispatch",
                sim::kernel_tier_name(sim::active_tier()));
        json.kv("precision", rec->spec.precision);
        if (trace_ok)
            json.kv("trace", job_path(rec->id, ".trace.json"));
        json.kv("circuit", circ::to_text_line(result.best_circuit));
        json.end_object();
        if (!write_file_atomic(job_path(rec->id, ".result.json"),
                               json.str()))
            elv::warn("cannot write result for " + rec->id);
        core::write_run_report(job_path(rec->id, ".report.json"),
                               config, result);
    }

    std::lock_guard<std::mutex> lock(mutex_);
    rec->phase.clear();
    rec->trace_written = trace_ok;
    if (rec->abandoned) {
        // Shutdown interrupted the job; its manifest state still reads
        // "running", so the next start re-queues and resumes it. No
        // terminal record — this is the crash-equivalent path.
        rec->state = JobState::Queued;
        rec->detail = "interrupted by shutdown";
        bump_epoch_locked();
        return;
    }
    if (have_result) {
        rec->best_score = best_score;
        rec->search_resumed = result.resumed;
        record_state_locked(*rec, JobState::Completed, "");
        ++completed_;
        ELV_METRIC_COUNT("server.jobs.completed");
        if (result.resumed)
            ELV_METRIC_COUNT("server.jobs.resumed");
        events_.emit("job.finished", rec->id, "completed");
        return;
    }
    record_state_locked(*rec, final_state, detail);
    if (final_state == JobState::Cancelled) {
        ++cancelled_;
        ELV_METRIC_COUNT("server.jobs.cancelled");
    } else {
        ++failed_;
        ELV_METRIC_COUNT("server.jobs.failed");
    }
    events_.emit("job.finished", rec->id,
                 std::string(job_state_name(final_state)) +
                     (detail.empty() ? "" : ": " + detail));
}

JobStatusSnapshot
Server::snapshot_locked(const JobRecord &rec) const
{
    JobStatusSnapshot snap;
    snap.id = rec.id;
    snap.spec = rec.spec;
    snap.state = rec.state;
    snap.phase = rec.phase;
    snap.done = rec.done;
    snap.total = rec.total;
    snap.detail = rec.detail;
    snap.thread_quota = rec.thread_quota;
    snap.recovered = rec.recovered;
    snap.search_resumed = rec.search_resumed;
    snap.best_score = rec.best_score;
    if (rec.trace_written)
        snap.trace_path = job_path(rec.id, ".trace.json");
    return snap;
}

std::optional<JobStatusSnapshot>
Server::status(const std::string &id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[number, rec] : records_)
        if (rec->id == id)
            return snapshot_locked(*rec);
    return std::nullopt;
}

std::vector<JobStatusSnapshot>
Server::jobs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<JobStatusSnapshot> out;
    out.reserve(records_.size());
    for (const auto &[number, rec] : records_)
        out.push_back(snapshot_locked(*rec));
    return out;
}

bool
Server::cancel(const std::string &id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[number, rec] : records_) {
        if (rec->id != id)
            continue;
        if (job_state_terminal(rec->state))
            return true; // idempotent
        rec->token->cancel();
        if (rec->state == JobState::Queued) {
            queue_.erase(std::remove(queue_.begin(), queue_.end(), rec),
                         queue_.end());
            record_state_locked(*rec, JobState::Cancelled,
                                "cancelled before start");
            ++cancelled_;
            ELV_METRIC_COUNT("server.jobs.cancelled");
            ELV_METRIC_GAUGE_ADD("server.queue.depth", -1);
            events_.emit("job.finished", rec->id,
                         "cancelled before start");
            note_ladder_locked();
        }
        // A running job unwinds at its next cancellation checkpoint;
        // its worker records the terminal state.
        return true;
    }
    return false;
}

std::optional<std::string>
Server::result_json(const std::string &id) const
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        bool completed = false;
        for (const auto &[number, rec] : records_)
            if (rec->id == id)
                completed = rec->state == JobState::Completed;
        if (!completed)
            return std::nullopt;
    }
    std::ifstream in(job_path(id, ".result.json"), std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream text;
    text << in.rdbuf();
    std::string doc = text.str();
    while (!doc.empty() && (doc.back() == '\n' || doc.back() == '\r'))
        doc.pop_back();
    return doc;
}

std::string
Server::health_json() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    obs::JsonWriter json;
    json.begin_object();
    json.kv("state", stopping_   ? "stopped"
                     : draining_ ? "draining"
                                 : "serving");
    json.kv("uptime_sec", seconds_since(start_time_));
    json.kv("queue_depth", static_cast<std::uint64_t>(queue_.size()));
    json.kv("queue_capacity",
            static_cast<std::uint64_t>(config_.queue_capacity));
    json.kv("running", running_);
    json.kv("workers", config_.workers);
    json.kv("thread_budget", thread_budget_);
    json.kv("threads_in_use", threads_in_use_);
    json.key("jobs").begin_object();
    json.kv("submitted", submitted_);
    json.kv("completed", completed_);
    json.kv("failed", failed_);
    json.kv("cancelled", cancelled_);
    json.kv("rejected", rejected_);
    json.kv("shed", shed_);
    json.kv("recovered", recovered_);
    json.end_object();
    json.end_object();
    return json.str();
}

std::string
Server::metrics_json() const
{
    obs::JsonWriter json;
    json.begin_object();
    json.key("health").raw(health_json());

    const obs::MetricsSnapshot snap =
        obs::Registry::global().snapshot();
    json.key("metrics").begin_object();
    json.kv("enabled", obs::Registry::global().enabled());
    json.key("counters").begin_object();
    for (const auto &counter : snap.counters)
        json.kv(counter.name, counter.value);
    json.end_object();
    json.key("gauges").begin_object();
    for (const auto &gauge : snap.gauges) {
        json.key(gauge.name).begin_object();
        json.kv("value", gauge.value);
        json.kv("max", gauge.max);
        json.end_object();
    }
    json.end_object();
    json.end_object();

    json.end_object();
    return json.str();
}

obs::EventSlice
Server::events_since(std::uint64_t cursor, std::size_t limit) const
{
    return events_.since(cursor, limit);
}

std::string
Server::events_json(std::uint64_t cursor, std::size_t limit) const
{
    const obs::EventSlice slice = events_.since(cursor, limit);
    obs::JsonWriter json;
    json.begin_object();
    json.kv("first_seq", slice.first_seq);
    json.kv("last_seq", slice.last_seq);
    json.key("events").begin_array();
    for (const obs::Event &event : slice.events) {
        json.begin_object();
        json.kv("seq", event.seq);
        json.kv("wall_ms", event.wall_ms);
        json.kv("kind", event.kind);
        if (!event.subject.empty())
            json.kv("id", event.subject);
        if (!event.detail.empty())
            json.kv("detail", event.detail);
        json.end_object();
    }
    json.end_array();
    json.end_object();
    return json.str();
}

void
Server::drain(double deadline_sec)
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopped_)
        return;
    draining_ = true;
    bump_epoch_locked();
    // In-flight jobs get the deadline; queued jobs stay queued (their
    // manifest state is non-terminal, so the next start picks them up).
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(std::max(0.0, deadline_sec)));
    cv_.wait_until(lock, deadline, [this] { return running_ == 0; });
    lock.unlock();
    stop_workers(true);
}

void
Server::stop_hard()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_)
            return;
        draining_ = true;
    }
    stop_workers(true);
}

void
Server::stop_workers(bool abandon_running)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_)
            return;
        stopping_ = true;
        if (abandon_running) {
            for (const auto &[number, rec] : records_) {
                if (rec->state == JobState::Running) {
                    rec->abandoned = true;
                    rec->token->cancel();
                }
            }
        }
        bump_epoch_locked();
    }
    for (std::thread &worker : workers_)
        if (worker.joinable())
            worker.join();
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
    bump_epoch_locked();
}

std::uint64_t
Server::change_epoch() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return epoch_;
}

std::uint64_t
Server::wait_for_change(std::uint64_t last_seen,
                        double timeout_sec) const
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock,
                 std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(
                         std::max(0.0, timeout_sec))),
                 [&] { return epoch_ != last_seen || stopping_; });
    return epoch_;
}

int
Server::threads_in_use() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return threads_in_use_;
}

bool
Server::draining() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return draining_ || stopping_;
}

} // namespace elv::srv
