/**
 * @file
 * Resilience decorators for the qml::DistributionFn seam.
 *
 * The QML stack consumes distributions through qml::DistributionFn
 * (noisy training, shot-noise evaluation, deployment). These adapters
 * bring the execution layer's fault injection and retry/backoff to that
 * boundary without changing any classifier/trainer signature: wrap a
 * provider once and every downstream call is validated, retried on
 * transient failure, and tallied.
 */
#pragma once

#include <cstdint>
#include <memory>

#include "common/retry.hpp"
#include "exec/fault_injector.hpp"
#include "qml/classifier.hpp"

namespace elv::exec {

/**
 * Inject transient/timeout/garbage faults into a distribution provider
 * (chaos testing for training/evaluation loops). Drift and crash modes
 * are not applicable at this seam and are ignored.
 */
qml::DistributionFn faulty_distribution(qml::DistributionFn inner,
                                        const FaultConfig &config);

/**
 * Retry a distribution provider with exponential backoff + jitter
 * (simulated waits) and validate every produced distribution. Throws
 * BackendError once max_attempts are exhausted. When `counters` is
 * non-null the shared tallies are updated on every call.
 */
qml::DistributionFn resilient_distribution(
    qml::DistributionFn inner, const RetryPolicy &policy,
    std::uint64_t seed,
    std::shared_ptr<RetryCounters> counters = nullptr);

} // namespace elv::exec
