#include "exec/executor.hpp"

#include "common/logging.hpp"
#include "common/statistics.hpp"
#include "common/validate.hpp"
#include "lint/preflight.hpp"
#include "sim/statevector.hpp"
#include "stabilizer/tableau.hpp"

namespace elv::exec {

namespace {

/**
 * Executor-boundary pre-flight. Every circuit entering a backend is
 * linted against the device it will be simulated on (when the backend
 * has one) and, for replica-fidelity requests, against the Clifford-
 * replica rules — replica_fidelity's contract is "a Clifford replica",
 * and a parametric gate slipping through reads as a silently wrong
 * fidelity, not a crash.
 */
void
executor_preflight(const circ::Circuit &circuit, const dev::Device *device,
                   bool clifford_replica)
{
    lint::LintOptions options;
    options.device = device;
    options.expect_clifford_replica = clifford_replica;
    lint::preflight(circuit, lint::Boundary::Executor, options);
}

} // namespace

const char *
backend_name(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Density: return "density";
      case BackendKind::Stabilizer: return "stabilizer";
      case BackendKind::Noiseless: return "noiseless";
    }
    return "unknown";
}

bool
Executor::supports(const circ::Circuit &) const
{
    return true;
}

DensityExecutor::DensityExecutor(const dev::Device &device,
                                 double noise_scale,
                                 sim::Precision precision)
    : sim_(device, noise_scale, precision)
{
}

bool
DensityExecutor::supports(const circ::Circuit &circuit) const
{
    // The exact density matrix over k touched qubits costs 4^k; larger
    // circuits must degrade to the stabilizer rung.
    return circuit.touched_qubits().size() <=
           static_cast<std::size_t>(kMaxQubits);
}

double
DensityExecutor::replica_fidelity(const circ::Circuit &replica,
                                  elv::Rng &)
{
    executor_preflight(replica, &sim_.device(), true);
    const double f = sim_.fidelity(replica);
    ++executions_;
    return f;
}

std::vector<double>
DensityExecutor::run_distribution(const circ::Circuit &circuit,
                                  const std::vector<double> &params,
                                  const std::vector<double> &x, elv::Rng &)
{
    executor_preflight(circuit, &sim_.device(), false);
    auto probs = sim_.run_distribution(circuit, params, x);
    elv::validate_distribution(probs, elv::DistributionPolicy::Renormalize,
                               "density executor");
    ++executions_;
    return probs;
}

StabilizerExecutor::StabilizerExecutor(const dev::Device &device,
                                       int shots, double noise_scale)
    : device_(device), shots_(shots), scale_(noise_scale)
{
    if (shots < 1)
        elv::fatal("stabilizer executor needs at least one shot");
    device.validate();
}

bool
StabilizerExecutor::supports(const circ::Circuit &circuit) const
{
    for (const circ::Op &op : circuit.ops())
        if (op.num_params() > 0 || !circ::gate_is_clifford(op.kind))
            return false;
    return !circuit.measured().empty();
}

double
StabilizerExecutor::replica_fidelity(const circ::Circuit &replica,
                                     elv::Rng &rng)
{
    executor_preflight(replica, &device_, true);
    std::vector<int> kept;
    const circ::Circuit local = replica.compacted(kept);
    // Noiseless side: stabilizer sampling (efficient at any size).
    // Noisy side: stochastic Pauli injection.
    elv::Rng ideal_rng = rng.split();
    auto ideal = stab::sample_distribution(local, shots_, ideal_rng);
    const noise::DevicePauliNoise hook(device_, kept, scale_);
    elv::Rng noisy_rng = rng.split();
    auto noisy = stab::sample_distribution(local, shots_, noisy_rng, &hook);
    elv::validate_distribution(ideal, elv::DistributionPolicy::Renormalize,
                               "stabilizer executor (ideal)");
    elv::validate_distribution(noisy, elv::DistributionPolicy::Renormalize,
                               "stabilizer executor (noisy)");
    ++executions_;
    return 1.0 - elv::total_variation_distance(ideal, noisy);
}

std::vector<double>
StabilizerExecutor::run_distribution(const circ::Circuit &circuit,
                                     const std::vector<double> &,
                                     const std::vector<double> &,
                                     elv::Rng &rng)
{
    if (!supports(circuit))
        throw BackendError(
            "stabilizer backend cannot run non-Clifford circuits");
    executor_preflight(circuit, &device_, false);
    std::vector<int> kept;
    const circ::Circuit local = circuit.compacted(kept);
    const noise::DevicePauliNoise hook(device_, kept, scale_);
    elv::Rng shot_rng = rng.split();
    auto probs = stab::sample_distribution(local, shots_, shot_rng, &hook);
    elv::validate_distribution(probs, elv::DistributionPolicy::Renormalize,
                               "stabilizer executor");
    ++executions_;
    return probs;
}

double
NoiselessExecutor::replica_fidelity(const circ::Circuit &replica,
                                    elv::Rng &)
{
    executor_preflight(replica, nullptr, true);
    ++executions_;
    return 1.0;
}

std::vector<double>
NoiselessExecutor::run_distribution(const circ::Circuit &circuit,
                                    const std::vector<double> &params,
                                    const std::vector<double> &x,
                                    elv::Rng &)
{
    executor_preflight(circuit, nullptr, false);
    std::vector<int> kept;
    const circ::Circuit local = circuit.compacted(kept);
    sim::StateVector psi(local.num_qubits());
    psi.run(local, params, x);
    auto probs = psi.probabilities(local.measured());
    elv::validate_distribution(probs, elv::DistributionPolicy::Renormalize,
                               "noiseless executor");
    ++executions_;
    return probs;
}

} // namespace elv::exec
