#include "exec/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hpp"
#include "obs/metrics.hpp"

namespace elv::exec {

bool
FaultConfig::any() const
{
    return transient_rate > 0.0 || timeout_rate > 0.0 ||
           garbage_rate > 0.0 || drift_rate > 0.0 || crash_after > 0;
}

bool
FaultConfig::applies_to(BackendKind kind) const
{
    switch (target) {
      case FaultTarget::All: return true;
      case FaultTarget::Density: return kind == BackendKind::Density;
      case FaultTarget::Stabilizer:
        return kind == BackendKind::Stabilizer;
      case FaultTarget::Noiseless: return kind == BackendKind::Noiseless;
    }
    return false;
}

FaultCounters &
FaultCounters::operator+=(const FaultCounters &other)
{
    transient += other.transient;
    timeouts += other.timeouts;
    garbage += other.garbage;
    drifts += other.drifts;
    crashes += other.crashes;
    return *this;
}

FaultInjector::FaultInjector(std::unique_ptr<Executor> inner,
                             const FaultConfig &config,
                             dev::Device *drift_target)
    : inner_(std::move(inner)), config_(config),
      active_(config.any() && config.applies_to(inner_->kind())),
      drift_target_(drift_target), fault_rng_(config.seed)
{
    ELV_REQUIRE(inner_ != nullptr, "fault injector needs an executor");
    if (config_.transient_rate < 0.0 || config_.transient_rate > 1.0 ||
        config_.timeout_rate < 0.0 || config_.timeout_rate > 1.0 ||
        config_.garbage_rate < 0.0 || config_.garbage_rate > 1.0 ||
        config_.drift_rate < 0.0 || config_.drift_rate > 1.0)
        elv::fatal("fault rates must lie in [0, 1]");
}

bool
FaultInjector::supports(const circ::Circuit &circuit) const
{
    return inner_->supports(circuit);
}

void
FaultInjector::apply_drift()
{
    ++injected_.drifts;
    ELV_METRIC_COUNT("fault.drifts");
    if (!drift_target_)
        return;
    // Perturb each calibration rate by an independent lognormal factor,
    // clamped so the snapshot stays physical (readout confusion needs
    // flip probabilities below 0.5).
    auto drift = [&](std::vector<double> &rates, double hi) {
        for (double &r : rates)
            r = std::clamp(
                r * std::exp(config_.drift_sigma * fault_rng_.normal()),
                1e-6, hi);
    };
    drift(drift_target_->readout_error, 0.45);
    drift(drift_target_->error_1q, 0.2);
    drift(drift_target_->error_2q, 0.45);
}

void
FaultInjector::before_call(const char *what)
{
    if (!active_)
        return;
    const std::uint64_t successes =
        config_.crash_clock ? config_.crash_clock->load() : executions_;
    if (config_.crash_after > 0 && successes >= config_.crash_after) {
        ++injected_.crashes;
        ELV_METRIC_COUNT("fault.crashes");
        throw CrashError(std::string("injected crash during ") + what +
                         " (" + backend_name(kind()) + " backend)");
    }
    if (config_.drift_rate > 0.0 &&
        fault_rng_.bernoulli(config_.drift_rate))
        apply_drift();
    if (config_.timeout_rate > 0.0 &&
        fault_rng_.bernoulli(config_.timeout_rate)) {
        ++injected_.timeouts;
        ELV_METRIC_COUNT("fault.timeouts");
        throw QueueTimeout(std::string("injected queue timeout during ") +
                               what + " (" + backend_name(kind()) +
                               " backend)",
                           config_.queue_wait_ms);
    }
    if (config_.transient_rate > 0.0 &&
        fault_rng_.bernoulli(config_.transient_rate)) {
        ++injected_.transient;
        ELV_METRIC_COUNT("fault.transient");
        throw BackendError(std::string("injected transient failure "
                                       "during ") +
                           what + " (" + backend_name(kind()) +
                           " backend)");
    }
}

bool
FaultInjector::draw_garbage()
{
    if (!active_ || config_.garbage_rate <= 0.0)
        return false;
    if (!fault_rng_.bernoulli(config_.garbage_rate))
        return false;
    ++injected_.garbage;
    ELV_METRIC_COUNT("fault.garbage");
    return true;
}

double
FaultInjector::replica_fidelity(const circ::Circuit &replica,
                                elv::Rng &rng)
{
    before_call("replica fidelity");
    const double f = inner_->replica_fidelity(replica, rng);
    ++executions_;
    if (active_ && config_.crash_clock)
        config_.crash_clock->fetch_add(1);
    if (draw_garbage())
        return std::numeric_limits<double>::quiet_NaN();
    return f;
}

std::vector<double>
FaultInjector::run_distribution(const circ::Circuit &circuit,
                                const std::vector<double> &params,
                                const std::vector<double> &x,
                                elv::Rng &rng)
{
    before_call("distribution");
    auto probs = inner_->run_distribution(circuit, params, x, rng);
    ++executions_;
    if (active_ && config_.crash_clock)
        config_.crash_clock->fetch_add(1);
    if (draw_garbage() && !probs.empty()) {
        // Half the garbage is NaN poison, half is unnormalized mass —
        // both must be caught by validate_distribution downstream.
        if (fault_rng_.bernoulli(0.5)) {
            probs[fault_rng_.uniform_index(probs.size())] =
                std::numeric_limits<double>::quiet_NaN();
        } else {
            for (double &p : probs)
                p *= 3.0;
        }
    }
    return probs;
}

} // namespace elv::exec
