#include "exec/resilient.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/validate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

/** Backoff-delay histogram edges (simulated milliseconds). */
const std::vector<double> &
backoff_edges()
{
    static const std::vector<double> edges{10.0,    50.0,    100.0,
                                           500.0,   1000.0,  5000.0,
                                           10000.0, 30000.0, 60000.0};
    return edges;
}

} // namespace

namespace elv::exec {

namespace {

/** Independent fault-stream seed per ladder rung. */
std::uint64_t
rung_seed(std::uint64_t base, int rung)
{
    return base ^ (static_cast<std::uint64_t>(rung + 1) *
                   std::uint64_t{0x9e3779b97f4a7c15});
}

std::unique_ptr<Executor>
make_backend(const dev::Device &device, BackendKind kind, int shots,
             double noise_scale, sim::Precision precision)
{
    switch (kind) {
      case BackendKind::Density:
        return std::make_unique<DensityExecutor>(device, noise_scale,
                                                 precision);
      case BackendKind::Stabilizer:
        return std::make_unique<StabilizerExecutor>(device, shots,
                                                    noise_scale);
      case BackendKind::Noiseless:
        return std::make_unique<NoiselessExecutor>();
    }
    elv::fatal("unknown backend kind");
}

} // namespace

ResilientExecutor::ResilientExecutor(const dev::Device &device,
                                     BackendKind primary, int shots,
                                     double noise_scale,
                                     const RetryPolicy &policy,
                                     const FaultConfig &faults,
                                     std::uint64_t seed,
                                     sim::Precision precision)
    : device_(device), policy_(policy),
      jitter_rng_(seed ^ 0x7265747279ULL)
{
    policy_.check();

    std::vector<BackendKind> kinds;
    switch (primary) {
      case BackendKind::Density:
        kinds = {BackendKind::Density, BackendKind::Stabilizer,
                 BackendKind::Noiseless};
        break;
      case BackendKind::Stabilizer:
        kinds = {BackendKind::Stabilizer, BackendKind::Noiseless};
        break;
      case BackendKind::Noiseless:
        kinds = {BackendKind::Noiseless};
        break;
    }

    for (std::size_t r = 0; r < kinds.size(); ++r) {
        auto backend = make_backend(device_, kinds[r], shots, noise_scale,
                                    precision);
        if (faults.any() && faults.applies_to(kinds[r])) {
            FaultConfig rung_faults = faults;
            rung_faults.seed =
                rung_seed(faults.seed ^ seed, static_cast<int>(r));
            backend = std::make_unique<FaultInjector>(
                std::move(backend), rung_faults,
                faults.drift_rate > 0.0 ? &device_ : nullptr);
        }
        ladder_.push_back(std::move(backend));
    }
}

BackendKind
ResilientExecutor::kind() const
{
    return ladder_.front()->kind();
}

bool
ResilientExecutor::supports(const circ::Circuit &circuit) const
{
    for (const auto &rung : ladder_)
        if (rung->supports(circuit))
            return true;
    return false;
}

BackendKind
ResilientExecutor::rung_kind(int rung) const
{
    ELV_REQUIRE(rung >= 0 && rung < num_rungs(), "rung out of range");
    return ladder_[static_cast<std::size_t>(rung)]->kind();
}

FaultCounters
ResilientExecutor::injected() const
{
    FaultCounters total;
    for (const auto &rung : ladder_)
        if (const auto *injector =
                dynamic_cast<const FaultInjector *>(rung.get()))
            total += injector->injected();
    return total;
}

template <typename Value, typename Attempt>
Value
ResilientExecutor::call(const circ::Circuit &circuit, Attempt &&attempt)
{
    ELV_TRACE_SCOPE("exec.call", "exec");
    ++counters_.calls;
    ELV_METRIC_COUNT("exec.calls");
    report_ = CallReport{};
    int first_supported = -1;
    std::string last_error = "no backend supports this circuit";

    for (int r = 0; r < num_rungs(); ++r) {
        Executor &rung = *ladder_[static_cast<std::size_t>(r)];
        if (!rung.supports(circuit))
            continue;
        if (first_supported < 0)
            first_supported = r;

        // Once the per-run budget is spent, stop waiting: a single
        // attempt per rung, degrading instead of retrying.
        const bool budget_spent = policy_.total_budget_ms > 0.0 &&
                                  clock_ms_ >= policy_.total_budget_ms;
        const int attempts_allowed =
            budget_spent ? 1 : policy_.max_attempts;
        double call_wait_ms = 0.0;

        for (int a = 0; a < attempts_allowed; ++a) {
            ++counters_.attempts;
            ELV_METRIC_COUNT("exec.attempts");
            try {
                Value value = attempt(rung);
                report_.backend = rung.kind();
                report_.rung = r;
                report_.degraded = r != first_supported;
                if (report_.degraded) {
                    ++counters_.degraded_calls;
                    ELV_METRIC_COUNT("exec.degraded_calls");
                }
                ++executions_;
                return value;
            } catch (const QueueTimeout &e) {
                ++counters_.failures;
                ELV_METRIC_COUNT("exec.failures");
                clock_ms_ += e.waited_ms();
                counters_.queue_wait_ms += e.waited_ms();
                call_wait_ms += e.waited_ms();
                last_error = e.what();
            } catch (const BackendError &e) {
                ++counters_.failures;
                ELV_METRIC_COUNT("exec.failures");
                last_error = e.what();
            } catch (const elv::DistributionError &e) {
                ++counters_.failures;
                ++counters_.invalid_results;
                ELV_METRIC_COUNT("exec.failures");
                ELV_METRIC_COUNT("exec.invalid_results");
                last_error = e.what();
            }
            // CrashError (and genuine bugs) propagate: a dead process
            // cannot retry; the checkpoint journal is the safety net.

            if (a + 1 >= attempts_allowed)
                break;
            if (policy_.call_deadline_ms > 0.0 &&
                call_wait_ms >= policy_.call_deadline_ms)
                break; // per-call deadline: degrade instead of waiting
            const double delay = policy_.backoff_delay_ms(a, jitter_rng_);
            clock_ms_ += delay;
            call_wait_ms += delay;
            counters_.backoff_wait_ms += delay;
            ++counters_.retries;
            ++report_.retries;
            ELV_METRIC_COUNT("exec.retries");
            ELV_METRIC_OBSERVE("exec.backoff_ms", backoff_edges(), delay);
        }
        ++counters_.rungs_exhausted;
        ELV_METRIC_COUNT("exec.rungs_exhausted");
    }
    throw BackendError("all execution backends exhausted; last error: " +
                       last_error);
}

double
ResilientExecutor::replica_fidelity(const circ::Circuit &replica,
                                    elv::Rng &rng)
{
    return call<double>(replica, [&](Executor &rung) {
        // Snapshot the computation stream so a retry replays the exact
        // draws of the failed attempt; commit only on success.
        elv::Rng attempt_rng = rng;
        const double f = rung.replica_fidelity(replica, attempt_rng);
        if (!std::isfinite(f) || f < -1e-9 || f > 1.0 + 1e-9)
            throw elv::DistributionError(
                "replica fidelity outside [0, 1]");
        rng = attempt_rng;
        return f;
    });
}

std::vector<double>
ResilientExecutor::run_distribution(const circ::Circuit &circuit,
                                    const std::vector<double> &params,
                                    const std::vector<double> &x,
                                    elv::Rng &rng)
{
    return call<std::vector<double>>(circuit, [&](Executor &rung) {
        elv::Rng attempt_rng = rng;
        auto probs = rung.run_distribution(circuit, params, x,
                                           attempt_rng);
        elv::validate_distribution(probs, elv::DistributionPolicy::Throw,
                                   "resilient executor");
        rng = attempt_rng;
        return probs;
    });
}

} // namespace elv::exec
