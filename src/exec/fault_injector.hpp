/**
 * @file
 * Seeded fault injection for the execution layer.
 *
 * FaultInjector decorates an Executor with the failure modes of real
 * cloud backends: transient job failures, queue timeouts, NaN/garbage
 * result distributions, calibration drift between executions, and (for
 * crash-safety testing) a hard process-death after N executions. Every
 * fault is drawn from a dedicated seeded stream, independent of the
 * computation's randomness, so a fault-injected run that survives via
 * retries reproduces the fault-free run's values exactly.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "exec/executor.hpp"

namespace elv::exec {

/** Which backends a fault configuration applies to. */
enum class FaultTarget { All, Density, Stabilizer, Noiseless };

/** Seeded failure-mode configuration (all rates are per call). */
struct FaultConfig
{
    /** Probability of a transient BackendError. */
    double transient_rate = 0.0;
    /** Probability of a QueueTimeout. */
    double timeout_rate = 0.0;
    /** Simulated queue wait burned when a timeout fires (ms). */
    double queue_wait_ms = 30000.0;
    /** Probability of returning a NaN/garbage distribution. */
    double garbage_rate = 0.0;
    /** Probability of a calibration-drift event before the call. */
    double drift_rate = 0.0;
    /** Lognormal sigma of the per-rate drift factor. */
    double drift_sigma = 0.2;
    /**
     * Throw CrashError once this many executions succeeded (0 = never).
     * Simulates the process dying mid-search; exercised by the
     * checkpoint/resume tests.
     */
    std::uint64_t crash_after = 0;
    /**
     * Shared execution counter backing `crash_after`. When set, all
     * injectors sharing the clock count successes jointly, so the crash
     * fires after N successes across the whole search even when every
     * candidate owns a private executor (the parallel search engine's
     * layout). Null = count this injector's own executions only.
     */
    std::shared_ptr<std::atomic<std::uint64_t>> crash_clock;
    /** Restrict injection to one backend kind. */
    FaultTarget target = FaultTarget::All;
    /** Seed of the fault stream (independent of computation streams). */
    std::uint64_t seed = 0x6661756c74ULL;

    /** True when any failure mode has a non-zero rate. */
    bool any() const;

    /** True when faults should be injected into `kind`. */
    bool applies_to(BackendKind kind) const;
};

/** Injected-fault tallies, reported next to the retry counters. */
struct FaultCounters
{
    std::uint64_t transient = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t garbage = 0;
    std::uint64_t drifts = 0;
    std::uint64_t crashes = 0;

    std::uint64_t total() const
    {
        return transient + timeouts + garbage + drifts + crashes;
    }

    FaultCounters &operator+=(const FaultCounters &other);
};

/** Executor decorator that injects configured faults. */
class FaultInjector : public Executor
{
  public:
    /**
     * @param inner decorated executor
     * @param config failure modes; rates for non-matching targets are
     *        ignored (the injector becomes a pass-through)
     * @param drift_target calibration snapshot perturbed by drift
     *        events (usually the Device the inner executor reads);
     *        null disables drift perturbation
     */
    FaultInjector(std::unique_ptr<Executor> inner,
                  const FaultConfig &config,
                  dev::Device *drift_target = nullptr);

    BackendKind kind() const override { return inner_->kind(); }
    bool supports(const circ::Circuit &circuit) const override;
    double replica_fidelity(const circ::Circuit &replica,
                            elv::Rng &rng) override;
    std::vector<double> run_distribution(const circ::Circuit &circuit,
                                         const std::vector<double> &params,
                                         const std::vector<double> &x,
                                         elv::Rng &rng) override;

    /** Faults injected so far. */
    const FaultCounters &injected() const { return injected_; }

  private:
    /** Pre-call faults: crash, drift, timeout, transient error. */
    void before_call(const char *what);
    /** Post-call fault: corrupt a produced value with prob garbage. */
    bool draw_garbage();
    void apply_drift();

    std::unique_ptr<Executor> inner_;
    FaultConfig config_;
    bool active_;
    dev::Device *drift_target_;
    elv::Rng fault_rng_;
    FaultCounters injected_;
};

} // namespace elv::exec
