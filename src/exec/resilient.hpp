/**
 * @file
 * Retry, backoff and graceful degradation on top of the Executor
 * abstraction.
 *
 * A ResilientExecutor owns a degradation ladder of backends — for the
 * CNR path Density -> Stabilizer -> Noiseless — and services each call
 * by retrying the current rung with exponential backoff + jitter (all
 * waits accumulate on a simulated clock, never a real sleep), then
 * falling to the next rung once the rung's attempts or its per-call
 * deadline are exhausted. Calls serviced by a fallback rung are flagged
 * `degraded` so downstream scores stay auditable. Every result is
 * validated (finite fidelity in [0, 1]; distributions via
 * validate_distribution), and an invalid result counts as a retryable
 * failure — which is exactly how injected NaN faults are absorbed.
 *
 * Determinism: the computation RNG handed into a call is snapshotted
 * before every attempt and only committed on success, so a retried call
 * consumes the same draws as an undisturbed one. With faults injected
 * from their own stream, a run that survives via retries is
 * value-identical to the fault-free run.
 */
#pragma once

#include <memory>
#include <vector>

#include "common/retry.hpp"
#include "exec/fault_injector.hpp"

namespace elv::exec {

class ResilientExecutor : public Executor
{
  public:
    /**
     * Build the standard degradation ladder below `primary`
     * (Density -> Stabilizer -> Noiseless, truncated to start at
     * `primary`) over a private copy of `device`. When `faults` has any
     * active mode, each matching rung is wrapped in a FaultInjector and
     * drift events perturb the private calibration copy.
     *
     * @param shots shots per stabilizer execution
     * @param noise_scale multiplies calibration error rates
     * @param seed jitter stream seed (also mixed into fault streams)
     * @param precision amplitude precision of density-matrix rungs
     *        (other rungs are unaffected; see sim/precision.hpp)
     */
    ResilientExecutor(const dev::Device &device, BackendKind primary,
                      int shots, double noise_scale,
                      const RetryPolicy &policy = {},
                      const FaultConfig &faults = {},
                      std::uint64_t seed = 0,
                      sim::Precision precision = sim::Precision::Float64);

    BackendKind kind() const override;
    bool supports(const circ::Circuit &circuit) const override;
    double replica_fidelity(const circ::Circuit &replica,
                            elv::Rng &rng) override;
    std::vector<double> run_distribution(const circ::Circuit &circuit,
                                         const std::vector<double> &params,
                                         const std::vector<double> &x,
                                         elv::Rng &rng) override;
    const CallReport *last_report() const override { return &report_; }

    /** Retry/degradation tallies since construction. */
    const RetryCounters &counters() const { return counters_; }

    /** Faults injected across all rungs. */
    FaultCounters injected() const;

    /** Simulated wall clock consumed by queue waits and backoffs. */
    double elapsed_ms() const { return clock_ms_; }

    int num_rungs() const { return static_cast<int>(ladder_.size()); }
    BackendKind rung_kind(int rung) const;

    /** The private calibration snapshot (drift perturbs this copy). */
    const dev::Device &device() const { return device_; }

  private:
    template <typename Value, typename Attempt>
    Value call(const circ::Circuit &circuit, Attempt &&attempt);

    /** Owned snapshot so drift never corrupts the caller's Device. */
    dev::Device device_;
    std::vector<std::unique_ptr<Executor>> ladder_;
    RetryPolicy policy_;
    elv::Rng jitter_rng_;
    RetryCounters counters_;
    CallReport report_;
    double clock_ms_ = 0.0;
};

} // namespace elv::exec
