#include "exec/distribution.hpp"

#include <limits>

#include "common/logging.hpp"
#include "common/validate.hpp"

namespace elv::exec {

qml::DistributionFn
faulty_distribution(qml::DistributionFn inner, const FaultConfig &config)
{
    auto rng = std::make_shared<elv::Rng>(config.seed);
    return [inner = std::move(inner), config,
            rng](const circ::Circuit &circuit,
                 const std::vector<double> &params,
                 const std::vector<double> &x) {
        if (config.timeout_rate > 0.0 &&
            rng->bernoulli(config.timeout_rate))
            throw QueueTimeout("injected queue timeout (provider)",
                               config.queue_wait_ms);
        if (config.transient_rate > 0.0 &&
            rng->bernoulli(config.transient_rate))
            throw BackendError("injected transient failure (provider)");
        auto probs = inner(circuit, params, x);
        if (config.garbage_rate > 0.0 &&
            rng->bernoulli(config.garbage_rate) && !probs.empty())
            probs[rng->uniform_index(probs.size())] =
                std::numeric_limits<double>::quiet_NaN();
        return probs;
    };
}

qml::DistributionFn
resilient_distribution(qml::DistributionFn inner,
                       const RetryPolicy &policy, std::uint64_t seed,
                       std::shared_ptr<RetryCounters> counters)
{
    policy.check();
    auto rng = std::make_shared<elv::Rng>(seed ^ 0x70726f76ULL);
    return [inner = std::move(inner), policy, rng,
            counters](const circ::Circuit &circuit,
                      const std::vector<double> &params,
                      const std::vector<double> &x) {
        if (counters)
            ++counters->calls;
        std::string last_error;
        double call_wait_ms = 0.0;
        for (int a = 0; a < policy.max_attempts; ++a) {
            if (counters)
                ++counters->attempts;
            try {
                auto probs = inner(circuit, params, x);
                elv::validate_distribution(
                    probs, elv::DistributionPolicy::Throw,
                    "resilient provider");
                return probs;
            } catch (const QueueTimeout &e) {
                if (counters) {
                    ++counters->failures;
                    counters->queue_wait_ms += e.waited_ms();
                }
                call_wait_ms += e.waited_ms();
                last_error = e.what();
            } catch (const BackendError &e) {
                if (counters)
                    ++counters->failures;
                last_error = e.what();
            } catch (const elv::DistributionError &e) {
                if (counters) {
                    ++counters->failures;
                    ++counters->invalid_results;
                }
                last_error = e.what();
            }
            if (a + 1 >= policy.max_attempts)
                break;
            if (policy.call_deadline_ms > 0.0 &&
                call_wait_ms >= policy.call_deadline_ms)
                break;
            const double delay = policy.backoff_delay_ms(a, *rng);
            call_wait_ms += delay;
            if (counters) {
                counters->backoff_wait_ms += delay;
                ++counters->retries;
            }
        }
        throw BackendError("distribution provider exhausted retries; "
                           "last error: " +
                           last_error);
    };
}

} // namespace elv::exec
