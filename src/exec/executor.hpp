/**
 * @file
 * The execution layer's backend abstraction.
 *
 * Elivagar's pipeline (CNR replicas, RepCap, noisy training) is built
 * around repeated circuit executions on a NISQ backend. On real cloud
 * devices those executions fail transiently, time out in queues, and
 * drift between calibration snapshots, so every execution path in this
 * tree is routed through an `Executor`: a narrow interface offering the
 * two primitives the pipeline consumes — Clifford-replica fidelity (the
 * CNR inner loop) and outcome distributions (classification / CNR / raw
 * sampling). Concrete executors wrap the density-matrix, stabilizer and
 * noiseless state-vector backends; decorators add fault injection
 * (fault_injector.hpp) and retry/degradation (resilient.hpp).
 */
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "device/device.hpp"
#include "noise/noise_model.hpp"

namespace elv::exec {

/** Which simulation backend services a request. */
enum class BackendKind {
    /** Exact density-matrix noisy simulation (small circuits). */
    Density,
    /** Stochastic-Pauli stabilizer sampling (Clifford circuits only). */
    Stabilizer,
    /** Noiseless state-vector simulation (last-resort fallback). */
    Noiseless,
};

/** Human-readable backend name. */
const char *backend_name(BackendKind kind);

/** Transient backend failure; the resilient layer retries these. */
class BackendError : public std::runtime_error
{
  public:
    explicit BackendError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** A job exceeded its queue deadline; carries the simulated wait. */
class QueueTimeout : public BackendError
{
  public:
    QueueTimeout(const std::string &what, double waited_ms)
        : BackendError(what), waited_ms_(waited_ms)
    {
    }

    /** Simulated milliseconds lost waiting before the timeout fired. */
    double waited_ms() const { return waited_ms_; }

  private:
    double waited_ms_;
};

/**
 * Non-retryable process death (injected by FaultInjector to test
 * crash-safe checkpointing). Propagates through the resilient layer
 * and out of the search, like a real kill would.
 */
class CrashError : public std::runtime_error
{
  public:
    explicit CrashError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Diagnostics for the last logical call of a resilient executor. */
struct CallReport
{
    /** Backend that finally serviced the call. */
    BackendKind backend = BackendKind::Density;
    /** Ladder rung that serviced the call (0 = primary). */
    int rung = 0;
    /** True when a fallback rung serviced the call after failures. */
    bool degraded = false;
    /** Retries spent across all rungs of the call. */
    int retries = 0;
};

/** Uniform entry point for circuit execution. */
class Executor
{
  public:
    virtual ~Executor() = default;

    /** Backend this executor (or its primary rung) represents. */
    virtual BackendKind kind() const = 0;

    /** True when this backend can service the given circuit at all. */
    virtual bool supports(const circ::Circuit &circuit) const;

    /**
     * Fidelity proxy of one Clifford replica: 1 - TVD between the noisy
     * and noiseless output distributions (paper Eq. 1). `rng` feeds
     * stochastic backends; deterministic backends ignore it.
     */
    virtual double replica_fidelity(const circ::Circuit &replica,
                                    elv::Rng &rng) = 0;

    /**
     * Outcome distribution over the circuit's measured qubits for bound
     * parameters/input.
     */
    virtual std::vector<double> run_distribution(
        const circ::Circuit &circuit, const std::vector<double> &params,
        const std::vector<double> &x, elv::Rng &rng) = 0;

    /** Requests serviced successfully by this executor. */
    std::uint64_t executions() const { return executions_; }

    /** Per-call diagnostics; null for plain (non-resilient) executors. */
    virtual const CallReport *last_report() const { return nullptr; }

  protected:
    std::uint64_t executions_ = 0;
};

/** Exact noisy execution via the density-matrix backend. */
class DensityExecutor : public Executor
{
  public:
    /** Circuits touching more qubits than this are unsupported. */
    static constexpr int kMaxQubits = 12;

    /**
     * @param precision amplitude precision of the density-matrix
     *        kernels (Float32Proxy is the CNR proxy fast path; see
     *        sim/precision.hpp).
     */
    explicit DensityExecutor(
        const dev::Device &device, double noise_scale = 1.0,
        sim::Precision precision = sim::Precision::Float64);

    BackendKind kind() const override { return BackendKind::Density; }
    bool supports(const circ::Circuit &circuit) const override;
    double replica_fidelity(const circ::Circuit &replica,
                            elv::Rng &rng) override;
    std::vector<double> run_distribution(const circ::Circuit &circuit,
                                         const std::vector<double> &params,
                                         const std::vector<double> &x,
                                         elv::Rng &rng) override;

  private:
    noise::NoisyDensitySimulator sim_;
};

/** Stochastic-Pauli sampling via the stabilizer backend (Clifford only). */
class StabilizerExecutor : public Executor
{
  public:
    StabilizerExecutor(const dev::Device &device, int shots,
                       double noise_scale = 1.0);

    BackendKind kind() const override { return BackendKind::Stabilizer; }
    bool supports(const circ::Circuit &circuit) const override;
    double replica_fidelity(const circ::Circuit &replica,
                            elv::Rng &rng) override;
    std::vector<double> run_distribution(const circ::Circuit &circuit,
                                         const std::vector<double> &params,
                                         const std::vector<double> &x,
                                         elv::Rng &rng) override;

  private:
    const dev::Device &device_;
    int shots_;
    double scale_;
};

/**
 * Noiseless state-vector execution — the last rung of the degradation
 * ladder. Replica fidelity is exactly 1 (no noise, zero TVD), which is
 * why results serviced here must be flagged as degraded: they carry no
 * noise-resilience signal.
 */
class NoiselessExecutor : public Executor
{
  public:
    BackendKind kind() const override { return BackendKind::Noiseless; }
    double replica_fidelity(const circ::Circuit &replica,
                            elv::Rng &rng) override;
    std::vector<double> run_distribution(const circ::Circuit &circuit,
                                         const std::vector<double> &params,
                                         const std::vector<double> &x,
                                         elv::Rng &rng) override;
};

} // namespace elv::exec
