#include "lint/dataflow.hpp"

#include <algorithm>

namespace elv::lint {

using circ::GateKind;
using circ::Op;
using circ::ParamRole;

AbstractState
AbstractState::bottom(const CircuitView &view)
{
    AbstractState state;
    state.qubit.assign(
        static_cast<std::size_t>(std::max(0, view.num_qubits)), 0);
    state.param.assign(
        static_cast<std::size_t>(std::max(0, view.num_params)), 0);
    return state;
}

bool
AbstractState::join(const AbstractState &other)
{
    bool changed = false;
    const std::size_t nq = std::min(qubit.size(), other.qubit.size());
    for (std::size_t i = 0; i < nq; ++i) {
        if (other.qubit[i] && !qubit[i]) {
            qubit[i] = 1;
            changed = true;
        }
    }
    const std::size_t np = std::min(param.size(), other.param.size());
    for (std::size_t i = 0; i < np; ++i) {
        if (other.param[i] && !param[i]) {
            param[i] = 1;
            changed = true;
        }
    }
    return changed;
}

void
AbstractState::mark_qubit(int q)
{
    if (q >= 0 && static_cast<std::size_t>(q) < qubit.size())
        qubit[static_cast<std::size_t>(q)] = 1;
}

void
AbstractState::mark_params(int slot, int count)
{
    for (int k = 0; k < count; ++k) {
        const int s = slot + k;
        if (s >= 0 && static_cast<std::size_t>(s) < param.size())
            param[static_cast<std::size_t>(s)] = 1;
    }
}

bool
AbstractState::qubit_set(int q) const
{
    return q >= 0 && static_cast<std::size_t>(q) < qubit.size() &&
           qubit[static_cast<std::size_t>(q)];
}

namespace {

/** A fixed member of the Clifford group (no run-time angles at all). */
bool
fixed_clifford(const Op &op)
{
    return op.kind != GateKind::AmpEmbed && op.role == ParamRole::None &&
           gate_is_clifford(op.kind);
}

/** An op with no variational binding (constant across training steps). */
bool
param_free(const Op &op)
{
    return op.role != ParamRole::Variational;
}

} // namespace

std::vector<int>
LightconeAnalysis::dead_ops() const
{
    std::vector<int> dead;
    for (std::size_t i = 0; i < live_ops.size(); ++i)
        if (!live_ops[i])
            dead.push_back(static_cast<int>(i));
    return dead;
}

std::vector<int>
LightconeAnalysis::dead_params() const
{
    std::vector<int> dead;
    for (std::size_t i = 0; i < live_params.size(); ++i)
        if (!live_params[i])
            dead.push_back(static_cast<int>(i));
    return dead;
}

LightconeAnalysis
analyze_lightcone(const CircuitView &view)
{
    LightconeAnalysis analysis;
    AbstractState state = AbstractState::bottom(view);
    analysis.no_measurements = view.measured.empty();
    for (int q : view.measured)
        state.mark_qubit(q);

    // Backward transfer: an op is live iff it touches a cone qubit at
    // its position; a live op pulls every operand into the cone
    // (2-qubit gates carry influence both ways — phase kickback makes
    // even a "control" qubit's reduced state gate-dependent), and a
    // live variational op keeps its parameter slots alive.
    run_to_fixpoint(
        view, Direction::Backward, state,
        [](const Op &op, int, AbstractState &s) {
            bool live = false;
            if (op.kind == GateKind::AmpEmbed) {
                live = std::find(s.qubit.begin(), s.qubit.end(), 1) !=
                       s.qubit.end();
                if (live)
                    std::fill(s.qubit.begin(), s.qubit.end(), 1);
            } else {
                const int arity = op.num_qubits();
                for (int k = 0; k < arity; ++k)
                    live |= s.qubit_set(
                        op.qubits[static_cast<std::size_t>(k)]);
                if (live)
                    for (int k = 0; k < arity; ++k)
                        s.mark_qubit(
                            op.qubits[static_cast<std::size_t>(k)]);
            }
            if (live && op.role == ParamRole::Variational)
                s.mark_params(op.param_index, op.num_params());
            return live;
        },
        analysis.live_ops);

    analysis.live_qubits = state.qubit;
    analysis.live_params = state.param;
    return analysis;
}

CliffordRegions
analyze_clifford_regions(const CircuitView &view)
{
    // The region lattice is a chain over op positions ("still inside
    // the prefix"), so a single sweep per direction IS the fixed point;
    // plain scans keep the encoding direct instead of forcing a
    // positional property into the per-qubit domain.
    CliffordRegions regions;
    const std::size_t n = view.ops.size();
    std::size_t i = 0;
    while (i < n && fixed_clifford(view.ops[i]))
        ++i;
    regions.clifford_prefix = static_cast<int>(i);
    std::size_t j = n;
    while (j > i && fixed_clifford(view.ops[j - 1]))
        --j;
    regions.clifford_suffix = static_cast<int>(n - j);
    std::size_t k = 0;
    while (k < n && param_free(view.ops[k]))
        ++k;
    regions.param_free_prefix = static_cast<int>(k);
    regions.fully_clifford =
        n > 0 && regions.clifford_prefix == static_cast<int>(n);
    regions.param_free = regions.param_free_prefix == static_cast<int>(n);
    return regions;
}

DataflowAnalysis
analyze_dataflow(const CircuitView &view)
{
    return {analyze_lightcone(view), analyze_clifford_regions(view)};
}

circ::Circuit
prune_to_lightcone(const circ::Circuit &circuit, std::size_t *ops_elided)
{
    const LightconeAnalysis analysis =
        analyze_lightcone(view_of(circuit));
    if (analysis.no_measurements)
        return circuit;
    const std::vector<int> dead = analysis.dead_ops();
    if (dead.empty())
        return circuit;
    // Degenerate cone (no op touches a measured qubit): a zero-op
    // circuit fatals in compacted()/executors downstream, and there is
    // no simulation left to speed up — keep the circuit as-is.
    if (dead.size() == circuit.ops().size())
        return circuit;

    circ::Circuit pruned(circuit.num_qubits());
    for (std::size_t i = 0; i < circuit.ops().size(); ++i)
        if (analysis.live_ops[i])
            pruned.append_op(circuit.ops()[i]);
    // Keep the declared parameter count (and the surviving ops' slot
    // numbers, which append_op preserved): consumers that size RNG
    // draws or parameter vectors by num_params stay stream-aligned
    // with the unpruned circuit.
    pruned.declare_params(circuit.num_params());
    pruned.set_measured(circuit.measured());
    if (ops_elided)
        *ops_elided += dead.size();
    return pruned;
}

FixResult
elide_dead_structure(const circ::Circuit &circuit)
{
    FixResult result;
    const LightconeAnalysis analysis =
        analyze_lightcone(view_of(circuit));
    const std::vector<int> dead = analysis.dead_ops();
    if (analysis.no_measurements || dead.empty() ||
        dead.size() == circuit.ops().size()) {
        result.circuit = circuit;
        result.param_map.resize(
            static_cast<std::size_t>(circuit.num_params()));
        for (std::size_t s = 0; s < result.param_map.size(); ++s)
            result.param_map[s] = static_cast<int>(s);
        return result;
    }

    // Dense renumbering in op order over the surviving variational
    // ops — the only slot layout the native text format round-trips.
    result.param_map.assign(
        static_cast<std::size_t>(circuit.num_params()), -1);
    int next = 0;
    for (std::size_t i = 0; i < circuit.ops().size(); ++i) {
        const Op &op = circuit.ops()[i];
        if (!analysis.live_ops[i] ||
            op.role != ParamRole::Variational || op.param_index < 0)
            continue;
        for (int k = 0; k < op.num_params(); ++k) {
            const int s = op.param_index + k;
            if (s < circuit.num_params() &&
                result.param_map[static_cast<std::size_t>(s)] < 0)
                result.param_map[static_cast<std::size_t>(s)] = next++;
        }
    }

    circ::Circuit fixed(circuit.num_qubits());
    for (std::size_t i = 0; i < circuit.ops().size(); ++i) {
        if (!analysis.live_ops[i])
            continue;
        Op op = circuit.ops()[i];
        if (op.role == ParamRole::Variational && op.param_index >= 0 &&
            op.param_index < circuit.num_params())
            op.param_index = result.param_map[static_cast<std::size_t>(
                op.param_index)];
        fixed.append_op(op);
    }
    fixed.declare_params(next);
    fixed.set_measured(circuit.measured());
    result.circuit = std::move(fixed);
    result.ops_elided = dead.size();
    result.params_elided = static_cast<std::size_t>(
        std::max(0, circuit.num_params() - next));
    return result;
}

} // namespace elv::lint
