/**
 * @file
 * Pre-flight lint checks at the pipeline boundaries.
 *
 * Candidate generation, the compiler, and the executors each hand a
 * circuit to the next stage assuming its invariants hold. preflight()
 * is the cheap (O(ops)) check at those hand-offs: it lints the
 * circuit and
 *
 *  - in debug builds (and under set_preflight_fatal(true)) throws
 *    InternalError carrying the full diagnostic text — a malformed
 *    circuit crossing a boundary is a bug in the producing stage;
 *  - in release builds counts the violation and lets the circuit
 *    through, so a production search never aborts on a lint finding
 *    but the damage is visible in the metrics.
 *
 * Observability (when metrics collection is on):
 *   lint.circuits_checked  circuits linted at any boundary
 *   lint.violations        error-severity diagnostics found
 */
#pragma once

#include "circuit/circuit.hpp"
#include "lint/lint.hpp"

namespace elv::lint {

/** Which pipeline hand-off a preflight check guards. */
enum class Boundary {
    CandidateGen,   ///< generator output entering the search
    CompilerOutput, ///< compile_for_device result
    Executor,       ///< circuit entering an execution backend
    Training,       ///< circuit entering the gradient trainer
};

/** Printable boundary name ("candidate-gen", ...). */
const char *boundary_name(Boundary boundary);

/**
 * Whether preflight() throws on error diagnostics. Defaults to true
 * in debug builds (NDEBUG undefined), false in release.
 */
bool preflight_fatal();

/** Override the fatal behavior (tests; takes effect process-wide). */
void set_preflight_fatal(bool fatal);

/**
 * Lint `circuit` at a boundary. Returns true when the report is free
 * of error diagnostics. See the file comment for the debug/release
 * behavior and counters.
 */
bool preflight(const circ::Circuit &circuit, Boundary boundary,
               const LintOptions &options = {});

} // namespace elv::lint
