/**
 * @file
 * Machine-readable lint output: a SARIF 2.1.0 emitter, a plain JSON
 * emitter, and the baseline-suppression file that lets CI gate on
 * *new* findings only.
 *
 * SARIF (Static Analysis Results Interchange Format) is what code
 * hosts and CI dashboards ingest; `elivagar_cli lint --format sarif`
 * emits one run with the full rule catalog as the tool's rule table
 * and one result per diagnostic. Findings listed in a baseline file
 * are still emitted but carry an external suppression (and are
 * excluded from the exit-code counts), so pre-existing debt does not
 * fail the `lint-gate` CI job while anything new does.
 *
 * Baseline format: one fingerprint per line, `#` comments and blank
 * lines ignored. A fingerprint is `artifact|rule|op<index>|<hash>`
 * with `<hash>` the FNV-1a 64-bit hash of the message text in hex —
 * stable across runs, diff-friendly, and resilient to unrelated
 * findings moving around.
 */
#pragma once

#include <set>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace elv::lint {

/** One linted artifact (file path or builtin subject) + its report. */
struct ArtifactReport
{
    std::string artifact;
    Report report;
};

/** Stable identity of one diagnostic within one artifact. */
std::string diagnostic_fingerprint(const std::string &artifact,
                                   const Diagnostic &diagnostic);

/** A set of suppressed fingerprints loaded from a baseline file. */
class Baseline
{
  public:
    /** Parse baseline text (fingerprint lines, `#` comments). */
    static Baseline parse(const std::string &text);

    /** Read and parse `path`; throws UsageError when unreadable. */
    static Baseline load(const std::string &path);

    /** Render every current finding as baseline file content. */
    static std::string render(const std::vector<ArtifactReport> &reports);

    bool contains(const std::string &fingerprint) const;
    std::size_t size() const { return entries_.size(); }

  private:
    std::set<std::string> entries_;
};

/** Findings tally with baseline suppression applied. */
struct FindingCounts
{
    std::size_t errors = 0;
    std::size_t warnings = 0;
    std::size_t notes = 0;
    /** Findings excluded from the tallies above by the baseline. */
    std::size_t suppressed = 0;
};

FindingCounts count_findings(const std::vector<ArtifactReport> &reports,
                             const Baseline *baseline);

/**
 * SARIF 2.1.0 document: one run, driver "elvlint" with the full rule
 * catalog, one result per diagnostic. Baselined findings carry
 * `"suppressions": [{"kind": "external"}]`. Regions map op index i of
 * a native-text circuit file to line i + 3 (the header and qubit
 * lines precede the ops); artifact-level findings anchor at line 1.
 */
std::string to_sarif(const std::vector<ArtifactReport> &reports,
                     const Baseline *baseline = nullptr);

/** Plain JSON rendering (artifact -> diagnostics, plus the tallies). */
std::string to_json(const std::vector<ArtifactReport> &reports,
                    const Baseline *baseline = nullptr);

} // namespace elv::lint
