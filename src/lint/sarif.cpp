#include "lint/sarif.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>

#include "common/logging.hpp"
#include "common/runinfo.hpp"

namespace elv::lint {

namespace {

/** JSON string escaping (control characters, quotes, backslashes). */
std::string
json_escape(const std::string &text)
{
    std::ostringstream oss;
    for (const char ch : text) {
        switch (ch) {
          case '"': oss << "\\\""; break;
          case '\\': oss << "\\\\"; break;
          case '\n': oss << "\\n"; break;
          case '\r': oss << "\\r"; break;
          case '\t': oss << "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(ch)));
                oss << buf;
            } else {
                oss << ch;
            }
        }
    }
    return oss.str();
}

/** FNV-1a 64-bit over the message text. */
std::uint64_t
fnv1a64(const std::string &text)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (const char ch : text) {
        h ^= static_cast<unsigned char>(ch);
        h *= 1099511628211ULL;
    }
    return h;
}

/** SARIF result level for a severity. */
const char *
sarif_level(Severity severity)
{
    switch (severity) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "none";
}

} // namespace

std::string
diagnostic_fingerprint(const std::string &artifact,
                       const Diagnostic &diagnostic)
{
    std::ostringstream oss;
    oss << artifact << "|" << diagnostic.rule << "|op"
        << diagnostic.op_index << "|" << std::hex
        << fnv1a64(diagnostic.message);
    return oss.str();
}

Baseline
Baseline::parse(const std::string &text)
{
    Baseline baseline;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        while (!line.empty() &&
               (line.back() == '\r' || line.back() == ' '))
            line.pop_back();
        if (line.empty() || line[0] == '#')
            continue;
        baseline.entries_.insert(line);
    }
    return baseline;
}

Baseline
Baseline::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        elv::fatal("cannot open lint baseline " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return parse(text.str());
}

std::string
Baseline::render(const std::vector<ArtifactReport> &reports)
{
    std::ostringstream oss;
    oss << "# elvlint baseline: findings suppressed by the lint gate.\n"
        << "# One fingerprint per line "
           "(artifact|rule|op<index>|message-hash).\n"
        << "# Regenerate with: elivagar_cli lint ... --write-baseline "
           "FILE\n";
    for (const ArtifactReport &entry : reports)
        for (const Diagnostic &d : entry.report.diagnostics)
            oss << diagnostic_fingerprint(entry.artifact, d) << "\n";
    return oss.str();
}

bool
Baseline::contains(const std::string &fingerprint) const
{
    return entries_.count(fingerprint) > 0;
}

FindingCounts
count_findings(const std::vector<ArtifactReport> &reports,
               const Baseline *baseline)
{
    FindingCounts counts;
    for (const ArtifactReport &entry : reports) {
        for (const Diagnostic &d : entry.report.diagnostics) {
            if (baseline && baseline->contains(diagnostic_fingerprint(
                                entry.artifact, d))) {
                ++counts.suppressed;
                continue;
            }
            switch (d.severity) {
              case Severity::Error: ++counts.errors; break;
              case Severity::Warning: ++counts.warnings; break;
              case Severity::Note: ++counts.notes; break;
            }
        }
    }
    return counts;
}

std::string
to_sarif(const std::vector<ArtifactReport> &reports,
         const Baseline *baseline)
{
    std::ostringstream oss;
    oss << "{\n"
        << "  \"$schema\": "
           "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        << "  \"version\": \"2.1.0\",\n"
        << "  \"runs\": [\n"
        << "    {\n"
        << "      \"tool\": {\n"
        << "        \"driver\": {\n"
        << "          \"name\": \"elvlint\",\n"
        << "          \"version\": \"" << json_escape(elv::version_string())
        << "\",\n"
        << "          \"informationUri\": "
           "\"https://github.com/elivagar/elivagar\",\n"
        << "          \"rules\": [\n";
    const auto &catalog = rule_catalog();
    for (std::size_t r = 0; r < catalog.size(); ++r) {
        oss << "            {\"id\": \"" << json_escape(catalog[r].id)
            << "\", \"shortDescription\": {\"text\": \""
            << json_escape(catalog[r].summary)
            << "\"}, \"defaultConfiguration\": {\"level\": \""
            << sarif_level(catalog[r].severity) << "\"}}"
            << (r + 1 < catalog.size() ? "," : "") << "\n";
    }
    oss << "          ]\n"
        << "        }\n"
        << "      },\n"
        << "      \"results\": [\n";

    bool first = true;
    for (const ArtifactReport &entry : reports) {
        for (const Diagnostic &d : entry.report.diagnostics) {
            if (!first)
                oss << ",\n";
            first = false;
            const std::string fingerprint =
                diagnostic_fingerprint(entry.artifact, d);
            // Native-text circuit files carry a 2-line header before
            // the op stream, so op i lives on line i + 3.
            const int line = d.op_index >= 0 ? d.op_index + 3 : 1;
            oss << "        {\"ruleId\": \"" << json_escape(d.rule)
                << "\", \"level\": \"" << sarif_level(d.severity)
                << "\", \"message\": {\"text\": \""
                << json_escape(d.message)
                << "\"}, \"locations\": [{\"physicalLocation\": "
                   "{\"artifactLocation\": {\"uri\": \""
                << json_escape(entry.artifact)
                << "\"}, \"region\": {\"startLine\": " << line
                << "}}}], \"partialFingerprints\": {\"elvlint/v1\": \""
                << json_escape(fingerprint) << "\"}";
            if (baseline && baseline->contains(fingerprint))
                oss << ", \"suppressions\": [{\"kind\": \"external\"}]";
            oss << "}";
        }
    }
    if (!first)
        oss << "\n";
    oss << "      ]\n"
        << "    }\n"
        << "  ]\n"
        << "}\n";
    return oss.str();
}

std::string
to_json(const std::vector<ArtifactReport> &reports,
        const Baseline *baseline)
{
    const FindingCounts counts = count_findings(reports, baseline);
    std::ostringstream oss;
    oss << "{\n  \"artifacts\": [\n";
    for (std::size_t a = 0; a < reports.size(); ++a) {
        const ArtifactReport &entry = reports[a];
        oss << "    {\"artifact\": \"" << json_escape(entry.artifact)
            << "\", \"diagnostics\": [";
        for (std::size_t i = 0; i < entry.report.diagnostics.size();
             ++i) {
            const Diagnostic &d = entry.report.diagnostics[i];
            const bool suppressed =
                baseline && baseline->contains(diagnostic_fingerprint(
                                entry.artifact, d));
            oss << (i ? ", " : "") << "{\"severity\": \""
                << severity_name(d.severity) << "\", \"rule\": \""
                << json_escape(d.rule)
                << "\", \"op\": " << d.op_index << ", \"message\": \""
                << json_escape(d.message) << "\", \"suppressed\": "
                << (suppressed ? "true" : "false") << "}";
        }
        oss << "]}" << (a + 1 < reports.size() ? "," : "") << "\n";
    }
    oss << "  ],\n"
        << "  \"errors\": " << counts.errors << ",\n"
        << "  \"warnings\": " << counts.warnings << ",\n"
        << "  \"notes\": " << counts.notes << ",\n"
        << "  \"suppressed\": " << counts.suppressed << "\n"
        << "}\n";
    return oss.str();
}

} // namespace elv::lint
