#include "lint/lint.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <utility>

namespace elv::lint {

namespace detail {
void register_builtin_rules(Linter &linter);
} // namespace detail

const char *
severity_name(Severity severity)
{
    switch (severity) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "unknown";
}

std::string
Diagnostic::to_string() const
{
    std::ostringstream oss;
    oss << severity_name(severity) << "[" << rule << "]";
    if (op_index >= 0)
        oss << " op " << op_index;
    oss << ": " << message;
    return oss.str();
}

bool
Report::has_errors() const
{
    return count(Severity::Error) > 0;
}

std::size_t
Report::count(Severity severity) const
{
    std::size_t n = 0;
    for (const Diagnostic &d : diagnostics)
        if (d.severity == severity)
            ++n;
    return n;
}

bool
Report::fired(const std::string &rule) const
{
    for (const Diagnostic &d : diagnostics)
        if (d.rule == rule)
            return true;
    return false;
}

void
Report::add(Severity severity, std::string rule, int op_index,
            std::string message)
{
    diagnostics.push_back(
        {severity, std::move(rule), op_index, std::move(message)});
}

void
Report::merge(const Report &other)
{
    diagnostics.insert(diagnostics.end(), other.diagnostics.begin(),
                       other.diagnostics.end());
}

std::string
Report::to_string() const
{
    std::ostringstream oss;
    for (const Diagnostic &d : diagnostics)
        oss << d.to_string() << "\n";
    return oss.str();
}

CircuitView
view_of(const circ::Circuit &circuit)
{
    return {circuit.num_qubits(), circuit.num_params(), circuit.ops(),
            circuit.measured()};
}

bool
LintOptions::disabled(const std::string &rule) const
{
    return std::find(disabled_rules.begin(), disabled_rules.end(), rule) !=
           disabled_rules.end();
}

const std::vector<RuleInfo> &
rule_catalog()
{
    static const std::vector<RuleInfo> catalog = [] {
        std::vector<RuleInfo> rules = Linter::global().rules();
        rules.push_back({"fusion-barrier", Severity::Error,
                         "fused programs preserve every parametric/"
                         "embedding barrier of their source"});
        rules.push_back({"device-topology", Severity::Error,
                         "coupling edges valid, no self-loops or "
                         "duplicates; warns on disconnected graphs"});
        rules.push_back({"device-calibration", Severity::Error,
                         "calibration vectors sized to the topology, "
                         "rates in [0,1], times positive"});
        return rules;
    }();
    return catalog;
}

Linter::Linter()
{
    detail::register_builtin_rules(*this);
}

Linter &
Linter::global()
{
    static Linter linter;
    return linter;
}

void
Linter::register_rule(RuleInfo info, CircuitRuleFn fn)
{
    infos_.push_back(std::move(info));
    rules_.push_back(std::move(fn));
}

Report
Linter::lint(const CircuitView &view, const LintOptions &options) const
{
    Report report;
    for (std::size_t i = 0; i < rules_.size(); ++i) {
        if (options.disabled(infos_[i].id))
            continue;
        rules_[i](view, options, report);
    }
    return report;
}

Report
lint_circuit(const circ::Circuit &circuit, const LintOptions &options)
{
    return Linter::global().lint(view_of(circuit), options);
}

Report
lint_circuit(const CircuitView &view, const LintOptions &options)
{
    return Linter::global().lint(view, options);
}

namespace {

/** True when every entry of the matrix is finite. */
template <typename Mat>
bool
matrix_finite(const Mat &m)
{
    for (const auto &row : m)
        for (const auto &a : row)
            if (!std::isfinite(a.real()) || !std::isfinite(a.imag()))
                return false;
    return true;
}

/** Do two IR ops describe the same gate application and binding? */
bool
ops_equal(const circ::Op &a, const circ::Op &b)
{
    return a.kind == b.kind && a.qubits == b.qubits && a.role == b.role &&
           a.param_index == b.param_index && a.data_index == b.data_index &&
           a.data_index2 == b.data_index2;
}

std::string
describe_op(const circ::Op &op)
{
    std::ostringstream oss;
    oss << gate_name(op.kind);
    if (op.kind != circ::GateKind::AmpEmbed) {
        oss << " q" << op.qubits[0];
        if (op.num_qubits() == 2)
            oss << ",q" << op.qubits[1];
    }
    if (op.role == circ::ParamRole::Variational)
        oss << " theta[" << op.param_index << "]";
    else if (op.role == circ::ParamRole::Embedding &&
             op.kind != circ::GateKind::AmpEmbed)
        oss << " x[" << op.data_index << "]";
    return oss.str();
}

} // namespace

Report
lint_program(const sim::FusedProgram &program, const circ::Circuit &source,
             const LintOptions &options)
{
    Report out;
    if (options.disabled("fusion-barrier"))
        return out;
    const char *rule = "fusion-barrier";
    const int n = program.num_qubits();
    if (n != source.num_qubits()) {
        std::ostringstream oss;
        oss << "program has " << n << " qubits, source circuit "
            << source.num_qubits();
        out.add(Severity::Error, rule, -1, oss.str());
    }
    if (program.source_ops() != source.ops().size()) {
        std::ostringstream oss;
        oss << "program compiled from " << program.source_ops()
            << " source ops, circuit has " << source.ops().size()
            << " (stale cache entry?)";
        out.add(Severity::Error, rule, -1, oss.str());
    }

    // The barrier stream must replay the source's parametric/embedding
    // ops verbatim, in order: those are the ops whose angles are bound
    // at run time, so a dropped, reordered, or re-bound barrier means
    // the program computes a different function than its source.
    std::vector<const circ::Op *> expected;
    std::size_t fixed_ops = 0;
    for (const circ::Op &op : source.ops()) {
        if (op.role != circ::ParamRole::None ||
            op.kind == circ::GateKind::AmpEmbed)
            expected.push_back(&op);
        else
            ++fixed_ops;
    }

    std::size_t barrier_index = 0;
    std::size_t groups = 0;
    for (std::size_t i = 0; i < program.ops().size(); ++i) {
        const sim::FusedOp &fop = program.ops()[i];
        const int at = static_cast<int>(i);
        switch (fop.kind) {
          case sim::FusedOp::Kind::One:
            ++groups;
            if (fop.q0 < 0 || fop.q0 >= n)
                out.add(Severity::Error, rule, at,
                        "fused 1-qubit group on out-of-range qubit q" +
                            std::to_string(fop.q0));
            if (!matrix_finite(fop.m2))
                out.add(Severity::Error, rule, at,
                        "fused 1-qubit group has non-finite matrix "
                        "entries");
            break;
          case sim::FusedOp::Kind::Two:
            ++groups;
            if (fop.q0 < 0 || fop.q0 >= n || fop.q1 < 0 || fop.q1 >= n ||
                fop.q0 == fop.q1)
                out.add(Severity::Error, rule, at,
                        "fused 2-qubit group on invalid pair (q" +
                            std::to_string(fop.q0) + ", q" +
                            std::to_string(fop.q1) + ")");
            if (!matrix_finite(fop.m4))
                out.add(Severity::Error, rule, at,
                        "fused 2-qubit group has non-finite matrix "
                        "entries");
            break;
          case sim::FusedOp::Kind::Barrier: {
            if (fop.op.role == circ::ParamRole::None &&
                fop.op.kind != circ::GateKind::AmpEmbed) {
                out.add(Severity::Error, rule, at,
                        "barrier entry wraps fixed gate " +
                            describe_op(fop.op) +
                            " (fixed gates must fuse)");
                break;
            }
            if (barrier_index >= expected.size()) {
                out.add(Severity::Error, rule, at,
                        "barrier " + describe_op(fop.op) +
                            " has no matching source op");
            } else if (!ops_equal(fop.op, *expected[barrier_index])) {
                out.add(Severity::Error, rule, at,
                        "barrier " + describe_op(fop.op) +
                            " does not match source op " +
                            describe_op(*expected[barrier_index]) +
                            " (stale parameter binding?)");
            }
            ++barrier_index;
            break;
          }
        }
    }
    if (barrier_index < expected.size()) {
        std::ostringstream oss;
        oss << "program drops "
            << (expected.size() - barrier_index)
            << " parametric/embedding barrier(s) of the source "
               "(a fused region spans a barrier)";
        out.add(Severity::Error, rule, -1, oss.str());
    }
    if (groups + static_cast<std::size_t>(program.ops_merged()) !=
        fixed_ops) {
        std::ostringstream oss;
        oss << "fused-group accounting mismatch: " << groups
            << " groups + " << program.ops_merged()
            << " merged != " << fixed_ops << " fixed source ops";
        out.add(Severity::Error, rule, -1, oss.str());
    }
    return out;
}

namespace {

/** Check one per-qubit calibration vector: size, finiteness, range. */
void
check_calibration_vector(const std::vector<double> &values,
                         std::size_t expected, const char *name, double lo,
                         double hi, bool exclusive_lo, Report &out)
{
    if (values.size() != expected) {
        std::ostringstream oss;
        oss << name << " has " << values.size() << " entries, expected "
            << expected;
        out.add(Severity::Error, "device-calibration", -1, oss.str());
        return;
    }
    for (std::size_t i = 0; i < values.size(); ++i) {
        const double v = values[i];
        const bool below = exclusive_lo ? v <= lo : v < lo;
        if (!std::isfinite(v) || below || v > hi) {
            std::ostringstream oss;
            oss << name << "[" << i << "] = " << v << " outside "
                << (exclusive_lo ? "(" : "[") << lo << ", " << hi << "]";
            out.add(Severity::Error, "device-calibration", -1, oss.str());
        }
    }
}

} // namespace

Report
lint_device(const dev::Device &device, const LintOptions &options)
{
    Report out;
    const int n = device.topology.num_qubits();
    const auto &edges = device.topology.edges();

    if (!options.disabled("device-topology")) {
        if (n <= 0)
            out.add(Severity::Error, "device-topology", -1,
                    "device declares no qubits");
        std::set<std::pair<int, int>> seen;
        for (std::size_t e = 0; e < edges.size(); ++e) {
            const auto &[a, b] = edges[e];
            std::ostringstream where;
            where << "edge " << e << " (" << a << ", " << b << ")";
            if (a < 0 || a >= n || b < 0 || b >= n) {
                out.add(Severity::Error, "device-topology", -1,
                        where.str() + " references an invalid qubit");
                continue;
            }
            if (a == b) {
                out.add(Severity::Error, "device-topology", -1,
                        where.str() + " is a self-loop");
                continue;
            }
            if (!seen.insert({std::min(a, b), std::max(a, b)}).second)
                out.add(Severity::Error, "device-topology", -1,
                        where.str() + " duplicates an earlier edge");
        }
        if (n > 0 && !device.topology.is_connected())
            out.add(Severity::Warning, "device-topology", -1,
                    "coupling graph is disconnected (routing cannot "
                    "reach every qubit)");
    }

    if (!options.disabled("device-calibration")) {
        const auto nq = static_cast<std::size_t>(std::max(0, n));
        const double inf = std::numeric_limits<double>::infinity();
        check_calibration_vector(device.t1_us, nq, "t1_us", 0.0, inf,
                                 true, out);
        check_calibration_vector(device.t2_us, nq, "t2_us", 0.0, inf,
                                 true, out);
        check_calibration_vector(device.readout_error, nq,
                                 "readout_error", 0.0, 1.0, false, out);
        check_calibration_vector(device.error_1q, nq, "error_1q", 0.0,
                                 1.0, false, out);
        check_calibration_vector(device.error_2q, edges.size(),
                                 "error_2q", 0.0, 1.0, false, out);
        if (!(device.duration_1q_ns > 0.0) ||
            !(device.duration_2q_ns > 0.0) ||
            !(device.duration_readout_ns > 0.0))
            out.add(Severity::Error, "device-calibration", -1,
                    "gate/readout durations must be positive");
    }
    return out;
}

} // namespace elv::lint
