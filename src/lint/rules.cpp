/**
 * @file
 * Built-in circuit lint rules. Each rule is a free function appended
 * to the Linter registry by register_builtin_rules(); rules read a
 * CircuitView (which may describe IR the Circuit builder API would
 * refuse to construct) and must tolerate arbitrary garbage in every
 * field without crashing — that is the point.
 */
#include <algorithm>
#include <sstream>
#include <vector>

#include "lint/dataflow.hpp"
#include "lint/lint.hpp"

namespace elv::lint {

namespace detail {
void register_builtin_rules(Linter &linter);
} // namespace detail

namespace {

using circ::GateKind;
using circ::Op;
using circ::ParamRole;

/** "q3" / "q3,q7" operand rendering for messages. */
std::string
operands(const Op &op)
{
    std::ostringstream oss;
    oss << "q" << op.qubits[0];
    if (op.num_qubits() == 2)
        oss << ",q" << op.qubits[1];
    return oss.str();
}

/** Render a compact index list, eliding long tails. */
std::string
index_list(const std::vector<int> &indices)
{
    std::ostringstream oss;
    const std::size_t shown = std::min<std::size_t>(indices.size(), 8);
    for (std::size_t i = 0; i < shown; ++i)
        oss << (i ? "," : "") << indices[i];
    if (indices.size() > shown)
        oss << ",... (" << indices.size() << " total)";
    return oss.str();
}

/**
 * qubit-bounds: every operand indexes a declared qubit and the arity
 * slots agree with the gate kind (unused slot = -1, 2-qubit operands
 * distinct). The amplitude-embedding pseudo-op carries no operands.
 */
void
rule_qubit_bounds(const CircuitView &c, const LintOptions &, Report &out)
{
    if (c.num_qubits <= 0) {
        out.add(Severity::Error, "qubit-bounds", -1,
                "circuit declares no qubits");
        return;
    }
    for (std::size_t i = 0; i < c.ops.size(); ++i) {
        const Op &op = c.ops[i];
        const int at = static_cast<int>(i);
        if (op.kind == GateKind::AmpEmbed) {
            if (op.qubits[0] != -1 || op.qubits[1] != -1)
                out.add(Severity::Error, "qubit-bounds", at,
                        "amplitude embedding acts on all qubits and must "
                        "not name operands");
            continue;
        }
        const int arity = op.num_qubits();
        if (op.qubits[0] < 0 || op.qubits[0] >= c.num_qubits) {
            std::ostringstream oss;
            oss << gate_name(op.kind) << " operand q" << op.qubits[0]
                << " outside [0, " << c.num_qubits << ")";
            out.add(Severity::Error, "qubit-bounds", at, oss.str());
        }
        if (arity == 1 && op.qubits[1] != -1) {
            std::ostringstream oss;
            oss << "1-qubit " << gate_name(op.kind)
                << " carries a second operand q" << op.qubits[1];
            out.add(Severity::Error, "qubit-bounds", at, oss.str());
        }
        if (arity == 2) {
            if (op.qubits[1] < 0 || op.qubits[1] >= c.num_qubits) {
                std::ostringstream oss;
                oss << gate_name(op.kind) << " operand q" << op.qubits[1]
                    << " outside [0, " << c.num_qubits << ")";
                out.add(Severity::Error, "qubit-bounds", at, oss.str());
            } else if (op.qubits[1] == op.qubits[0]) {
                std::ostringstream oss;
                oss << "2-qubit " << gate_name(op.kind)
                    << " with identical operands " << operands(op);
                out.add(Severity::Error, "qubit-bounds", at, oss.str());
            }
        }
    }
}

/**
 * param-binding: variational gates own valid, exactly-once parameter
 * slots; embedding gates carry a feature index and no trainable slot;
 * fixed-role gates carry neither; no parametric gate kind is left
 * without a binding (a dangling symbol resolves to angle 0 at run
 * time, silently).
 */
void
rule_param_binding(const CircuitView &c, const LintOptions &, Report &out)
{
    std::vector<int> bound(
        static_cast<std::size_t>(std::max(0, c.num_params)), 0);
    for (std::size_t i = 0; i < c.ops.size(); ++i) {
        const Op &op = c.ops[i];
        const int at = static_cast<int>(i);
        switch (op.role) {
          case ParamRole::Variational: {
            if (!gate_is_parametric(op.kind)) {
                out.add(Severity::Error, "param-binding", at,
                        "variational role on non-parametric " +
                            gate_name(op.kind));
                break;
            }
            const int np = op.num_params();
            if (op.param_index < 0) {
                out.add(Severity::Error, "param-binding", at,
                        "variational " + gate_name(op.kind) +
                            " has no parameter slot");
            } else if (op.param_index + np > c.num_params) {
                std::ostringstream oss;
                oss << "parameter slot " << op.param_index << "+" << np
                    << " exceeds the declared parameter count "
                    << c.num_params;
                out.add(Severity::Error, "param-binding", at, oss.str());
            } else {
                for (int k = 0; k < np; ++k)
                    ++bound[static_cast<std::size_t>(op.param_index + k)];
            }
            if (op.data_index != -1 || op.data_index2 != -1)
                out.add(Severity::Error, "param-binding", at,
                        "variational gate carries embedding metadata");
            break;
          }
          case ParamRole::Embedding: {
            if (op.kind == GateKind::AmpEmbed)
                break;
            if (op.num_params() != 1)
                out.add(Severity::Error, "param-binding", at,
                        "embedding role needs a 1-parameter gate, got " +
                            gate_name(op.kind));
            if (op.data_index < 0)
                out.add(Severity::Error, "param-binding", at,
                        "embedding gate has no feature index");
            if (op.param_index != -1)
                out.add(Severity::Error, "param-binding", at,
                        "embedding gate retains trainable parameter "
                        "slot " +
                            std::to_string(op.param_index));
            break;
          }
          case ParamRole::None: {
            if (gate_is_parametric(op.kind))
                out.add(Severity::Error, "param-binding", at,
                        "parametric " + gate_name(op.kind) +
                            " has no binding (dangling symbol, resolves "
                            "to angle 0)");
            else if (op.param_index != -1 || op.data_index != -1 ||
                     op.data_index2 != -1)
                out.add(Severity::Error, "param-binding", at,
                        "fixed gate carries stale binding metadata");
            break;
          }
        }
    }
    for (std::size_t s = 0; s < bound.size(); ++s) {
        if (bound[s] > 1) {
            std::ostringstream oss;
            oss << "parameter slot " << s << " bound by " << bound[s]
                << " gates (must be exactly one)";
            out.add(Severity::Error, "param-binding", -1, oss.str());
        }
    }
}

/**
 * embedding-order: an amplitude embedding prepares the initial state
 * and must be the first op, unique, and the circuit's only embedding.
 * With require_embedding_prefix, every data-embedding gate must come
 * before the first variational gate (fixed-embedding templates;
 * Elivagar's searched candidates interleave the two on purpose, so
 * the prefix check is opt-in).
 */
void
rule_embedding_order(const CircuitView &c, const LintOptions &options,
                     Report &out)
{
    int first_variational = -1;
    int gate_embeddings = 0;
    std::vector<int> amp_positions;
    for (std::size_t i = 0; i < c.ops.size(); ++i) {
        const Op &op = c.ops[i];
        if (op.kind == GateKind::AmpEmbed)
            amp_positions.push_back(static_cast<int>(i));
        else if (op.role == ParamRole::Embedding)
            ++gate_embeddings;
        if (op.role == ParamRole::Variational && first_variational < 0)
            first_variational = static_cast<int>(i);
    }
    if (!amp_positions.empty()) {
        if (amp_positions[0] != 0) {
            std::ostringstream oss;
            oss << "amplitude embedding at op " << amp_positions[0]
                << " (must be op 0: it overwrites the prepared state)";
            out.add(Severity::Error, "embedding-order", amp_positions[0],
                    oss.str());
        }
        if (amp_positions.size() > 1)
            out.add(Severity::Error, "embedding-order", amp_positions[1],
                    "multiple amplitude embeddings");
        if (gate_embeddings > 0)
            out.add(Severity::Error, "embedding-order", -1,
                    "amplitude embedding mixed with gate embeddings");
    }
    if (options.require_embedding_prefix && first_variational >= 0) {
        for (std::size_t i = 0; i < c.ops.size(); ++i) {
            const Op &op = c.ops[i];
            if (op.role == ParamRole::Embedding &&
                op.kind != GateKind::AmpEmbed &&
                static_cast<int>(i) > first_variational) {
                std::ostringstream oss;
                oss << "data embedding at op " << i
                    << " follows the variational gate at op "
                    << first_variational
                    << " (embedding prefix required)";
                out.add(Severity::Error, "embedding-order",
                        static_cast<int>(i), oss.str());
            }
        }
    }
}

/**
 * connectivity: with a target device, every 2-qubit gate must act on
 * a coupling-map edge — the post-SABRE feasibility check. Skipped
 * without LintOptions::device.
 */
void
rule_connectivity(const CircuitView &c, const LintOptions &options,
                  Report &out)
{
    if (!options.device)
        return;
    const dev::Topology &topo = options.device->topology;
    if (c.num_qubits > topo.num_qubits()) {
        std::ostringstream oss;
        oss << "circuit declares " << c.num_qubits << " qubits but "
            << options.device->name << " has " << topo.num_qubits();
        out.add(Severity::Error, "connectivity", -1, oss.str());
    }
    for (std::size_t i = 0; i < c.ops.size(); ++i) {
        const Op &op = c.ops[i];
        if (op.kind == GateKind::AmpEmbed || op.num_qubits() != 2)
            continue;
        const int a = op.qubits[0], b = op.qubits[1];
        if (a < 0 || b < 0 || a >= topo.num_qubits() ||
            b >= topo.num_qubits() || a == b)
            continue; // qubit-bounds owns operand validity
        if (!topo.has_edge(a, b)) {
            std::ostringstream oss;
            oss << gate_name(op.kind) << " " << operands(op)
                << " is not a coupling edge of " << options.device->name;
            out.add(Severity::Error, "connectivity", static_cast<int>(i),
                    oss.str());
        }
    }
}

/**
 * clifford-replica: a circuit presented as a Clifford replica must be
 * pure Clifford — every rotation snapped to a pi/2 multiple and
 * lowered to fixed {H,S,Sdg,X,Y,Z} sequences, no surviving parametric
 * gates, no amplitude embedding. Opt-in via expect_clifford_replica.
 */
void
rule_clifford_replica(const CircuitView &c, const LintOptions &options,
                      Report &out)
{
    if (!options.expect_clifford_replica)
        return;
    for (std::size_t i = 0; i < c.ops.size(); ++i) {
        const Op &op = c.ops[i];
        const int at = static_cast<int>(i);
        if (op.kind == GateKind::AmpEmbed)
            out.add(Severity::Error, "clifford-replica", at,
                    "amplitude embedding inside a Clifford replica");
        else if (op.role != ParamRole::None ||
                 gate_is_parametric(op.kind))
            out.add(Severity::Error, "clifford-replica", at,
                    "unsnapped parametric " + gate_name(op.kind) +
                        " (replica angles must be pi/2 multiples "
                        "lowered to Clifford gates)");
        else if (!gate_is_clifford(op.kind))
            out.add(Severity::Error, "clifford-replica", at,
                    "non-Clifford fixed gate " + gate_name(op.kind));
    }
}

/**
 * measurement: the measured set indexes declared qubits without
 * duplicates. The IR is measure-terminal (measurement is a final set,
 * not an op), so "no gate after measure" is enforced structurally;
 * this rule guards the set itself and warns when nothing is measured
 * (a classifier circuit without output).
 */
void
rule_measurement(const CircuitView &c, const LintOptions &, Report &out)
{
    if (c.measured.empty())
        out.add(Severity::Warning, "measurement", -1,
                "circuit measures no qubits");
    std::vector<int> seen;
    for (int q : c.measured) {
        if (q < 0 || q >= c.num_qubits) {
            std::ostringstream oss;
            oss << "measured qubit q" << q << " outside [0, "
                << c.num_qubits << ")";
            out.add(Severity::Error, "measurement", -1, oss.str());
            continue;
        }
        if (std::find(seen.begin(), seen.end(), q) != seen.end()) {
            std::ostringstream oss;
            oss << "qubit q" << q << " measured more than once";
            out.add(Severity::Error, "measurement", -1, oss.str());
        } else {
            seen.push_back(q);
        }
    }
}

/**
 * dead-code (warnings): qubits no op or measurement touches, and
 * declared parameter slots no variational gate binds (never trained —
 * the optimizer moves them but the loss never feels it). Findings are
 * aggregated into one diagnostic each so device-sized circuits (a
 * 5-qubit candidate on a 127-qubit register is routine) stay cheap to
 * lint.
 */
void
rule_dead_code(const CircuitView &c, const LintOptions &, Report &out)
{
    if (c.num_qubits <= 0)
        return;
    std::vector<char> touched(static_cast<std::size_t>(c.num_qubits), 0);
    std::vector<int> bound(
        static_cast<std::size_t>(std::max(0, c.num_params)), 0);
    for (const Op &op : c.ops) {
        if (op.kind == GateKind::AmpEmbed) {
            std::fill(touched.begin(), touched.end(), 1);
        } else {
            for (int k = 0; k < op.num_qubits(); ++k) {
                const int q = op.qubits[static_cast<std::size_t>(k)];
                if (q >= 0 && q < c.num_qubits)
                    touched[static_cast<std::size_t>(q)] = 1;
            }
        }
        if (op.role == ParamRole::Variational && op.param_index >= 0) {
            const int np = op.num_params();
            for (int k = 0; k < np && op.param_index + k < c.num_params;
                 ++k)
                ++bound[static_cast<std::size_t>(op.param_index + k)];
        }
    }
    for (int q : c.measured)
        if (q >= 0 && q < c.num_qubits)
            touched[static_cast<std::size_t>(q)] = 1;

    std::vector<int> unused;
    for (int q = 0; q < c.num_qubits; ++q)
        if (!touched[static_cast<std::size_t>(q)])
            unused.push_back(q);
    if (!unused.empty())
        out.add(Severity::Warning, "dead-code", -1,
                "unused qubits: " + index_list(unused));

    std::vector<int> untrained;
    for (int s = 0; s < c.num_params; ++s)
        if (bound[static_cast<std::size_t>(s)] == 0)
            untrained.push_back(s);
    if (!untrained.empty())
        out.add(Severity::Warning, "dead-code", -1,
                "never-trained parameter slots: " +
                    index_list(untrained));
}

/**
 * precision-misuse (warning): a training/gradient path configured with
 * the Float32Proxy amplitude policy. The f32 proxy exists for
 * ranking-only scoring (CNR/RepCap) — Adam accumulation and
 * parameter-shift differences cancel below single precision, so the
 * trainer ignores the request and runs double anyway. The
 * configuration is still worth surfacing: whoever set it expected a
 * speedup the trainer cannot grant.
 */
void
rule_precision_misuse(const CircuitView &, const LintOptions &options,
                      Report &out)
{
    if (!options.training_path ||
        options.precision != sim::Precision::Float32Proxy)
        return;
    out.add(Severity::Warning, "precision-misuse", -1,
            "training/gradient path configured with the f32 proxy "
            "precision; gradients require f64 and the trainer runs "
            "double regardless — keep Float32Proxy on the CNR/RepCap "
            "scoring path");
}

/**
 * dead-lightcone (warnings): ops outside the backward measurement
 * lightcone — their effects are traced out of every measured marginal,
 * so the simulators pay full price for provably-invisible structure.
 * Aggregated into one diagnostic (the autofix and the search-time
 * pruner elide the ops; see lint/dataflow.hpp). Skipped when nothing
 * is measured: the measurement rule owns that finding, and an empty
 * cone would indict every op for the wrong reason.
 */
void
rule_dead_lightcone(const CircuitView &c, const LintOptions &, Report &out)
{
    if (c.measured.empty() || c.ops.empty())
        return;
    const LightconeAnalysis analysis = analyze_lightcone(c);
    const std::vector<int> dead = analysis.dead_ops();
    if (dead.empty())
        return;
    std::ostringstream oss;
    oss << "ops outside the measurement lightcone (traced out, "
           "simulated for nothing): "
        << index_list(dead) << "; `lint --fix` elides them";
    out.add(Severity::Warning, "dead-lightcone", dead[0], oss.str());
}

/**
 * dead-parameter (warnings): variational slots whose every binding
 * rotation lies outside the lightcone — the optimizer moves them, the
 * parameter-shift bill charges 2 executions per step for them, and the
 * loss never feels it. Never-bound slots are dead-code's finding; this
 * rule covers bound-but-invisible ones.
 */
void
rule_dead_parameter(const CircuitView &c, const LintOptions &, Report &out)
{
    if (c.measured.empty() || c.num_params <= 0)
        return;
    const LightconeAnalysis analysis = analyze_lightcone(c);
    std::vector<int> bound(
        static_cast<std::size_t>(c.num_params), 0);
    for (const Op &op : c.ops) {
        if (op.role != ParamRole::Variational || op.param_index < 0)
            continue;
        for (int k = 0; k < op.num_params(); ++k)
            if (op.param_index + k < c.num_params)
                ++bound[static_cast<std::size_t>(op.param_index + k)];
    }
    std::vector<int> dead;
    for (int s = 0; s < c.num_params; ++s)
        if (bound[static_cast<std::size_t>(s)] > 0 &&
            !analysis.live_params[static_cast<std::size_t>(s)])
            dead.push_back(s);
    if (dead.empty())
        return;
    std::ostringstream oss;
    oss << "parameter slots bound only by out-of-lightcone rotations "
           "(zero gradient signal): "
        << index_list(dead);
    out.add(Severity::Warning, "dead-parameter", -1, oss.str());
}

/**
 * clifford-region (notes): const/Clifford structure worth annotating —
 * a fully fixed-Clifford circuit is exactly replayable on the
 * stabilizer fast path, and a nonempty Clifford/param-free prefix
 * marks state a cache could precompute (sim::FusedProgram carries the
 * compiled-level counterpart in const_prefix_source_ops()).
 */
void
rule_clifford_region(const CircuitView &c, const LintOptions &, Report &out)
{
    if (c.ops.empty())
        return;
    const CliffordRegions regions = analyze_clifford_regions(c);
    if (regions.fully_clifford) {
        std::ostringstream oss;
        oss << "entire circuit (" << c.ops.size()
            << " ops) is fixed Clifford: stabilizer-simulable exactly";
        out.add(Severity::Note, "clifford-region", -1, oss.str());
        return;
    }
    if (regions.clifford_prefix == 0 && regions.clifford_suffix == 0)
        return;
    std::ostringstream oss;
    oss << "const-Clifford region: prefix " << regions.clifford_prefix
        << " op(s), suffix " << regions.clifford_suffix << " op(s)";
    if (regions.param_free_prefix > regions.clifford_prefix)
        oss << "; parameter-free prefix extends to "
            << regions.param_free_prefix << " op(s)";
    oss << " (stabilizer fast path / prefix-state cache eligible)";
    out.add(Severity::Note, "clifford-region", -1, oss.str());
}

} // namespace

namespace detail {

void
register_builtin_rules(Linter &linter)
{
    linter.register_rule({"qubit-bounds", Severity::Error,
                          "qubit indices in range, gate arity slots "
                          "consistent"},
                         rule_qubit_bounds);
    linter.register_rule({"param-binding", Severity::Error,
                          "every parameter slot bound exactly once, no "
                          "dangling symbols"},
                         rule_param_binding);
    linter.register_rule({"embedding-order", Severity::Error,
                          "amplitude embedding first and alone; optional "
                          "embedding-prefix ordering"},
                         rule_embedding_order);
    linter.register_rule({"connectivity", Severity::Error,
                          "every 2-qubit gate on a device coupling edge "
                          "(post-SABRE feasibility)"},
                         rule_connectivity);
    linter.register_rule({"clifford-replica", Severity::Error,
                          "replicas are pure Clifford (angles snapped "
                          "to pi/2 multiples)"},
                         rule_clifford_replica);
    linter.register_rule({"measurement", Severity::Error,
                          "measured set in range and duplicate-free; "
                          "warns on empty"},
                         rule_measurement);
    linter.register_rule({"dead-code", Severity::Warning,
                          "unused qubits and never-trained parameters"},
                         rule_dead_code);
    linter.register_rule({"precision-misuse", Severity::Warning,
                          "training/gradient path configured with the "
                          "f32 proxy precision (gradients run f64)"},
                         rule_precision_misuse);
    linter.register_rule({"dead-lightcone", Severity::Warning,
                          "ops outside the backward measurement "
                          "lightcone (traced out; --fix elides)"},
                         rule_dead_lightcone);
    linter.register_rule({"dead-parameter", Severity::Warning,
                          "parameter slots bound only by "
                          "out-of-lightcone rotations"},
                         rule_dead_parameter);
    linter.register_rule({"clifford-region", Severity::Note,
                          "const/Clifford prefixes and suffixes "
                          "(stabilizer fast path annotation)"},
                         rule_clifford_region);
}

} // namespace detail

} // namespace elv::lint
