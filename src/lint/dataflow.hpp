/**
 * @file
 * elvlint dataflow engine — fixed-point analyses over circuit IR.
 *
 * PR 5's rules are per-op syntactic checks; this module adds the
 * semantic layer: a small fixed-point dataflow framework over
 * `CircuitView` (forward and backward transfer over the op stream,
 * qubit- and parameter-indexed boolean abstract domains) plus the
 * three analyses the search pipeline consumes:
 *
 *  - **measurement lightcone** — backward reachability from the
 *    measured qubits through entangling gates. An op whose operands
 *    all lie outside the lightcone at its position is traced out of
 *    the measured marginal: any trace-preserving channel (unitary or
 *    noise) on qubits the cone never couples back in commutes with the
 *    partial trace, so eliding such ops leaves every measured outcome
 *    distribution mathematically unchanged (noiseless AND per-gate
 *    noisy execution — this codebase attaches noise channels to a
 *    gate's own operands; see noise/noise_model.hpp).
 *
 *  - **parameter liveness** — variational slots bound only by
 *    out-of-cone rotations. Dead params inflate the training dimension
 *    (and the 1 + 2P parameter-shift execution bill) for exactly zero
 *    gradient signal.
 *
 *  - **const/Clifford region inference** — maximal prefixes/suffixes
 *    that are Clifford-only or parameter-free, the annotation the
 *    stabilizer fast path and prefix-state caching key off
 *    (sim::FusedProgram::const_prefix_source_ops carries the same
 *    region at the compiled level).
 *
 * On top of the analyses sit the two rewrites the pipeline wires in:
 * `prune_to_lightcone` (scoring-time: drops dead ops but preserves the
 * qubit register and the declared parameter slots, so RNG streams that
 * are sized by num_params stay aligned with the unpruned run) and
 * `elide_dead_structure` (autofix: drops dead ops AND dead params,
 * renumbering the survivors densely so the result serializes through
 * the native text format).
 *
 * Views may describe arbitrarily malformed IR (the adversarial lint
 * corpus does); every analysis here ignores out-of-range qubit and
 * parameter indices rather than crashing — bounds violations are
 * qubit-bounds/param-binding findings, not dataflow's problem.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"
#include "lint/lint.hpp"

namespace elv::lint {

/** Sweep direction of a dataflow pass. */
enum class Direction {
    Forward,  ///< op 0 first
    Backward, ///< last op first
};

/**
 * Boolean abstract state over the two index spaces circuit dataflow
 * cares about: one flag per qubit and one per declared parameter slot.
 * The lattice is pointwise OR (monotone transfers only set flags).
 */
struct AbstractState
{
    std::vector<char> qubit;
    std::vector<char> param;

    /** State sized to a view, all flags clear. */
    static AbstractState bottom(const CircuitView &view);

    /** Pointwise OR of `other` into this; true when anything changed. */
    bool join(const AbstractState &other);

    bool operator==(const AbstractState &other) const = default;

    /** Set qubit flag `q` if it indexes the domain (garbage-tolerant). */
    void mark_qubit(int q);
    /** Set param flags [slot, slot+count) clipped to the domain. */
    void mark_params(int slot, int count);
    /** Qubit flag, false for out-of-range indices. */
    bool qubit_set(int q) const;
};

/** Convergence bookkeeping of a fixed-point run. */
struct FixpointStats
{
    /** Sweeps executed, including the final no-change sweep. */
    int sweeps = 0;
    /** True when the sweep cap was hit before stabilizing. */
    bool capped = false;
};

/**
 * Run `transfer` over the op stream in `direction` until neither the
 * state nor the per-op marks change (straight-line circuits converge
 * in two sweeps: one to compute, one to confirm; the loop exists so
 * transfers whose effect depends on their own earlier marks — and
 * future analyses over richer domains — stay correct). The transfer
 * sees the running state and returns whether the op is "marked"
 * (analysis-specific: live, in-region, ...); marks land in `marks`,
 * one char per op. Capped at ops+2 sweeps; `stats` reports both.
 */
template <typename TransferFn>
FixpointStats run_to_fixpoint(const CircuitView &view, Direction direction,
                              AbstractState &state, TransferFn &&transfer,
                              std::vector<char> &marks)
{
    marks.assign(view.ops.size(), 0);
    FixpointStats stats;
    const int cap = static_cast<int>(view.ops.size()) + 2;
    for (;;) {
        ++stats.sweeps;
        bool changed = false;
        const std::size_t n = view.ops.size();
        for (std::size_t step = 0; step < n; ++step) {
            const std::size_t i =
                direction == Direction::Forward ? step : n - 1 - step;
            const char mark =
                transfer(view.ops[i], static_cast<int>(i), state) ? 1 : 0;
            if (marks[i] != mark) {
                marks[i] = mark;
                changed = true;
            }
        }
        if (!changed)
            break;
        if (stats.sweeps >= cap) {
            stats.capped = true;
            break;
        }
    }
    return stats;
}

/** Lightcone + parameter-liveness result (one backward pass). */
struct LightconeAnalysis
{
    /** Per op: does it influence any measured qubit? */
    std::vector<char> live_ops;
    /** Per qubit: inside the backward lightcone at some point? */
    std::vector<char> live_qubits;
    /** Per declared slot: bound by at least one live variational op? */
    std::vector<char> live_params;
    /** True when the view measures nothing (everything reads dead;
     *  the measurement rule owns that finding, consumers should treat
     *  the cone as unusable). */
    bool no_measurements = false;

    /** Indices of dead ops, increasing. */
    std::vector<int> dead_ops() const;
    /** Dead declared slots, increasing (bound-by-dead-ops only; slots
     *  bound by nothing at all are dead-code's finding, but they are
     *  reported here too since pruning must handle both). */
    std::vector<int> dead_params() const;
};

/**
 * Backward reachability from the measured qubits. An op is live iff it
 * touches a cone qubit at its position; a live multi-qubit op pulls
 * all its operands into the cone (entanglement can carry influence),
 * and AmpEmbed touches every qubit. Parameter liveness falls out of
 * the same pass: a slot is live iff a live variational op binds it.
 */
LightconeAnalysis analyze_lightcone(const CircuitView &view);

/** Const/Clifford region inference result. */
struct CliffordRegions
{
    /** Leading ops that are fixed Clifford gates (no role, no params):
     *  exactly replayable on the stabilizer fast path. */
    int clifford_prefix = 0;
    /** Trailing ops that are fixed Clifford gates. */
    int clifford_suffix = 0;
    /** Leading ops free of variational parameters (fixed or embedding):
     *  constant across training steps for a fixed sample, so a cached
     *  prefix state amortizes across parameter initializations. */
    int param_free_prefix = 0;
    /** Whole circuit is fixed Clifford (replicas always are). */
    bool fully_clifford = false;
    /** Whole circuit carries no variational parameters. */
    bool param_free = false;
};

/** Two forward/backward region sweeps over the same framework. */
CliffordRegions analyze_clifford_regions(const CircuitView &view);

/** Every analysis bundled (what the new rules consume). */
struct DataflowAnalysis
{
    LightconeAnalysis lightcone;
    CliffordRegions regions;
};

DataflowAnalysis analyze_dataflow(const CircuitView &view);

/**
 * Scoring-time prune: rebuild `circuit` without its out-of-cone ops.
 * The qubit register and the declared parameter count/slot numbering
 * are preserved (dead variational slots become holes), which is what
 * keeps RNG streams sized or indexed by num_params — RepCap's random
 * parameter draws, the trainer's initializer — aligned with the
 * unpruned evaluation. Circuits that measure nothing (or have nothing
 * to elide) come back unchanged. `ops_elided`, when non-null, is
 * incremented by the number of dropped ops.
 */
circ::Circuit prune_to_lightcone(const circ::Circuit &circuit,
                                 std::size_t *ops_elided = nullptr);

/**
 * Autofix rewrite: drop dead ops AND the parameter slots that die with
 * them, renumbering surviving slots densely in op order — the form the
 * native text serialization can round-trip. Measured marginals are
 * preserved exactly (see the lightcone argument above); the parameter
 * vector shrinks, with `param_map[old_slot]` giving the new slot or -1
 * when elided. Unchanged circuits come back verbatim with an identity
 * map.
 */
struct FixResult
{
    circ::Circuit circuit;
    /** old slot -> new slot, -1 when the slot was elided. */
    std::vector<int> param_map;
    std::size_t ops_elided = 0;
    std::size_t params_elided = 0;
};

FixResult elide_dead_structure(const circ::Circuit &circuit);

} // namespace elv::lint
