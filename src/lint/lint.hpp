/**
 * @file
 * elvlint — IR-level static verification for circuits, compiled
 * programs, and device models.
 *
 * The search pipeline generates, compiles, fuses, and executes
 * thousands of candidate circuits per run; each stage assumes
 * invariants of its inputs (qubit bounds, exactly-once parameter
 * bindings, coupling-map feasibility, fusion-barrier preservation)
 * that, when violated, surface only as a silently wrong fidelity
 * number. elvlint makes those invariants checkable: a set of
 * diagnostic passes over the three core data structures —
 * `circ::Circuit` IR, `sim::FusedProgram` compiled streams, and
 * `dev::Device` models — each emitting structured diagnostics
 * (severity, rule id, offending op index, human message) instead of
 * aborting, so callers can reject, count, or report.
 *
 * Circuit rules run through a pluggable `Linter` registry (built-ins
 * pre-registered, extensions added with register_rule); program and
 * device rules are fixed functions. `preflight.hpp` wires the linter
 * into the pipeline boundaries; `elivagar_cli lint` exposes it on the
 * command line.
 *
 * Rule catalog (see rule_catalog()):
 *   qubit-bounds      E  qubit indices in range, arity slots consistent
 *   param-binding     E  every parameter slot bound exactly once,
 *                        no dangling parametric gates or stale metadata
 *   embedding-order   E  amplitude embedding only at op 0 and alone;
 *                        with require_embedding_prefix, data embeddings
 *                        precede all variational gates
 *   connectivity      E  every 2-qubit gate on a device coupling edge
 *                        (needs LintOptions::device; post-SABRE check)
 *   clifford-replica  E  replicas are pure Clifford: all rotation
 *                        angles snapped to pi/2 multiples and lowered
 *                        (needs LintOptions::expect_clifford_replica)
 *   measurement       E  measured set in range, duplicate-free;
 *                        warns when nothing is measured (the IR is
 *                        measure-terminal, so "gate after measure" is
 *                        unrepresentable and guarded at the set level)
 *   dead-code         W  unused qubits, never-trained parameter slots
 *   precision-misuse  W  training/gradient path configured with the
 *                        Float32Proxy amplitude policy (gradients
 *                        always run f64; the f32 proxy is for
 *                        ranking-only scoring)
 *   dead-lightcone    W  ops outside the backward measurement
 *                        lightcone — traced out of every measured
 *                        marginal (dataflow.hpp; `lint --fix` elides)
 *   dead-parameter    W  parameter slots bound only by out-of-cone
 *                        rotations (zero gradient signal)
 *   clifford-region   N  const/Clifford prefix/suffix regions,
 *                        annotated for the stabilizer fast path
 *   fusion-barrier    E  fused programs keep every parametric/embedding
 *                        barrier of their source circuit, in order,
 *                        with matching bindings (lint_program)
 *   device-topology   E  coupling edges valid, no self-loops or
 *                        duplicates; warns on disconnected graphs
 *   device-calibration E calibration vectors sized to the topology,
 *                        error rates in [0, 1], coherence times and
 *                        durations positive and finite (lint_device)
 */
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "device/device.hpp"
#include "sim/fusion.hpp"
#include "sim/precision.hpp"

namespace elv::lint {

/** How bad a diagnostic is. Errors make a report "dirty". */
enum class Severity {
    Note,    ///< stylistic or informational
    Warning, ///< suspicious but executable (dead code, empty measure)
    Error,   ///< the artifact violates a pipeline invariant
};

/** Printable severity name ("note" / "warning" / "error"). */
const char *severity_name(Severity severity);

/** One finding of one rule. */
struct Diagnostic
{
    Severity severity = Severity::Error;
    /** Rule id from the catalog, e.g. "qubit-bounds". */
    std::string rule;
    /** Offending op index (fused-stream index for program rules);
     *  -1 when the finding concerns the artifact as a whole. */
    int op_index = -1;
    std::string message;

    /** One-line rendering: `error[qubit-bounds] op 3: ...`. */
    std::string to_string() const;
};

/** Everything the passes found about one artifact. */
struct Report
{
    std::vector<Diagnostic> diagnostics;

    /** True when any diagnostic has Error severity. */
    bool has_errors() const;

    /** Diagnostics of the given severity. */
    std::size_t count(Severity severity) const;

    /** True when rule `rule` produced at least one diagnostic. */
    bool fired(const std::string &rule) const;

    /** Append a diagnostic. */
    void add(Severity severity, std::string rule, int op_index,
             std::string message);

    /** Append every diagnostic of `other`. */
    void merge(const Report &other);

    /** Multi-line rendering, one diagnostic per line. */
    std::string to_string() const;
};

/**
 * A borrowed view of circuit IR. Lint rules read views rather than
 * `circ::Circuit` so malformed IR — which the Circuit builder API
 * rejects at construction — can still be expressed and linted (the
 * adversarial test corpus builds raw views). The referenced vectors
 * must outlive the view.
 */
struct CircuitView
{
    int num_qubits = 0;
    /** Declared trainable parameter count. */
    int num_params = 0;
    const std::vector<circ::Op> &ops;
    const std::vector<int> &measured;
};

/** View of a well-formed circuit (borrows; `circuit` must outlive). */
CircuitView view_of(const circ::Circuit &circuit);

/** Context a lint run is given. All fields optional. */
struct LintOptions
{
    /** Target device; enables the connectivity rule. */
    const dev::Device *device = nullptr;
    /** The circuit claims to be a Clifford replica. */
    bool expect_clifford_replica = false;
    /** Data embeddings must precede all variational gates (fixed-
     *  embedding templates; searched candidates interleave by design). */
    bool require_embedding_prefix = false;
    /** The circuit is entering a training/gradient path (enables the
     *  precision-misuse rule together with `precision`). */
    bool training_path = false;
    /** Amplitude precision the surrounding run was configured with. */
    sim::Precision precision = sim::Precision::Float64;
    /** Rule ids to skip. */
    std::vector<std::string> disabled_rules;

    /** True when `rule` appears in disabled_rules. */
    bool disabled(const std::string &rule) const;
};

/** Static description of a rule (for listings and docs). */
struct RuleInfo
{
    std::string id;
    /** Severity of this rule's typical findings. */
    Severity severity = Severity::Error;
    std::string summary;
};

/** All built-in rules (circuit, program, and device). */
const std::vector<RuleInfo> &rule_catalog();

/** A circuit rule: reads the view, appends diagnostics. */
using CircuitRuleFn =
    std::function<void(const CircuitView &, const LintOptions &, Report &)>;

/**
 * The pluggable circuit-rule runner. Construction registers the
 * built-in rules; register_rule appends custom ones. Registration is
 * not thread-safe; lint() is const and safe to call concurrently once
 * registration is done (the pipeline boundaries lint from pool
 * workers).
 */
class Linter
{
  public:
    Linter();

    /** Process-wide instance used by lint_circuit and the preflight
     *  boundaries. */
    static Linter &global();

    /** Append a custom rule, run after the built-ins. */
    void register_rule(RuleInfo info, CircuitRuleFn fn);

    /** Registered rules, in run order. */
    const std::vector<RuleInfo> &rules() const { return infos_; }

    /** Run every registered (non-disabled) rule over the view. */
    Report lint(const CircuitView &view,
                const LintOptions &options = {}) const;

  private:
    std::vector<RuleInfo> infos_;
    std::vector<CircuitRuleFn> rules_;
};

/** Lint a circuit through the global Linter. */
Report lint_circuit(const circ::Circuit &circuit,
                    const LintOptions &options = {});

/** Lint a raw IR view through the global Linter. */
Report lint_circuit(const CircuitView &view,
                    const LintOptions &options = {});

/**
 * Lint a compiled fused program against the circuit it claims to have
 * been compiled from (the "fusion-barrier" rule): every parametric/
 * embedding source op must survive as a Barrier entry, in order, with
 * identical bindings — the precondition the FusionCache relies on when
 * it replays a program for fresh (params, x) values — and the fused
 * group accounting must cover exactly the fixed source ops. Detects
 * stale cache entries, dropped barriers, and regions fused across a
 * barrier.
 */
Report lint_program(const sim::FusedProgram &program,
                    const circ::Circuit &source,
                    const LintOptions &options = {});

/**
 * Lint a device model ("device-topology" + "device-calibration"):
 * diagnostic-emitting counterpart of Device::validate(), usable on
 * untrusted models without aborting.
 */
Report lint_device(const dev::Device &device,
                   const LintOptions &options = {});

} // namespace elv::lint
