#include "lint/preflight.hpp"

#include <atomic>

#include "common/logging.hpp"
#include "obs/metrics.hpp"

namespace elv::lint {

namespace {

std::atomic<bool> preflight_fatal_flag{
#ifdef NDEBUG
    false
#else
    true
#endif
};

} // namespace

const char *
boundary_name(Boundary boundary)
{
    switch (boundary) {
      case Boundary::CandidateGen: return "candidate-gen";
      case Boundary::CompilerOutput: return "compiler-output";
      case Boundary::Executor: return "executor";
      case Boundary::Training: return "training";
    }
    return "unknown";
}

bool
preflight_fatal()
{
    return preflight_fatal_flag.load(std::memory_order_relaxed);
}

void
set_preflight_fatal(bool fatal)
{
    preflight_fatal_flag.store(fatal, std::memory_order_relaxed);
}

bool
preflight(const circ::Circuit &circuit, Boundary boundary,
          const LintOptions &options)
{
    ELV_METRIC_COUNT("lint.circuits_checked");
    const Report report = lint_circuit(circuit, options);
    const std::size_t errors = report.count(Severity::Error);
    if (errors == 0)
        return true;
    ELV_METRIC_COUNT_N("lint.violations",
                       static_cast<std::uint64_t>(errors));
    if (preflight_fatal())
        ELV_REQUIRE(false, "lint preflight failed at the "
                               << boundary_name(boundary)
                               << " boundary:\n"
                               << report.to_string());
    return false;
}

} // namespace elv::lint
