/**
 * @file
 * Retry policy shared by the resilient execution layer (src/exec/).
 *
 * Cloud NISQ backends fail jobs transiently, sit in queues, and return
 * garbage often enough that every repeated-execution loop needs bounded
 * retries. The policy is expressed in *simulated* milliseconds: callers
 * accumulate the computed backoff delays on a virtual clock instead of
 * sleeping, so deadline/budget behaviour is testable deterministically
 * and benches run at full speed.
 */
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace elv {

/** Exponential backoff with jitter plus per-call / per-run deadlines. */
struct RetryPolicy
{
    /** Attempts per backend rung before degrading (>= 1). */
    int max_attempts = 4;
    /** Delay before the first retry (simulated milliseconds). */
    double initial_backoff_ms = 100.0;
    /** Growth factor of successive delays (>= 1). */
    double backoff_multiplier = 2.0;
    /** Cap on a single backoff delay. */
    double max_backoff_ms = 10000.0;
    /** Uniform jitter as a fraction of the nominal delay, in [0, 1]. */
    double jitter = 0.25;
    /**
     * Bounded full jitter (AWS-style, with a floor): draw the delay
     * uniformly from [nominal * (1 - jitter), nominal] instead of the
     * symmetric band around the nominal. Concurrent clients whose
     * retries would otherwise synchronize spread across the window,
     * while the floor keeps exponential progress — jitter = 1 is
     * classic full jitter over [0, nominal]. Deterministic in the
     * caller's RNG stream, like every other draw.
     */
    bool full_jitter = false;
    /**
     * Per-call deadline: once a single logical call has accumulated this
     * much simulated wait (queue time + backoff), stop retrying the
     * current backend and degrade. 0 disables the deadline.
     */
    double call_deadline_ms = 60000.0;
    /**
     * Per-run budget: once the executor's whole virtual clock passes
     * this, retries are skipped entirely (one attempt per rung) so the
     * run finishes by degrading instead of waiting. 0 disables it.
     */
    double total_budget_ms = 0.0;

    /** Reject nonsensical settings with a fatal() diagnostic. */
    void check() const;

    /**
     * Delay before retry number `retry_index` (0-based), with jitter
     * drawn deterministically from `rng`.
     */
    double backoff_delay_ms(int retry_index, Rng &rng) const;
};

/**
 * Tallies kept by a resilient executor, reported next to the existing
 * circuit-execution counters (Table-4-style accounting).
 */
struct RetryCounters
{
    /** Logical calls serviced. */
    std::uint64_t calls = 0;
    /** Physical attempts, including the first try of each call. */
    std::uint64_t attempts = 0;
    /** Attempts that failed (threw or returned invalid data). */
    std::uint64_t failures = 0;
    /** Backoff waits taken (attempts minus first tries, minus skips). */
    std::uint64_t retries = 0;
    /** Failures caused by NaN/garbage/unnormalized distributions. */
    std::uint64_t invalid_results = 0;
    /** Backend rungs abandoned after exhausting their attempts. */
    std::uint64_t rungs_exhausted = 0;
    /** Calls serviced by a fallback rung instead of the primary. */
    std::uint64_t degraded_calls = 0;
    /** Total simulated backoff wait (milliseconds). */
    double backoff_wait_ms = 0.0;
    /** Total simulated queue wait from timed-out jobs (milliseconds). */
    double queue_wait_ms = 0.0;

    RetryCounters &operator+=(const RetryCounters &other);
};

} // namespace elv
