/**
 * @file
 * Cooperative cancellation for long-running pipelines.
 *
 * A CancelToken is a small shared object that a controller (the server,
 * a CLI --deadline-sec flag, a test) arms and that workers poll at
 * checkpoints: phase boundaries, per-candidate task entry, retry loops.
 * Cancellation is *cooperative* — nothing is torn down preemptively;
 * the polling code observes the token and unwinds by throwing
 * CancelledError, so destructors run, journals stay valid, and the job
 * remains resumable from its checkpoint.
 *
 * Two trip conditions share one token: an explicit cancel() (client
 * request, server shutdown) and an optional wall-clock deadline.
 * `reason()` distinguishes them so callers can report "cancelled" vs
 * "deadline exceeded" — a deadline expiry is not a failure.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>

namespace elv {

/** Thrown by CancelToken::check() when a pipeline must unwind. */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Shared cancel flag + optional wall-clock deadline. Thread-safe. */
class CancelToken
{
  public:
    CancelToken() = default;

    /** Trip the token explicitly (idempotent). */
    void
    cancel()
    {
        cancelled_.store(true, std::memory_order_relaxed);
    }

    /**
     * Arm a wall-clock deadline `seconds` from now; <= 0 disarms.
     * Call before handing the token to workers — rearming while a
     * pipeline polls is not synchronized.
     */
    void
    set_deadline_after(double seconds)
    {
        if (seconds <= 0.0) {
            has_deadline_.store(false, std::memory_order_release);
            return;
        }
        deadline_ = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(seconds));
        has_deadline_.store(true, std::memory_order_release);
    }

    /** True once cancelled explicitly or past the deadline. */
    bool
    cancelled() const
    {
        if (cancelled_.load(std::memory_order_relaxed))
            return true;
        return deadline_expired();
    }

    /** True when the deadline (if armed) has passed. */
    bool
    deadline_expired() const
    {
        return has_deadline_.load(std::memory_order_acquire) &&
               std::chrono::steady_clock::now() >= deadline_;
    }

    /**
     * Why the token tripped: "cancelled" for an explicit cancel,
     * "deadline" when only the wall clock expired. Meaningful after
     * cancelled() returned true; explicit cancel wins ties.
     */
    const char *
    reason() const
    {
        if (cancelled_.load(std::memory_order_relaxed))
            return "cancelled";
        return deadline_expired() ? "deadline" : "none";
    }

    /**
     * Cancellation checkpoint: throws CancelledError("<where>:
     * <reason>") once the token has tripped, otherwise returns. Cheap
     * enough for per-candidate polling (one relaxed load on the
     * untripped path with no deadline armed).
     */
    void
    check(const char *where) const
    {
        if (!cancelled())
            return;
        throw CancelledError(std::string(where) + ": " + reason());
    }

  private:
    std::atomic<bool> cancelled_{false};
    std::atomic<bool> has_deadline_{false};
    std::chrono::steady_clock::time_point deadline_{};
};

} // namespace elv
