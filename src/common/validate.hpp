/**
 * @file
 * Numerical guardrails for outcome distributions.
 *
 * Every backend in the tree ultimately hands probability vectors to
 * TVD/loss computations that silently propagate NaN, negative mass, or
 * normalization drift. validate_distribution() is the single checkpoint
 * applied at the DistributionFn boundary (qml/classifier), inside
 * CNR/RepCap, and by the resilient execution layer, where an invalid
 * distribution counts as a retryable backend failure.
 */
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace elv {

/** Thrown when a distribution fails validation (retryable failure). */
class DistributionError : public std::runtime_error
{
  public:
    explicit DistributionError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** What validate_distribution does with a repairable violation. */
enum class DistributionPolicy {
    /**
     * Clip tiny negative entries and rescale to unit mass. Non-finite
     * entries, entries below -tolerance, and non-positive total mass
     * are not repairable and still throw.
     */
    Renormalize,
    /** Throw DistributionError on any violation beyond tolerance. */
    Throw,
};

/** True iff `probs` is a probability distribution within `tolerance`. */
bool is_valid_distribution(const std::vector<double> &probs,
                           double tolerance = 1e-6);

/**
 * Validate (and under Renormalize, repair) `probs` in place. `context`
 * names the producing component in the DistributionError message.
 * Returns a reference to `probs` for call-site chaining.
 */
std::vector<double> &validate_distribution(
    std::vector<double> &probs, DistributionPolicy policy,
    const char *context, double tolerance = 1e-6);

} // namespace elv
