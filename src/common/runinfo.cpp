#include "common/runinfo.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>

namespace elv {

const char *
version_string()
{
#ifdef ELV_VERSION_STRING
    return ELV_VERSION_STRING;
#else
    return "unknown";
#endif
}

std::string
iso8601_utc_now()
{
    const std::time_t now =
        std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
    std::tm tm_buf{};
    gmtime_r(&now, &tm_buf);
    char out[24];
    std::strftime(out, sizeof(out), "%Y-%m-%dT%H:%M:%SZ", &tm_buf);
    return out;
}

} // namespace elv
