/**
 * @file
 * Minimal ASCII table printer used by the benchmark harnesses to emit the
 * rows/series of the paper's tables and figures in a readable form.
 */
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace elv {

/** Column-aligned ASCII table with a title, header and data rows. */
class Table
{
  public:
    explicit Table(std::string title = "");

    /** Set the header row (column names). */
    void set_header(std::vector<std::string> header);

    /** Append a data row; shorter rows are padded with empty cells. */
    void add_row(std::vector<std::string> row);

    /** Convenience: format a double with the given precision. */
    static std::string fmt(double value, int precision = 3);

    /** Convenience: format a percentage (value in [0, 1] -> "xx.x"). */
    static std::string pct(double value, int precision = 1);

    /** Render to a stream. */
    void print(std::ostream &os) const;

    /** Render to stdout. */
    void print() const;

    const std::string &title() const { return title_; }
    const std::vector<std::string> &header() const { return header_; }
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

    /**
     * Render as a JSON object {"title", "header", "rows"} (cells stay
     * strings; consumers parse numbers as needed). Used by the bench
     * binaries' --json reports.
     */
    std::string to_json() const;

    /** JSON string literal (quoted, escaped) for `text`. */
    static std::string json_escape(const std::string &text);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace elv
