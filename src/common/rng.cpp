#include "common/rng.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace elv {

namespace {

/** splitmix64 step, used to expand a single seed into generator state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next_u64()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::size_t
Rng::uniform_index(std::size_t n)
{
    ELV_REQUIRE(n > 0, "uniform_index over empty range");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t bound = n;
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
    std::uint64_t x;
    do {
        x = next_u64();
    } while (x >= limit);
    return static_cast<std::size_t>(x % bound);
}

double
Rng::normal()
{
    if (have_cached_normal_) {
        have_cached_normal_ = false;
        return cached_normal_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300)
        u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    have_cached_normal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::size_t
Rng::categorical(const std::vector<double> &weights)
{
    ELV_REQUIRE(!weights.empty(), "categorical over empty weights");
    double total = 0.0;
    for (double w : weights) {
        ELV_REQUIRE(w >= 0.0, "negative categorical weight");
        total += w;
    }
    if (total <= 0.0)
        return uniform_index(weights.size());

    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        x -= weights[i];
        if (x < 0.0)
            return i;
    }
    return weights.size() - 1;
}

std::vector<std::size_t>
Rng::choose(std::size_t n, std::size_t k)
{
    ELV_REQUIRE(k <= n, "choose: k > n");
    std::vector<std::size_t> pool(n);
    for (std::size_t i = 0; i < n; ++i)
        pool[i] = i;
    // Partial Fisher-Yates: the first k entries are the sample.
    for (std::size_t i = 0; i < k; ++i) {
        std::size_t j = i + uniform_index(n - i);
        std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
}

Rng
Rng::split()
{
    return Rng(next_u64());
}

} // namespace elv
