#include "common/logging.hpp"

#include <cstdio>

namespace elv {

namespace detail {

void
throw_internal(const char *file, int line, const char *cond,
               const std::string &msg)
{
    std::ostringstream oss;
    oss << file << ":" << line << ": invariant `" << cond << "` violated";
    if (!msg.empty())
        oss << ": " << msg;
    throw InternalError(oss.str());
}

void
throw_usage(const std::string &msg)
{
    throw UsageError(msg);
}

} // namespace detail

void
inform(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

} // namespace elv
