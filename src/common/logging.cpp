#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

namespace elv {

namespace detail {

void
throw_internal(const char *file, int line, const char *cond,
               const std::string &msg)
{
    std::ostringstream oss;
    oss << file << ":" << line << ": invariant `" << cond << "` violated";
    if (!msg.empty())
        oss << ": " << msg;
    throw InternalError(oss.str());
}

void
throw_usage(const std::string &msg)
{
    throw UsageError(msg);
}

} // namespace detail

namespace {

LogLevel
level_from_env()
{
    const char *env = std::getenv("ELV_LOG_LEVEL");
    if (!env)
        return LogLevel::Info;
    if (!std::strcmp(env, "silent") || !std::strcmp(env, "0"))
        return LogLevel::Silent;
    if (!std::strcmp(env, "warn") || !std::strcmp(env, "1"))
        return LogLevel::Warn;
    return LogLevel::Info;
}

std::atomic<int> &
level_store()
{
    static std::atomic<int> level{static_cast<int>(level_from_env())};
    return level;
}

/**
 * Emit one fully-formatted line with a single fprintf so concurrent
 * pool workers never interleave mid-line (POSIX stdio locks per call).
 */
void
emit(const char *tag, const std::string &msg)
{
    const auto now = std::chrono::system_clock::now();
    const std::time_t secs = std::chrono::system_clock::to_time_t(now);
    const int millis = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now.time_since_epoch())
            .count() %
        1000);
    std::tm tm_buf{};
    localtime_r(&secs, &tm_buf);
    char stamp[16];
    std::strftime(stamp, sizeof(stamp), "%H:%M:%S", &tm_buf);
    std::fprintf(stderr, "[%s.%03d T%d] %s: %s\n", stamp, millis,
                 thread_ordinal(), tag, msg.c_str());
}

} // namespace

LogLevel
log_level()
{
    return static_cast<LogLevel>(
        level_store().load(std::memory_order_relaxed));
}

void
set_log_level(LogLevel level)
{
    level_store().store(static_cast<int>(level),
                        std::memory_order_relaxed);
}

int
thread_ordinal()
{
    static std::atomic<int> next{0};
    thread_local const int ordinal =
        next.fetch_add(1, std::memory_order_relaxed);
    return ordinal;
}

void
inform(const std::string &msg)
{
    if (log_level() < LogLevel::Info)
        return;
    emit("info", msg);
}

void
warn(const std::string &msg)
{
    if (log_level() < LogLevel::Warn)
        return;
    emit("warn", msg);
}

} // namespace elv
