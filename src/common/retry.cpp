#include "common/retry.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace elv {

void
RetryPolicy::check() const
{
    if (max_attempts < 1)
        fatal("retry policy needs max_attempts >= 1");
    if (initial_backoff_ms < 0.0 || max_backoff_ms < 0.0)
        fatal("retry backoff delays must be non-negative");
    if (backoff_multiplier < 1.0)
        fatal("retry backoff multiplier must be >= 1");
    if (jitter < 0.0 || jitter > 1.0)
        fatal("retry jitter must lie in [0, 1]");
    if (call_deadline_ms < 0.0 || total_budget_ms < 0.0)
        fatal("retry deadlines must be non-negative");
}

double
RetryPolicy::backoff_delay_ms(int retry_index, Rng &rng) const
{
    ELV_REQUIRE(retry_index >= 0, "negative retry index");
    double nominal = initial_backoff_ms *
                     std::pow(backoff_multiplier,
                              static_cast<double>(retry_index));
    nominal = std::min(nominal, max_backoff_ms);
    if (full_jitter) {
        // Bounded full jitter: uniform in nominal * [1 - jitter, 1].
        // The draw never exceeds the nominal delay, so a fleet of
        // synchronized clients spreads out instead of stampeding, and
        // the (1 - jitter) floor preserves backoff progress.
        const double floor_factor = 1.0 - jitter;
        const double factor =
            floor_factor + jitter * rng.uniform();
        return std::max(0.0, nominal * factor);
    }
    // Symmetric band: uniform in nominal * [1 - jitter, 1 + jitter],
    // so concurrent clients do not retry in lockstep.
    const double factor = 1.0 + jitter * (2.0 * rng.uniform() - 1.0);
    return std::max(0.0, nominal * factor);
}

RetryCounters &
RetryCounters::operator+=(const RetryCounters &other)
{
    calls += other.calls;
    attempts += other.attempts;
    failures += other.failures;
    retries += other.retries;
    invalid_results += other.invalid_results;
    rungs_exhausted += other.rungs_exhausted;
    degraded_calls += other.degraded_calls;
    backoff_wait_ms += other.backoff_wait_ms;
    queue_wait_ms += other.queue_wait_ms;
    return *this;
}

} // namespace elv
