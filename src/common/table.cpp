#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace elv {

Table::Table(std::string title) : title_(std::move(title)) {}

void
Table::set_header(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::add_row(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
Table::fmt(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
Table::pct(double value, int precision)
{
    return fmt(100.0 * value, precision);
}

void
Table::print(std::ostream &os) const
{
    std::size_t ncols = header_.size();
    for (const auto &row : rows_)
        ncols = std::max(ncols, row.size());

    std::vector<std::size_t> widths(ncols, 0);
    auto measure = [&widths](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    };
    measure(header_);
    for (const auto &row : rows_)
        measure(row);

    auto emit = [&os, &widths, ncols](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < ncols; ++c) {
            const std::string cell = c < row.size() ? row[c] : "";
            os << "| " << std::left << std::setw(static_cast<int>(widths[c]))
               << cell << " ";
        }
        os << "|\n";
    };

    std::size_t total = 1;
    for (std::size_t w : widths)
        total += w + 3;

    if (!title_.empty())
        os << title_ << "\n";
    os << std::string(total, '-') << "\n";
    if (!header_.empty()) {
        emit(header_);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows_)
        emit(row);
    os << std::string(total, '-') << "\n";
}

void
Table::print() const
{
    print(std::cout);
}

std::string
Table::json_escape(const std::string &text)
{
    std::string out = "\"";
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
Table::to_json() const
{
    auto cells = [](const std::vector<std::string> &row) {
        std::string out = "[";
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                out += ", ";
            out += json_escape(row[c]);
        }
        return out + "]";
    };
    std::string out = "{\"title\": " + json_escape(title_) +
                      ", \"header\": " + cells(header_) + ", \"rows\": [";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        if (r)
            out += ", ";
        out += cells(rows_[r]);
    }
    return out + "]}";
}

} // namespace elv
