#include "common/validate.hpp"

#include <cmath>
#include <sstream>

namespace elv {

namespace {

[[noreturn]] void
reject(const char *context, const std::string &why,
       const std::vector<double> &probs)
{
    std::ostringstream oss;
    oss << context << ": invalid distribution (" << why << ", "
        << probs.size() << " entries)";
    throw DistributionError(oss.str());
}

} // namespace

bool
is_valid_distribution(const std::vector<double> &probs, double tolerance)
{
    if (probs.empty())
        return false;
    double total = 0.0;
    for (double p : probs) {
        if (!std::isfinite(p) || p < -tolerance)
            return false;
        total += p;
    }
    return std::abs(total - 1.0) <= tolerance;
}

std::vector<double> &
validate_distribution(std::vector<double> &probs,
                      DistributionPolicy policy, const char *context,
                      double tolerance)
{
    if (probs.empty())
        reject(context, "empty", probs);

    double total = 0.0;
    double most_negative = 0.0;
    for (double p : probs) {
        if (!std::isfinite(p))
            reject(context, "non-finite entry", probs);
        most_negative = std::min(most_negative, p);
        total += p;
    }
    if (most_negative < -tolerance)
        reject(context, "negative probability mass", probs);
    if (policy == DistributionPolicy::Throw &&
        std::abs(total - 1.0) > tolerance)
        reject(context, "mass does not sum to 1", probs);
    if (total <= tolerance)
        reject(context, "no probability mass", probs);

    // Repair float drift: clip tiny negatives, rescale to unit mass.
    double clipped_total = 0.0;
    for (double &p : probs) {
        p = std::max(p, 0.0);
        clipped_total += p;
    }
    for (double &p : probs)
        p /= clipped_total;
    return probs;
}

} // namespace elv
