/**
 * @file
 * Over-aligned allocator for simulator state storage.
 *
 * The vectorized kernels (sim/vec_complex.hpp) issue 256/512-bit loads
 * and stores against the amplitude array. Correctness never depends on
 * alignment (the kernels use unaligned load/store intrinsics), but a
 * 64-byte base keeps every vector access inside one cache line and
 * makes the hot arrays start on an AVX-512-friendly boundary. The
 * allocator rounds every allocation up to the alignment so operator
 * new's size/alignment contract holds for any element count.
 */
#pragma once

#include <cstddef>
#include <new>

namespace elv {

/** Minimal C++17 allocator returning `Align`-byte-aligned storage. */
template <typename T, std::size_t Align = 64>
struct AlignedAllocator
{
    static_assert(Align >= alignof(T), "alignment below the type's own");
    static_assert((Align & (Align - 1)) == 0,
                  "alignment must be a power of two");

    using value_type = T;

    AlignedAllocator() noexcept = default;

    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align> &) noexcept
    {
    }

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    T *allocate(std::size_t n)
    {
        const std::size_t bytes =
            ((n * sizeof(T) + Align - 1) / Align) * Align;
        return static_cast<T *>(
            ::operator new(bytes, std::align_val_t{Align}));
    }

    void deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t{Align});
    }

    friend bool operator==(const AlignedAllocator &,
                           const AlignedAllocator &) noexcept
    {
        return true;
    }

    friend bool operator!=(const AlignedAllocator &,
                           const AlignedAllocator &) noexcept
    {
        return false;
    }
};

} // namespace elv
