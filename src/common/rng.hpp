/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component in the library receives an explicit Rng (or a
 * seed used to construct one); there is no global generator. The
 * implementation wraps a splitmix64-seeded xoshiro256** generator so that
 * results are identical across platforms and standard-library versions
 * (std::mt19937 distributions are not portable across implementations).
 */
#pragma once

#include <cstdint>
#include <vector>

namespace elv {

/** Portable deterministic pseudo-random generator with helper draws. */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next_u64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n); requires n > 0. */
    std::size_t uniform_index(std::size_t n);

    /** Standard normal draw (Box-Muller, deterministic). */
    double normal();

    /** Normal draw with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli draw with success probability p. */
    bool bernoulli(double p);

    /**
     * Sample an index from an unnormalized non-negative weight vector.
     * Falls back to a uniform draw when all weights are zero.
     */
    std::size_t categorical(const std::vector<double> &weights);

    /** Fisher-Yates shuffle of an index-addressable vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = uniform_index(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Choose k distinct indices from [0, n) uniformly (k <= n). */
    std::vector<std::size_t> choose(std::size_t n, std::size_t k);

    /** Derive an independent child generator (for parallel components). */
    Rng split();

  private:
    std::uint64_t state_[4];
    bool have_cached_normal_ = false;
    double cached_normal_ = 0.0;
};

} // namespace elv
