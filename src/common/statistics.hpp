/**
 * @file
 * Descriptive statistics and correlation measures used throughout the
 * evaluation harnesses (Pearson/Spearman R for the predictor-correlation
 * figures, TVD for fidelity computation, geometric mean for Table 4).
 */
#pragma once

#include <cstddef>
#include <vector>

namespace elv {

/** Arithmetic mean; requires a non-empty input. */
double mean(const std::vector<double> &xs);

/** Sample standard deviation (n - 1 denominator); 0 for n < 2. */
double stddev(const std::vector<double> &xs);

/** Pearson linear correlation coefficient of two equal-length series. */
double pearson_r(const std::vector<double> &xs, const std::vector<double> &ys);

/**
 * Spearman rank correlation coefficient (Pearson R of the rank
 * transforms, with ties assigned average ranks).
 */
double spearman_r(const std::vector<double> &xs,
                  const std::vector<double> &ys);

/**
 * Total variation distance between two probability distributions:
 * TVD(p, q) = 0.5 * sum_i |p_i - q_i|. The inputs must have equal size.
 */
double total_variation_distance(const std::vector<double> &p,
                                const std::vector<double> &q);

/** Geometric mean of strictly positive values. */
double geometric_mean(const std::vector<double> &xs);

/** Average ranks of a series (1-based; ties get the average rank). */
std::vector<double> average_ranks(const std::vector<double> &xs);

/** Minimum / maximum helpers over non-empty vectors. */
double min_value(const std::vector<double> &xs);
double max_value(const std::vector<double> &xs);

} // namespace elv
