#include "common/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hpp"

namespace elv {

double
mean(const std::vector<double> &xs)
{
    ELV_REQUIRE(!xs.empty(), "mean of empty vector");
    return std::accumulate(xs.begin(), xs.end(), 0.0) /
           static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double mu = mean(xs);
    double ss = 0.0;
    for (double x : xs)
        ss += (x - mu) * (x - mu);
    return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double
pearson_r(const std::vector<double> &xs, const std::vector<double> &ys)
{
    ELV_REQUIRE(xs.size() == ys.size(), "pearson_r: size mismatch");
    ELV_REQUIRE(xs.size() >= 2, "pearson_r: need at least two points");
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

std::vector<double>
average_ranks(const std::vector<double> &xs)
{
    const std::size_t n = xs.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&xs](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });

    std::vector<double> ranks(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && xs[order[j + 1]] == xs[order[i]])
            ++j;
        // Average of 1-based ranks i+1 .. j+1.
        const double avg = 0.5 * static_cast<double>(i + 1 + j + 1);
        for (std::size_t k = i; k <= j; ++k)
            ranks[order[k]] = avg;
        i = j + 1;
    }
    return ranks;
}

double
spearman_r(const std::vector<double> &xs, const std::vector<double> &ys)
{
    ELV_REQUIRE(xs.size() == ys.size(), "spearman_r: size mismatch");
    return pearson_r(average_ranks(xs), average_ranks(ys));
}

double
total_variation_distance(const std::vector<double> &p,
                         const std::vector<double> &q)
{
    ELV_REQUIRE(p.size() == q.size(), "TVD: size mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i)
        acc += std::abs(p[i] - q[i]);
    return 0.5 * acc;
}

double
geometric_mean(const std::vector<double> &xs)
{
    ELV_REQUIRE(!xs.empty(), "geometric_mean of empty vector");
    double log_sum = 0.0;
    for (double x : xs) {
        ELV_REQUIRE(x > 0.0, "geometric_mean requires positive values");
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
min_value(const std::vector<double> &xs)
{
    ELV_REQUIRE(!xs.empty(), "min of empty vector");
    return *std::min_element(xs.begin(), xs.end());
}

double
max_value(const std::vector<double> &xs)
{
    ELV_REQUIRE(!xs.empty(), "max of empty vector");
    return *std::max_element(xs.begin(), xs.end());
}

} // namespace elv
