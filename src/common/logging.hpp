/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: `fatal` aborts the process for user errors
 * (bad configuration, invalid arguments), `ELV_REQUIRE` throws for
 * programmer errors (broken internal invariants), and `warn` / `inform`
 * print status without stopping execution.
 *
 * Messages carry a wall-clock timestamp and the caller's thread ordinal
 * (`[14:03:22.123 T2] info: ...`) and are written with a single stdio
 * call each, so lines from concurrent pool workers never interleave.
 * The `ELV_LOG_LEVEL` environment variable (`silent` / `warn` / `info`)
 * or set_log_level() silences lower-priority messages — benches set it
 * to `warn` to keep multi-thread runs readable.
 */
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace elv {

/** Thrown when an internal invariant is violated (a library bug). */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string &what) : std::logic_error(what) {}
};

/** Thrown for invalid user-supplied arguments or configuration. */
class UsageError : public std::invalid_argument
{
  public:
    explicit UsageError(const std::string &what)
        : std::invalid_argument(what) {}
};

namespace detail {

[[noreturn]] void throw_internal(const char *file, int line,
                                 const char *cond, const std::string &msg);
[[noreturn]] void throw_usage(const std::string &msg);

} // namespace detail

/** Log verbosity, from quietest to loudest. */
enum class LogLevel { Silent = 0, Warn = 1, Info = 2 };

/**
 * Active log level. Initialized once from `ELV_LOG_LEVEL` (`silent`,
 * `warn` or `info`; unset or unrecognized = `info`).
 */
LogLevel log_level();

/** Override the log level (takes precedence over the env variable). */
void set_log_level(LogLevel level);

/**
 * Small dense ordinal of the calling thread (0 = first caller, usually
 * main). Stable for the thread's lifetime; used to prefix log lines,
 * tag trace events, and shard metric counters.
 */
int thread_ordinal();

/** Print an informational message to stderr (level >= Info). */
void inform(const std::string &msg);

/** Print a warning message to stderr (level >= Warn). */
void warn(const std::string &msg);

/** Report a user error: throws UsageError with the given message. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    detail::throw_usage(msg);
}

} // namespace elv

/**
 * Check an internal invariant; throws elv::InternalError when violated.
 * Use for conditions that indicate a bug in this library, never for
 * validating user input (use elv::fatal for that).
 */
#define ELV_REQUIRE(cond, msg)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream elv_require_oss_;                            \
            elv_require_oss_ << msg;                                        \
            ::elv::detail::throw_internal(__FILE__, __LINE__, #cond,        \
                                          elv_require_oss_.str());          \
        }                                                                   \
    } while (0)
