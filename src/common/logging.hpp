/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: `fatal` aborts the process for user errors
 * (bad configuration, invalid arguments), `ELV_REQUIRE` throws for
 * programmer errors (broken internal invariants), and `warn` / `inform`
 * print status without stopping execution.
 */
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace elv {

/** Thrown when an internal invariant is violated (a library bug). */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string &what) : std::logic_error(what) {}
};

/** Thrown for invalid user-supplied arguments or configuration. */
class UsageError : public std::invalid_argument
{
  public:
    explicit UsageError(const std::string &what)
        : std::invalid_argument(what) {}
};

namespace detail {

[[noreturn]] void throw_internal(const char *file, int line,
                                 const char *cond, const std::string &msg);
[[noreturn]] void throw_usage(const std::string &msg);

} // namespace detail

/** Print an informational message to stderr. */
void inform(const std::string &msg);

/** Print a warning message to stderr. */
void warn(const std::string &msg);

/** Report a user error: throws UsageError with the given message. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    detail::throw_usage(msg);
}

} // namespace elv

/**
 * Check an internal invariant; throws elv::InternalError when violated.
 * Use for conditions that indicate a bug in this library, never for
 * validating user input (use elv::fatal for that).
 */
#define ELV_REQUIRE(cond, msg)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream elv_require_oss_;                            \
            elv_require_oss_ << msg;                                        \
            ::elv::detail::throw_internal(__FILE__, __LINE__, #cond,        \
                                          elv_require_oss_.str());          \
        }                                                                   \
    } while (0)
