/**
 * @file
 * Build/run provenance helpers: the compiled-in version string and an
 * ISO-8601 wall-clock stamp. Every machine-readable artifact this tree
 * emits (BENCH_*.json, run_report.json, trace files) embeds both, so
 * result trajectories stay comparable across machines and commits.
 */
#pragma once

#include <string>

namespace elv {

/**
 * git-describe-style version of this build (e.g. "21a9faa-dirty"),
 * captured at configure time; "unknown" when the source tree was built
 * outside git.
 */
const char *version_string();

/** Current UTC wall-clock time as ISO-8601 ("2026-08-06T12:34:56Z"). */
std::string iso8601_utc_now();

} // namespace elv
