#include "noise/superop.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/logging.hpp"
#include "noise/channels.hpp"
#include "obs/metrics.hpp"
#include "sim/kernel_obs.hpp"

namespace elv::noise {

using sim::Amp;
using sim::Mat16;
using sim::Mat2;
using sim::Mat4;

// Index conventions: a 1-qubit superoperator row/column is 2*r + c
// over the (row-bit, column-bit) pair of the vectorized rho; a 2-qubit
// one is 8*r0 + 4*r1 + 2*c0 + c1 = 4*(gate-basis row) + (gate-basis
// column). Both match the operand order DensityMatrix passes to
// apply_2q/apply_4q.

Mat4
kraus_superop_1q(const std::vector<Mat2> &kraus)
{
    ELV_REQUIRE(!kraus.empty(), "empty Kraus set");
    Mat4 s = {};
    for (const Mat2 &k : kraus)
        for (std::size_t a = 0; a < 2; ++a)
            for (std::size_t b = 0; b < 2; ++b)
                for (std::size_t ap = 0; ap < 2; ++ap)
                    for (std::size_t bp = 0; bp < 2; ++bp)
                        s[2 * a + b][2 * ap + bp] +=
                            k[a][ap] * std::conj(k[b][bp]);
    return s;
}

Mat16
kraus_superop_2q(const std::vector<Mat4> &kraus)
{
    ELV_REQUIRE(!kraus.empty(), "empty Kraus set");
    Mat16 s = {};
    for (const Mat4 &k : kraus)
        for (std::size_t r = 0; r < 4; ++r)
            for (std::size_t c = 0; c < 4; ++c)
                for (std::size_t rp = 0; rp < 4; ++rp)
                    for (std::size_t cp = 0; cp < 4; ++cp)
                        s[4 * r + c][4 * rp + cp] +=
                            k[r][rp] * std::conj(k[c][cp]);
    return s;
}

Mat4
unitary_superop_1q(const Mat2 &u)
{
    return kraus_superop_1q({u});
}

Mat16
unitary_superop_2q(const Mat4 &u)
{
    return kraus_superop_2q({u});
}

Mat16
expand_superop_1q(const Mat4 &s, int slot)
{
    ELV_REQUIRE(slot == 0 || slot == 1, "bad embedding slot");
    // Slot 0 acts on the (r0, c0) bits (3 and 1 of the index), slot 1
    // on (r1, c1) (bits 2 and 0); the other pair passes through.
    const std::size_t rbit = slot == 0 ? 3 : 2;
    const std::size_t cbit = slot == 0 ? 1 : 0;
    const std::size_t keep =
        15u & ~((1u << rbit) | (1u << cbit));
    Mat16 out = {};
    for (std::size_t i = 0; i < 16; ++i)
        for (std::size_t j = 0; j < 16; ++j) {
            if ((i & keep) != (j & keep))
                continue;
            const std::size_t li =
                2 * ((i >> rbit) & 1) + ((i >> cbit) & 1);
            const std::size_t lj =
                2 * ((j >> rbit) & 1) + ((j >> cbit) & 1);
            out[i][j] = s[li][lj];
        }
    return out;
}

Mat16
swap_superop_pair(const Mat16 &s)
{
    // Swap the qubit-0 and qubit-1 pairs: bits 3<->2 and 1<->0.
    auto p = [](std::size_t i) {
        return ((i & 8) >> 1) | ((i & 4) << 1) | ((i & 2) >> 1) |
               ((i & 1) << 1);
    };
    Mat16 out;
    for (std::size_t i = 0; i < 16; ++i)
        for (std::size_t j = 0; j < 16; ++j)
            out[p(i)][p(j)] = s[i][j];
    return out;
}

NoisyProgram
NoisyProgram::compile(const circ::Circuit &local,
                      const std::vector<int> &kept,
                      const dev::Device &device, double scale)
{
    ELV_REQUIRE(kept.size() ==
                    static_cast<std::size_t>(local.num_qubits()),
                "kept/local qubit count mismatch");
    NoisyProgram prog;
    prog.num_qubits_ = local.num_qubits();

    struct Slot
    {
        Entry entry;
        bool skip = false;
    };
    std::vector<Slot> stream;
    stream.reserve(local.ops().size() * 2);
    // Same invariant as the state-vector fusion pass: open[q] indexes
    // the stream entry still fusable on qubit q, and nothing between
    // it and the current position touches q.
    std::vector<int> open(static_cast<std::size_t>(local.num_qubits()),
                          -1);
    auto open_at = [&open](int q) -> int & {
        return open[static_cast<std::size_t>(q)];
    };
    auto slot_at = [&stream](int idx) -> Slot & {
        return stream[static_cast<std::size_t>(idx)];
    };
    auto clamp01 = [](double v) { return std::clamp(v, 0.0, 1.0); };

    auto add_super1 = [&](const Mat4 &s, int q) {
        const int idx = open_at(q);
        if (idx >= 0) {
            Entry &e = slot_at(idx).entry;
            if (e.kind == Entry::Kind::Super1) {
                e.s4 = sim::matmul(s, e.s4);
            } else {
                const int slot = e.q0 == q ? 0 : 1;
                e.s16 = sim::matmul(expand_superop_1q(s, slot), e.s16);
            }
            ++prog.ops_merged_;
            return;
        }
        Slot sl;
        sl.entry.kind = Entry::Kind::Super1;
        sl.entry.s4 = s;
        sl.entry.q0 = q;
        open_at(q) = static_cast<int>(stream.size());
        stream.push_back(sl);
    };

    auto add_super2 = [&](Mat16 s, int a, int b) {
        if (open_at(a) >= 0 && open_at(a) == open_at(b) &&
            slot_at(open_at(a)).entry.kind == Entry::Kind::Super2) {
            Entry &e = slot_at(open_at(a)).entry;
            Mat16 prev = e.s16;
            if (e.q0 == b)
                prev = swap_superop_pair(prev);
            e.s16 = sim::matmul(s, prev);
            e.q0 = a;
            e.q1 = b;
            ++prog.ops_merged_;
            return;
        }
        const int qs[2] = {a, b};
        for (int slot = 0; slot < 2; ++slot) {
            const int idx = open_at(qs[slot]);
            if (idx >= 0 &&
                slot_at(idx).entry.kind == Entry::Kind::Super1) {
                s = sim::matmul(
                    s, expand_superop_1q(slot_at(idx).entry.s4, slot));
                slot_at(idx).skip = true;
                ++prog.ops_merged_;
            }
        }
        Slot sl;
        sl.entry.kind = Entry::Kind::Super2;
        sl.entry.s16 = s;
        sl.entry.q0 = a;
        sl.entry.q1 = b;
        open_at(a) = open_at(b) = static_cast<int>(stream.size());
        stream.push_back(sl);
    };

    auto thermal_superop = [&](int pq, double duration_ns) {
        return kraus_superop_1q(thermal_relaxation_kraus(
            device.t1_us[static_cast<std::size_t>(pq)] /
                std::max(scale, 1e-9),
            device.t2_us[static_cast<std::size_t>(pq)] /
                std::max(scale, 1e-9),
            duration_ns));
    };

    for (const circ::Op &op : local.ops()) {
        const bool fixed = op.kind != circ::GateKind::AmpEmbed &&
                           op.role == circ::ParamRole::None;
        if (!fixed) {
            // Angles resolve at run time: keep the IR op as a barrier.
            // Its trailing noise (angle-independent) follows below as
            // an ordinary fusable superoperator.
            if (op.kind == circ::GateKind::AmpEmbed)
                std::fill(open.begin(), open.end(), -1);
            else
                for (int k = 0; k < op.num_qubits(); ++k)
                    open_at(op.qubits[static_cast<std::size_t>(k)]) = -1;
            Slot sl;
            sl.entry.kind = Entry::Kind::Barrier;
            sl.entry.op = op;
            stream.push_back(sl);
            if (op.kind == circ::GateKind::AmpEmbed)
                continue;
        }

        if (op.num_qubits() == 1) {
            const int lq = op.qubits[0];
            Mat4 s = {};
            bool have = false;
            if (fixed) {
                s = unitary_superop_1q(sim::gate_matrix_1q(
                    op.kind, circ::op_angles(op, {}, {})));
                have = true;
            }
            if (scale > 0.0) {
                const int pq = kept[static_cast<std::size_t>(lq)];
                const double err = clamp01(
                    scale *
                    device.error_1q[static_cast<std::size_t>(pq)]);
                const Mat4 noise = sim::matmul(
                    thermal_superop(pq, device.duration_1q_ns),
                    kraus_superop_1q(depolarizing_1q_kraus(err)));
                s = have ? sim::matmul(noise, s) : noise;
                have = true;
            }
            if (have)
                add_super1(s, lq);
        } else {
            const int la = op.qubits[0], lb = op.qubits[1];
            Mat16 s = {};
            bool have = false;
            if (fixed) {
                s = unitary_superop_2q(sim::gate_matrix_2q(
                    op.kind, circ::op_angles(op, {}, {})));
                have = true;
            }
            if (scale > 0.0) {
                const int pa = kept[static_cast<std::size_t>(la)];
                const int pb = kept[static_cast<std::size_t>(lb)];
                if (!device.topology.has_edge(pa, pb))
                    elv::fatal(
                        "2-qubit gate on uncoupled physical qubits " +
                        std::to_string(pa) + "," + std::to_string(pb) +
                        "; route the circuit first");
                const double err =
                    clamp01(scale * device.edge_error(pa, pb));
                Mat16 noise = kraus_superop_2q(depolarizing_2q_kraus(err));
                // CRY lowers to two CX on hardware: pay the channel
                // twice (matching the unfused schedule).
                if (op.kind == circ::GateKind::CRY)
                    noise = sim::matmul(noise, noise);
                noise = sim::matmul(
                    expand_superop_1q(
                        thermal_superop(pa, device.duration_2q_ns), 0),
                    noise);
                noise = sim::matmul(
                    expand_superop_1q(
                        thermal_superop(pb, device.duration_2q_ns), 1),
                    noise);
                s = have ? sim::matmul(noise, s) : noise;
                have = true;
            }
            if (have)
                add_super2(s, la, lb);
        }
    }

    prog.entries_.reserve(stream.size());
    for (const Slot &sl : stream)
        if (!sl.skip)
            prog.entries_.push_back(sl.entry);
    ELV_METRIC_COUNT_N("fusion.ops_merged", prog.ops_merged_);
    return prog;
}

template <typename T>
void
NoisyProgram::run(sim::BasicDensityMatrix<T> &rho,
                  const std::vector<double> &params,
                  const std::vector<double> &x) const
{
    ELV_REQUIRE(rho.num_qubits() == num_qubits_,
                "program/state qubit count mismatch");
    sim::note_kernel_dispatch();
    if constexpr (std::is_same_v<T, float>)
        ELV_METRIC_COUNT("sim.f32_evals");
    rho.reset();
    for (const Entry &e : entries_) {
        switch (e.kind) {
          case Entry::Kind::Super1:
            rho.apply_superop_1q(e.s4, e.q0);
            break;
          case Entry::Kind::Super2:
            rho.apply_superop_2q(e.s16, e.q0, e.q1);
            break;
          case Entry::Kind::Barrier:
            rho.apply_op(e.op, params, x);
            break;
        }
    }
}

template void NoisyProgram::run(sim::BasicDensityMatrix<double> &,
                                const std::vector<double> &,
                                const std::vector<double> &) const;
template void NoisyProgram::run(sim::BasicDensityMatrix<float> &,
                                const std::vector<double> &,
                                const std::vector<double> &) const;

} // namespace elv::noise
