/**
 * @file
 * Quantum noise channels as Kraus operator sets, plus Pauli-twirled
 * approximations for the stabilizer backend.
 *
 * The device noise pipeline is: calibration data (gate error, T1/T2,
 * durations) -> depolarizing + thermal-relaxation channels applied after
 * each gate -> exact density-matrix evolution, or -> Pauli twirl ->
 * stochastic Pauli injection in the stabilizer simulator.
 */
#pragma once

#include <vector>

#include "sim/unitaries.hpp"

namespace elv::noise {

/** Single-qubit depolarizing channel with error probability p. */
std::vector<sim::Mat2> depolarizing_1q_kraus(double p);

/** Two-qubit depolarizing channel with error probability p. */
std::vector<sim::Mat4> depolarizing_2q_kraus(double p);

/** Amplitude damping with decay probability gamma. */
std::vector<sim::Mat2> amplitude_damping_kraus(double gamma);

/** Phase damping with dephasing probability lambda. */
std::vector<sim::Mat2> phase_damping_kraus(double lambda);

/**
 * Thermal relaxation over `duration_ns` for a qubit with the given
 * T1/T2 (microseconds): amplitude damping composed with the pure
 * dephasing needed so coherences decay as exp(-t/T2). Requires
 * T2 <= 2 * T1.
 */
std::vector<sim::Mat2> thermal_relaxation_kraus(double t1_us, double t2_us,
                                                double duration_ns);

/** Decay/dephasing probabilities of a thermal-relaxation channel. */
struct ThermalParams
{
    double gamma = 0.0;  ///< amplitude-damping probability
    double lambda = 0.0; ///< additional pure-dephasing probability
};

/** Gamma/lambda of thermal relaxation over `duration_ns`. */
ThermalParams thermal_relaxation_params(double t1_us, double t2_us,
                                        double duration_ns);

/** Probabilities of a single-qubit Pauli channel (sums to 1). */
struct PauliProbs
{
    double pi = 1.0;
    double px = 0.0;
    double py = 0.0;
    double pz = 0.0;
};

/** Pauli form of the depolarizing channel. */
PauliProbs depolarizing_pauli(double p);

/**
 * Pauli-twirled approximation of thermal relaxation. Twirling keeps the
 * diagonal of the Pauli transfer matrix (rx = ry = exp(-t/T2),
 * rz = exp(-t/T1)) and discards the non-unital affine part, which is the
 * standard stochastic-Pauli approximation used for scalable noisy
 * Clifford simulation.
 */
PauliProbs thermal_relaxation_pauli(double t1_us, double t2_us,
                                    double duration_ns);

/** Compose two single-qubit Pauli channels (convolution of errors). */
PauliProbs compose(const PauliProbs &a, const PauliProbs &b);

} // namespace elv::noise
