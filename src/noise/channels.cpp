#include "noise/channels.hpp"

#include <cmath>

#include "circuit/gate.hpp"
#include "common/logging.hpp"

namespace elv::noise {

using sim::Amp;
using sim::Mat2;
using sim::Mat4;

namespace {

Mat2
scaled(const Mat2 &m, double s)
{
    Mat2 out = m;
    for (auto &row : out)
        for (auto &e : row)
            e *= s;
    return out;
}

Mat2
pauli_matrix(int which)
{
    static const std::array<double, 3> no_angles = {0, 0, 0};
    switch (which) {
      case 0: return sim::identity2();
      case 1: return sim::gate_matrix_1q(circ::GateKind::X, no_angles);
      case 2: return sim::gate_matrix_1q(circ::GateKind::Y, no_angles);
      default: return sim::gate_matrix_1q(circ::GateKind::Z, no_angles);
    }
}

} // namespace

std::vector<Mat2>
depolarizing_1q_kraus(double p)
{
    ELV_REQUIRE(p >= 0.0 && p <= 1.0, "bad depolarizing probability");
    std::vector<Mat2> kraus;
    kraus.push_back(scaled(sim::identity2(), std::sqrt(1.0 - p)));
    for (int k = 1; k <= 3; ++k)
        kraus.push_back(scaled(pauli_matrix(k), std::sqrt(p / 3.0)));
    return kraus;
}

std::vector<Mat4>
depolarizing_2q_kraus(double p)
{
    ELV_REQUIRE(p >= 0.0 && p <= 1.0, "bad depolarizing probability");
    std::vector<Mat4> kraus;
    kraus.reserve(16);
    const double s = std::sqrt(p / 15.0);
    for (int a = 0; a < 4; ++a) {
        const Mat2 pa = pauli_matrix(a);
        for (int b = 0; b < 4; ++b) {
            const Mat2 pb = pauli_matrix(b);
            const double w = (a == 0 && b == 0) ? std::sqrt(1.0 - p) : s;
            Mat4 k = {};
            // Tensor product in the |q0 q1> basis: index = 2*b0 + b1.
            for (std::size_t i0 = 0; i0 < 2; ++i0)
                for (std::size_t j0 = 0; j0 < 2; ++j0)
                    for (std::size_t i1 = 0; i1 < 2; ++i1)
                        for (std::size_t j1 = 0; j1 < 2; ++j1)
                            k[2 * i0 + i1][2 * j0 + j1] =
                                w * pa[i0][j0] * pb[i1][j1];
            kraus.push_back(k);
        }
    }
    return kraus;
}

std::vector<Mat2>
amplitude_damping_kraus(double gamma)
{
    ELV_REQUIRE(gamma >= 0.0 && gamma <= 1.0, "bad damping probability");
    Mat2 k0 = {};
    k0[0][0] = Amp(1);
    k0[1][1] = Amp(std::sqrt(1.0 - gamma));
    Mat2 k1 = {};
    k1[0][1] = Amp(std::sqrt(gamma));
    return {k0, k1};
}

std::vector<Mat2>
phase_damping_kraus(double lambda)
{
    ELV_REQUIRE(lambda >= 0.0 && lambda <= 1.0, "bad dephasing");
    Mat2 k0 = {};
    k0[0][0] = Amp(1);
    k0[1][1] = Amp(std::sqrt(1.0 - lambda));
    Mat2 k1 = {};
    k1[1][1] = Amp(std::sqrt(lambda));
    return {k0, k1};
}

ThermalParams
thermal_relaxation_params(double t1_us, double t2_us, double duration_ns)
{
    ELV_REQUIRE(t1_us > 0.0 && t2_us > 0.0, "bad coherence times");
    const double t_us = duration_ns * 1e-3;
    ThermalParams params;
    params.gamma = 1.0 - std::exp(-t_us / t1_us);
    // Total coherence factor must be exp(-t/T2); amplitude damping
    // already contributes exp(-t/(2 T1)).
    const double residual = -t_us / t2_us + t_us / (2.0 * t1_us);
    params.lambda =
        residual >= 0.0 ? 0.0 : 1.0 - std::exp(2.0 * residual);
    return params;
}

std::vector<Mat2>
thermal_relaxation_kraus(double t1_us, double t2_us, double duration_ns)
{
    const ThermalParams params =
        thermal_relaxation_params(t1_us, t2_us, duration_ns);
    const double gamma = params.gamma;
    const double lambda = params.lambda;

    // Compose amplitude damping then phase damping: Kraus products.
    const auto ad = amplitude_damping_kraus(gamma);
    const auto pd = phase_damping_kraus(lambda);
    std::vector<Mat2> kraus;
    for (const Mat2 &a : pd)
        for (const Mat2 &b : ad)
            kraus.push_back(sim::matmul(a, b));
    return kraus;
}

PauliProbs
depolarizing_pauli(double p)
{
    PauliProbs probs;
    probs.pi = 1.0 - p;
    probs.px = probs.py = probs.pz = p / 3.0;
    return probs;
}

PauliProbs
thermal_relaxation_pauli(double t1_us, double t2_us, double duration_ns)
{
    const double t_us = duration_ns * 1e-3;
    const double rz = std::exp(-t_us / t1_us); // <X>, <Y> shrink by r_xy
    const double rxy = std::exp(-t_us / t2_us);
    // Pauli channel with transfer factors (rx, ry, rz) =
    // (rxy, rxy, rz): p_k = (1 + sum_j s_kj r_j) / 4.
    PauliProbs probs;
    probs.pi = (1.0 + rxy + rxy + rz) / 4.0;
    probs.px = (1.0 + rxy - rxy - rz) / 4.0;
    probs.py = probs.px;
    probs.pz = (1.0 - rxy - rxy + rz) / 4.0;
    // Guard against tiny negative values from floating error.
    for (double *p : {&probs.pi, &probs.px, &probs.py, &probs.pz})
        if (*p < 0.0)
            *p = 0.0;
    return probs;
}

PauliProbs
compose(const PauliProbs &a, const PauliProbs &b)
{
    // Pauli multiplication table: X*Y = Z etc. (phases are irrelevant
    // for a stochastic channel).
    const double pa[4] = {a.pi, a.px, a.py, a.pz};
    const double pb[4] = {b.pi, b.px, b.py, b.pz};
    double out[4] = {0, 0, 0, 0};
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            out[i ^ j] += pa[i] * pb[j];
    // Note: XOR of indices {I=0, X=1, Y=2, Z=3} is NOT the Pauli group
    // product for all pairs; the correct table maps (X, Z) -> Y etc.
    // Indices {0,1,2,3} = {I,X,Y,Z}: product of distinct non-identity
    // Paulis is the third one, matching XOR on {1,2,3}. XOR also fixes
    // P*P = I and I*P = P, so XOR is correct here.
    PauliProbs result;
    result.pi = out[0];
    result.px = out[1];
    result.py = out[2];
    result.pz = out[3];
    return result;
}

} // namespace elv::noise
