/**
 * @file
 * Channel superoperators and the compiled noisy program.
 *
 * A channel rho -> sum_k K rho K^dag acting on the vectorized density
 * matrix (rho as a 2n-qubit state vector, row qubits 0..n-1, column
 * qubits n..2n-1) is a *linear* map on the amplitudes: a 4x4 matrix on
 * the (row, column) pair of one qubit, or a 16x16 matrix on the two
 * pairs of a qubit pair. Precomputing that matrix turns a Kraus set of
 * any size into a single gathered pass over the 4^n amplitudes —
 * DensityMatrix::apply_superop_1q/2q — instead of one full-state copy
 * plus two kernel passes per Kraus operator.
 *
 * Because a gate unitary is itself a (single-Kraus) channel, the gate
 * and its trailing calibration noise compose into one superoperator,
 * and adjacent fixed gates keep composing: NoisyProgram is the noisy
 * analogue of sim::FusedProgram, fusing in superoperator space with
 * parametric gates as barriers. Device noise depends only on the
 * physical qubit and gate arity — never on rotation angles — so even a
 * parametric gate contributes a fusable noise superoperator right
 * after its barrier entry.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "device/device.hpp"
#include "sim/density_matrix.hpp"
#include "sim/unitaries.hpp"

namespace elv::noise {

/** Superoperator of a 1-qubit Kraus channel in the |r c> pair basis:
 *  S[2a+b][2a'+b'] = sum_k K[a][a'] conj(K[b][b']). */
sim::Mat4 kraus_superop_1q(const std::vector<sim::Mat2> &kraus);

/** Superoperator of a 2-qubit Kraus channel in the |r0 r1 c0 c1>
 *  basis (matching DensityMatrix::apply_superop_2q). */
sim::Mat16 kraus_superop_2q(const std::vector<sim::Mat4> &kraus);

/** Superoperator of the unitary channel rho -> U rho U^dag. */
sim::Mat4 unitary_superop_1q(const sim::Mat2 &u);
sim::Mat16 unitary_superop_2q(const sim::Mat4 &u);

/**
 * Embed a 1-qubit superoperator into the 2-qubit superoperator basis:
 * slot 0 acts on the (r0, c0) pair, slot 1 on (r1, c1).
 */
sim::Mat16 expand_superop_1q(const sim::Mat4 &s, int slot);

/** Reorder a 2-qubit superoperator between |r0 r1 c0 c1> and
 *  |r1 r0 c1 c0> (operand swap). */
sim::Mat16 swap_superop_pair(const sim::Mat16 &s);

/**
 * A circuit compiled for noisy density-matrix execution: every fixed
 * gate is combined with its calibration noise into one superoperator
 * and adjacent superoperators are fused greedily (same pass structure
 * and barrier rules as sim::FusedProgram). Compiled once per circuit;
 * replaying it performs no per-run allocation or channel construction.
 */
class NoisyProgram
{
  public:
    /**
     * Compile `local` (an already-compacted circuit) against the
     * device calibration. `kept[q]` is the physical qubit behind local
     * qubit q; `scale` multiplies every error rate (0 = noiseless).
     * Replicates NoisyDensitySimulator's per-gate channel schedule:
     * depolarizing then thermal relaxation after 1-qubit gates,
     * depolarizing (twice for CRY) then both thermal relaxations after
     * 2-qubit gates.
     */
    static NoisyProgram compile(const circ::Circuit &local,
                                const std::vector<int> &kept,
                                const dev::Device &device, double scale);

    /**
     * Replay on `rho` from |0...0><0...0|. Works on both precision
     * instantiations — compiled superoperators stay double and convert
     * at the kernel boundary, so one compiled program serves the
     * Float64 and Float32Proxy paths alike.
     */
    template <typename T>
    void run(sim::BasicDensityMatrix<T> &rho,
             const std::vector<double> &params = {},
             const std::vector<double> &x = {}) const;

    /** Gate/channel applications eliminated by fusion. */
    std::uint64_t ops_merged() const { return ops_merged_; }

    /** Entries in the compiled stream. */
    std::size_t size() const { return entries_.size(); }

    int num_qubits() const { return num_qubits_; }

  private:
    struct Entry
    {
        enum class Kind {
            Super1,  ///< Mat4 superoperator on qubit q0
            Super2,  ///< Mat16 superoperator on (q0, q1)
            Barrier, ///< parametric / amplitude-embedding IR op
        };

        Kind kind = Kind::Barrier;
        sim::Mat4 s4{};
        sim::Mat16 s16{};
        int q0 = -1;
        int q1 = -1;
        circ::Op op{};
    };

    std::vector<Entry> entries_;
    std::uint64_t ops_merged_ = 0;
    int num_qubits_ = 1;
};

extern template void
NoisyProgram::run(sim::BasicDensityMatrix<double> &,
                  const std::vector<double> &,
                  const std::vector<double> &) const;
extern template void
NoisyProgram::run(sim::BasicDensityMatrix<float> &,
                  const std::vector<double> &,
                  const std::vector<double> &) const;

} // namespace elv::noise
