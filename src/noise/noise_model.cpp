#include "noise/noise_model.hpp"

#include <algorithm>
#include <cmath>

#include "circuit/serialize.hpp"
#include "common/logging.hpp"
#include "common/statistics.hpp"
#include "sim/fusion.hpp"
#include "sim/statevector.hpp"

namespace elv::noise {

std::vector<double>
apply_readout_confusion(const std::vector<double> &probs,
                        const std::vector<double> &flip_probs)
{
    std::size_t bits = 0;
    while ((std::size_t{1} << bits) < probs.size())
        ++bits;
    ELV_REQUIRE((std::size_t{1} << bits) == probs.size(),
                "distribution size is not a power of two");
    ELV_REQUIRE(flip_probs.size() == bits,
                "one flip probability per outcome bit required");

    std::vector<double> current = probs;
    std::vector<double> next(probs.size());
    for (std::size_t b = 0; b < bits; ++b) {
        const double r = flip_probs[b];
        ELV_REQUIRE(r >= 0.0 && r <= 0.5, "bad readout error");
        const std::size_t mask = std::size_t{1} << b;
        for (std::size_t k = 0; k < current.size(); ++k)
            next[k] = (1.0 - r) * current[k] + r * current[k ^ mask];
        std::swap(current, next);
    }
    return current;
}

std::vector<double>
mitigate_readout(const std::vector<double> &probs,
                 const std::vector<double> &flip_probs)
{
    std::size_t bits = 0;
    while ((std::size_t{1} << bits) < probs.size())
        ++bits;
    ELV_REQUIRE((std::size_t{1} << bits) == probs.size(),
                "distribution size is not a power of two");
    ELV_REQUIRE(flip_probs.size() == bits,
                "one flip probability per outcome bit required");

    std::vector<double> current = probs;
    std::vector<double> next(probs.size());
    for (std::size_t b = 0; b < bits; ++b) {
        const double r = flip_probs[b];
        if (r >= 0.5)
            elv::fatal("readout flip probability >= 0.5 is not "
                       "invertible");
        // Inverse of [[1-r, r], [r, 1-r]] applied along bit b.
        const double inv = 1.0 / (1.0 - 2.0 * r);
        const std::size_t mask = std::size_t{1} << b;
        for (std::size_t k = 0; k < current.size(); ++k)
            next[k] = inv * ((1.0 - r) * current[k] -
                             r * current[k ^ mask]);
        std::swap(current, next);
    }

    // Clip inversion artifacts and renormalize.
    double total = 0.0;
    for (double &p : current) {
        p = std::max(p, 0.0);
        total += p;
    }
    if (total > 0.0)
        for (double &p : current)
            p /= total;
    return current;
}

NoisyDensitySimulator::NoisyDensitySimulator(const dev::Device &device,
                                             double noise_scale,
                                             sim::Precision precision)
    : device_(device), scale_(noise_scale), precision_(precision)
{
    ELV_REQUIRE(noise_scale >= 0.0, "negative noise scale");
    // Reject malformed calibration up front: a silent size mismatch
    // here becomes an out-of-bounds read deep in the channel factory.
    device.validate();
}

std::shared_ptr<const NoisyProgram>
NoisyDensitySimulator::program_for(const circ::Circuit &circuit,
                                   const circ::Circuit &local,
                                   const std::vector<int> &kept) const
{
    const std::string key = circ::to_text_line(circuit);
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;
    if (cache_.size() >= 128)
        cache_.clear();
    auto program = std::make_shared<const NoisyProgram>(
        NoisyProgram::compile(local, kept, device_, scale_));
    cache_.emplace(key, program);
    return program;
}

std::vector<double>
NoisyDensitySimulator::run_distribution(const circ::Circuit &circuit,
                                        const std::vector<double> &params,
                                        const std::vector<double> &x) const
{
    if (precision_ == sim::Precision::Float32Proxy)
        return run_distribution_impl<float>(circuit, params, x);
    return run_distribution_impl<double>(circuit, params, x);
}

template <typename T>
std::vector<double>
NoisyDensitySimulator::run_distribution_impl(
    const circ::Circuit &circuit, const std::vector<double> &params,
    const std::vector<double> &x) const
{
    ELV_REQUIRE(circuit.num_qubits() <= device_.num_qubits(),
                "circuit larger than device");
    std::vector<int> kept;
    const circ::Circuit local = circuit.compacted(kept);

    sim::BasicDensityMatrix<T> rho(local.num_qubits());
    if (fused_)
        program_for(circuit, local, kept)->run(rho, params, x);
    else
        apply_unfused(rho, local, kept, params, x);

    auto probs = rho.probabilities(local.measured());
    if (scale_ > 0.0) {
        std::vector<double> flips;
        flips.reserve(local.measured().size());
        for (int lq : local.measured()) {
            const int pq = kept[static_cast<std::size_t>(lq)];
            flips.push_back(std::min(
                0.5, scale_ * device_.readout_error
                                  [static_cast<std::size_t>(pq)]));
        }
        probs = apply_readout_confusion(probs, flips);
    }
    return probs;
}

template <typename T>
void
NoisyDensitySimulator::apply_unfused(sim::BasicDensityMatrix<T> &rho,
                                     const circ::Circuit &local,
                                     const std::vector<int> &kept,
                                     const std::vector<double> &params,
                                     const std::vector<double> &x) const
{
    auto clamp01 = [](double v) { return std::clamp(v, 0.0, 1.0); };

    for (const circ::Op &op : local.ops()) {
        rho.apply_op(op, params, x);
        if (scale_ == 0.0 || op.kind == circ::GateKind::AmpEmbed)
            continue;
        if (op.num_qubits() == 1) {
            const int lq = op.qubits[0];
            const int pq = kept[static_cast<std::size_t>(lq)];
            const double err = clamp01(
                scale_ *
                device_.error_1q[static_cast<std::size_t>(pq)]);
            rho.apply_depolarizing_1q(err, lq);
            const ThermalParams relax = thermal_relaxation_params(
                device_.t1_us[static_cast<std::size_t>(pq)] /
                    std::max(scale_, 1e-9),
                device_.t2_us[static_cast<std::size_t>(pq)] /
                    std::max(scale_, 1e-9),
                device_.duration_1q_ns);
            rho.apply_thermal_relaxation(relax.gamma, relax.lambda, lq);
        } else {
            const int la = op.qubits[0], lb = op.qubits[1];
            const int pa = kept[static_cast<std::size_t>(la)];
            const int pb = kept[static_cast<std::size_t>(lb)];
            if (!device_.topology.has_edge(pa, pb))
                elv::fatal("2-qubit gate on uncoupled physical qubits " +
                           std::to_string(pa) + "," + std::to_string(pb) +
                           "; route the circuit first");
            const double err = clamp01(scale_ * device_.edge_error(pa, pb));
            // CRY lowers to two CX on hardware: pay the channel twice.
            const int reps = op.kind == circ::GateKind::CRY ? 2 : 1;
            for (int rep = 0; rep < reps; ++rep)
                rho.apply_depolarizing_2q(err, la, lb);
            for (int side = 0; side < 2; ++side) {
                const int lq = side == 0 ? la : lb;
                const int pq = kept[static_cast<std::size_t>(lq)];
                const ThermalParams relax = thermal_relaxation_params(
                    device_.t1_us[static_cast<std::size_t>(pq)] /
                        std::max(scale_, 1e-9),
                    device_.t2_us[static_cast<std::size_t>(pq)] /
                        std::max(scale_, 1e-9),
                    device_.duration_2q_ns);
                rho.apply_thermal_relaxation(relax.gamma, relax.lambda,
                                             lq);
            }
        }
    }
}

double
NoisyDensitySimulator::fidelity(const circ::Circuit &circuit,
                                const std::vector<double> &params,
                                const std::vector<double> &x) const
{
    std::vector<int> kept;
    const circ::Circuit local = circuit.compacted(kept);
    sim::StateVector psi(local.num_qubits());
    if (fused_) {
        // Compile locally instead of through the global FusionCache:
        // CNR replicas are one-shot circuits and would churn it.
        sim::FusedProgram::compile(local).run(psi, params, x);
    } else {
        psi.run(local, params, x);
    }
    const auto ideal = psi.probabilities(local.measured());
    const auto noisy = run_distribution(circuit, params, x);
    return 1.0 - elv::total_variation_distance(ideal, noisy);
}

DevicePauliNoise::DevicePauliNoise(const dev::Device &device,
                                   std::vector<int> local_to_physical,
                                   double noise_scale)
    : device_(device), map_(std::move(local_to_physical)),
      scale_(noise_scale)
{
    for (int pq : map_)
        ELV_REQUIRE(pq >= 0 && pq < device.num_qubits(),
                    "physical qubit out of range");
}

void
DevicePauliNoise::inject(stab::Tableau &tab, int local_qubit,
                         const PauliProbs &probs, elv::Rng &rng) const
{
    const double u = rng.uniform();
    if (u < probs.px)
        tab.x(local_qubit);
    else if (u < probs.px + probs.py)
        tab.y(local_qubit);
    else if (u < probs.px + probs.py + probs.pz)
        tab.z(local_qubit);
}

void
DevicePauliNoise::after_op(stab::Tableau &tab, const circ::Op &op,
                           elv::Rng &rng) const
{
    if (scale_ == 0.0)
        return;
    auto clamp01 = [](double v) { return std::clamp(v, 0.0, 1.0); };
    if (op.num_qubits() == 1) {
        const int lq = op.qubits[0];
        const int pq = map_[static_cast<std::size_t>(lq)];
        const double err =
            clamp01(scale_ *
                    device_.error_1q[static_cast<std::size_t>(pq)]);
        PauliProbs probs = compose(
            depolarizing_pauli(err),
            thermal_relaxation_pauli(
                device_.t1_us[static_cast<std::size_t>(pq)] /
                    std::max(scale_, 1e-9),
                device_.t2_us[static_cast<std::size_t>(pq)] /
                    std::max(scale_, 1e-9),
                device_.duration_1q_ns));
        inject(tab, lq, probs, rng);
    } else {
        const int la = op.qubits[0], lb = op.qubits[1];
        const int pa = map_[static_cast<std::size_t>(la)];
        const int pb = map_[static_cast<std::size_t>(lb)];
        if (!device_.topology.has_edge(pa, pb))
            elv::fatal("2-qubit gate on uncoupled physical qubits; "
                       "route the circuit first");
        // Two-qubit depolarizing twirl: with probability err, a uniform
        // non-identity two-qubit Pauli.
        const double err = clamp01(scale_ * device_.edge_error(pa, pb));
        if (rng.uniform() < err) {
            const std::size_t which = 1 + rng.uniform_index(15);
            const int a_part = static_cast<int>(which / 4);
            const int b_part = static_cast<int>(which % 4);
            if (a_part)
                tab.pauli(la, a_part == 1 || a_part == 2,
                          a_part == 2 || a_part == 3);
            if (b_part)
                tab.pauli(lb, b_part == 1 || b_part == 2,
                          b_part == 2 || b_part == 3);
        }
        for (int side = 0; side < 2; ++side) {
            const int lq = side == 0 ? la : lb;
            const int pq = map_[static_cast<std::size_t>(lq)];
            inject(tab, lq,
                   thermal_relaxation_pauli(
                       device_.t1_us[static_cast<std::size_t>(pq)] /
                           std::max(scale_, 1e-9),
                       device_.t2_us[static_cast<std::size_t>(pq)] /
                           std::max(scale_, 1e-9),
                       device_.duration_2q_ns),
                   rng);
        }
    }
}

double
DevicePauliNoise::readout_flip_probability(int local_qubit) const
{
    const int pq = map_[static_cast<std::size_t>(local_qubit)];
    return std::min(0.5,
                    scale_ * device_.readout_error
                                 [static_cast<std::size_t>(pq)]);
}

} // namespace elv::noise
