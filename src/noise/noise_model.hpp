/**
 * @file
 * Device-driven noisy execution.
 *
 * NoisyDensitySimulator runs a circuit whose qubit labels are *physical*
 * device qubits: each gate is followed by depolarizing noise (strength
 * from the calibration gate error) and thermal relaxation (T1/T2 over
 * the gate duration), and the final outcome distribution is passed
 * through the per-qubit readout confusion. Internally the circuit is
 * compacted to its touched qubits so that small circuits on 127-qubit
 * devices stay cheap — exactly the setting of Elivagar's subgraph
 * circuits.
 *
 * DevicePauliNoise provides the same calibration-driven noise as a
 * stochastic Pauli hook for the stabilizer backend (scalable CNR).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/circuit.hpp"
#include "device/device.hpp"
#include "noise/channels.hpp"
#include "noise/superop.hpp"
#include "sim/density_matrix.hpp"
#include "sim/precision.hpp"
#include "stabilizer/tableau.hpp"

namespace elv::noise {

/**
 * Apply per-qubit symmetric readout confusion to an outcome
 * distribution. `flip_probs[i]` is the flip probability of the qubit
 * that produced bit i of the outcome index.
 */
std::vector<double> apply_readout_confusion(
    const std::vector<double> &probs,
    const std::vector<double> &flip_probs);

/**
 * Measurement-error mitigation: invert the per-qubit readout confusion
 * (the tensor-product calibration-matrix method used by standard
 * readout-mitigation passes, cf. the JigSaw line of work the paper
 * cites). Inversion can produce small negative entries on sampled
 * inputs; they are clipped and the result renormalized. Requires every
 * flip probability < 0.5.
 */
std::vector<double> mitigate_readout(const std::vector<double> &probs,
                                     const std::vector<double> &flip_probs);

/** Exact noisy executor over the density-matrix backend. */
class NoisyDensitySimulator
{
  public:
    /**
     * @param device calibration source
     * @param noise_scale multiplies every error rate (1 = calibrated,
     *        0 = noiseless); used by ablations
     * @param precision amplitude precision of the density-matrix
     *        kernels. Float32Proxy halves memory traffic for
     *        ranking-only proxy scoring (CNR); the ideal reference
     *        state inside fidelity() always stays double.
     */
    explicit NoisyDensitySimulator(
        const dev::Device &device, double noise_scale = 1.0,
        sim::Precision precision = sim::Precision::Float64);

    /**
     * Run `circuit` (qubits = physical device qubits; 2-qubit gates must
     * act on coupled pairs) and return the outcome distribution over its
     * measured qubits, including readout error.
     */
    std::vector<double> run_distribution(const circ::Circuit &circuit,
                                         const std::vector<double> &params =
                                             {},
                                         const std::vector<double> &x = {})
        const;

    /**
     * Fidelity proxy used throughout the paper: 1 - TVD between the
     * noisy and the noiseless outcome distributions of `circuit`.
     */
    double fidelity(const circ::Circuit &circuit,
                    const std::vector<double> &params = {},
                    const std::vector<double> &x = {}) const;

    const dev::Device &device() const { return device_; }

    /**
     * Route execution through compiled NoisyPrograms — fused
     * gate+channel superoperators, cached per circuit — instead of the
     * per-gate channel loop (default on). The unfused path is kept for
     * the equivalence tests and the bench comparison.
     */
    void use_fused_execution(bool on) { fused_ = on; }

    /** The configured amplitude precision. */
    sim::Precision precision() const { return precision_; }

    /** Switch the amplitude precision (takes effect on the next run). */
    void set_precision(sim::Precision precision)
    {
        precision_ = precision;
    }

  private:
    /** run_distribution instantiated at one amplitude precision. */
    template <typename T>
    std::vector<double>
    run_distribution_impl(const circ::Circuit &circuit,
                          const std::vector<double> &params,
                          const std::vector<double> &x) const;

    /** The original per-gate channel loop (reference path). */
    template <typename T>
    void apply_unfused(sim::BasicDensityMatrix<T> &rho,
                       const circ::Circuit &local,
                       const std::vector<int> &kept,
                       const std::vector<double> &params,
                       const std::vector<double> &x) const;

    /** Cached compiled program for `circuit` (compiling on miss). */
    std::shared_ptr<const NoisyProgram>
    program_for(const circ::Circuit &circuit, const circ::Circuit &local,
                const std::vector<int> &kept) const;

    const dev::Device &device_;
    double scale_;
    sim::Precision precision_;
    bool fused_ = true;
    /**
     * Bounded program cache keyed by the exact serialization of the
     * *original* (pre-compaction) circuit — physical qubit labels
     * determine the noise, so the original text is the right key.
     * Cleared wholesale at capacity, like sim::FusionCache.
     */
    mutable std::mutex cache_mutex_;
    mutable std::unordered_map<std::string,
                               std::shared_ptr<const NoisyProgram>>
        cache_;
};

/** Calibration-driven stochastic Pauli noise for stabilizer shots. */
class DevicePauliNoise : public stab::PauliNoiseHook
{
  public:
    /**
     * @param device calibration source
     * @param local_to_physical physical qubit behind each circuit qubit
     * @param noise_scale multiplies every error rate
     */
    DevicePauliNoise(const dev::Device &device,
                     std::vector<int> local_to_physical,
                     double noise_scale = 1.0);

    void after_op(stab::Tableau &tab, const circ::Op &op,
                  elv::Rng &rng) const override;

    double readout_flip_probability(int local_qubit) const override;

  private:
    void inject(stab::Tableau &tab, int local_qubit,
                const PauliProbs &probs, elv::Rng &rng) const;

    const dev::Device &device_;
    std::vector<int> map_;
    double scale_;
};

} // namespace elv::noise
