#include "dist/wire.hpp"

#include <cstdio>
#include <cstdlib>

#include "core/checkpoint.hpp"
#include "obs/json.hpp"

namespace elv::dist {

std::string
fingerprint_to_hex(std::uint64_t fingerprint)
{
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(fingerprint));
    return hex;
}

bool
fingerprint_from_hex(const std::string &text, std::uint64_t &fingerprint)
{
    if (text.size() != 16)
        return false;
    char *end = nullptr;
    fingerprint = std::strtoull(text.c_str(), &end, 16);
    return end == text.c_str() + 16;
}

std::string
make_configure(const srv::JobSpec &spec, int threads,
               std::uint64_t fingerprint, int crash_after)
{
    obs::JsonWriter json;
    json.begin_object();
    json.kv("op", "configure");
    json.kv("protocol", kProtocolVersion);
    json.key("spec").raw(spec.to_json());
    json.kv("threads", threads);
    json.kv("fp", fingerprint_to_hex(fingerprint));
    json.kv("crash_after", crash_after);
    json.end_object();
    return json.str();
}

std::string
make_stage_request(const std::string &stage,
                   const std::vector<int> &indices)
{
    obs::JsonWriter json;
    json.begin_object();
    json.kv("op", stage);
    json.key("indices").begin_array();
    for (int index : indices)
        json.value(index);
    json.end_array();
    json.end_object();
    return json.str();
}

std::string
make_shutdown()
{
    return "{\"op\":\"shutdown\"}";
}

std::string
make_ready(std::uint64_t fingerprint)
{
    obs::JsonWriter json;
    json.begin_object();
    json.kv("ev", "ready");
    json.kv("protocol", kProtocolVersion);
    json.kv("fp", fingerprint_to_hex(fingerprint));
    json.end_object();
    return json.str();
}

std::string
make_cnr_record(int index, const core::CandidateCnr &cnr)
{
    obs::JsonWriter json;
    json.begin_object();
    json.kv("ev", "cnr");
    json.kv("i", index);
    json.kv("cnr", core::double_to_hex(cnr.cnr));
    json.kv("execs", cnr.executions);
    json.kv("degraded", cnr.degraded);
    json.kv("retries", cnr.retries);
    json.end_object();
    return json.str();
}

std::string
make_repcap_record(int index, const core::CandidateRepCap &repcap)
{
    obs::JsonWriter json;
    json.begin_object();
    json.kv("ev", "repcap");
    json.kv("i", index);
    json.kv("repcap", core::double_to_hex(repcap.repcap));
    json.kv("execs", repcap.executions);
    json.end_object();
    return json.str();
}

std::string
make_stage_done(const std::string &stage, std::size_t count)
{
    obs::JsonWriter json;
    json.begin_object();
    json.kv("ev", "done");
    json.kv("op", stage);
    json.kv("n", static_cast<std::uint64_t>(count));
    json.end_object();
    return json.str();
}

std::string
make_error(const std::string &message)
{
    obs::JsonWriter json;
    json.begin_object();
    json.kv("ev", "error");
    json.kv("message", message);
    json.end_object();
    return json.str();
}

std::string
make_bye()
{
    return "{\"ev\":\"bye\"}";
}

namespace {

/** Read a hexfloat-encoded double member; false when absent/bad. */
bool
read_hex_double(const srv::JsonValue &value, const char *key, double &out)
{
    const srv::JsonValue *member = value.get(key);
    if (!member || !member->is_string())
        return false;
    return core::try_double_from_hex(member->text, out);
}

} // namespace

bool
parse_worker_event(const std::string &line, WorkerEvent &out,
                   std::string &error)
{
    srv::JsonValue value;
    if (!srv::json_parse(line, value, error))
        return false;
    const srv::JsonValue *ev = value.get("ev");
    if (!ev || !ev->is_string()) {
        error = "worker event without \"ev\"";
        return false;
    }
    out = WorkerEvent{};
    if (ev->text == "ready") {
        out.kind = WorkerEvent::Kind::Ready;
        const srv::JsonValue *protocol = value.get("protocol");
        if (!protocol ||
            protocol->as_int(-1) != kProtocolVersion) {
            error = "worker speaks an incompatible protocol version";
            return false;
        }
        const srv::JsonValue *fp = value.get("fp");
        if (!fp ||
            !fingerprint_from_hex(fp->as_string(), out.fingerprint)) {
            error = "ready event without a valid fingerprint";
            return false;
        }
        return true;
    }
    if (ev->text == "cnr") {
        out.kind = WorkerEvent::Kind::Cnr;
        const srv::JsonValue *index = value.get("i");
        if (!index || !index->is_number() ||
            !read_hex_double(value, "cnr", out.cnr.cnr)) {
            error = "malformed cnr record";
            return false;
        }
        out.index = static_cast<int>(index->as_int(-1));
        if (const srv::JsonValue *v = value.get("execs"))
            out.cnr.executions = v->as_uint(0);
        if (const srv::JsonValue *v = value.get("degraded"))
            out.cnr.degraded = v->as_bool(false);
        if (const srv::JsonValue *v = value.get("retries"))
            out.cnr.retries = v->as_uint(0);
        return true;
    }
    if (ev->text == "repcap") {
        out.kind = WorkerEvent::Kind::RepCap;
        const srv::JsonValue *index = value.get("i");
        if (!index || !index->is_number() ||
            !read_hex_double(value, "repcap", out.repcap.repcap)) {
            error = "malformed repcap record";
            return false;
        }
        out.index = static_cast<int>(index->as_int(-1));
        if (const srv::JsonValue *v = value.get("execs"))
            out.repcap.executions = v->as_uint(0);
        return true;
    }
    if (ev->text == "done") {
        out.kind = WorkerEvent::Kind::Done;
        out.stage = value.get("op") ? value.get("op")->as_string() : "";
        out.count = static_cast<std::size_t>(
            value.get("n") ? value.get("n")->as_uint(0) : 0);
        return true;
    }
    if (ev->text == "error") {
        out.kind = WorkerEvent::Kind::Error;
        out.message = value.get("message")
                          ? value.get("message")->as_string()
                          : "unspecified worker error";
        return true;
    }
    if (ev->text == "bye") {
        out.kind = WorkerEvent::Kind::Bye;
        return true;
    }
    error = "unknown worker event \"" + ev->text + "\"";
    return false;
}

bool
parse_coord_request(const std::string &line, CoordRequest &out,
                    std::string &error)
{
    srv::JsonValue value;
    if (!srv::json_parse(line, value, error))
        return false;
    const srv::JsonValue *op = value.get("op");
    if (!op || !op->is_string()) {
        error = "request without \"op\"";
        return false;
    }
    out = CoordRequest{};
    if (op->text == "configure") {
        out.kind = CoordRequest::Kind::Configure;
        const srv::JsonValue *protocol = value.get("protocol");
        if (!protocol || protocol->as_int(-1) != kProtocolVersion) {
            error = "coordinator speaks an incompatible protocol "
                    "version";
            return false;
        }
        const srv::JsonValue *spec = value.get("spec");
        if (!spec || !srv::JobSpec::from_json(*spec, out.spec, error))
            return false;
        if (const srv::JsonValue *v = value.get("threads"))
            out.threads = static_cast<int>(v->as_int(1));
        const srv::JsonValue *fp = value.get("fp");
        if (!fp ||
            !fingerprint_from_hex(fp->as_string(), out.fingerprint)) {
            error = "configure without a valid fingerprint";
            return false;
        }
        if (const srv::JsonValue *v = value.get("crash_after"))
            out.crash_after = static_cast<int>(v->as_int(0));
        return true;
    }
    if (op->text == "cnr" || op->text == "repcap") {
        out.kind = CoordRequest::Kind::Stage;
        out.stage = op->text;
        const srv::JsonValue *indices = value.get("indices");
        if (!indices ||
            indices->kind != srv::JsonValue::Kind::Array) {
            error = "stage request without an indices array";
            return false;
        }
        out.indices.reserve(indices->items.size());
        for (const srv::JsonValue &item : indices->items) {
            if (!item.is_number()) {
                error = "non-numeric candidate index";
                return false;
            }
            out.indices.push_back(static_cast<int>(item.as_int(-1)));
        }
        return true;
    }
    if (op->text == "shutdown") {
        out.kind = CoordRequest::Kind::Shutdown;
        return true;
    }
    error = "unknown request \"" + op->text + "\"";
    return false;
}

} // namespace elv::dist
