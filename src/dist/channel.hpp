/**
 * @file
 * Worker transports for the distributed search. A WorkerChannel is one
 * line-oriented conversation with a worker; the coordinator never
 * cares which kind it holds:
 *
 *  - ProcessChannel: fork/exec of the elivagar_worker binary with the
 *    protocol on the child's stdin/stdout pipes (logs stay on the
 *    inherited stderr). close() is crash-hard: SIGKILL + reap, which
 *    is also what the coordinator does to a worker that stopped making
 *    progress before reissuing its shard.
 *  - SocketChannel: a TCP connection to `elivagar_worker --serve`
 *    running on another machine, wrapping the server line-protocol
 *    client (srv::Client).
 *
 * Reads take a timeout everywhere: a worker that neither produces a
 * record nor fails within the progress deadline is indistinguishable
 * from a hung one, and the coordinator treats both the same way
 * (kill, reissue the remainder of the shard).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace elv::srv {
class Client;
}

namespace elv::dist {

/** One line-oriented worker conversation (see file comment). */
class WorkerChannel
{
  public:
    virtual ~WorkerChannel() = default;

    /** Send one protocol line; false + `error` on a dead peer. */
    virtual bool send_line(const std::string &line,
                           std::string &error) = 0;

    /**
     * Read the next line. False on EOF, a dead peer, or after
     * `timeout_sec` without data (`error` says which); timeout <= 0
     * blocks indefinitely.
     */
    virtual bool read_line(std::string &line, std::string &error,
                           double timeout_sec) = 0;

    /** Tear the conversation down (idempotent; hard for processes). */
    virtual void close() = 0;

    /** Human-readable endpoint for diagnostics ("pid 1234", host). */
    virtual std::string describe() const = 0;
};

/** Fork/exec'd local worker speaking the protocol over pipes. */
class ProcessChannel : public WorkerChannel
{
  public:
    ProcessChannel() = default;
    /** close()s — a still-running child is SIGKILLed and reaped. */
    ~ProcessChannel() override;

    ProcessChannel(const ProcessChannel &) = delete;
    ProcessChannel &operator=(const ProcessChannel &) = delete;

    /**
     * Spawn `binary` with `args` (argv[1..]); stdin/stdout become the
     * protocol pipes, stderr is inherited. False + `error` when the
     * binary cannot be executed (detected on the first read/write
     * since exec failure happens after fork; spawn() itself only
     * fails on pipe/fork errors).
     */
    bool spawn(const std::string &binary,
               const std::vector<std::string> &args, std::string &error);

    bool send_line(const std::string &line, std::string &error) override;
    bool read_line(std::string &line, std::string &error,
                   double timeout_sec) override;
    void close() override;
    std::string describe() const override;

    /** Child pid; -1 when not running. */
    int pid() const { return pid_; }

  private:
    int pid_ = -1;
    /** Write end towards the child's stdin. */
    int in_fd_ = -1;
    /** Read end of the child's stdout. */
    int out_fd_ = -1;
    std::string buffer_;
};

/** Remote worker attached over TCP (elivagar_worker --serve). */
class SocketChannel : public WorkerChannel
{
  public:
    /**
     * Connects immediately; a failed connect leaves the channel dead
     * (the first send/read reports the stored error).
     */
    SocketChannel(std::string host, std::uint16_t port);
    ~SocketChannel() override;

    bool send_line(const std::string &line, std::string &error) override;
    bool read_line(std::string &line, std::string &error,
                   double timeout_sec) override;
    void close() override;
    std::string describe() const override;

  private:
    std::string host_;
    std::uint16_t port_ = 0;
    std::string connect_error_;
    std::unique_ptr<srv::Client> client_;
};

/**
 * Parse "host:port" (or ":port" / "port" for loopback). False on a
 * malformed endpoint.
 */
bool parse_endpoint(const std::string &text, std::string &host,
                    std::uint16_t &port);

/**
 * The elivagar_worker binary to fork: $ELV_WORKER_BIN when set, else
 * a sibling of /proc/self/exe named "elivagar_worker" when that
 * exists, else bare "elivagar_worker" (resolved through PATH).
 */
std::string default_worker_binary();

} // namespace elv::dist
