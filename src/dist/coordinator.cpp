#include "dist/coordinator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "circuit/serialize.hpp"
#include "common/logging.hpp"
#include "core/checkpoint.hpp"
#include "dist/channel.hpp"
#include "dist/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "qml/synthetic.hpp"

namespace elv::dist {

namespace {

double
seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** CNR histogram edges, mirroring the in-process pipeline metrics. */
const std::vector<double> &
cnr_edges()
{
    static const std::vector<double> edges{0.1, 0.2, 0.3, 0.4, 0.5,
                                           0.6, 0.7, 0.8, 0.9, 1.0};
    return edges;
}

/**
 * Append-only run manifest: shard assignment, completion and reissue
 * records, checksummed like every other durable artifact. The
 * journals alone carry the resume state — the manifest is the audit
 * trail that says which worker ran what, and its fingerprint header
 * refuses a state_dir written by a different search configuration.
 */
class DistManifest
{
  public:
    DistManifest(std::string path, std::uint64_t fingerprint,
                 std::function<std::string(std::uint64_t)> hint)
        : path_(std::move(path)), fingerprint_(fingerprint),
          hint_(std::move(hint))
    {
    }

    /** Returns true when a prior run's records were found. */
    bool
    load()
    {
        std::ifstream in(path_);
        if (!in)
            return false;
        std::string line;
        if (!std::getline(in, line) || line != "elv-dist-manifest 1")
            elv::fatal("manifest " + path_ + ": bad header");
        if (!std::getline(in, line))
            elv::fatal("manifest " + path_ + ": missing fingerprint");
        std::istringstream ls(line);
        std::string keyword, hex;
        ls >> keyword >> hex;
        std::uint64_t seen = 0;
        if (keyword != "fingerprint" ||
            !fingerprint_from_hex(hex, seen))
            elv::fatal("manifest " + path_ + ": bad fingerprint line");
        if (seen != fingerprint_) {
            std::string message =
                "manifest " + path_ +
                " belongs to a different search configuration "
                "(stored fingerprint " + hex + ", expected " +
                fingerprint_to_hex(fingerprint_) +
                "); refusing to resume from this state directory";
            if (hint_) {
                const std::string guess = hint_(seen);
                if (!guess.empty())
                    message += "; " + guess;
            }
            elv::fatal(message);
        }
        header_written_ = true;
        bool any = false;
        while (std::getline(in, line)) {
            if (line.empty())
                continue;
            // A torn final record is an expected crash artifact;
            // the manifest is an audit trail, so it is merely noted.
            if (!core::strip_record_checksum(line)) {
                elv::warn("manifest " + path_ +
                          ": dropping torn record");
                break;
            }
            any = true;
        }
        return any;
    }

    /** Append one checksummed audit record (flushed immediately). */
    void
    record(const std::string &body)
    {
        std::ofstream out(path_, std::ios::app);
        if (!out)
            elv::fatal("cannot append to manifest " + path_);
        if (!header_written_) {
            out << "elv-dist-manifest 1\n"
                << "fingerprint " << fingerprint_to_hex(fingerprint_)
                << "\n";
            header_written_ = true;
        }
        out << core::record_with_checksum(body) << "\n";
        out.flush();
    }

  private:
    std::string path_;
    std::uint64_t fingerprint_;
    std::function<std::string(std::uint64_t)> hint_;
    bool header_written_ = false;
};

/** One shard: its index range, transport and coordinator-side journal. */
struct Shard
{
    int id = 0;
    int begin = 0, end = 0;
    /** Local fork/exec worker vs socket-attached peer. */
    bool local = true;
    std::string host;
    std::uint16_t port = 0;
    /** Test hook forwarded to the first configure, then consumed. */
    int crash_after = 0;
    std::unique_ptr<WorkerChannel> channel;
    std::unique_ptr<core::SearchJournal> journal;
    int reissues = 0;
    /** Sticky failure once every recovery option is exhausted. */
    std::string failure;
};

/** Everything the shard drivers share (immutable unless noted). */
struct RunContext
{
    const srv::JobSpec &spec;
    const DistConfig &dist;
    const dev::Device &device;
    const qml::Benchmark &bench;
    const core::ElivagarConfig &config;
    std::uint64_t fingerprint = 0;
    std::string worker_binary;
    exec::FaultConfig faults;
    /** Guards stats + manifest (shard threads write both). */
    std::mutex control_mutex;
    DistStats *stats = nullptr;
    DistManifest *manifest = nullptr;
    const elv::CancelToken *cancel = nullptr;
    /** Per-phase progress (reset by the phase runner). */
    std::atomic<std::size_t> progress_done{0};
    std::size_t progress_total = 0;
    const char *phase = "";

    bool
    cancelled() const
    {
        return cancel && cancel->cancelled();
    }

    void
    note_progress()
    {
        if (dist.hooks.progress)
            dist.hooks.progress(
                phase,
                progress_done.fetch_add(1, std::memory_order_relaxed) +
                    1,
                progress_total);
    }

    void
    manifest_record(const std::string &body)
    {
        std::lock_guard<std::mutex> lock(control_mutex);
        if (manifest)
            manifest->record(body);
    }
};

/** Render an index list compactly for manifest/diagnostic lines. */
std::string
describe_indices(const std::vector<int> &indices)
{
    if (indices.empty())
        return "none";
    std::string text = std::to_string(indices.size()) + " indices [" +
                       std::to_string(indices.front()) + ".." +
                       std::to_string(indices.back()) + "]";
    return text;
}

/**
 * Spawn/connect + configure handshake for one shard. Returns the
 * ready channel, or null with `error` set.
 */
std::unique_ptr<WorkerChannel>
connect_shard(RunContext &ctx, Shard &shard, std::string &error)
{
    std::unique_ptr<WorkerChannel> channel;
    if (shard.local) {
        auto process = std::make_unique<ProcessChannel>();
        if (!process->spawn(ctx.worker_binary, {}, error))
            return nullptr;
        channel = std::move(process);
        {
            std::lock_guard<std::mutex> lock(ctx.control_mutex);
            ++ctx.stats->workers_spawned;
        }
        ELV_METRIC_COUNT("dist.workers_spawned");
    } else {
        channel = std::make_unique<SocketChannel>(shard.host, shard.port);
        {
            std::lock_guard<std::mutex> lock(ctx.control_mutex);
            ++ctx.stats->workers_attached;
        }
        ELV_METRIC_COUNT("dist.workers_attached");
    }
    const int crash_after = shard.crash_after;
    shard.crash_after = 0; // the reissued worker must run clean
    if (!channel->send_line(make_configure(ctx.spec,
                                           ctx.dist.threads_per_worker,
                                           ctx.fingerprint, crash_after),
                            error))
        return nullptr;
    std::string line;
    if (!channel->read_line(line, error,
                            ctx.dist.handshake_timeout_sec))
        return nullptr;
    WorkerEvent event;
    if (!parse_worker_event(line, event, error))
        return nullptr;
    if (event.kind == WorkerEvent::Kind::Error) {
        error = event.message;
        return nullptr;
    }
    if (event.kind != WorkerEvent::Kind::Ready) {
        error = "expected a ready event from " + channel->describe();
        return nullptr;
    }
    if (event.fingerprint != ctx.fingerprint) {
        error = "worker " + channel->describe() +
                " acknowledged a different config fingerprint";
        return nullptr;
    }
    ELV_METRIC_GAUGE_ADD("dist.active_workers", 1);
    return channel;
}

/** Tear a shard's channel down after a failure and account for it. */
void
fail_shard_channel(RunContext &ctx, Shard &shard,
                   const std::string &stage, const std::string &error)
{
    elv::warn("dist: shard " + std::to_string(shard.id) + " (" +
              (shard.channel ? shard.channel->describe()
                             : std::string("unconnected")) +
              ") failed during " + stage + ": " + error);
    if (shard.channel) {
        shard.channel->close();
        shard.channel.reset();
        ELV_METRIC_GAUGE_ADD("dist.active_workers", -1);
    }
    ++shard.reissues;
    {
        std::lock_guard<std::mutex> lock(ctx.control_mutex);
        ++ctx.stats->worker_failures;
    }
    ELV_METRIC_COUNT("dist.worker_failures");
}

/**
 * Drive one shard through one stage: issue the pending indices,
 * absorb records, reissue on failure, fall back in-process as the
 * last resort. `store` receives each (index, event) exactly once;
 * indices are disjoint across shards, so stores need no locking.
 */
void
drive_shard(RunContext &ctx, Shard &shard, const std::string &stage,
            std::vector<int> pending,
            const std::function<void(int, const WorkerEvent &)> &store,
            const std::function<std::string(int)> &fallback)
{
    auto absorb = [&](int index, const WorkerEvent &event) {
        store(index, event);
        pending.erase(
            std::find(pending.begin(), pending.end(), index));
        {
            std::lock_guard<std::mutex> lock(ctx.control_mutex);
            ++ctx.stats->records_received;
        }
        ELV_METRIC_COUNT("dist.records_received");
        ctx.note_progress();
    };

    bool issued_once = false;
    while (!pending.empty() && !ctx.cancelled() &&
           shard.reissues <= ctx.dist.max_reissues) {
        if (!shard.channel) {
            std::string error;
            auto channel = connect_shard(ctx, shard, error);
            if (!channel) {
                fail_shard_channel(ctx, shard, stage + " handshake",
                                   error);
                continue;
            }
            shard.channel = std::move(channel);
        }
        {
            const bool reissue = issued_once;
            issued_once = true;
            ctx.manifest_record(
                std::string(reissue ? "reissue " : "issue ") + stage +
                " shard " + std::to_string(shard.id) + " " +
                describe_indices(pending) + " -> " +
                shard.channel->describe());
            if (reissue) {
                std::lock_guard<std::mutex> lock(ctx.control_mutex);
                ++ctx.stats->shards_reissued;
                ELV_METRIC_COUNT("dist.shards_reissued");
            }
        }
        std::string error;
        if (!shard.channel->send_line(make_stage_request(stage, pending),
                                      error)) {
            fail_shard_channel(ctx, shard, stage, error);
            continue;
        }
        bool stream_ok = true;
        bool done = false;
        while (!done && !ctx.cancelled()) {
            std::string line;
            if (!shard.channel->read_line(
                    line, error, ctx.dist.record_timeout_sec)) {
                stream_ok = false;
                break;
            }
            WorkerEvent event;
            if (!parse_worker_event(line, event, error)) {
                stream_ok = false;
                break;
            }
            switch (event.kind) {
            case WorkerEvent::Kind::Cnr:
                if (stage == "cnr" &&
                    std::find(pending.begin(), pending.end(),
                              event.index) != pending.end())
                    absorb(event.index, event);
                break;
            case WorkerEvent::Kind::RepCap:
                if (stage == "repcap" &&
                    std::find(pending.begin(), pending.end(),
                              event.index) != pending.end())
                    absorb(event.index, event);
                break;
            case WorkerEvent::Kind::Done:
                done = true;
                break;
            case WorkerEvent::Kind::Error:
                error = event.message;
                stream_ok = false;
                break;
            case WorkerEvent::Kind::Ready:
            case WorkerEvent::Kind::Bye:
                // Stale handshake noise; harmless.
                break;
            }
            if (!stream_ok)
                break;
        }
        if (ctx.cancelled())
            return;
        if (!stream_ok) {
            fail_shard_channel(ctx, shard, stage, error);
            continue;
        }
        if (done && !pending.empty()) {
            // The worker claimed completion but skipped indices —
            // treat like any other worker failure and reissue.
            fail_shard_channel(ctx, shard, stage,
                               "done with " +
                                   describe_indices(pending) +
                                   " still pending");
            continue;
        }
    }
    if (pending.empty()) {
        ctx.manifest_record("done " + stage + " shard " +
                            std::to_string(shard.id));
        return;
    }
    if (ctx.cancelled())
        return;
    // Every reissue burned: finish the shard in-process, or surface
    // the failure with the worker's diagnostics.
    if (!ctx.dist.allow_local_fallback) {
        shard.failure = "shard " + std::to_string(shard.id) +
                        " exhausted " +
                        std::to_string(ctx.dist.max_reissues) +
                        " reissues with " + describe_indices(pending) +
                        " still pending";
        return;
    }
    ctx.manifest_record("fallback " + stage + " shard " +
                        std::to_string(shard.id) + " " +
                        describe_indices(pending));
    for (int index : pending) {
        if (ctx.cancelled())
            return;
        const std::string record_line = fallback(index);
        WorkerEvent event;
        std::string error;
        if (!parse_worker_event(record_line, event, error))
            elv::fatal("internal fallback record failed to parse: " +
                       error);
        store(index, event);
        {
            std::lock_guard<std::mutex> lock(ctx.control_mutex);
            ++ctx.stats->fallback_records;
        }
        ELV_METRIC_COUNT("dist.fallback_records");
        ctx.note_progress();
    }
}

/** Run one stage across all shards, one driver thread per shard. */
void
run_phase(RunContext &ctx, std::vector<Shard> &shards,
          const std::string &stage,
          const std::vector<std::vector<int>> &pending,
          const std::function<void(int, const WorkerEvent &)> &store,
          const std::function<std::string(int)> &fallback)
{
    std::vector<std::thread> drivers;
    drivers.reserve(shards.size());
    for (std::size_t s = 0; s < shards.size(); ++s) {
        if (pending[s].empty())
            continue;
        {
            std::lock_guard<std::mutex> lock(ctx.control_mutex);
            ++ctx.stats->shards; // counts issued shard-stages
        }
        ELV_METRIC_COUNT("dist.shards_issued");
        drivers.emplace_back([&ctx, &shards, s, &stage, &pending,
                              &store, &fallback] {
            drive_shard(ctx, shards[s], stage, pending[s], store,
                        fallback);
        });
    }
    for (std::thread &driver : drivers)
        driver.join();
    for (const Shard &shard : shards)
        if (!shard.failure.empty())
            throw std::runtime_error("distributed search failed: " +
                                     shard.failure);
}

} // namespace

std::vector<std::pair<int, int>>
partition_indices(int count, int shards)
{
    ELV_REQUIRE(count >= 0, "negative candidate count");
    ELV_REQUIRE(shards >= 1, "need at least one shard");
    std::vector<std::pair<int, int>> plan;
    plan.reserve(static_cast<std::size_t>(shards));
    const int base = count / shards;
    const int extra = count % shards;
    int begin = 0;
    for (int s = 0; s < shards; ++s) {
        const int size = base + (s < extra ? 1 : 0);
        plan.emplace_back(begin, begin + size);
        begin += size;
    }
    return plan;
}

DistResult
distributed_search(const srv::JobSpec &spec, const DistConfig &dist)
{
    spec.check();
    if (dist.workers < 0)
        elv::fatal("dist workers must be non-negative");
    const int total_shards =
        dist.workers + static_cast<int>(dist.attach.size());
    if (total_shards < 1)
        elv::fatal("distributed search needs at least one worker "
                   "(--workers N or --attach host:port)");
    if (dist.threads_per_worker < 1)
        elv::fatal("threads per worker must be >= 1");

    const auto search_start = std::chrono::steady_clock::now();
    ELV_TRACE_SCOPE("distributed_search", "dist");

    const dev::Device device = dev::make_device(spec.device);
    const qml::Benchmark bench =
        qml::make_benchmark(spec.benchmark, spec.seed, spec.scale);
    const core::ElivagarConfig config = srv::job_search_config(
        spec, bench.spec, dist.coordinator_threads, "");
    const std::uint64_t fingerprint = core::config_fingerprint(config);
    const int num_candidates = config.num_candidates;
    const auto pool_size = static_cast<std::size_t>(num_candidates);

    DistResult out;
    core::SearchResult &result = out.result;
    result.candidates.resize(pool_size);

    RunContext ctx{spec,
                   dist,
                   device,
                   bench,
                   config,
                   fingerprint,
                   dist.worker_binary.empty() ? default_worker_binary()
                                              : dist.worker_binary,
                   core::prepare_fault_config(config),
                   {},
                   &out.stats,
                   nullptr,
                   dist.hooks.cancel.get(),
                   {},
                   pool_size,
                   ""};
    auto check_cancel = [&](const char *where) {
        if (ctx.cancel)
            ctx.cancel->check(where);
    };
    auto phase_begin = [&](const char *phase) {
        check_cancel(phase);
        ctx.phase = phase;
        ctx.progress_done.store(0, std::memory_order_relaxed);
        if (dist.hooks.progress)
            dist.hooks.progress(phase, 0, pool_size);
    };

    // Shard plan: attached peers first, then local workers; the first
    // local shard carries the crash_after test hook.
    const auto plan = partition_indices(num_candidates, total_shards);
    std::vector<Shard> shards(static_cast<std::size_t>(total_shards));
    for (int s = 0; s < total_shards; ++s) {
        Shard &shard = shards[static_cast<std::size_t>(s)];
        shard.id = s;
        shard.begin = plan[static_cast<std::size_t>(s)].first;
        shard.end = plan[static_cast<std::size_t>(s)].second;
        if (s < static_cast<int>(dist.attach.size())) {
            shard.local = false;
            if (!parse_endpoint(dist.attach[static_cast<std::size_t>(s)],
                                shard.host, shard.port))
                elv::fatal("bad --attach endpoint \"" +
                           dist.attach[static_cast<std::size_t>(s)] +
                           "\" (expected host:port)");
        } else if (s == static_cast<int>(dist.attach.size())) {
            shard.crash_after = dist.crash_after;
        }
    }
    auto shard_of = [&](int index) -> Shard & {
        for (Shard &shard : shards)
            if (index >= shard.begin && index < shard.end)
                return shard;
        ELV_REQUIRE(false, "candidate index outside every shard");
        return shards.front();
    };

    // Durable state: per-shard journals + the run manifest. The union
    // of every shard-*.journal in the directory is the resume state,
    // so a rerun at a different worker count still replays everything.
    std::map<int, core::CheckpointEntry> prior;
    auto harvest = [&](core::SearchJournal &journal) {
        for (int n = 0; n < num_candidates; ++n)
            if (const core::CheckpointEntry *entry = journal.entry(n)) {
                core::CheckpointEntry &merged = prior[n];
                if (merged.circuit_line.empty())
                    merged.circuit_line = entry->circuit_line;
                if (!merged.has_cnr && entry->has_cnr) {
                    merged.has_cnr = true;
                    merged.cnr = entry->cnr;
                    merged.cnr_executions = entry->cnr_executions;
                    merged.degraded = entry->degraded;
                    merged.retries = entry->retries;
                }
                if (!merged.has_repcap && entry->has_repcap) {
                    merged.has_repcap = true;
                    merged.repcap = entry->repcap;
                    merged.repcap_executions = entry->repcap_executions;
                }
            }
    };
    auto hint = [&config](std::uint64_t stored) {
        return core::fingerprint_mismatch_hint(config, stored);
    };
    std::unique_ptr<DistManifest> manifest;
    if (!dist.state_dir.empty()) {
        std::filesystem::create_directories(dist.state_dir);
        std::vector<std::string> current_files;
        for (Shard &shard : shards) {
            const std::string path =
                dist.state_dir + "/shard-" + std::to_string(shard.id) +
                ".journal";
            current_files.push_back(
                std::filesystem::path(path).filename().string());
            shard.journal = std::make_unique<core::SearchJournal>(
                path, fingerprint);
            shard.journal->set_mismatch_hint(hint);
            if (shard.journal->load())
                harvest(*shard.journal);
        }
        // Journals left by a previous run at a different shard count.
        for (const auto &entry :
             std::filesystem::directory_iterator(dist.state_dir)) {
            const std::string name = entry.path().filename().string();
            if (name.rfind("shard-", 0) != 0 ||
                name.find(".journal") == std::string::npos)
                continue;
            if (std::find(current_files.begin(), current_files.end(),
                          name) != current_files.end())
                continue;
            core::SearchJournal old(entry.path().string(), fingerprint);
            old.set_mismatch_hint(hint);
            if (old.load())
                harvest(old);
        }
        manifest = std::make_unique<DistManifest>(
            dist.state_dir + "/dist.manifest", fingerprint, hint);
        manifest->load();
        ctx.manifest = manifest.get();
        manifest->record(
            "run shards " + std::to_string(total_shards) + " workers " +
            std::to_string(dist.workers) + " attached " +
            std::to_string(dist.attach.size()) + " candidates " +
            std::to_string(num_candidates));
    }
    result.resumed = !prior.empty();

    // Step 1: generation, always local — cheap, deterministic, and it
    // gives the coordinator the circuits the journal verifies against.
    {
        const auto phase_start = std::chrono::steady_clock::now();
        phase_begin("generate");
        par::ThreadPool pool(dist.coordinator_threads);
        std::mutex journal_mutex;
        pool.parallel_for(pool_size, [&](std::size_t n) {
            auto &record = result.candidates[n];
            record.circuit =
                core::generate_search_candidate(device, config, n);
            if (!dist.state_dir.empty()) {
                std::lock_guard<std::mutex> lock(journal_mutex);
                const auto it = prior.find(static_cast<int>(n));
                if (it != prior.end() &&
                    !it->second.circuit_line.empty()) {
                    if (it->second.circuit_line !=
                        circ::to_text_line(record.circuit))
                        elv::fatal(
                            "state dir " + dist.state_dir +
                            ": candidate " + std::to_string(n) +
                            " does not match the regenerated pool; "
                            "the journals belong to a different run");
                } else {
                    shard_of(static_cast<int>(n))
                        .journal->record_candidate(static_cast<int>(n),
                                                   record.circuit);
                }
            }
            ctx.note_progress();
        });
        result.phase_timings.push_back(
            {"generate", seconds_since(phase_start)});
    }

    // Step 2 + 3: CNR scatter, then the global selection. The cutoff
    // needs every candidate's CNR, so this phase barriers before the
    // survivors are known.
    std::vector<std::uint64_t> cnr_execs(pool_size, 0);
    if (config.use_cnr) {
        const auto phase_start = std::chrono::steady_clock::now();
        phase_begin("cnr");
        std::vector<std::vector<int>> pending(shards.size());
        for (int n = 0; n < num_candidates; ++n) {
            const auto it = prior.find(n);
            if (it != prior.end() && it->second.has_cnr) {
                auto &record =
                    result.candidates[static_cast<std::size_t>(n)];
                record.cnr = it->second.cnr;
                record.degraded = it->second.degraded;
                record.retries = it->second.retries;
                cnr_execs[static_cast<std::size_t>(n)] =
                    it->second.cnr_executions;
                ++out.stats.records_resumed;
                ctx.note_progress();
                continue;
            }
            pending[static_cast<std::size_t>(shard_of(n).id)]
                .push_back(n);
        }
        auto store = [&](int index, const WorkerEvent &event) {
            auto &record =
                result.candidates[static_cast<std::size_t>(index)];
            record.cnr = event.cnr.cnr;
            record.degraded = event.cnr.degraded;
            record.retries = event.cnr.retries;
            cnr_execs[static_cast<std::size_t>(index)] =
                event.cnr.executions;
            if (Shard &shard = shard_of(index); shard.journal)
                shard.journal->record_cnr(index, event.cnr.cnr,
                                          event.cnr.executions,
                                          event.cnr.degraded,
                                          event.cnr.retries);
        };
        auto fallback = [&](int index) {
            const core::CandidateCnr cnr = core::evaluate_candidate_cnr(
                device,
                result.candidates[static_cast<std::size_t>(index)]
                    .circuit,
                config, ctx.faults, static_cast<std::size_t>(index));
            return make_cnr_record(index, cnr);
        };
        run_phase(ctx, shards, "cnr", pending, store, fallback);
        check_cancel("cnr");
        for (std::size_t n = 0; n < pool_size; ++n) {
            result.cnr_executions += cnr_execs[n];
            ELV_METRIC_OBSERVE("search.cnr", cnr_edges(),
                               result.candidates[n].cnr);
        }
        core::apply_cnr_selection(result.candidates, config);
        result.phase_timings.push_back(
            {"cnr", seconds_since(phase_start)});
    }

    // Step 4: RepCap scatter over the survivors only.
    std::vector<std::uint64_t> repcap_execs(pool_size, 0);
    {
        const auto phase_start = std::chrono::steady_clock::now();
        phase_begin("repcap");
        std::vector<std::vector<int>> pending(shards.size());
        for (int n = 0; n < num_candidates; ++n) {
            auto &record =
                result.candidates[static_cast<std::size_t>(n)];
            if (record.rejected_by_cnr) {
                ctx.note_progress();
                continue;
            }
            const auto it = prior.find(n);
            if (it != prior.end() && it->second.has_repcap) {
                record.repcap = it->second.repcap;
                repcap_execs[static_cast<std::size_t>(n)] =
                    it->second.repcap_executions;
                ++out.stats.records_resumed;
                ctx.note_progress();
                continue;
            }
            pending[static_cast<std::size_t>(shard_of(n).id)]
                .push_back(n);
        }
        auto store = [&](int index, const WorkerEvent &event) {
            result.candidates[static_cast<std::size_t>(index)].repcap =
                event.repcap.repcap;
            repcap_execs[static_cast<std::size_t>(index)] =
                event.repcap.executions;
            if (Shard &shard = shard_of(index); shard.journal)
                shard.journal->record_repcap(index,
                                             event.repcap.repcap,
                                             event.repcap.executions);
        };
        auto fallback = [&](int index) {
            const core::CandidateRepCap repcap =
                core::evaluate_candidate_repcap(
                    result.candidates[static_cast<std::size_t>(index)]
                        .circuit,
                    bench.train, config,
                    static_cast<std::size_t>(index));
            return make_repcap_record(index, repcap);
        };
        run_phase(ctx, shards, "repcap", pending, store, fallback);
        check_cancel("repcap");
        for (std::size_t n = 0; n < pool_size; ++n) {
            if (!result.candidates[n].rejected_by_cnr)
                ++result.survivors;
            result.repcap_executions += repcap_execs[n];
        }
        result.phase_timings.push_back(
            {"repcap", seconds_since(phase_start)});
    }

    // Workers are done: polite shutdown, then hard close.
    for (Shard &shard : shards) {
        if (!shard.channel)
            continue;
        std::string error, line;
        if (shard.channel->send_line(make_shutdown(), error))
            shard.channel->read_line(line, error, 1.0);
        shard.channel->close();
        ELV_METRIC_GAUGE_ADD("dist.active_workers", -1);
    }

    // Step 5: composite score + final selection, index order — the
    // same first-max-wins scan as the in-process search.
    const core::CandidateRecord *best = nullptr;
    {
        const auto phase_start = std::chrono::steady_clock::now();
        phase_begin("rank");
        for (int n = 0; n < num_candidates; ++n) {
            auto &record =
                result.candidates[static_cast<std::size_t>(n)];
            if (record.degraded)
                ++result.degraded_candidates;
            if (record.rejected_by_cnr)
                continue;
            record.score = core::composite_score(record.cnr,
                                                 record.repcap, config);
            if (!best || record.score > best->score)
                best = &record;
            if (Shard &shard = shard_of(n); shard.journal)
                shard.journal->record_rank(n, record.score,
                                           record.rejected_by_cnr);
        }
        result.phase_timings.push_back(
            {"rank", seconds_since(phase_start)});
    }
    ELV_REQUIRE(best != nullptr, "no surviving candidate");
    result.best_circuit = best->circuit;
    result.best_score = best->score;
    result.total_seconds = seconds_since(search_start);
    if (manifest)
        manifest->record("complete best_score " +
                         core::double_to_hex(result.best_score));
    return out;
}

} // namespace elv::dist
