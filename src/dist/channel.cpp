#include "dist/channel.hpp"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "server/tcp.hpp"

namespace elv::dist {

namespace {

/** One-time process-wide SIGPIPE suppression: a write to a worker
 * that just died must surface as EPIPE, not kill the coordinator. */
void
ignore_sigpipe()
{
    static const bool once = [] {
        std::signal(SIGPIPE, SIG_IGN);
        return true;
    }();
    (void)once;
}

/** Write all of `data`; false + errno text on a dead pipe. */
bool
write_all(int fd, const std::string &data, std::string &error)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + sent, data.size() - sent);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = std::strerror(errno);
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Read one '\n'-terminated line from `fd` into `line`, buffering the
 * remainder in `buffer`. The timeout covers the whole line, not just
 * the first byte — a worker trickling partial output is still a
 * stalled worker.
 */
bool
read_line_fd(int fd, std::string &buffer, std::string &line,
             std::string &error, double timeout_sec)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(
                timeout_sec > 0.0 ? timeout_sec : 0.0));
    for (;;) {
        const std::size_t newline = buffer.find('\n');
        if (newline != std::string::npos) {
            line = buffer.substr(0, newline);
            buffer.erase(0, newline + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            return true;
        }
        int wait_ms = -1;
        if (timeout_sec > 0.0) {
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count();
            if (left <= 0) {
                error = "timed out waiting for the worker";
                return false;
            }
            wait_ms = static_cast<int>(left);
        }
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        const int ready = ::poll(&pfd, 1, wait_ms);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            error = std::strerror(errno);
            return false;
        }
        if (ready == 0) {
            error = "timed out waiting for the worker";
            return false;
        }
        char chunk[4096];
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = std::strerror(errno);
            return false;
        }
        if (n == 0) {
            error = "worker closed the connection";
            return false;
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace

ProcessChannel::~ProcessChannel() { close(); }

bool
ProcessChannel::spawn(const std::string &binary,
                      const std::vector<std::string> &args,
                      std::string &error)
{
    ignore_sigpipe();
    // O_CLOEXEC, atomically: a worker forked later must not inherit
    // this worker's pipe ends — a leaked write end would keep the
    // coordinator from ever seeing EOF when this worker dies, turning
    // every crash into a full record-timeout stall. The child's dup2
    // onto stdin/stdout clears the flag on the two fds it keeps.
    int to_child[2], from_child[2];
    if (::pipe2(to_child, O_CLOEXEC) != 0) {
        error = std::strerror(errno);
        return false;
    }
    if (::pipe2(from_child, O_CLOEXEC) != 0) {
        error = std::strerror(errno);
        ::close(to_child[0]);
        ::close(to_child[1]);
        return false;
    }
    const pid_t child = ::fork();
    if (child < 0) {
        error = std::strerror(errno);
        ::close(to_child[0]);
        ::close(to_child[1]);
        ::close(from_child[0]);
        ::close(from_child[1]);
        return false;
    }
    if (child == 0) {
        // Child: protocol on stdin/stdout, logs on inherited stderr.
        // Only async-signal-safe calls between fork and exec.
        ::dup2(to_child[0], STDIN_FILENO);
        ::dup2(from_child[1], STDOUT_FILENO);
        ::close(to_child[0]);
        ::close(to_child[1]);
        ::close(from_child[0]);
        ::close(from_child[1]);
        std::vector<char *> argv;
        argv.push_back(const_cast<char *>(binary.c_str()));
        for (const std::string &arg : args)
            argv.push_back(const_cast<char *>(arg.c_str()));
        argv.push_back(nullptr);
        ::execvp(binary.c_str(), argv.data());
        // Exec failed: the parent sees EOF on the first read and
        // reports the spawn failure there.
        ::_exit(127);
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    pid_ = child;
    in_fd_ = to_child[1];
    out_fd_ = from_child[0];
    buffer_.clear();
    return true;
}

bool
ProcessChannel::send_line(const std::string &line, std::string &error)
{
    if (in_fd_ < 0) {
        error = "worker process is not running";
        return false;
    }
    return write_all(in_fd_, line + "\n", error);
}

bool
ProcessChannel::read_line(std::string &line, std::string &error,
                          double timeout_sec)
{
    if (out_fd_ < 0) {
        error = "worker process is not running";
        return false;
    }
    return read_line_fd(out_fd_, buffer_, line, error, timeout_sec);
}

void
ProcessChannel::close()
{
    if (in_fd_ >= 0) {
        ::close(in_fd_);
        in_fd_ = -1;
    }
    if (out_fd_ >= 0) {
        ::close(out_fd_);
        out_fd_ = -1;
    }
    if (pid_ > 0) {
        // Crash-hard teardown: the worker holds no state worth a
        // graceful drain (journals live on the coordinator side), and
        // a hung worker would stall the whole run otherwise.
        ::kill(pid_, SIGKILL);
        int status = 0;
        while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
        }
        pid_ = -1;
    }
    buffer_.clear();
}

std::string
ProcessChannel::describe() const
{
    return pid_ > 0 ? "local worker pid " + std::to_string(pid_)
                    : "local worker (not running)";
}

SocketChannel::SocketChannel(std::string host, std::uint16_t port)
    : host_(std::move(host)), port_(port)
{
    ignore_sigpipe();
    client_ =
        std::make_unique<srv::Client>(host_, port_, connect_error_);
    if (!client_->connected())
        client_.reset();
}

SocketChannel::~SocketChannel() = default;

bool
SocketChannel::send_line(const std::string &line, std::string &error)
{
    if (!client_) {
        error = "not connected to " + describe() +
                (connect_error_.empty() ? "" : ": " + connect_error_);
        return false;
    }
    return client_->send_line(line, error);
}

bool
SocketChannel::read_line(std::string &line, std::string &error,
                         double timeout_sec)
{
    if (!client_) {
        error = "not connected to " + describe() +
                (connect_error_.empty() ? "" : ": " + connect_error_);
        return false;
    }
    return client_->read_line(line, error, timeout_sec);
}

void
SocketChannel::close()
{
    client_.reset();
}

std::string
SocketChannel::describe() const
{
    return host_ + ":" + std::to_string(port_);
}

bool
parse_endpoint(const std::string &text, std::string &host,
               std::uint16_t &port)
{
    std::string port_text = text;
    host = "127.0.0.1";
    const std::size_t colon = text.rfind(':');
    if (colon != std::string::npos) {
        if (colon > 0)
            host = text.substr(0, colon);
        port_text = text.substr(colon + 1);
    }
    if (port_text.empty())
        return false;
    char *end = nullptr;
    const unsigned long value = std::strtoul(port_text.c_str(), &end, 10);
    if (end != port_text.c_str() + port_text.size() || value == 0 ||
        value > 65535)
        return false;
    port = static_cast<std::uint16_t>(value);
    return true;
}

std::string
default_worker_binary()
{
    if (const char *env = std::getenv("ELV_WORKER_BIN"))
        if (*env != '\0')
            return env;
    std::error_code ec;
    const std::filesystem::path self =
        std::filesystem::read_symlink("/proc/self/exe", ec);
    if (!ec) {
        const std::filesystem::path sibling =
            self.parent_path() / "elivagar_worker";
        if (std::filesystem::exists(sibling, ec) && !ec)
            return sibling.string();
    }
    return "elivagar_worker";
}

} // namespace elv::dist
