/**
 * @file
 * Wire protocol of the distributed search: line-delimited JSON between
 * the coordinator (src/dist/coordinator) and worker processes
 * (elivagar_worker), reusing the server line format and the bounded
 * srv::JsonValue parser so a broken or hostile peer can at worst end
 * its own connection.
 *
 * Conversation (one JSON object per line):
 *
 *   C -> W  {"op":"configure","spec":{...JobSpec...},"threads":T,
 *            "fp":"<hex16>","crash_after":0}
 *   W -> C  {"ev":"ready","protocol":1,"fp":"<hex16>"}
 *   C -> W  {"op":"cnr","indices":[3,4,5]}
 *   W -> C  {"ev":"cnr","i":3,"cnr":"<hexfloat>","execs":8,
 *            "degraded":false,"retries":0}            (one per index)
 *   W -> C  {"ev":"done","op":"cnr","n":3}
 *   C -> W  {"op":"repcap","indices":[4]}
 *   W -> C  {"ev":"repcap","i":4,"repcap":"<hexfloat>","execs":512}
 *   W -> C  {"ev":"done","op":"repcap","n":1}
 *   C -> W  {"op":"shutdown"}    W -> C  {"ev":"bye"}
 *
 * Design notes:
 *  - Workers never see circuits: generation is cheap and seeded per
 *    candidate, so both sides regenerate the pool from (spec, index)
 *    and the wire carries only indices and scores.
 *  - Doubles travel as hexfloat strings (core/checkpoint helpers), so
 *    a merged ranking is bit-identical to the in-process one.
 *  - The configure message carries the coordinator's config
 *    fingerprint; a worker whose locally derived config fingerprints
 *    differently refuses with an error event instead of silently
 *    contributing values from a different search.
 *  - "crash_after" is a test hook: the worker SIGKILLs itself after
 *    emitting that many records, which is how the reissue path is
 *    exercised deterministically (0 = disabled).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/search.hpp"
#include "server/job.hpp"
#include "server/json_value.hpp"

namespace elv::dist {

/** Bumped on incompatible wire changes; checked in the handshake. */
constexpr int kProtocolVersion = 1;

/** @name Coordinator -> worker request builders @{ */
std::string make_configure(const srv::JobSpec &spec, int threads,
                           std::uint64_t fingerprint, int crash_after);
std::string make_stage_request(const std::string &stage,
                               const std::vector<int> &indices);
std::string make_shutdown();
/** @} */

/** @name Worker -> coordinator event builders @{ */
std::string make_ready(std::uint64_t fingerprint);
std::string make_cnr_record(int index, const core::CandidateCnr &cnr);
std::string make_repcap_record(int index,
                               const core::CandidateRepCap &repcap);
std::string make_stage_done(const std::string &stage, std::size_t count);
std::string make_error(const std::string &message);
std::string make_bye();
/** @} */

/** One parsed worker -> coordinator event. */
struct WorkerEvent
{
    enum class Kind { Ready, Cnr, RepCap, Done, Error, Bye };

    Kind kind = Kind::Error;
    /** Candidate index (Cnr/RepCap records). */
    int index = -1;
    core::CandidateCnr cnr;
    core::CandidateRepCap repcap;
    /** Worker-side config fingerprint (Ready). */
    std::uint64_t fingerprint = 0;
    /** Completed stage name + record count (Done). */
    std::string stage;
    std::size_t count = 0;
    /** Failure description (Error). */
    std::string message;
};

/**
 * Parse one worker event line. Returns false and sets `error` on
 * malformed input (including torn lines from a killed worker);
 * the coordinator treats that as a worker failure, never a crash.
 */
bool parse_worker_event(const std::string &line, WorkerEvent &out,
                        std::string &error);

/** One parsed coordinator -> worker request. */
struct CoordRequest
{
    enum class Kind { Configure, Stage, Shutdown };

    Kind kind = Kind::Shutdown;
    /** @name Configure payload @{ */
    srv::JobSpec spec;
    int threads = 1;
    std::uint64_t fingerprint = 0;
    int crash_after = 0;
    /** @} */
    /** @name Stage payload @{ */
    std::string stage; // "cnr" or "repcap"
    std::vector<int> indices;
    /** @} */
};

/** Parse one coordinator request line (worker side). */
bool parse_coord_request(const std::string &line, CoordRequest &out,
                         std::string &error);

/** @name Fingerprint wire form (16 lowercase hex digits) @{ */
std::string fingerprint_to_hex(std::uint64_t fingerprint);
bool fingerprint_from_hex(const std::string &text,
                          std::uint64_t &fingerprint);
/** @} */

} // namespace elv::dist
