#include "dist/worker.hpp"

#include <atomic>
#include <csignal>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include <unistd.h>

#include "common/logging.hpp"
#include "dist/wire.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "qml/synthetic.hpp"
#include "server/job.hpp"

namespace elv::dist {

namespace {

/** The worker's configured search: everything a stage request needs. */
struct WorkerSearch
{
    dev::Device device;
    qml::Benchmark bench;
    core::ElivagarConfig config;
    exec::FaultConfig faults;
    /** Candidates regenerated lazily, cached across stage requests. */
    std::vector<std::optional<circ::Circuit>> circuits;
    /** SIGKILL self after this many emitted records (test hook). */
    int crash_after = 0;
};

/**
 * Build the search from a configure request. Throws UsageError for
 * unknown catalog names (reported to the coordinator as an error
 * event by the caller).
 */
WorkerSearch
configure_search(const CoordRequest &request)
{
    WorkerSearch search{
        dev::make_device(request.spec.device),
        qml::make_benchmark(request.spec.benchmark, request.spec.seed,
                            request.spec.scale),
        {},
        {},
        {},
        request.crash_after,
    };
    // The exact JobSpec -> config mapping the server and the CLI use;
    // both sides deriving it independently is what the fingerprint
    // handshake verifies.
    search.config = srv::job_search_config(
        request.spec, search.bench.spec,
        request.threads < 1 ? 1 : request.threads, "");
    search.faults = core::prepare_fault_config(search.config);
    search.circuits.resize(
        static_cast<std::size_t>(search.config.num_candidates));
    return search;
}

/** Candidate `index`, regenerated on first use. */
const circ::Circuit &
circuit_for(WorkerSearch &search, int index)
{
    auto &slot = search.circuits[static_cast<std::size_t>(index)];
    if (!slot)
        slot = core::generate_search_candidate(
            search.device, search.config,
            static_cast<std::size_t>(index));
    return *slot;
}

/** Serialized record emission with the crash_after test hook. */
class RecordSink
{
  public:
    RecordSink(const WorkerIo &io, int crash_after)
        : io_(io), crash_after_(crash_after)
    {
    }

    /** Emit one record line; false when the coordinator went away. */
    bool
    emit(const std::string &line)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!io_.write_line(line))
            return false;
        ++emitted_;
        if (crash_after_ > 0 && emitted_ >= crash_after_) {
            // The reissue test hook: die the hard way, mid-shard,
            // exactly like a worker OOM-killed by the kernel.
            ::kill(::getpid(), SIGKILL);
        }
        return true;
    }

  private:
    const WorkerIo &io_;
    std::mutex mutex_;
    int emitted_ = 0;
    int crash_after_ = 0;
};

/**
 * Evaluate one stage request and stream its records. Returns false
 * when the transport died (the conversation is over either way).
 */
bool
run_stage(WorkerSearch &search, const CoordRequest &request,
          RecordSink &sink, const WorkerIo &io)
{
    const bool is_cnr = request.stage == "cnr";
    ELV_METRIC_COUNT_N("dist.worker.requests", 1);
    // Bounds-check before touching anything: a bad index is a
    // coordinator bug, reported instead of crashing the worker.
    for (int index : request.indices)
        if (index < 0 || index >= search.config.num_candidates) {
            io.write_line(make_error("candidate index " +
                                     std::to_string(index) +
                                     " out of range"));
            return io.write_line(make_stage_done(request.stage, 0));
        }
    std::atomic<bool> transport_ok{true};
    par::ThreadPool pool(search.config.threads);
    pool.parallel_for(request.indices.size(), [&](std::size_t k) {
        if (!transport_ok.load(std::memory_order_relaxed))
            return;
        const int index = request.indices[k];
        std::string line;
        if (is_cnr) {
            const core::CandidateCnr cnr = core::evaluate_candidate_cnr(
                search.device, circuit_for(search, index),
                search.config, search.faults,
                static_cast<std::size_t>(index));
            line = make_cnr_record(index, cnr);
        } else {
            const core::CandidateRepCap repcap =
                core::evaluate_candidate_repcap(
                    circuit_for(search, index), search.bench.train,
                    search.config, static_cast<std::size_t>(index));
            line = make_repcap_record(index, repcap);
        }
        ELV_METRIC_COUNT_N("dist.worker.records", 1);
        if (!sink.emit(line))
            transport_ok.store(false, std::memory_order_relaxed);
    });
    if (!transport_ok.load())
        return false;
    return io.write_line(
        make_stage_done(request.stage, request.indices.size()));
}

} // namespace

int
serve_worker(const WorkerIo &io)
{
    std::optional<WorkerSearch> search;
    std::optional<RecordSink> sink;
    std::string line;
    while (io.read_line(line)) {
        if (line.empty())
            continue;
        CoordRequest request;
        std::string error;
        if (!parse_coord_request(line, request, error)) {
            io.write_line(make_error("bad request: " + error));
            return 1;
        }
        switch (request.kind) {
        case CoordRequest::Kind::Configure: {
            try {
                search = configure_search(request);
            } catch (const std::exception &e) {
                io.write_line(make_error(std::string("configure: ") +
                                         e.what()));
                return 1;
            }
            const std::uint64_t fingerprint =
                core::config_fingerprint(search->config);
            if (fingerprint != request.fingerprint) {
                // A worker from a different build / catalog would
                // contribute values from a different search; refuse
                // loudly rather than merge garbage.
                io.write_line(make_error(
                    "config fingerprint mismatch: worker derives " +
                    fingerprint_to_hex(fingerprint) +
                    ", coordinator expects " +
                    fingerprint_to_hex(request.fingerprint)));
                return 1;
            }
            sink.emplace(io, search->crash_after);
            if (!io.write_line(make_ready(fingerprint)))
                return 1;
            break;
        }
        case CoordRequest::Kind::Stage: {
            if (!search || !sink) {
                io.write_line(
                    make_error("stage request before configure"));
                return 1;
            }
            try {
                if (!run_stage(*search, request, *sink, io))
                    return 1;
            } catch (const std::exception &e) {
                io.write_line(make_error(
                    std::string("evaluation failed: ") + e.what()));
                return 1;
            }
            break;
        }
        case CoordRequest::Kind::Shutdown:
            io.write_line(make_bye());
            return 0;
        }
    }
    // EOF without shutdown: the coordinator finished (or died); both
    // are clean ends from the worker's perspective.
    return 0;
}

} // namespace elv::dist
