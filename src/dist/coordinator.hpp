/**
 * @file
 * Coordinator of the distributed sharded search.
 *
 * The candidate index range is partitioned into contiguous shards, one
 * per worker (local fork/exec'd elivagar_worker processes and/or
 * socket-attached peers). Workers evaluate CNR/RepCap with the same
 * per-candidate seeded streams the in-process search uses and stream
 * (index, score) records back; the coordinator merges them in
 * candidate-index order, so the final ranking is bit-identical to
 * core::elivagar_search at any shard count — proven by the test_dist
 * gauntlet.
 *
 * Two-phase scatter: CNR is global — the keep-fraction cutoff needs
 * every candidate's value — so phase A fans CNR out and barriers,
 * the coordinator applies the selection, and phase B fans RepCap out
 * over the survivors only.
 *
 * Crash tolerance: every record received is appended to a per-shard
 * checkpoint journal (core/checkpoint, config-fingerprinted) on the
 * coordinator side — a worker crash can never tear one — and the run
 * manifest records shard assignment/completion. A worker that dies,
 * stalls past the progress deadline, or returns garbage is killed and
 * its shard reissued to a fresh worker *minus the records already
 * journaled*, resuming mid-shard; after max_reissues the remainder is
 * evaluated in-process (allow_local_fallback) or the run fails with
 * the worker's diagnostics. Re-running with the same state_dir resumes
 * the whole run from the journal union, at any worker count.
 */
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/search.hpp"
#include "server/job.hpp"

namespace elv::dist {

/** Fan-out topology + failure policy of one distributed run. */
struct DistConfig
{
    /** Local worker processes to fork (>= 0). */
    int workers = 1;
    /** Remote peers ("host:port") attached before local workers. */
    std::vector<std::string> attach;
    /** Worker binary to fork; "" = default_worker_binary(). */
    std::string worker_binary;
    /** Simulator threads each worker runs with (>= 1). */
    int threads_per_worker = 1;
    /** Coordinator threads (generation, fallback; 0 = hardware). */
    int coordinator_threads = 0;
    /**
     * Directory for the shard journals + run manifest; "" disables
     * persistence (no crash resume across coordinator restarts;
     * mid-run reissue works regardless).
     */
    std::string state_dir;
    /** Worker spawn/configure handshake deadline (seconds). */
    double handshake_timeout_sec = 30.0;
    /**
     * Progress deadline: a worker producing no record for this long
     * is treated as hung and its shard reissued (seconds).
     */
    double record_timeout_sec = 300.0;
    /** Reissues per shard before falling back / failing. */
    int max_reissues = 2;
    /** Evaluate a shard's remainder in-process as the last resort. */
    bool allow_local_fallback = true;
    /**
     * Test hook forwarded to the first local worker's configure:
     * SIGKILL itself after emitting this many records (0 = off).
     * Consumed by the first spawn only — the reissued worker runs
     * clean, which is exactly the scenario the reissue tests prove.
     */
    int crash_after = 0;
    /** Cancellation + progress, with core/search semantics. */
    core::SearchHooks hooks;
};

/** Fan-out accounting of one distributed run. */
struct DistStats
{
    int workers_spawned = 0;
    int workers_attached = 0;
    int shards = 0;
    int shards_reissued = 0;
    /** Worker failures observed (spawn, handshake, stream, crash). */
    int worker_failures = 0;
    /** Records streamed back by workers (journal replays excluded). */
    std::uint64_t records_received = 0;
    /** Candidate stages replayed from the state_dir journals. */
    std::uint64_t records_resumed = 0;
    /** Candidate stages evaluated in-process as a last resort. */
    std::uint64_t fallback_records = 0;
};

/** Distributed search output: the merged result + fan-out stats. */
struct DistResult
{
    core::SearchResult result;
    DistStats stats;
};

/**
 * Contiguous partition of [0, count) into `shards` ranges (as
 * [begin, end) pairs) whose sizes differ by at most one; the first
 * count % shards ranges take the extra element. Empty ranges appear
 * when shards > count.
 */
std::vector<std::pair<int, int>> partition_indices(int count,
                                                   int shards);

/**
 * Run the distributed search for `spec` (same JobSpec -> config
 * mapping as the server and the CLI, so results are interchangeable
 * with a single-process run of the same spec). Throws UsageError on
 * unusable topology (no workers at all), CancelledError via the
 * hooks, and propagates evaluation failures when every fallback is
 * exhausted.
 */
DistResult distributed_search(const srv::JobSpec &spec,
                              const DistConfig &dist);

} // namespace elv::dist
