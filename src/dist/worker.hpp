/**
 * @file
 * Worker half of the distributed search: serves one coordinator
 * conversation (see wire.hpp) over any line transport. The worker is
 * deliberately stateless beyond its configured search: it regenerates
 * candidates from (spec, index), evaluates CNR/RepCap with the exact
 * per-candidate stage evaluators of core/search — same seeds, same
 * code — and streams hexfloat-encoded records back, which is what
 * makes a merged ranking bit-identical to a single-process run.
 *
 * Used by examples/elivagar_worker.cpp in both of its modes: stdio
 * pipes under a fork/exec coordinator, and one TCP connection at a
 * time under --serve.
 */
#pragma once

#include <functional>
#include <string>

namespace elv::dist {

/** Line transport the worker serves (pipes or an accepted socket). */
struct WorkerIo
{
    /** Blocking read of the next request line; false = EOF/peer gone. */
    std::function<bool(std::string &line)> read_line;
    /** Write one event line; false = peer gone. */
    std::function<bool(const std::string &line)> write_line;
};

/**
 * Serve one coordinator conversation to completion (shutdown request
 * or EOF). Returns the process exit code: 0 for a clean conversation,
 * 1 when the conversation had to be abandoned (protocol violation,
 * evaluation failure — reported to the coordinator as an error event
 * first whenever the transport still works).
 */
int serve_worker(const WorkerIo &io);

} // namespace elv::dist
