#include "parallel/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <exception>

#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace elv::par {

namespace {

/**
 * Set while the current thread is executing a pool task; a nested
 * parallel_for from inside a task would deadlock waiting for workers
 * that are busy running its caller, so nested calls degrade to inline
 * loops instead.
 */
thread_local bool in_pool_task = false;

} // namespace

/** Shared completion state of one parallel_for call. */
struct ThreadPool::Job
{
    std::atomic<std::size_t> remaining{0};
    /** Set on the first failure; later tasks skip their body. */
    std::atomic<bool> cancelled{false};
    std::mutex mutex;
    std::condition_variable done_cv;
    std::exception_ptr error; // guarded by mutex

    void
    finish_one()
    {
        if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lock(mutex);
            done_cv.notify_all();
        }
    }
};

int
ThreadPool::hardware_threads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads <= 0 ? hardware_threads() : num_threads)
{
    ELV_REQUIRE(num_threads_ >= 1, "thread pool needs a positive size");
    if (num_threads_ == 1)
        return; // inline serial pool: no queues, no workers
    queues_.reserve(static_cast<std::size_t>(num_threads_));
    for (int w = 0; w < num_threads_; ++w)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(static_cast<std::size_t>(num_threads_));
    for (int w = 0; w < num_threads_; ++w)
        workers_.emplace_back(
            [this, w] { worker_loop(static_cast<std::size_t>(w)); });
}

ThreadPool::~ThreadPool()
{
    if (workers_.empty())
        return;
    {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

bool
ThreadPool::try_get_task(std::size_t worker, std::function<void()> &task)
{
    // Own deque first (front: oldest of the round-robin share)...
    {
        WorkerQueue &own = *queues_[worker];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            task = std::move(own.tasks.front());
            own.tasks.pop_front();
            ELV_METRIC_GAUGE_ADD("pool.queue_depth", -1);
            return true;
        }
    }
    // ...then steal from the back of the next non-empty victim.
    const std::size_t n = queues_.size();
    for (std::size_t k = 1; k < n; ++k) {
        WorkerQueue &victim = *queues_[(worker + k) % n];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.tasks.empty()) {
            task = std::move(victim.tasks.back());
            victim.tasks.pop_back();
            ELV_METRIC_COUNT("pool.steals");
            ELV_METRIC_GAUGE_ADD("pool.queue_depth", -1);
            return true;
        }
    }
    return false;
}

void
ThreadPool::worker_loop(std::size_t worker)
{
    auto run_task = [](std::function<void()> &t) {
        ELV_TRACE_SCOPE("pool.task", "pool");
        ELV_METRIC_COUNT("pool.tasks");
        in_pool_task = true;
        t();
        in_pool_task = false;
    };
    for (;;) {
        std::function<void()> task;
        if (try_get_task(worker, task)) {
            run_task(task);
            continue;
        }
        std::unique_lock<std::mutex> lock(wake_mutex_);
        if (stop_)
            return;
        // Re-check under the wake lock: a submitter enqueues before
        // notifying, so a missed task means a pending notification.
        lock.unlock();
        if (try_get_task(worker, task)) {
            run_task(task);
            continue;
        }
        lock.lock();
        if (stop_)
            return;
        wake_cv_.wait_for(lock, std::chrono::milliseconds(50));
    }
}

void
ThreadPool::parallel_for(std::size_t n,
                         const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (num_threads_ == 1 || workers_.empty() || in_pool_task || n == 1) {
        // Serial reference path (and nested-call fallback): index
        // order, abort at the first exception like a plain loop.
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    auto job = std::make_shared<Job>();
    job->remaining.store(n, std::memory_order_relaxed);

    // One task per index, dealt round-robin across the worker deques;
    // the stealing protocol rebalances whatever this static split gets
    // wrong.
    for (std::size_t i = 0; i < n; ++i) {
        WorkerQueue &queue = *queues_[i % queues_.size()];
        std::lock_guard<std::mutex> lock(queue.mutex);
        queue.tasks.push_back([job, &body, i] {
            if (!job->cancelled.load(std::memory_order_acquire)) {
                try {
                    body(i);
                } catch (...) {
                    job->cancelled.store(true,
                                         std::memory_order_release);
                    std::lock_guard<std::mutex> error_lock(
                        job->mutex);
                    if (!job->error)
                        job->error = std::current_exception();
                }
            }
            job->finish_one();
        });
        ELV_METRIC_GAUGE_ADD("pool.queue_depth", 1);
    }
    wake_cv_.notify_all();

    // Help instead of blocking: the submitting thread drains tasks too,
    // so an N-thread pool brings N+1 runners to each parallel region.
    std::function<void()> task;
    while (job->remaining.load(std::memory_order_acquire) > 0) {
        if (try_get_task(0, task)) {
            ELV_TRACE_SCOPE("pool.task", "pool");
            ELV_METRIC_COUNT("pool.tasks");
            task();
            task = nullptr;
            continue;
        }
        std::unique_lock<std::mutex> lock(job->mutex);
        job->done_cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
            return job->remaining.load(std::memory_order_acquire) == 0;
        });
    }

    std::lock_guard<std::mutex> lock(job->mutex);
    if (job->error)
        std::rethrow_exception(job->error);
}

} // namespace elv::par
