/**
 * @file
 * Fixed-size work-stealing thread pool for the search pipeline.
 *
 * The pool owns N workers, each with its own task deque: a worker pops
 * work from the front of its own deque and, when that runs dry, steals
 * from the back of a victim's. `parallel_for` distributes one task per
 * index round-robin across the deques, blocks until every task has
 * finished, and rethrows the first exception raised by any task
 * (remaining queued tasks are cancelled, mimicking the serial loop's
 * abort-at-first-throw semantics; tasks already in flight complete).
 *
 * Determinism contract: the pool schedules work in an arbitrary order,
 * so callers must make every task order-independent (own RNG stream,
 * own executor state, writes confined to the task's own result slot)
 * and merge results in index order afterwards. A pool of size 1 runs
 * every task inline on the calling thread, in index order, with no
 * worker threads at all — this is the bit-identical serial reference
 * path that `elivagar_search(threads=1)` relies on.
 */
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace elv::par {

/** Fixed-size work-stealing thread pool. */
class ThreadPool
{
  public:
    /**
     * @param num_threads worker count; 1 = inline serial execution
     *        (no threads spawned), <= 0 = hardware_threads()
     */
    explicit ThreadPool(int num_threads = 0);

    /** Joins all workers; pending tasks are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker count (1 for the inline serial pool). */
    int size() const { return num_threads_; }

    /**
     * Run body(0..n-1) across the pool and wait for completion. The
     * first exception thrown by any body is rethrown here after every
     * in-flight task has drained; queued-but-unstarted tasks are
     * cancelled. Not reentrant: a body that calls parallel_for again
     * runs the nested loop inline.
     */
    void parallel_for(std::size_t n,
                      const std::function<void(std::size_t)> &body);

    /**
     * parallel_for that collects one result per index, in index order.
     * T must be default-constructible.
     */
    template <typename T, typename Fn>
    std::vector<T>
    parallel_map(std::size_t n, Fn &&fn)
    {
        std::vector<T> out(n);
        parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /** Usable hardware threads (>= 1 even when detection fails). */
    static int hardware_threads();

  private:
    struct Job;

    void worker_loop(std::size_t worker);
    /** Pop from own front, else steal from a victim's back. */
    bool try_get_task(std::size_t worker, std::function<void()> &task);

    /** One mutex-guarded deque per worker (stealable from the back). */
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    int num_threads_;
    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;
    std::mutex wake_mutex_;
    std::condition_variable wake_cv_;
    bool stop_ = false;
};

} // namespace elv::par
