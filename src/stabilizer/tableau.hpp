/**
 * @file
 * Aaronson–Gottesman stabilizer tableau simulator (the CHP algorithm).
 *
 * Clifford circuits are simulable in polynomial time (paper Sec. 5:
 * "Clifford circuits are a class of efficiently simulable quantum
 * circuits"), which is what makes Clifford-replica fidelity a cheap
 * predictor. This tableau supports all fixed Clifford gates in the IR,
 * direct Pauli injection (for Monte-Carlo noise), and single-qubit
 * computational-basis measurement.
 *
 * Representation: 2n generator rows (n destabilizers followed by n
 * stabilizers); row i stores X/Z bit vectors (packed 64-bit words) and a
 * sign bit.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"

namespace elv::stab {

/** Stabilizer state of an n-qubit register, initialized to |0...0>. */
class Tableau
{
  public:
    explicit Tableau(int num_qubits);

    int num_qubits() const { return num_qubits_; }

    /** Reset to |0...0>. */
    void reset();

    /** @name Clifford gates @{ */
    void h(int q);
    void s(int q);
    void sdg(int q);
    void cx(int control, int target);
    void cz(int a, int b);
    void swap_gate(int a, int b);
    /** @} */

    /** @name Pauli gates / error injection @{ */
    void x(int q);
    void y(int q);
    void z(int q);
    /** Apply the Pauli with X component `px` and Z component `pz`. */
    void pauli(int q, bool px, bool pz);
    /** @} */

    /**
     * Apply one fixed Clifford op from the IR (throws on non-Clifford
     * kinds).
     */
    void apply_op(const circ::Op &op);

    /** Apply a whole Clifford circuit (measurements not included). */
    void apply(const circ::Circuit &circuit);

    /**
     * Measure qubit q in the computational basis, collapsing the state.
     * Returns 0 or 1; random outcomes consume entropy from `rng`.
     */
    int measure(int q, elv::Rng &rng);

    /**
     * True iff measuring q would give a deterministic outcome (no
     * stabilizer generator anticommutes with Z_q).
     */
    bool is_deterministic(int q) const;

    /** @name Row accessors (for tests) @{ */
    bool x_bit(int row, int q) const;
    bool z_bit(int row, int q) const;
    bool sign_bit(int row) const;
    /** @} */

  private:
    int row_offset(int row) const;
    void rowsum(int h, int i);
    int g_exponent(int row_i, int row_h) const;

    int num_qubits_;
    int words_;
    /** xs_/zs_ hold 2n rows of `words_` packed words each. */
    std::vector<std::uint64_t> xs_;
    std::vector<std::uint64_t> zs_;
    /** Sign bits for the 2n rows. */
    std::vector<std::uint8_t> signs_;
    /** Scratch row used by deterministic measurement. */
    std::vector<std::uint64_t> scratch_x_;
    std::vector<std::uint64_t> scratch_z_;
};

/**
 * Hook invoked after every op of a noisy stabilizer shot; implementations
 * inject Pauli errors into the tableau.
 */
class PauliNoiseHook
{
  public:
    virtual ~PauliNoiseHook() = default;
    /** Called after `op` has been applied. */
    virtual void after_op(Tableau &tab, const circ::Op &op,
                          elv::Rng &rng) const = 0;
    /**
     * Probability that the readout of `qubit` flips (applied to outcome
     * bits after measurement). Default: no readout error.
     */
    virtual double
    readout_flip_probability(int /* qubit */) const
    {
        return 0.0;
    }
};

/**
 * Execute one shot of a Clifford circuit: apply all gates (optionally
 * with noise injection) and measure the circuit's measured qubits.
 * Returns the outcome index (bit i = readout of measured()[i]).
 */
std::size_t run_shot(const circ::Circuit &circuit, elv::Rng &rng,
                     const PauliNoiseHook *noise = nullptr);

/**
 * Empirical outcome distribution over the measured qubits from `shots`
 * independent executions.
 */
std::vector<double> sample_distribution(const circ::Circuit &circuit,
                                        int shots, elv::Rng &rng,
                                        const PauliNoiseHook *noise =
                                            nullptr);

} // namespace elv::stab
