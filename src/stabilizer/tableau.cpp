#include "stabilizer/tableau.hpp"

#include "common/logging.hpp"

namespace elv::stab {

namespace {

constexpr int kWordBits = 64;

inline int
word_of(int q)
{
    return q / kWordBits;
}

inline std::uint64_t
mask_of(int q)
{
    return std::uint64_t{1} << (q % kWordBits);
}

} // namespace

Tableau::Tableau(int num_qubits)
    : num_qubits_(num_qubits),
      words_((num_qubits + kWordBits - 1) / kWordBits)
{
    ELV_REQUIRE(num_qubits >= 1, "tableau needs at least one qubit");
    reset();
}

void
Tableau::reset()
{
    const std::size_t total =
        static_cast<std::size_t>(2 * num_qubits_) *
        static_cast<std::size_t>(words_);
    xs_.assign(total, 0);
    zs_.assign(total, 0);
    signs_.assign(static_cast<std::size_t>(2 * num_qubits_), 0);
    scratch_x_.assign(static_cast<std::size_t>(words_), 0);
    scratch_z_.assign(static_cast<std::size_t>(words_), 0);
    // Destabilizer i = X_i, stabilizer n+i = Z_i.
    for (int i = 0; i < num_qubits_; ++i) {
        xs_[static_cast<std::size_t>(row_offset(i) + word_of(i))] |=
            mask_of(i);
        zs_[static_cast<std::size_t>(row_offset(num_qubits_ + i) +
                                     word_of(i))] |= mask_of(i);
    }
}

int
Tableau::row_offset(int row) const
{
    return row * words_;
}

bool
Tableau::x_bit(int row, int q) const
{
    return xs_[static_cast<std::size_t>(row_offset(row) + word_of(q))] &
           mask_of(q);
}

bool
Tableau::z_bit(int row, int q) const
{
    return zs_[static_cast<std::size_t>(row_offset(row) + word_of(q))] &
           mask_of(q);
}

bool
Tableau::sign_bit(int row) const
{
    // Signs are exponents of i; a "negative" row has exponent 2.
    return (signs_[static_cast<std::size_t>(row)] & 2) != 0;
}

void
Tableau::h(int q)
{
    const int w = word_of(q);
    const std::uint64_t m = mask_of(q);
    for (int row = 0; row < 2 * num_qubits_; ++row) {
        const std::size_t idx =
            static_cast<std::size_t>(row_offset(row) + w);
        const bool xb = xs_[idx] & m;
        const bool zb = zs_[idx] & m;
        if (xb && zb)
            signs_[static_cast<std::size_t>(row)] =
                static_cast<std::uint8_t>(
                    (signs_[static_cast<std::size_t>(row)] + 2) & 3);
        if (xb != zb) {
            xs_[idx] ^= m;
            zs_[idx] ^= m;
        }
    }
}

void
Tableau::s(int q)
{
    const int w = word_of(q);
    const std::uint64_t m = mask_of(q);
    for (int row = 0; row < 2 * num_qubits_; ++row) {
        const std::size_t idx =
            static_cast<std::size_t>(row_offset(row) + w);
        const bool xb = xs_[idx] & m;
        const bool zb = zs_[idx] & m;
        if (xb && zb)
            signs_[static_cast<std::size_t>(row)] =
                static_cast<std::uint8_t>(
                    (signs_[static_cast<std::size_t>(row)] + 2) & 3);
        if (xb)
            zs_[idx] ^= m;
    }
}

void
Tableau::sdg(int q)
{
    // S^dagger = S^3.
    s(q);
    s(q);
    s(q);
}

void
Tableau::cx(int control, int target)
{
    ELV_REQUIRE(control != target, "CX on equal qubits");
    const int wc = word_of(control), wt = word_of(target);
    const std::uint64_t mc = mask_of(control), mt = mask_of(target);
    for (int row = 0; row < 2 * num_qubits_; ++row) {
        const std::size_t ic =
            static_cast<std::size_t>(row_offset(row) + wc);
        const std::size_t it =
            static_cast<std::size_t>(row_offset(row) + wt);
        const bool xc = xs_[ic] & mc;
        const bool zc = zs_[ic] & mc;
        const bool xt = xs_[it] & mt;
        const bool zt = zs_[it] & mt;
        if (xc && zt && (xt == zc))
            signs_[static_cast<std::size_t>(row)] =
                static_cast<std::uint8_t>(
                    (signs_[static_cast<std::size_t>(row)] + 2) & 3);
        if (xc)
            xs_[it] ^= mt;
        if (zt)
            zs_[ic] ^= mc;
    }
}

void
Tableau::cz(int a, int b)
{
    h(b);
    cx(a, b);
    h(b);
}

void
Tableau::swap_gate(int a, int b)
{
    cx(a, b);
    cx(b, a);
    cx(a, b);
}

void
Tableau::pauli(int q, bool px, bool pz)
{
    if (!px && !pz)
        return;
    const int w = word_of(q);
    const std::uint64_t m = mask_of(q);
    for (int row = 0; row < 2 * num_qubits_; ++row) {
        const bool xb =
            xs_[static_cast<std::size_t>(row_offset(row) + w)] & m;
        const bool zb =
            zs_[static_cast<std::size_t>(row_offset(row) + w)] & m;
        // The row sign flips iff the row's Pauli at q anticommutes with
        // the injected Pauli.
        bool anticommutes;
        if (px && pz)
            anticommutes = xb != zb; // Y vs {X, Z}
        else if (px)
            anticommutes = zb;       // X vs {Z, Y}
        else
            anticommutes = xb;       // Z vs {X, Y}
        if (anticommutes)
            signs_[static_cast<std::size_t>(row)] =
                static_cast<std::uint8_t>(
                    (signs_[static_cast<std::size_t>(row)] + 2) & 3);
    }
}

void
Tableau::x(int q)
{
    pauli(q, true, false);
}

void
Tableau::y(int q)
{
    pauli(q, true, true);
}

void
Tableau::z(int q)
{
    pauli(q, false, true);
}

void
Tableau::apply_op(const circ::Op &op)
{
    using circ::GateKind;
    switch (op.kind) {
      case GateKind::H: h(op.qubits[0]); break;
      case GateKind::S: s(op.qubits[0]); break;
      case GateKind::Sdg: sdg(op.qubits[0]); break;
      case GateKind::X: x(op.qubits[0]); break;
      case GateKind::Y: y(op.qubits[0]); break;
      case GateKind::Z: z(op.qubits[0]); break;
      case GateKind::CX: cx(op.qubits[0], op.qubits[1]); break;
      case GateKind::CZ: cz(op.qubits[0], op.qubits[1]); break;
      case GateKind::SWAP: swap_gate(op.qubits[0], op.qubits[1]); break;
      default:
        ELV_REQUIRE(false,
                    "non-Clifford op in stabilizer simulation: " +
                        circ::gate_name(op.kind));
    }
}

void
Tableau::apply(const circ::Circuit &circuit)
{
    ELV_REQUIRE(circuit.num_qubits() <= num_qubits_,
                "circuit larger than tableau");
    for (const circ::Op &op : circuit.ops())
        apply_op(op);
}

int
Tableau::g_exponent(int row_i, int row_h) const
{
    // Sum over qubits of the exponent to which i is raised when the
    // Pauli of row_i left-multiplies the Pauli of row_h.
    int acc = 0;
    for (int q = 0; q < num_qubits_; ++q) {
        const bool x1 = x_bit(row_i, q), z1 = z_bit(row_i, q);
        const bool x2 = x_bit(row_h, q), z2 = z_bit(row_h, q);
        if (!x1 && !z1)
            continue;
        if (x1 && z1)
            acc += (z2 ? 1 : 0) - (x2 ? 1 : 0);
        else if (x1)
            acc += z2 ? (x2 ? 1 : -1) : 0;
        else
            acc += x2 ? (z2 ? -1 : 1) : 0;
    }
    return acc;
}

void
Tableau::rowsum(int h, int i)
{
    // Signs are exponents of i (mod 4): destabilizer rows may carry
    // +-i phases transiently; only stabilizer rows must stay real.
    const int phase = signs_[static_cast<std::size_t>(h)] +
                      signs_[static_cast<std::size_t>(i)] +
                      g_exponent(i, h);
    signs_[static_cast<std::size_t>(h)] =
        static_cast<std::uint8_t>(((phase % 4) + 4) % 4);
    for (int w = 0; w < words_; ++w) {
        xs_[static_cast<std::size_t>(row_offset(h) + w)] ^=
            xs_[static_cast<std::size_t>(row_offset(i) + w)];
        zs_[static_cast<std::size_t>(row_offset(h) + w)] ^=
            zs_[static_cast<std::size_t>(row_offset(i) + w)];
    }
}

bool
Tableau::is_deterministic(int q) const
{
    for (int p = num_qubits_; p < 2 * num_qubits_; ++p)
        if (x_bit(p, q))
            return false;
    return true;
}

int
Tableau::measure(int q, elv::Rng &rng)
{
    ELV_REQUIRE(q >= 0 && q < num_qubits_, "measured qubit out of range");

    int p = -1;
    for (int row = num_qubits_; row < 2 * num_qubits_; ++row) {
        if (x_bit(row, q)) {
            p = row;
            break;
        }
    }

    if (p >= 0) {
        // Random outcome: Z_q anticommutes with stabilizer p.
        for (int row = 0; row < 2 * num_qubits_; ++row)
            if (row != p && x_bit(row, q))
                rowsum(row, p);
        // Destabilizer p - n becomes the old stabilizer row p.
        const int d = p - num_qubits_;
        for (int w = 0; w < words_; ++w) {
            xs_[static_cast<std::size_t>(row_offset(d) + w)] =
                xs_[static_cast<std::size_t>(row_offset(p) + w)];
            zs_[static_cast<std::size_t>(row_offset(d) + w)] =
                zs_[static_cast<std::size_t>(row_offset(p) + w)];
        }
        signs_[static_cast<std::size_t>(d)] =
            signs_[static_cast<std::size_t>(p)];
        // Row p becomes +- Z_q with a random sign (the outcome).
        for (int w = 0; w < words_; ++w) {
            xs_[static_cast<std::size_t>(row_offset(p) + w)] = 0;
            zs_[static_cast<std::size_t>(row_offset(p) + w)] = 0;
        }
        zs_[static_cast<std::size_t>(row_offset(p) + word_of(q))] |=
            mask_of(q);
        const int outcome = rng.bernoulli(0.5) ? 1 : 0;
        signs_[static_cast<std::size_t>(p)] =
            static_cast<std::uint8_t>(2 * outcome);
        return outcome;
    }

    // Deterministic outcome: accumulate into the scratch row.
    // Use an extra virtual row index 2n backed by scratch storage; we
    // emulate it by temporarily appending.
    std::fill(scratch_x_.begin(), scratch_x_.end(), 0);
    std::fill(scratch_z_.begin(), scratch_z_.end(), 0);
    int scratch_sign = 0;
    for (int i = 0; i < num_qubits_; ++i) {
        if (!x_bit(i, q))
            continue;
        // rowsum(scratch, i + n) with scratch as row h.
        const int stab = i + num_qubits_;
        int acc = 0;
        for (int qq = 0; qq < num_qubits_; ++qq) {
            const bool x1 = x_bit(stab, qq), z1 = z_bit(stab, qq);
            const bool x2 =
                scratch_x_[static_cast<std::size_t>(word_of(qq))] &
                mask_of(qq);
            const bool z2 =
                scratch_z_[static_cast<std::size_t>(word_of(qq))] &
                mask_of(qq);
            if (!x1 && !z1)
                continue;
            if (x1 && z1)
                acc += (z2 ? 1 : 0) - (x2 ? 1 : 0);
            else if (x1)
                acc += z2 ? (x2 ? 1 : -1) : 0;
            else
                acc += x2 ? (z2 ? -1 : 1) : 0;
        }
        const int phase = scratch_sign +
                          signs_[static_cast<std::size_t>(stab)] + acc;
        scratch_sign = ((phase % 4) + 4) % 4;
        for (int w = 0; w < words_; ++w) {
            scratch_x_[static_cast<std::size_t>(w)] ^=
                xs_[static_cast<std::size_t>(row_offset(stab) + w)];
            scratch_z_[static_cast<std::size_t>(w)] ^=
                zs_[static_cast<std::size_t>(row_offset(stab) + w)];
        }
    }
    ELV_REQUIRE(scratch_sign == 0 || scratch_sign == 2,
                "deterministic measurement produced imaginary phase");
    return scratch_sign / 2;
}

std::size_t
run_shot(const circ::Circuit &circuit, elv::Rng &rng,
         const PauliNoiseHook *noise)
{
    Tableau tab(circuit.num_qubits());
    for (const circ::Op &op : circuit.ops()) {
        tab.apply_op(op);
        if (noise)
            noise->after_op(tab, op, rng);
    }
    std::size_t outcome = 0;
    const auto &measured = circuit.measured();
    for (std::size_t b = 0; b < measured.size(); ++b) {
        int bit = tab.measure(measured[b], rng);
        if (noise &&
            rng.bernoulli(noise->readout_flip_probability(measured[b])))
            bit ^= 1;
        if (bit)
            outcome |= std::size_t{1} << b;
    }
    return outcome;
}

std::vector<double>
sample_distribution(const circ::Circuit &circuit, int shots, elv::Rng &rng,
                    const PauliNoiseHook *noise)
{
    ELV_REQUIRE(shots > 0, "need at least one shot");
    ELV_REQUIRE(circuit.measured().size() <= 20,
                "too many measured qubits");
    std::vector<double> dist(std::size_t{1} << circuit.measured().size(),
                             0.0);
    for (int s = 0; s < shots; ++s)
        dist[run_shot(circuit, rng, noise)] += 1.0;
    for (double &d : dist)
        d /= shots;
    return dist;
}

} // namespace elv::stab
