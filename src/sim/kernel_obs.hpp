/**
 * @file
 * Dispatch-tier observability for the vector kernels.
 *
 * `sim.kernel_dispatch.*` counts, per simulator run (state-vector,
 * fused, and noisy density-matrix runs), which kernel tier dispatch
 * selected — the --metrics answer to "did this host actually run the
 * AVX2/AVX-512 kernels?". Counted per run rather than per kernel call
 * to keep the hot loops free of extra atomic-flag loads.
 */
#pragma once

#include "obs/metrics.hpp"
#include "sim/cpu_features.hpp"

namespace elv::sim {

inline void
note_kernel_dispatch()
{
    switch (active_tier()) {
      case KernelTier::Baseline:
        ELV_METRIC_COUNT("sim.kernel_dispatch.baseline");
        break;
      case KernelTier::AVX2:
        ELV_METRIC_COUNT("sim.kernel_dispatch.avx2");
        break;
      case KernelTier::AVX512:
        ELV_METRIC_COUNT("sim.kernel_dispatch.avx512");
        break;
    }
}

} // namespace elv::sim
