/**
 * @file
 * Simulator precision policy.
 *
 * The search pipeline uses floating point in two very different roles:
 *
 *  - *Proxy scoring* (CNR, RepCap): the output is a ranking of
 *    candidates, consumed through comparisons with gaps around 1e-2.
 *    `complex<float>` keeps ~7 significant digits — orders of magnitude
 *    more than the ranking needs — and halves the memory traffic of
 *    every kernel pass.
 *  - *Training and gradients*: Adam accumulates thousands of small
 *    updates and parameter-shift differences cancel to ~1e-8; single
 *    precision silently corrupts convergence. These paths always run in
 *    `complex<double>` regardless of any configured policy, and elvlint
 *    warns ("precision-misuse") when a training path is configured with
 *    Float32Proxy.
 *
 * The policy is negotiated per call-site: CnrOptions / RepCapOptions /
 * the DensityExecutor carry a Precision, and the simulators instantiate
 * their kernels for `complex<float>` when Float32Proxy is requested.
 */
#pragma once

#include <optional>
#include <string>

namespace elv::sim {

/** Which amplitude type the simulation kernels run in. */
enum class Precision {
    /** Full `complex<double>` (default; always safe). */
    Float64,
    /**
     * `complex<float>` for ranking-only proxy evaluation. Scores keep
     * their ordering (asserted by the ranking-equivalence tests) but
     * individual values differ from Float64 at the ~1e-6 level.
     */
    Float32Proxy,
};

/** Wire/CLI name of a precision ("f64" / "f32"). */
inline const char *
precision_name(Precision precision)
{
    return precision == Precision::Float32Proxy ? "f32" : "f64";
}

/** Inverse of precision_name; nullopt for unknown names. */
inline std::optional<Precision>
precision_from_name(const std::string &name)
{
    if (name == "f64" || name == "float64" || name == "double")
        return Precision::Float64;
    if (name == "f32" || name == "float32" || name == "float")
        return Precision::Float32Proxy;
    return std::nullopt;
}

} // namespace elv::sim
