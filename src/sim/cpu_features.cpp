#include "sim/cpu_features.hpp"

#include <atomic>
#include <cstdlib>

#include "common/logging.hpp"

namespace elv::sim {

namespace {

KernelTier
detect_best()
{
#if defined(__x86_64__) || defined(__i386__)
    if (__builtin_cpu_supports("avx512f"))
        return KernelTier::AVX512;
    if (__builtin_cpu_supports("avx2"))
        return KernelTier::AVX2;
#endif
    return KernelTier::Baseline;
}

KernelTier
clamp_to_supported(KernelTier tier, const char *origin)
{
    const KernelTier best = best_supported_tier();
    if (static_cast<int>(tier) <= static_cast<int>(best))
        return tier;
    elv::warn(std::string(origin) + " requests kernel tier '" +
              kernel_tier_name(tier) + "' but this CPU only supports '" +
              kernel_tier_name(best) + "'; clamping");
    return best;
}

/** ELV_FORCE_KERNEL parsed once; -1 = unset or unrecognized. */
int
env_override()
{
    static const int value = [] {
        const char *env = std::getenv("ELV_FORCE_KERNEL");
        if (!env || !*env)
            return -1;
        const auto tier = kernel_tier_from_name(env);
        if (!tier) {
            elv::warn(std::string("ELV_FORCE_KERNEL='") + env +
                      "' not recognized (baseline/avx2/avx512); "
                      "using CPU detection");
            return -1;
        }
        return static_cast<int>(
            clamp_to_supported(*tier, "ELV_FORCE_KERNEL"));
    }();
    return value;
}

/** Programmatic force; -1 = none. Relaxed: tier switches are whole-
 *  process test/bench phases, never racing a kernel for correctness
 *  (every tier computes identical results anyway). */
std::atomic<int> forced{-1};

} // namespace

const char *
kernel_tier_name(KernelTier tier)
{
    switch (tier) {
      case KernelTier::Baseline: return "baseline";
      case KernelTier::AVX2: return "avx2";
      case KernelTier::AVX512: return "avx512";
    }
    return "unknown";
}

std::optional<KernelTier>
kernel_tier_from_name(const std::string &name)
{
    if (name == "baseline" || name == "scalar")
        return KernelTier::Baseline;
    if (name == "avx2")
        return KernelTier::AVX2;
    if (name == "avx512" || name == "avx-512")
        return KernelTier::AVX512;
    return std::nullopt;
}

KernelTier
best_supported_tier()
{
    static const KernelTier best = detect_best();
    return best;
}

KernelTier
active_tier()
{
    const int f = forced.load(std::memory_order_relaxed);
    if (f >= 0)
        return static_cast<KernelTier>(f);
    const int env = env_override();
    if (env >= 0)
        return static_cast<KernelTier>(env);
    return best_supported_tier();
}

void
set_forced_tier(KernelTier tier)
{
    forced.store(
        static_cast<int>(clamp_to_supported(tier, "set_forced_tier")),
        std::memory_order_relaxed);
}

void
clear_forced_tier()
{
    forced.store(-1, std::memory_order_relaxed);
}

} // namespace elv::sim
