/**
 * @file
 * Dense state-vector simulator.
 *
 * Qubit q corresponds to bit q of the basis-state index (qubit 0 is the
 * least significant bit). Used for all noiseless evaluation: training,
 * RepCap, ideal Clifford-replica outputs and ground-truth checks.
 *
 * The simulator is templated on the amplitude component type:
 * `StateVector` (= BasicStateVector<double>) is the default used
 * everywhere correctness-sensitive; `StateVectorF` backs the
 * Float32Proxy precision policy (sim/precision.hpp) for ranking-only
 * proxy scoring. Both share one implementation; the public matrix/gate
 * interface stays in double (Mat2/Mat4/Mat16) and converts at the
 * kernel boundary, while reductions (norms, probabilities,
 * expectations) always accumulate and return double.
 *
 * The inner loops dispatch to the vectorized kernels in
 * sim/vec_complex.hpp; all kernel tiers are bit-identical, so results
 * never depend on the host CPU or on ELV_FORCE_KERNEL.
 */
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/aligned.hpp"
#include "common/rng.hpp"
#include "sim/unitaries.hpp"

namespace elv::sim {

/** Aligned amplitude storage (64-byte base for the vector kernels). */
template <typename T>
using AmpVector =
    std::vector<std::complex<T>, AlignedAllocator<std::complex<T>>>;

/** A pure quantum state over a fixed qubit register. */
template <typename T>
class BasicStateVector
{
  public:
    using AmpT = std::complex<T>;

    /** Construct in |0...0>. Practical limit is ~24 qubits. */
    explicit BasicStateVector(int num_qubits);

    /** Reset to |0...0>. */
    void reset();

    int num_qubits() const { return num_qubits_; }
    std::size_t dim() const { return amps_.size(); }

    /** Raw amplitude access (basis-state index). */
    AmpT amp(std::size_t index) const { return amps_[index]; }
    AmpVector<T> &amps() { return amps_; }
    const AmpVector<T> &amps() const { return amps_; }

    /** Apply a 1-qubit unitary to qubit q. */
    void apply_1q(const Mat2 &u, int q);

    /** Apply a 2-qubit unitary (basis |q0 q1>, see unitaries.hpp). */
    void apply_2q(const Mat4 &u, int q0, int q1);

    /**
     * Apply a 4-qubit matrix in the basis |q0 q1 q2 q3>, local index
     * = 8*bit(q0) + 4*bit(q1) + 2*bit(q2) + bit(q3). Used to apply
     * two-qubit channel superoperators to the (row, column) qubit
     * pairs of a vectorized density matrix in one pass.
     */
    void apply_4q(const Mat16 &u, int q0, int q1, int q2, int q3);

    /** @name Specialized gate kernels @{
     *
     * Permutation/phase/diagonal fast paths used by apply_op in place
     * of the generic dense kernels: CX/CZ/SWAP touch no matrix at all
     * and diagonal 1-qubit gates (RZ/S/Sdg/Z) cost two multiplies per
     * amplitude pair. All match the generic matmul path bit-for-bit on
     * finite states.
     */

    /** CX with control `control`, target `target`. */
    void apply_cx(int control, int target);

    /** CZ on the pair (symmetric). */
    void apply_cz(int q0, int q1);

    /** SWAP of two qubits. */
    void apply_swap(int q0, int q1);

    /** Diagonal 1-qubit gate diag(d0, d1) on qubit q. */
    void apply_diag_1q(std::complex<double> d0, std::complex<double> d1,
                       int q);

    /**
     * Route apply_op through the specialized kernels (default on).
     * Off = always use the generic dense matmul kernels; kept for the
     * kernel-equivalence tests and the bench comparison.
     */
    void use_specialized_kernels(bool on) { specialized_ = on; }

    /** @} */

    /** Apply one IR operation with resolved parameters. */
    void apply_op(const circ::Op &op, const std::vector<double> &params,
                  const std::vector<double> &x);

    /**
     * Run a circuit from |0...0>: resets, then applies every op.
     * `params` are the variational parameters, `x` the input sample.
     */
    void run(const circ::Circuit &circuit,
             const std::vector<double> &params = {},
             const std::vector<double> &x = {});

    /**
     * Set the state to the amplitude embedding of `x`: the vector is
     * zero-padded to the state dimension and normalized (an all-zero
     * input maps to |0...0>).
     */
    void set_amplitude_embedding(const std::vector<double> &x);

    /** <Z_q> expectation. */
    double expect_z(int q) const;

    /** Squared norm (should stay 1 under unitary evolution). */
    double norm() const;

    /** |<other|this>|^2 overlap with another state of equal size. */
    double overlap(const BasicStateVector &other) const;

    /**
     * Marginal outcome distribution over `qubits`: entry k is the
     * probability that qubits[i] reads bit i of k (LSB first).
     */
    std::vector<double> probabilities(const std::vector<int> &qubits) const;

    /** Full 2^n outcome distribution. */
    std::vector<double> probabilities_full() const;

    /** Sample one outcome over `qubits` from the Born distribution. */
    std::size_t sample(const std::vector<int> &qubits, elv::Rng &rng) const;

    /**
     * Sample one outcome from a precomputed distribution. Shot loops
     * must compute probabilities() once and call this per shot; the
     * qubit-list overload recomputes the full marginal every call,
     * which is quadratic in shots x dim.
     */
    static std::size_t sample_from(const std::vector<double> &probs,
                                   elv::Rng &rng);

  private:
    int num_qubits_;
    AmpVector<T> amps_;
    bool specialized_ = true;
};

extern template class BasicStateVector<double>;
extern template class BasicStateVector<float>;

/** The default full-precision simulator. */
using StateVector = BasicStateVector<double>;

/** The Float32Proxy simulator (ranking-only proxy evaluation). */
using StateVectorF = BasicStateVector<float>;

} // namespace elv::sim
