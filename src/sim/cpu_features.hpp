/**
 * @file
 * Runtime CPU-feature detection and kernel-tier dispatch.
 *
 * The state-vector kernels ship in three tiers — the scalar baseline,
 * AVX2, and AVX-512 — compiled with per-function target attributes so
 * one binary carries all of them. The active tier is chosen once per
 * process from CPUID (`best_supported_tier`), and can be overridden:
 *
 *  - `ELV_FORCE_KERNEL=baseline|avx2|avx512` (environment, read once):
 *    CI uses this to exercise every tier on any runner. Forcing a tier
 *    the CPU lacks logs a warning and clamps to the best supported one,
 *    so the override is always safe to set.
 *  - set_forced_tier() / clear_forced_tier() (programmatic, same
 *    clamping): used by the benches and the tier-equivalence tests to
 *    switch tiers mid-process.
 *
 * Every tier computes bit-identical results (see vec_complex.hpp), so
 * switching tiers — across processes, machines, or mid-run — never
 * perturbs scores, rankings, or journal resume.
 */
#pragma once

#include <optional>
#include <string>

namespace elv::sim {

/** Vector-kernel tiers, in ascending capability order. */
enum class KernelTier {
    Baseline = 0, ///< scalar loops (always available, always correct)
    AVX2 = 1,     ///< 256-bit kernels (x86 with AVX2)
    AVX512 = 2,   ///< 512-bit kernels (x86 with AVX-512F)
};

/** Printable tier name ("baseline" / "avx2" / "avx512"). */
const char *kernel_tier_name(KernelTier tier);

/** Inverse of kernel_tier_name; nullopt for unknown names. */
std::optional<KernelTier> kernel_tier_from_name(const std::string &name);

/** Best tier this CPU supports (CPUID, detected once). */
KernelTier best_supported_tier();

/**
 * The tier the kernels dispatch on: a programmatic force if set, else
 * the ELV_FORCE_KERNEL override if present, else best_supported_tier().
 * Unsupported requests are clamped with a warning.
 */
KernelTier active_tier();

/** Force a tier process-wide (clamped to best_supported_tier()). */
void set_forced_tier(KernelTier tier);

/** Drop the programmatic force (env override, if any, re-applies). */
void clear_forced_tier();

} // namespace elv::sim
