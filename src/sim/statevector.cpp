#include "sim/statevector.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace elv::sim {

namespace {

/** Insert a zero bit at the position of `mask`: bits >= mask shift up. */
inline std::size_t
insert_zero_bit(std::size_t v, std::size_t mask)
{
    return ((v & ~(mask - 1)) << 1) | (v & (mask - 1));
}

} // namespace

StateVector::StateVector(int num_qubits) : num_qubits_(num_qubits)
{
    ELV_REQUIRE(num_qubits >= 1 && num_qubits <= 26,
                "state vector limited to 1..26 qubits");
    amps_.assign(std::size_t{1} << num_qubits, Amp(0));
    amps_[0] = Amp(1);
}

void
StateVector::reset()
{
    std::fill(amps_.begin(), amps_.end(), Amp(0));
    amps_[0] = Amp(1);
}

void
StateVector::apply_1q(const Mat2 &u, int q)
{
    ELV_REQUIRE(q >= 0 && q < num_qubits_, "qubit out of range");
    const std::size_t stride = std::size_t{1} << q;
    const std::size_t dim = amps_.size();
    for (std::size_t base = 0; base < dim; base += 2 * stride) {
        for (std::size_t off = 0; off < stride; ++off) {
            const std::size_t i0 = base + off;
            const std::size_t i1 = i0 + stride;
            const Amp a0 = amps_[i0];
            const Amp a1 = amps_[i1];
            amps_[i0] = u[0][0] * a0 + u[0][1] * a1;
            amps_[i1] = u[1][0] * a0 + u[1][1] * a1;
        }
    }
}

void
StateVector::apply_2q(const Mat4 &u, int q0, int q1)
{
    ELV_REQUIRE(q0 >= 0 && q0 < num_qubits_ && q1 >= 0 &&
                    q1 < num_qubits_ && q0 != q1,
                "bad 2-qubit operands");
    const std::size_t m0 = std::size_t{1} << q0;
    const std::size_t m1 = std::size_t{1} << q1;
    const std::size_t lo = m0 < m1 ? m0 : m1;
    const std::size_t hi = m0 < m1 ? m1 : m0;
    // Gather the dim/4 index groups directly instead of scanning all
    // dim indices and skipping the 3/4 with a q0/q1 bit set.
    const std::size_t groups = amps_.size() >> 2;
    for (std::size_t g = 0; g < groups; ++g) {
        const std::size_t i =
            insert_zero_bit(insert_zero_bit(g, lo), hi);
        // Local basis |q0 q1>: index = 2 * bit(q0) + bit(q1).
        const std::size_t idx[4] = {i, i | m1, i | m0, i | m0 | m1};
        Amp in[4];
        for (std::size_t k = 0; k < 4; ++k)
            in[k] = amps_[idx[k]];
        for (std::size_t r = 0; r < 4; ++r) {
            Amp acc(0);
            for (std::size_t c = 0; c < 4; ++c)
                acc += u[r][c] * in[c];
            amps_[idx[r]] = acc;
        }
    }
}

void
StateVector::apply_4q(const Mat16 &u, int q0, int q1, int q2, int q3)
{
    const int qs[4] = {q0, q1, q2, q3};
    for (int a = 0; a < 4; ++a) {
        ELV_REQUIRE(qs[a] >= 0 && qs[a] < num_qubits_,
                    "qubit out of range");
        for (int b = a + 1; b < 4; ++b)
            ELV_REQUIRE(qs[a] != qs[b], "duplicate 4-qubit operand");
    }
    const std::size_t m0 = std::size_t{1} << q0;
    const std::size_t m1 = std::size_t{1} << q1;
    const std::size_t m2 = std::size_t{1} << q2;
    const std::size_t m3 = std::size_t{1} << q3;
    // Gather needs the insertion masks in ascending order; the local
    // basis order stays |q0 q1 q2 q3> via the offset table below.
    std::size_t sorted[4] = {m0, m1, m2, m3};
    for (int a = 0; a < 4; ++a)
        for (int b = a + 1; b < 4; ++b)
            if (sorted[b] < sorted[a])
                std::swap(sorted[a], sorted[b]);
    std::size_t offset[16];
    for (int k = 0; k < 16; ++k)
        offset[k] = ((k & 8) ? m0 : 0) | ((k & 4) ? m1 : 0) |
                    ((k & 2) ? m2 : 0) | ((k & 1) ? m3 : 0);
    const std::size_t groups = amps_.size() >> 4;
    for (std::size_t g = 0; g < groups; ++g) {
        std::size_t i = g;
        for (int a = 0; a < 4; ++a)
            i = insert_zero_bit(i, sorted[a]);
        Amp in[16];
        for (std::size_t k = 0; k < 16; ++k)
            in[k] = amps_[i | offset[k]];
        for (std::size_t r = 0; r < 16; ++r) {
            Amp acc(0);
            for (std::size_t c = 0; c < 16; ++c)
                acc += u[r][c] * in[c];
            amps_[i | offset[r]] = acc;
        }
    }
}

void
StateVector::apply_cx(int control, int target)
{
    ELV_REQUIRE(control >= 0 && control < num_qubits_ && target >= 0 &&
                    target < num_qubits_ && control != target,
                "bad 2-qubit operands");
    const std::size_t mc = std::size_t{1} << control;
    const std::size_t mt = std::size_t{1} << target;
    const std::size_t lo = mc < mt ? mc : mt;
    const std::size_t hi = mc < mt ? mt : mc;
    const std::size_t groups = amps_.size() >> 2;
    for (std::size_t g = 0; g < groups; ++g) {
        const std::size_t i =
            insert_zero_bit(insert_zero_bit(g, lo), hi);
        std::swap(amps_[i | mc], amps_[i | mc | mt]);
    }
}

void
StateVector::apply_cz(int q0, int q1)
{
    ELV_REQUIRE(q0 >= 0 && q0 < num_qubits_ && q1 >= 0 &&
                    q1 < num_qubits_ && q0 != q1,
                "bad 2-qubit operands");
    const std::size_t m0 = std::size_t{1} << q0;
    const std::size_t m1 = std::size_t{1} << q1;
    const std::size_t lo = m0 < m1 ? m0 : m1;
    const std::size_t hi = m0 < m1 ? m1 : m0;
    const std::size_t groups = amps_.size() >> 2;
    for (std::size_t g = 0; g < groups; ++g) {
        const std::size_t i =
            insert_zero_bit(insert_zero_bit(g, lo), hi) | m0 | m1;
        amps_[i] = -amps_[i];
    }
}

void
StateVector::apply_swap(int q0, int q1)
{
    ELV_REQUIRE(q0 >= 0 && q0 < num_qubits_ && q1 >= 0 &&
                    q1 < num_qubits_ && q0 != q1,
                "bad 2-qubit operands");
    const std::size_t m0 = std::size_t{1} << q0;
    const std::size_t m1 = std::size_t{1} << q1;
    const std::size_t lo = m0 < m1 ? m0 : m1;
    const std::size_t hi = m0 < m1 ? m1 : m0;
    const std::size_t groups = amps_.size() >> 2;
    for (std::size_t g = 0; g < groups; ++g) {
        const std::size_t i =
            insert_zero_bit(insert_zero_bit(g, lo), hi);
        std::swap(amps_[i | m0], amps_[i | m1]);
    }
}

void
StateVector::apply_diag_1q(Amp d0, Amp d1, int q)
{
    ELV_REQUIRE(q >= 0 && q < num_qubits_, "qubit out of range");
    const std::size_t stride = std::size_t{1} << q;
    const std::size_t dim = amps_.size();
    for (std::size_t base = 0; base < dim; base += 2 * stride) {
        for (std::size_t off = 0; off < stride; ++off) {
            amps_[base + off] *= d0;
            amps_[base + off + stride] *= d1;
        }
    }
}

void
StateVector::apply_op(const circ::Op &op, const std::vector<double> &params,
                      const std::vector<double> &x)
{
    if (op.kind == circ::GateKind::AmpEmbed) {
        set_amplitude_embedding(x);
        return;
    }
    // Kernel-mix counters (the --metrics "which dispatch path ran"
    // tally). Each site is a relaxed flag load when metrics are off and
    // compiles away entirely under ELV_OBS_DISABLED, so the dispatch
    // stays kernel-bound either way.
    if (specialized_) {
        // Permutation/phase gates: no matrix, no multiplies.
        switch (op.kind) {
          case circ::GateKind::CX:
            ELV_METRIC_COUNT("sim.kernel.cx");
            apply_cx(op.qubits[0], op.qubits[1]);
            return;
          case circ::GateKind::CZ:
            ELV_METRIC_COUNT("sim.kernel.cz");
            apply_cz(op.qubits[0], op.qubits[1]);
            return;
          case circ::GateKind::SWAP:
            ELV_METRIC_COUNT("sim.kernel.swap");
            apply_swap(op.qubits[0], op.qubits[1]);
            return;
          default:
            break;
        }
        if (circ::gate_is_diagonal_1q(op.kind)) {
            // Take the diagonal from the shared matrix factory so the
            // fast path can never drift from the generic one.
            ELV_METRIC_COUNT("sim.kernel.diag1q");
            const auto angles = circ::op_angles(op, params, x);
            const Mat2 u = gate_matrix_1q(op.kind, angles);
            apply_diag_1q(u[0][0], u[1][1], op.qubits[0]);
            return;
        }
    }
    const auto angles = circ::op_angles(op, params, x);
    if (op.num_qubits() == 1) {
        ELV_METRIC_COUNT("sim.kernel.dense1q");
        apply_1q(gate_matrix_1q(op.kind, angles), op.qubits[0]);
    } else {
        ELV_METRIC_COUNT("sim.kernel.dense2q");
        apply_2q(gate_matrix_2q(op.kind, angles), op.qubits[0],
                 op.qubits[1]);
    }
}

void
StateVector::run(const circ::Circuit &circuit,
                 const std::vector<double> &params,
                 const std::vector<double> &x)
{
    ELV_REQUIRE(circuit.num_qubits() == num_qubits_,
                "circuit/state qubit count mismatch");
    // Coarse-granularity span: one per circuit run, never per gate.
    ELV_TRACE_SCOPE("sv.run", "sim");
    ELV_METRIC_COUNT("sim.sv.runs");
    reset();
    for (const circ::Op &op : circuit.ops())
        apply_op(op, params, x);
}

void
StateVector::set_amplitude_embedding(const std::vector<double> &x)
{
    ELV_REQUIRE(x.size() <= amps_.size(),
                "amplitude embedding input larger than state");
    double ss = 0.0;
    for (double v : x)
        ss += v * v;
    std::fill(amps_.begin(), amps_.end(), Amp(0));
    if (ss <= 0.0) {
        amps_[0] = Amp(1);
        return;
    }
    const double inv = 1.0 / std::sqrt(ss);
    for (std::size_t i = 0; i < x.size(); ++i)
        amps_[i] = Amp(x[i] * inv);
}

double
StateVector::expect_z(int q) const
{
    ELV_REQUIRE(q >= 0 && q < num_qubits_, "qubit out of range");
    const std::size_t mask = std::size_t{1} << q;
    double e = 0.0;
    for (std::size_t i = 0; i < amps_.size(); ++i) {
        const double p = std::norm(amps_[i]);
        e += (i & mask) ? -p : p;
    }
    return e;
}

double
StateVector::norm() const
{
    double s = 0.0;
    for (const Amp &a : amps_)
        s += std::norm(a);
    return s;
}

double
StateVector::overlap(const StateVector &other) const
{
    ELV_REQUIRE(other.amps_.size() == amps_.size(),
                "overlap dimension mismatch");
    Amp acc(0);
    for (std::size_t i = 0; i < amps_.size(); ++i)
        acc += std::conj(other.amps_[i]) * amps_[i];
    return std::norm(acc);
}

std::vector<double>
StateVector::probabilities(const std::vector<int> &qubits) const
{
    ELV_REQUIRE(qubits.size() <= 20, "too many measured qubits");
    std::vector<double> probs(std::size_t{1} << qubits.size(), 0.0);
    for (std::size_t i = 0; i < amps_.size(); ++i) {
        const double p = std::norm(amps_[i]);
        if (p == 0.0)
            continue;
        std::size_t outcome = 0;
        for (std::size_t b = 0; b < qubits.size(); ++b)
            if (i & (std::size_t{1} << qubits[b]))
                outcome |= std::size_t{1} << b;
        probs[outcome] += p;
    }
    return probs;
}

std::vector<double>
StateVector::probabilities_full() const
{
    std::vector<double> probs(amps_.size());
    for (std::size_t i = 0; i < amps_.size(); ++i)
        probs[i] = std::norm(amps_[i]);
    return probs;
}

std::size_t
StateVector::sample(const std::vector<int> &qubits, elv::Rng &rng) const
{
    return sample_from(probabilities(qubits), rng);
}

std::size_t
StateVector::sample_from(const std::vector<double> &probs, elv::Rng &rng)
{
    ELV_REQUIRE(!probs.empty(), "cannot sample an empty distribution");
    ELV_METRIC_COUNT("sim.shots");
    double x = rng.uniform();
    for (std::size_t k = 0; k < probs.size(); ++k) {
        x -= probs[k];
        if (x < 0.0)
            return k;
    }
    return probs.size() - 1;
}

} // namespace elv::sim
