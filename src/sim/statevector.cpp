#include "sim/statevector.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/kernel_obs.hpp"
#include "sim/vec_complex.hpp"

namespace elv::sim {

namespace {

using vec::insert_zero_bit;

/** Flatten a double matrix row-major into the amplitude type. The
 *  double instantiation aliases the matrix storage directly (Mat rows
 *  are contiguous); the float one converts into `buf`. */
template <typename T, std::size_t N, typename Mat>
inline const std::complex<T> *
flat_matrix(const Mat &u, std::complex<T> *buf)
{
    if constexpr (std::is_same_v<T, double>) {
        (void)buf;
        return u[0].data();
    } else {
        for (std::size_t r = 0; r < N; ++r)
            for (std::size_t c = 0; c < N; ++c)
                buf[N * r + c] = std::complex<T>(u[r][c]);
        return buf;
    }
}

} // namespace

template <typename T>
BasicStateVector<T>::BasicStateVector(int num_qubits)
    : num_qubits_(num_qubits)
{
    ELV_REQUIRE(num_qubits >= 1 && num_qubits <= 26,
                "state vector limited to 1..26 qubits");
    amps_.assign(std::size_t{1} << num_qubits, AmpT(0));
    amps_[0] = AmpT(1);
}

template <typename T>
void
BasicStateVector<T>::reset()
{
    std::fill(amps_.begin(), amps_.end(), AmpT(0));
    amps_[0] = AmpT(1);
}

template <typename T>
void
BasicStateVector<T>::apply_1q(const Mat2 &u, int q)
{
    ELV_REQUIRE(q >= 0 && q < num_qubits_, "qubit out of range");
    const std::size_t stride = std::size_t{1} << q;
    AmpT buf[4];
    vec::apply_1q(amps_.data(), amps_.size(), stride,
                  flat_matrix<T, 2>(u, buf));
}

template <typename T>
void
BasicStateVector<T>::apply_2q(const Mat4 &u, int q0, int q1)
{
    ELV_REQUIRE(q0 >= 0 && q0 < num_qubits_ && q1 >= 0 &&
                    q1 < num_qubits_ && q0 != q1,
                "bad 2-qubit operands");
    const std::size_t m0 = std::size_t{1} << q0;
    const std::size_t m1 = std::size_t{1} << q1;
    AmpT buf[16];
    vec::apply_2q(amps_.data(), amps_.size(), m0, m1,
                  flat_matrix<T, 4>(u, buf));
}

template <typename T>
void
BasicStateVector<T>::apply_4q(const Mat16 &u, int q0, int q1, int q2,
                              int q3)
{
    const int qs[4] = {q0, q1, q2, q3};
    for (int a = 0; a < 4; ++a) {
        ELV_REQUIRE(qs[a] >= 0 && qs[a] < num_qubits_,
                    "qubit out of range");
        for (int b = a + 1; b < 4; ++b)
            ELV_REQUIRE(qs[a] != qs[b], "duplicate 4-qubit operand");
    }
    const std::size_t m0 = std::size_t{1} << q0;
    const std::size_t m1 = std::size_t{1} << q1;
    const std::size_t m2 = std::size_t{1} << q2;
    const std::size_t m3 = std::size_t{1} << q3;
    AmpT buf[256];
    vec::apply_4q(amps_.data(), amps_.size(), m0, m1, m2, m3,
                  flat_matrix<T, 16>(u, buf));
}

template <typename T>
void
BasicStateVector<T>::apply_cx(int control, int target)
{
    ELV_REQUIRE(control >= 0 && control < num_qubits_ && target >= 0 &&
                    target < num_qubits_ && control != target,
                "bad 2-qubit operands");
    const std::size_t mc = std::size_t{1} << control;
    const std::size_t mt = std::size_t{1} << target;
    const std::size_t lo = mc < mt ? mc : mt;
    const std::size_t hi = mc < mt ? mt : mc;
    const std::size_t groups = amps_.size() >> 2;
    for (std::size_t g = 0; g < groups; ++g) {
        const std::size_t i =
            insert_zero_bit(insert_zero_bit(g, lo), hi);
        std::swap(amps_[i | mc], amps_[i | mc | mt]);
    }
}

template <typename T>
void
BasicStateVector<T>::apply_cz(int q0, int q1)
{
    ELV_REQUIRE(q0 >= 0 && q0 < num_qubits_ && q1 >= 0 &&
                    q1 < num_qubits_ && q0 != q1,
                "bad 2-qubit operands");
    const std::size_t m0 = std::size_t{1} << q0;
    const std::size_t m1 = std::size_t{1} << q1;
    const std::size_t lo = m0 < m1 ? m0 : m1;
    const std::size_t hi = m0 < m1 ? m1 : m0;
    const std::size_t groups = amps_.size() >> 2;
    for (std::size_t g = 0; g < groups; ++g) {
        const std::size_t i =
            insert_zero_bit(insert_zero_bit(g, lo), hi) | m0 | m1;
        amps_[i] = -amps_[i];
    }
}

template <typename T>
void
BasicStateVector<T>::apply_swap(int q0, int q1)
{
    ELV_REQUIRE(q0 >= 0 && q0 < num_qubits_ && q1 >= 0 &&
                    q1 < num_qubits_ && q0 != q1,
                "bad 2-qubit operands");
    const std::size_t m0 = std::size_t{1} << q0;
    const std::size_t m1 = std::size_t{1} << q1;
    const std::size_t lo = m0 < m1 ? m0 : m1;
    const std::size_t hi = m0 < m1 ? m1 : m0;
    const std::size_t groups = amps_.size() >> 2;
    for (std::size_t g = 0; g < groups; ++g) {
        const std::size_t i =
            insert_zero_bit(insert_zero_bit(g, lo), hi);
        std::swap(amps_[i | m0], amps_[i | m1]);
    }
}

template <typename T>
void
BasicStateVector<T>::apply_diag_1q(std::complex<double> d0,
                                   std::complex<double> d1, int q)
{
    ELV_REQUIRE(q >= 0 && q < num_qubits_, "qubit out of range");
    const std::size_t stride = std::size_t{1} << q;
    vec::apply_diag_1q(amps_.data(), amps_.size(), stride, AmpT(d0),
                       AmpT(d1));
}

template <typename T>
void
BasicStateVector<T>::apply_op(const circ::Op &op,
                              const std::vector<double> &params,
                              const std::vector<double> &x)
{
    if (op.kind == circ::GateKind::AmpEmbed) {
        set_amplitude_embedding(x);
        return;
    }
    // Kernel-mix counters (the --metrics "which dispatch path ran"
    // tally). Each site is a relaxed flag load when metrics are off and
    // compiles away entirely under ELV_OBS_DISABLED, so the dispatch
    // stays kernel-bound either way.
    if (specialized_) {
        // Permutation/phase gates: no matrix, no multiplies.
        switch (op.kind) {
          case circ::GateKind::CX:
            ELV_METRIC_COUNT("sim.kernel.cx");
            apply_cx(op.qubits[0], op.qubits[1]);
            return;
          case circ::GateKind::CZ:
            ELV_METRIC_COUNT("sim.kernel.cz");
            apply_cz(op.qubits[0], op.qubits[1]);
            return;
          case circ::GateKind::SWAP:
            ELV_METRIC_COUNT("sim.kernel.swap");
            apply_swap(op.qubits[0], op.qubits[1]);
            return;
          default:
            break;
        }
        if (circ::gate_is_diagonal_1q(op.kind)) {
            // Take the diagonal from the shared matrix factory so the
            // fast path can never drift from the generic one.
            ELV_METRIC_COUNT("sim.kernel.diag1q");
            const auto angles = circ::op_angles(op, params, x);
            const Mat2 u = gate_matrix_1q(op.kind, angles);
            apply_diag_1q(u[0][0], u[1][1], op.qubits[0]);
            return;
        }
    }
    const auto angles = circ::op_angles(op, params, x);
    if (op.num_qubits() == 1) {
        ELV_METRIC_COUNT("sim.kernel.dense1q");
        apply_1q(gate_matrix_1q(op.kind, angles), op.qubits[0]);
    } else {
        ELV_METRIC_COUNT("sim.kernel.dense2q");
        apply_2q(gate_matrix_2q(op.kind, angles), op.qubits[0],
                 op.qubits[1]);
    }
}

template <typename T>
void
BasicStateVector<T>::run(const circ::Circuit &circuit,
                         const std::vector<double> &params,
                         const std::vector<double> &x)
{
    ELV_REQUIRE(circuit.num_qubits() == num_qubits_,
                "circuit/state qubit count mismatch");
    // Coarse-granularity span: one per circuit run, never per gate.
    ELV_TRACE_SCOPE("sv.run", "sim");
    ELV_METRIC_COUNT("sim.sv.runs");
    note_kernel_dispatch();
    if constexpr (std::is_same_v<T, float>)
        ELV_METRIC_COUNT("sim.f32_evals");
    reset();
    for (const circ::Op &op : circuit.ops())
        apply_op(op, params, x);
}

template <typename T>
void
BasicStateVector<T>::set_amplitude_embedding(const std::vector<double> &x)
{
    ELV_REQUIRE(x.size() <= amps_.size(),
                "amplitude embedding input larger than state");
    double ss = 0.0;
    for (double v : x)
        ss += v * v;
    std::fill(amps_.begin(), amps_.end(), AmpT(0));
    if (ss <= 0.0) {
        amps_[0] = AmpT(1);
        return;
    }
    const double inv = 1.0 / std::sqrt(ss);
    for (std::size_t i = 0; i < x.size(); ++i)
        amps_[i] = AmpT(static_cast<T>(x[i] * inv));
}

template <typename T>
double
BasicStateVector<T>::expect_z(int q) const
{
    ELV_REQUIRE(q >= 0 && q < num_qubits_, "qubit out of range");
    const std::size_t mask = std::size_t{1} << q;
    double e = 0.0;
    for (std::size_t i = 0; i < amps_.size(); ++i) {
        // |a|^2 expanded with double operands: identical to std::norm
        // for T = double, and a double accumulation (rather than a
        // float one) of float amplitudes.
        const double re = amps_[i].real();
        const double im = amps_[i].imag();
        const double p = re * re + im * im;
        e += (i & mask) ? -p : p;
    }
    return e;
}

template <typename T>
double
BasicStateVector<T>::norm() const
{
    double s = 0.0;
    for (const AmpT &a : amps_) {
        const double re = a.real();
        const double im = a.imag();
        s += re * re + im * im;
    }
    return s;
}

template <typename T>
double
BasicStateVector<T>::overlap(const BasicStateVector &other) const
{
    ELV_REQUIRE(other.amps_.size() == amps_.size(),
                "overlap dimension mismatch");
    std::complex<double> acc(0);
    for (std::size_t i = 0; i < amps_.size(); ++i)
        acc += std::conj(std::complex<double>(other.amps_[i])) *
               std::complex<double>(amps_[i]);
    return std::norm(acc);
}

template <typename T>
std::vector<double>
BasicStateVector<T>::probabilities(const std::vector<int> &qubits) const
{
    ELV_REQUIRE(qubits.size() <= 20, "too many measured qubits");
    std::vector<double> probs(std::size_t{1} << qubits.size(), 0.0);
    for (std::size_t i = 0; i < amps_.size(); ++i) {
        const double re = amps_[i].real();
        const double im = amps_[i].imag();
        const double p = re * re + im * im;
        if (p == 0.0)
            continue;
        std::size_t outcome = 0;
        for (std::size_t b = 0; b < qubits.size(); ++b)
            if (i & (std::size_t{1} << qubits[b]))
                outcome |= std::size_t{1} << b;
        probs[outcome] += p;
    }
    return probs;
}

template <typename T>
std::vector<double>
BasicStateVector<T>::probabilities_full() const
{
    std::vector<double> probs(amps_.size());
    for (std::size_t i = 0; i < amps_.size(); ++i) {
        const double re = amps_[i].real();
        const double im = amps_[i].imag();
        probs[i] = re * re + im * im;
    }
    return probs;
}

template <typename T>
std::size_t
BasicStateVector<T>::sample(const std::vector<int> &qubits,
                            elv::Rng &rng) const
{
    return sample_from(probabilities(qubits), rng);
}

template <typename T>
std::size_t
BasicStateVector<T>::sample_from(const std::vector<double> &probs,
                                 elv::Rng &rng)
{
    ELV_REQUIRE(!probs.empty(), "cannot sample an empty distribution");
    ELV_METRIC_COUNT("sim.shots");
    double x = rng.uniform();
    for (std::size_t k = 0; k < probs.size(); ++k) {
        x -= probs[k];
        if (x < 0.0)
            return k;
    }
    return probs.size() - 1;
}

template class BasicStateVector<double>;
template class BasicStateVector<float>;

} // namespace elv::sim
