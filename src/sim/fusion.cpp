#include "sim/fusion.hpp"

#include <algorithm>

#include "circuit/serialize.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/kernel_obs.hpp"

namespace elv::sim {

namespace {

/** Stream entry under construction; skipped entries were absorbed. */
struct Entry
{
    FusedOp fused;
    bool skip = false;
};

} // namespace

FusedProgram
FusedProgram::compile(const circ::Circuit &circuit)
{
    FusedProgram prog;
    prog.num_qubits_ = circuit.num_qubits();
    prog.source_ops_ = circuit.ops().size();

    // open[q] indexes the stream entry still fusable on qubit q (-1 =
    // none). The invariant making every merge a legal commutation: no
    // op between stream[open[q]] and the current position touches q.
    std::vector<int> open(static_cast<std::size_t>(circuit.num_qubits()),
                          -1);
    std::vector<Entry> stream;
    stream.reserve(circuit.ops().size());
    auto open_at = [&open](int q) -> int & {
        return open[static_cast<std::size_t>(q)];
    };
    auto entry_at = [&stream](int idx) -> Entry & {
        return stream[static_cast<std::size_t>(idx)];
    };

    bool in_const_prefix = true;
    for (const circ::Op &op : circuit.ops()) {
        const bool barrier = op.kind == circ::GateKind::AmpEmbed ||
                             op.role != circ::ParamRole::None;
        if (barrier)
            in_const_prefix = false;
        else if (in_const_prefix)
            ++prog.const_prefix_source_ops_;
        if (barrier) {
            // Angles resolve at run time; keep the IR op and close the
            // touched qubits (all of them for amplitude embedding,
            // which rewrites the whole state).
            if (op.kind == circ::GateKind::AmpEmbed)
                std::fill(open.begin(), open.end(), -1);
            else
                for (int k = 0; k < op.num_qubits(); ++k)
                    open_at(op.qubits[static_cast<std::size_t>(k)]) = -1;
            Entry e;
            e.fused.kind = FusedOp::Kind::Barrier;
            e.fused.op = op;
            stream.push_back(e);
            continue;
        }

        const auto angles = circ::op_angles(op, {}, {});
        if (op.num_qubits() == 1) {
            const int q = op.qubits[0];
            const Mat2 u = gate_matrix_1q(op.kind, angles);
            const int idx = open_at(q);
            if (idx >= 0) {
                Entry &e = entry_at(idx);
                if (e.fused.kind == FusedOp::Kind::One) {
                    e.fused.m2 = matmul(u, e.fused.m2);
                } else {
                    const int slot = e.fused.q0 == q ? 0 : 1;
                    e.fused.m4 =
                        matmul(embed_1q_in_2q(u, slot), e.fused.m4);
                }
                ++prog.ops_merged_;
                continue;
            }
            Entry e;
            e.fused.kind = FusedOp::Kind::One;
            e.fused.m2 = u;
            e.fused.q0 = q;
            open_at(q) = static_cast<int>(stream.size());
            stream.push_back(e);
            continue;
        }

        const int a = op.qubits[0];
        const int b = op.qubits[1];
        Mat4 u = gate_matrix_2q(op.kind, angles);
        if (open_at(a) >= 0 && open_at(a) == open_at(b) &&
            entry_at(open_at(a)).fused.kind == FusedOp::Kind::Two) {
            // Same pair already open: compose in the |a b> basis,
            // reordering the earlier matrix if its operands were
            // listed the other way around.
            Entry &e = entry_at(open_at(a));
            Mat4 prev = e.fused.m4;
            if (e.fused.q0 == b)
                prev = swap_qubit_order(prev);
            e.fused.m4 = matmul(u, prev);
            e.fused.q0 = a;
            e.fused.q1 = b;
            ++prog.ops_merged_;
            continue;
        }
        // New 2-qubit entry; absorb pending 1-qubit entries on its
        // operands (they precede it with nothing touching a/b in
        // between, so pre-multiplying their embeddings is exact).
        for (int slot = 0; slot < 2; ++slot) {
            const int q = op.qubits[static_cast<std::size_t>(slot)];
            const int idx = open_at(q);
            if (idx >= 0 &&
                entry_at(idx).fused.kind == FusedOp::Kind::One) {
                u = matmul(u, embed_1q_in_2q(entry_at(idx).fused.m2,
                                             slot));
                entry_at(idx).skip = true;
                ++prog.ops_merged_;
            }
        }
        Entry e;
        e.fused.kind = FusedOp::Kind::Two;
        e.fused.m4 = u;
        e.fused.q0 = a;
        e.fused.q1 = b;
        open_at(a) = open_at(b) = static_cast<int>(stream.size());
        stream.push_back(e);
    }

    prog.ops_.reserve(stream.size());
    for (const Entry &e : stream)
        if (!e.skip)
            prog.ops_.push_back(e.fused);
    ELV_METRIC_COUNT_N("fusion.ops_merged", prog.ops_merged_);
    return prog;
}

template <typename T>
void
FusedProgram::run(BasicStateVector<T> &psi,
                  const std::vector<double> &params,
                  const std::vector<double> &x) const
{
    ELV_REQUIRE(psi.num_qubits() == num_qubits_,
                "program/state qubit count mismatch");
    ELV_TRACE_SCOPE("sv.fused_run", "sim");
    ELV_METRIC_COUNT("sim.sv.fused_runs");
    note_kernel_dispatch();
    if constexpr (std::is_same_v<T, float>)
        ELV_METRIC_COUNT("sim.f32_evals");
    psi.reset();
    for (const FusedOp &f : ops_) {
        switch (f.kind) {
          case FusedOp::Kind::One:
            psi.apply_1q(f.m2, f.q0);
            break;
          case FusedOp::Kind::Two:
            psi.apply_2q(f.m4, f.q0, f.q1);
            break;
          case FusedOp::Kind::Barrier:
            psi.apply_op(f.op, params, x);
            break;
        }
    }
}

FusionCache &
FusionCache::global()
{
    static FusionCache cache;
    return cache;
}

std::shared_ptr<const FusedProgram>
FusionCache::get(const circ::Circuit &circuit)
{
    const std::string key = circ::to_text_line(circuit);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = programs_.find(key);
    if (it != programs_.end())
        return it->second;
    if (programs_.size() >= kCapacity)
        programs_.clear();
    auto program =
        std::make_shared<const FusedProgram>(FusedProgram::compile(circuit));
    programs_.emplace(key, program);
    return program;
}

std::size_t
FusionCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return programs_.size();
}

void
FusionCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    programs_.clear();
}

template <typename T>
void
fused_run(BasicStateVector<T> &psi, const circ::Circuit &circuit,
          const std::vector<double> &params, const std::vector<double> &x)
{
    FusionCache::global().get(circuit)->run(psi, params, x);
}

template void FusedProgram::run(BasicStateVector<double> &,
                                const std::vector<double> &,
                                const std::vector<double> &) const;
template void FusedProgram::run(BasicStateVector<float> &,
                                const std::vector<double> &,
                                const std::vector<double> &) const;
template void fused_run(BasicStateVector<double> &, const circ::Circuit &,
                        const std::vector<double> &,
                        const std::vector<double> &);
template void fused_run(BasicStateVector<float> &, const circ::Circuit &,
                        const std::vector<double> &,
                        const std::vector<double> &);

} // namespace elv::sim
