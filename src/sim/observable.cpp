#include "sim/observable.hpp"

#include "common/logging.hpp"

namespace elv::sim {

DiagonalObservable::DiagonalObservable(std::vector<int> qubits,
                                       std::vector<double> weights)
    : qubits_(std::move(qubits)), weights_(std::move(weights))
{
    ELV_REQUIRE(!qubits_.empty(), "observable needs at least one qubit");
    ELV_REQUIRE(weights_.size() == (std::size_t{1} << qubits_.size()),
                "observable weight vector has wrong size");
}

double
DiagonalObservable::expectation(const StateVector &psi) const
{
    return expectation(psi.probabilities(qubits_));
}

double
DiagonalObservable::expectation(const std::vector<double> &probs) const
{
    ELV_REQUIRE(probs.size() == weights_.size(),
                "outcome distribution size mismatch");
    double e = 0.0;
    for (std::size_t k = 0; k < probs.size(); ++k)
        e += weights_[k] * probs[k];
    return e;
}

void
DiagonalObservable::apply_to(StateVector &psi) const
{
    auto &amps = psi.amps();
    for (std::size_t i = 0; i < amps.size(); ++i) {
        std::size_t outcome = 0;
        for (std::size_t b = 0; b < qubits_.size(); ++b)
            if (i & (std::size_t{1} << qubits_[b]))
                outcome |= std::size_t{1} << b;
        amps[i] *= weights_[outcome];
    }
}

DiagonalObservable
DiagonalObservable::pauli_z(int qubit)
{
    return DiagonalObservable({qubit}, {1.0, -1.0});
}

DiagonalObservable
DiagonalObservable::outcome_group(const std::vector<int> &qubits,
                                  int num_groups, int group)
{
    ELV_REQUIRE(num_groups > 0 && group >= 0 && group < num_groups,
                "bad outcome group");
    std::vector<double> weights(std::size_t{1} << qubits.size(), 0.0);
    for (std::size_t k = 0; k < weights.size(); ++k)
        if (static_cast<int>(k % static_cast<std::size_t>(num_groups)) ==
            group)
            weights[k] = 1.0;
    return DiagonalObservable(qubits, std::move(weights));
}

std::vector<DiagonalObservable>
class_projectors(const std::vector<int> &measured_qubits, int num_classes)
{
    ELV_REQUIRE((std::size_t{1} << measured_qubits.size()) >=
                    static_cast<std::size_t>(num_classes),
                "not enough measured qubits for the class count");
    std::vector<DiagonalObservable> obs;
    obs.reserve(static_cast<std::size_t>(num_classes));
    for (int k = 0; k < num_classes; ++k)
        obs.push_back(DiagonalObservable::outcome_group(measured_qubits,
                                                        num_classes, k));
    return obs;
}

} // namespace elv::sim
