/**
 * @file
 * Gradients of observable expectations with respect to variational
 * parameters, via two backends mirroring the paper's two cost regimes:
 *
 *  - adjoint differentiation: the "backpropagation on classical
 *    simulators" regime (Table 4, 'C' columns). One forward pass plus one
 *    reverse sweep per observable, independent of the parameter count.
 *  - parameter-shift: the "gradients on quantum hardware" regime
 *    (Table 4, 'Q' columns). Two circuit executions per 1-qubit rotation
 *    parameter (four for controlled rotations), which is exactly the
 *    linear-in-parameters scaling the paper identifies as the
 *    SuperCircuit bottleneck.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "sim/observable.hpp"

namespace elv::sim {

/** Expectations and their Jacobian for a set of observables. */
struct GradientResult
{
    /** Expectation value per observable. */
    std::vector<double> values;
    /** jacobian[o][p] = d values[o] / d params[p]. */
    std::vector<std::vector<double>> jacobian;
    /**
     * When embedding gradients were requested:
     * embedding_jacobian[o][e] = d values[o] / d angle(embedding op e),
     * where e indexes embedding ops in circuit order (the same order as
     * Circuit::embedding_op_indices()). Used by classical-preprocessing
     * frameworks (QTN-VQC) that backpropagate into their feature maps.
     */
    std::vector<std::vector<double>> embedding_jacobian;
    /** Number of (noiseless) circuit executions this computation cost. */
    std::uint64_t circuit_executions = 0;
};

/** Evaluate expectations only (one circuit execution). */
std::vector<double> expectations(const circ::Circuit &circuit,
                                 const std::vector<double> &params,
                                 const std::vector<double> &x,
                                 const std::vector<DiagonalObservable> &obs);

/**
 * Adjoint differentiation. Requires a unitary circuit (an amplitude
 * embedding is allowed only as the first op). With
 * `with_embedding_grads`, also fills GradientResult::embedding_jacobian
 * (derivatives with respect to each embedding gate's resolved angle;
 * product embeddings are rejected in that mode).
 */
GradientResult adjoint_gradient(const circ::Circuit &circuit,
                                const std::vector<double> &params,
                                const std::vector<double> &x,
                                const std::vector<DiagonalObservable> &obs,
                                bool with_embedding_grads = false);

/**
 * Parameter-shift differentiation: exact two-term rule for single-qubit
 * rotations and U3 slots, four-term rule for CRY.
 */
GradientResult parameter_shift_gradient(
    const circ::Circuit &circuit, const std::vector<double> &params,
    const std::vector<double> &x,
    const std::vector<DiagonalObservable> &obs);

} // namespace elv::sim
