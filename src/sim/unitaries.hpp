/**
 * @file
 * Dense gate unitaries and their parameter derivatives.
 *
 * Conventions: 2-qubit matrices are written in the basis |q0 q1> where q0
 * is the first listed qubit of the op (the control for CX/CRY), i.e.
 * local index = 2 * bit(q0) + bit(q1).
 */
#pragma once

#include <array>
#include <complex>

#include "circuit/gate.hpp"

namespace elv::sim {

using Amp = std::complex<double>;
using Mat2 = std::array<std::array<Amp, 2>, 2>;
using Mat4 = std::array<std::array<Amp, 4>, 4>;
/**
 * 16x16 dense matrix over a 4-qubit local basis; used for two-qubit
 * channel superoperators acting on (row, column) qubit pairs of a
 * vectorized density matrix.
 */
using Mat16 = std::array<std::array<Amp, 16>, 16>;

/** Unitary of a 1-qubit gate given its (up to 3) resolved angles. */
Mat2 gate_matrix_1q(circ::GateKind kind,
                    const std::array<double, 3> &angles);

/** Unitary of a 2-qubit gate given its resolved angles. */
Mat4 gate_matrix_2q(circ::GateKind kind,
                    const std::array<double, 3> &angles);

/** dU/d(angle[slot]) for a parametric 1-qubit gate. */
Mat2 gate_matrix_1q_deriv(circ::GateKind kind,
                          const std::array<double, 3> &angles, int slot);

/** dU/d(angle[slot]) for a parametric 2-qubit gate (CRY). */
Mat4 gate_matrix_2q_deriv(circ::GateKind kind,
                          const std::array<double, 3> &angles, int slot);

/** Conjugate transpose. */
Mat2 dagger(const Mat2 &m);
Mat4 dagger(const Mat4 &m);

/** Entrywise complex conjugate. */
Mat2 conjugate(const Mat2 &m);
Mat4 conjugate(const Mat4 &m);

/** Matrix product a * b. */
Mat2 matmul(const Mat2 &a, const Mat2 &b);
Mat4 matmul(const Mat4 &a, const Mat4 &b);
Mat16 matmul(const Mat16 &a, const Mat16 &b);

/** Identity matrices. */
Mat2 identity2();
Mat4 identity4();
Mat16 identity16();

/**
 * Embed a 1-qubit matrix into the 2-qubit basis |q0 q1>: slot 0 puts
 * `u` on q0 (kron(u, I)), slot 1 on q1 (kron(I, u)). Used by the
 * fusion pass to absorb 1-qubit gates into neighboring 2-qubit ops.
 */
Mat4 embed_1q_in_2q(const Mat2 &u, int slot);

/**
 * Reorder a 2-qubit matrix between the |q0 q1> and |q1 q0> bases
 * (conjugation by SWAP). Lets the fusion pass compose gates written
 * with opposite operand orders on the same qubit pair.
 */
Mat4 swap_qubit_order(const Mat4 &u);

} // namespace elv::sim
