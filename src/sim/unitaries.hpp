/**
 * @file
 * Dense gate unitaries and their parameter derivatives.
 *
 * Conventions: 2-qubit matrices are written in the basis |q0 q1> where q0
 * is the first listed qubit of the op (the control for CX/CRY), i.e.
 * local index = 2 * bit(q0) + bit(q1).
 */
#pragma once

#include <array>
#include <complex>

#include "circuit/gate.hpp"

namespace elv::sim {

using Amp = std::complex<double>;
using Mat2 = std::array<std::array<Amp, 2>, 2>;
using Mat4 = std::array<std::array<Amp, 4>, 4>;

/** Unitary of a 1-qubit gate given its (up to 3) resolved angles. */
Mat2 gate_matrix_1q(circ::GateKind kind,
                    const std::array<double, 3> &angles);

/** Unitary of a 2-qubit gate given its resolved angles. */
Mat4 gate_matrix_2q(circ::GateKind kind,
                    const std::array<double, 3> &angles);

/** dU/d(angle[slot]) for a parametric 1-qubit gate. */
Mat2 gate_matrix_1q_deriv(circ::GateKind kind,
                          const std::array<double, 3> &angles, int slot);

/** dU/d(angle[slot]) for a parametric 2-qubit gate (CRY). */
Mat4 gate_matrix_2q_deriv(circ::GateKind kind,
                          const std::array<double, 3> &angles, int slot);

/** Conjugate transpose. */
Mat2 dagger(const Mat2 &m);
Mat4 dagger(const Mat4 &m);

/** Entrywise complex conjugate. */
Mat2 conjugate(const Mat2 &m);
Mat4 conjugate(const Mat4 &m);

/** Matrix product a * b. */
Mat2 matmul(const Mat2 &a, const Mat2 &b);
Mat4 matmul(const Mat4 &a, const Mat4 &b);

/** Identity matrices. */
Mat2 identity2();
Mat4 identity4();

} // namespace elv::sim
