/**
 * @file
 * Dense density-matrix simulator.
 *
 * Represents rho as a 2n-qubit state vector (row index = qubits 0..n-1,
 * column index = qubits n..2n-1), so unitary and Kraus maps reuse the
 * state-vector kernels: U rho U^dag applies U on the row qubit and
 * conj(U) on the matching column qubit. Exact noisy simulation for
 * circuits of up to ~10 qubits — which covers every circuit in this
 * reproduction, because Elivagar circuits live on small connected device
 * subgraphs.
 *
 * Like the state vector, the class is templated on the amplitude
 * component type: `DensityMatrix` (double) is the default everywhere;
 * `DensityMatrixF` backs the Float32Proxy policy for CNR-style proxy
 * scoring, where the superoperator passes dominate and halving the
 * amplitude footprint halves memory traffic. Scalar channel parameters
 * stay double in the interface and are rounded once per channel
 * application, not per amplitude.
 */
#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "sim/statevector.hpp"

namespace elv::sim {

/** A mixed quantum state over a fixed qubit register. */
template <typename T>
class BasicDensityMatrix
{
  public:
    using AmpT = std::complex<T>;

    /** Construct in |0...0><0...0|. Practical limit is ~12 qubits. */
    explicit BasicDensityMatrix(int num_qubits);

    /** Reset to |0...0><0...0|. */
    void reset();

    int num_qubits() const { return num_qubits_; }

    /** rho(r, c) element access. */
    AmpT element(std::size_t row, std::size_t col) const;

    /** Set to the pure state |psi><psi|. */
    void set_pure(const BasicStateVector<T> &psi);

    /** Apply a 1-qubit unitary. */
    void apply_1q(const Mat2 &u, int q);

    /** Apply a 2-qubit unitary (basis |q0 q1>). */
    void apply_2q(const Mat4 &u, int q0, int q1);

    /** Apply a 1-qubit Kraus channel: rho -> sum_k K rho K^dag. */
    void apply_kraus_1q(const std::vector<Mat2> &kraus, int q);

    /** Apply a 2-qubit Kraus channel. */
    void apply_kraus_2q(const std::vector<Mat4> &kraus, int q0, int q1);

    /** @name Superoperator channel application @{
     *
     * Single-pass channel kernels: the precomputed superoperator
     * matrix S[2a+b][2a'+b'] = sum_k K[a][a'] conj(K[b][b']) acts on
     * the (row, column) qubit pair of the vectorized rho through the
     * gathered apply_2q/apply_4q machinery. One pass over the 4^n
     * amplitudes regardless of the Kraus-set size, vs. one full copy
     * plus two passes per operator on the Kraus route. Build the
     * matrices with noise::kraus_superop_1q/2q.
     */

    /** Apply a 1-qubit channel superoperator (basis |r_q c_q>). */
    void apply_superop_1q(const Mat4 &s, int q);

    /** Apply a 2-qubit channel superoperator (basis |r0 r1 c0 c1>). */
    void apply_superop_2q(const Mat16 &s, int q0, int q1);

    /** @} */

    /** @name Closed-form channel fast paths @{
     *
     * Semantically identical to the Kraus forms but a single pass over
     * rho (the generic Kraus route copies the full state per operator);
     * these dominate noisy-simulation time for the bench harnesses.
     */

    /** Depolarizing on one qubit: rho -> (1-p) rho + p sum_P P rho P /3. */
    void apply_depolarizing_1q(double p, int q);

    /** Depolarizing on a qubit pair (15 Pauli terms). */
    void apply_depolarizing_2q(double p, int q0, int q1);

    /**
     * Thermal relaxation: amplitude damping with probability `gamma`
     * composed with pure dephasing `lambda` on qubit q.
     */
    void apply_thermal_relaxation(double gamma, double lambda, int q);

    /** @} */

    /**
     * Route apply_op through the specialized state-vector kernels
     * (default on). CX/CZ/SWAP are real permutation/phase matrices, so
     * the conjugate column-half application reuses the same kernel;
     * diagonal 1-qubit gates conjugate the two diagonal entries. The
     * win is compound here: every gate hits rho twice.
     */
    void use_specialized_kernels(bool on) { specialized_ = on; }

    /** Apply one IR op with resolved parameters (no noise). */
    void apply_op(const circ::Op &op, const std::vector<double> &params,
                  const std::vector<double> &x);

    /** Run a circuit noiselessly from |0...0>. */
    void run(const circ::Circuit &circuit,
             const std::vector<double> &params = {},
             const std::vector<double> &x = {});

    /** Trace (should stay 1 under trace-preserving maps). */
    double trace() const;

    /** Purity Tr(rho^2). */
    double purity() const;

    /** Marginal outcome distribution over `qubits` (LSB-first order). */
    std::vector<double> probabilities(const std::vector<int> &qubits) const;

  private:
    int num_qubits_;
    /** 2n-qubit vectorized representation of rho. */
    BasicStateVector<T> vec_;
    bool specialized_ = true;
    /**
     * Reusable scratch for the generic Kraus path, sized on first use;
     * avoids allocating 2 x 4^n amplitudes per channel application.
     */
    AmpVector<T> kraus_original_;
    AmpVector<T> kraus_acc_;
};

extern template class BasicDensityMatrix<double>;
extern template class BasicDensityMatrix<float>;

/** The default full-precision density matrix. */
using DensityMatrix = BasicDensityMatrix<double>;

/** The Float32Proxy density matrix (ranking-only proxy evaluation). */
using DensityMatrixF = BasicDensityMatrix<float>;

} // namespace elv::sim
