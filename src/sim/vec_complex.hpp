/**
 * @file
 * Vectorized complex kernels for the state-vector hot loops.
 *
 * Every kernel ships in up to three tiers — scalar baseline, AVX2
 * (256-bit), AVX-512F (512-bit) — selected at run time through
 * cpu_features.hpp. The baseline tier is the exact loop the simulator
 * has always run; the vector tiers parallelize *across amplitude
 * indices* (each SIMD lane is a distinct amplitude) and replicate the
 * per-amplitude arithmetic operation-for-operation:
 *
 *  - complex multiply w*a is computed as the naive formula
 *    (re = a.re*w.re - a.im*w.im, im = a.im*w.re + a.re*w.im) with
 *    separate multiplies and adds — no FMA contraction — which is the
 *    code GCC emits for std::complex on finite values;
 *  - matvec accumulators start from zero and sum in column order,
 *    exactly like the scalar `acc += u[r][c] * in[c]` loop.
 *
 * Consequence: all tiers produce BIT-IDENTICAL amplitudes on finite
 * states (the tier-equivalence tests assert this with memcmp), so
 * kernel dispatch never perturbs scores, rankings, thread-count
 * determinism (PR 2), or journal resume.
 *
 * Lane layout and the contiguity rule: amplitudes are interleaved
 * (re, im) pairs. A gathered kernel walks group indices g whose low
 * bits pass through insert_zero_bit unchanged, so W consecutive groups
 * give W consecutive amplitudes whenever W <= lo (the smallest qubit
 * mask). Kernels vectorize under that rule; when the lowest mask is 1
 * (a qubit-0 operand — common for density-matrix superoperators) the
 * AVX2 double kernels fall back to a 128-bit-shuffle variant that
 * reassembles lanes with perm2f128, and everything else falls back to
 * the scalar loop.
 *
 * Instantiated for Amp = complex<double> and complex<float> (the
 * Float32Proxy precision policy); the float tiers vectorize the plain
 * contiguous cases only.
 */
#pragma once

#include <array>
#include <complex>
#include <cstddef>

#include "sim/cpu_features.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define ELV_VEC_X86 1
#include <immintrin.h>
#else
#define ELV_VEC_X86 0
#endif

namespace elv::sim::vec {

/** Insert a zero bit at the position of `mask`: bits >= mask shift up. */
inline std::size_t
insert_zero_bit(std::size_t v, std::size_t mask)
{
    return ((v & ~(mask - 1)) << 1) | (v & (mask - 1));
}

// ---------------------------------------------------------------------
// Scalar baseline: the simulator's original loops, verbatim. These
// define the reference arithmetic every vector tier must reproduce
// bit-for-bit.

template <typename T>
inline void
scalar_1q(std::complex<T> *amps, std::size_t dim, std::size_t stride,
          const std::complex<T> *u, std::size_t base_begin,
          std::size_t base_end)
{
    (void)dim;
    for (std::size_t base = base_begin; base < base_end;
         base += 2 * stride) {
        for (std::size_t off = 0; off < stride; ++off) {
            const std::size_t i0 = base + off;
            const std::size_t i1 = i0 + stride;
            const std::complex<T> a0 = amps[i0];
            const std::complex<T> a1 = amps[i1];
            amps[i0] = u[0] * a0 + u[1] * a1;
            amps[i1] = u[2] * a0 + u[3] * a1;
        }
    }
}

template <typename T>
inline void
scalar_diag_1q(std::complex<T> *amps, std::size_t stride,
               std::complex<T> d0, std::complex<T> d1,
               std::size_t base_begin, std::size_t base_end)
{
    for (std::size_t base = base_begin; base < base_end;
         base += 2 * stride) {
        for (std::size_t off = 0; off < stride; ++off) {
            amps[base + off] *= d0;
            amps[base + off + stride] *= d1;
        }
    }
}

template <typename T>
inline void
scalar_2q(std::complex<T> *amps, std::size_t m0, std::size_t m1,
          std::size_t lo, std::size_t hi, const std::complex<T> *u,
          std::size_t g_begin, std::size_t g_end)
{
    for (std::size_t g = g_begin; g < g_end; ++g) {
        const std::size_t i = insert_zero_bit(insert_zero_bit(g, lo), hi);
        // Local basis |q0 q1>: index = 2 * bit(q0) + bit(q1).
        const std::size_t idx[4] = {i, i | m1, i | m0, i | m0 | m1};
        std::complex<T> in[4];
        for (std::size_t k = 0; k < 4; ++k)
            in[k] = amps[idx[k]];
        for (std::size_t r = 0; r < 4; ++r) {
            std::complex<T> acc(0);
            for (std::size_t c = 0; c < 4; ++c)
                acc += u[4 * r + c] * in[c];
            amps[idx[r]] = acc;
        }
    }
}

template <typename T>
inline void
scalar_4q(std::complex<T> *amps, const std::size_t *sorted,
          const std::size_t *offset, const std::complex<T> *u,
          std::size_t g_begin, std::size_t g_end)
{
    for (std::size_t g = g_begin; g < g_end; ++g) {
        std::size_t i = g;
        for (int a = 0; a < 4; ++a)
            i = insert_zero_bit(i, sorted[a]);
        std::complex<T> in[16];
        for (std::size_t k = 0; k < 16; ++k)
            in[k] = amps[i | offset[k]];
        for (std::size_t r = 0; r < 16; ++r) {
            std::complex<T> acc(0);
            for (std::size_t c = 0; c < 16; ++c)
                acc += u[16 * r + c] * in[c];
            amps[i | offset[r]] = acc;
        }
    }
}

#if ELV_VEC_X86

// FP contraction would silently fuse the mul/add intrinsic pairs below
// into FMAs (the avx512f target implies FMA availability, and GCC
// contracts across intrinsics), changing the rounding of every complex
// multiply and breaking the scalar/SIMD bit-identity contract. Pin it
// off for the whole kernel section.
#if defined(__clang__)
#pragma clang fp contract(off)
#elif defined(__GNUC__)
#pragma GCC push_options
#pragma GCC optimize("fp-contract=off")
// The optimize pragma defeats GCC's usual suppression of the
// deliberately-uninitialized temporary inside _mm512_undefined_pd()
// (inlined by _mm512_permute_pd); silence the false positive here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

// ---------------------------------------------------------------------
// AVX2, double precision (2 complex<double> lanes per ymm).

/** Lanewise w*a in the scalar operation order (no FMA). */
__attribute__((target("avx2"))) inline __m256d
cmul_pd(__m256d a, __m256d wr, __m256d wi)
{
    const __m256d t1 = _mm256_mul_pd(a, wr);
    const __m256d sw = _mm256_permute_pd(a, 0x5);
    const __m256d t2 = _mm256_mul_pd(sw, wi);
    return _mm256_addsub_pd(t1, t2);
}

/** out[r] = sum_c u[r*n+c] * in[c], accumulated from zero in order. */
__attribute__((target("avx2"))) inline void
matvec_pd(const std::complex<double> *u, std::size_t n, const __m256d *in,
          __m256d *out)
{
    for (std::size_t r = 0; r < n; ++r) {
        __m256d acc = _mm256_setzero_pd();
        for (std::size_t c = 0; c < n; ++c) {
            const std::complex<double> w = u[r * n + c];
            acc = _mm256_add_pd(
                acc, cmul_pd(in[c], _mm256_set1_pd(w.real()),
                             _mm256_set1_pd(w.imag())));
        }
        out[r] = acc;
    }
}

__attribute__((target("avx2"))) inline void
avx2_1q_pd(std::complex<double> *amps, std::size_t dim, std::size_t stride,
           const std::complex<double> *u)
{
    double *raw = reinterpret_cast<double *>(amps);
    const __m256d u00r = _mm256_set1_pd(u[0].real());
    const __m256d u00i = _mm256_set1_pd(u[0].imag());
    const __m256d u01r = _mm256_set1_pd(u[1].real());
    const __m256d u01i = _mm256_set1_pd(u[1].imag());
    const __m256d u10r = _mm256_set1_pd(u[2].real());
    const __m256d u10i = _mm256_set1_pd(u[2].imag());
    const __m256d u11r = _mm256_set1_pd(u[3].real());
    const __m256d u11i = _mm256_set1_pd(u[3].imag());
    if (stride >= 2) {
        for (std::size_t base = 0; base < dim; base += 2 * stride) {
            for (std::size_t off = 0; off < stride; off += 2) {
                double *p0 = raw + 2 * (base + off);
                double *p1 = p0 + 2 * stride;
                const __m256d a0 = _mm256_loadu_pd(p0);
                const __m256d a1 = _mm256_loadu_pd(p1);
                _mm256_storeu_pd(p0,
                                 _mm256_add_pd(cmul_pd(a0, u00r, u00i),
                                               cmul_pd(a1, u01r, u01i)));
                _mm256_storeu_pd(p1,
                                 _mm256_add_pd(cmul_pd(a0, u10r, u10i),
                                               cmul_pd(a1, u11r, u11i)));
            }
        }
        return;
    }
    // stride == 1: (a0, a1) pairs are adjacent in memory. Two pairs per
    // iteration, lanes reassembled with 128-bit permutes.
    std::size_t i = 0;
    for (; i + 4 <= dim; i += 4) {
        const __m256d lo = _mm256_loadu_pd(raw + 2 * i);
        const __m256d hi = _mm256_loadu_pd(raw + 2 * i + 4);
        const __m256d a0 = _mm256_permute2f128_pd(lo, hi, 0x20);
        const __m256d a1 = _mm256_permute2f128_pd(lo, hi, 0x31);
        const __m256d r0 = _mm256_add_pd(cmul_pd(a0, u00r, u00i),
                                         cmul_pd(a1, u01r, u01i));
        const __m256d r1 = _mm256_add_pd(cmul_pd(a0, u10r, u10i),
                                         cmul_pd(a1, u11r, u11i));
        _mm256_storeu_pd(raw + 2 * i,
                         _mm256_permute2f128_pd(r0, r1, 0x20));
        _mm256_storeu_pd(raw + 2 * i + 4,
                         _mm256_permute2f128_pd(r0, r1, 0x31));
    }
    if (i < dim)
        scalar_1q(amps, dim, stride, u, i, dim);
}

__attribute__((target("avx2"))) inline void
avx2_diag_1q_pd(std::complex<double> *amps, std::size_t dim,
                std::size_t stride, std::complex<double> d0,
                std::complex<double> d1)
{
    double *raw = reinterpret_cast<double *>(amps);
    if (stride >= 2) {
        const __m256d d0r = _mm256_set1_pd(d0.real());
        const __m256d d0i = _mm256_set1_pd(d0.imag());
        const __m256d d1r = _mm256_set1_pd(d1.real());
        const __m256d d1i = _mm256_set1_pd(d1.imag());
        for (std::size_t base = 0; base < dim; base += 2 * stride) {
            for (std::size_t off = 0; off < stride; off += 2) {
                double *p0 = raw + 2 * (base + off);
                double *p1 = p0 + 2 * stride;
                _mm256_storeu_pd(
                    p0, cmul_pd(_mm256_loadu_pd(p0), d0r, d0i));
                _mm256_storeu_pd(
                    p1, cmul_pd(_mm256_loadu_pd(p1), d1r, d1i));
            }
        }
        return;
    }
    // stride == 1: lanes alternate d0/d1 — no shuffling needed, just a
    // mixed multiplier vector. dim is even by construction.
    const __m256d dr = _mm256_set_pd(d1.real(), d1.real(), d0.real(),
                                     d0.real());
    const __m256d di = _mm256_set_pd(d1.imag(), d1.imag(), d0.imag(),
                                     d0.imag());
    for (std::size_t i = 0; i + 2 <= dim; i += 2) {
        double *p = raw + 2 * i;
        _mm256_storeu_pd(p, cmul_pd(_mm256_loadu_pd(p), dr, di));
    }
}

__attribute__((target("avx2"))) inline void
avx2_2q_pd(std::complex<double> *amps, std::size_t dim, std::size_t m0,
           std::size_t m1, const std::complex<double> *u)
{
    double *raw = reinterpret_cast<double *>(amps);
    const std::size_t lo = m0 < m1 ? m0 : m1;
    const std::size_t hi = m0 < m1 ? m1 : m0;
    const std::size_t groups = dim >> 2;
    if (lo >= 2) {
        // Plain lanes: groups g, g+1 address adjacent amplitudes.
        for (std::size_t g = 0; g + 2 <= groups; g += 2) {
            const std::size_t i =
                insert_zero_bit(insert_zero_bit(g, lo), hi);
            const std::size_t idx[4] = {i, i | m1, i | m0, i | m0 | m1};
            __m256d in[4], out[4];
            for (std::size_t k = 0; k < 4; ++k)
                in[k] = _mm256_loadu_pd(raw + 2 * idx[k]);
            matvec_pd(u, 4, in, out);
            for (std::size_t r = 0; r < 4; ++r)
                _mm256_storeu_pd(raw + 2 * idx[r], out[r]);
        }
        if (groups & 1)
            scalar_2q(amps, m0, m1, lo, hi, u, groups - 1, groups);
        return;
    }
    // lo == 1: a qubit-0 operand. The two local slots split by the low
    // mask are memory-adjacent; reassemble lanes with 128-bit permutes.
    const std::size_t other = m0 == 1 ? m1 : m0;
    const std::size_t sx = m0 == 1 ? 2 : 1; // slot adjacent to slot 0
    const std::size_t sy = m0 == 1 ? 1 : 2; // slot adjacent to slot 3
    std::size_t g = 0;
    for (; g + 2 <= groups; g += 2) {
        const std::size_t ia =
            insert_zero_bit(insert_zero_bit(g, lo), hi);
        const std::size_t ib =
            insert_zero_bit(insert_zero_bit(g + 1, lo), hi);
        const __m256d a0 = _mm256_loadu_pd(raw + 2 * ia);
        const __m256d b0 = _mm256_loadu_pd(raw + 2 * ib);
        const __m256d a1 = _mm256_loadu_pd(raw + 2 * (ia | other));
        const __m256d b1 = _mm256_loadu_pd(raw + 2 * (ib | other));
        __m256d in[4], out[4];
        in[0] = _mm256_permute2f128_pd(a0, b0, 0x20);
        in[sx] = _mm256_permute2f128_pd(a0, b0, 0x31);
        in[sy] = _mm256_permute2f128_pd(a1, b1, 0x20);
        in[3] = _mm256_permute2f128_pd(a1, b1, 0x31);
        matvec_pd(u, 4, in, out);
        _mm256_storeu_pd(raw + 2 * ia,
                         _mm256_permute2f128_pd(out[0], out[sx], 0x20));
        _mm256_storeu_pd(raw + 2 * ib,
                         _mm256_permute2f128_pd(out[0], out[sx], 0x31));
        _mm256_storeu_pd(raw + 2 * (ia | other),
                         _mm256_permute2f128_pd(out[sy], out[3], 0x20));
        _mm256_storeu_pd(raw + 2 * (ib | other),
                         _mm256_permute2f128_pd(out[sy], out[3], 0x31));
    }
    if (g < groups)
        scalar_2q(amps, m0, m1, lo, hi, u, g, groups);
}

__attribute__((target("avx2"))) inline void
avx2_4q_pd(std::complex<double> *amps, std::size_t dim,
           const std::size_t *sorted, const std::size_t *offset,
           const std::complex<double> *u)
{
    double *raw = reinterpret_cast<double *>(amps);
    const std::size_t groups = dim >> 4;
    if (sorted[0] >= 2) {
        for (std::size_t g = 0; g + 2 <= groups; g += 2) {
            std::size_t i = g;
            for (int a = 0; a < 4; ++a)
                i = insert_zero_bit(i, sorted[a]);
            __m256d in[16], out[16];
            for (std::size_t k = 0; k < 16; ++k)
                in[k] = _mm256_loadu_pd(raw + 2 * (i | offset[k]));
            matvec_pd(u, 16, in, out);
            for (std::size_t r = 0; r < 16; ++r)
                _mm256_storeu_pd(raw + 2 * (i | offset[r]), out[r]);
        }
        if (groups & 1)
            scalar_4q(amps, sorted, offset, u, groups - 1, groups);
        return;
    }
    // sorted[0] == 1: pair each slot with its low-mask partner (their
    // offsets differ by exactly 1, i.e. they are memory-adjacent).
    std::size_t pair_bit = 0;
    for (std::size_t k = 1; k < 16; ++k)
        if (offset[k] == 1)
            pair_bit = k;
    std::size_t g = 0;
    for (; g + 2 <= groups; g += 2) {
        std::size_t ia = g, ib = g + 1;
        for (int a = 0; a < 4; ++a) {
            ia = insert_zero_bit(ia, sorted[a]);
            ib = insert_zero_bit(ib, sorted[a]);
        }
        __m256d in[16], out[16];
        for (std::size_t k = 0; k < 16; ++k) {
            if (k & pair_bit)
                continue;
            const __m256d a = _mm256_loadu_pd(raw + 2 * (ia | offset[k]));
            const __m256d b = _mm256_loadu_pd(raw + 2 * (ib | offset[k]));
            in[k] = _mm256_permute2f128_pd(a, b, 0x20);
            in[k | pair_bit] = _mm256_permute2f128_pd(a, b, 0x31);
        }
        matvec_pd(u, 16, in, out);
        for (std::size_t k = 0; k < 16; ++k) {
            if (k & pair_bit)
                continue;
            _mm256_storeu_pd(
                raw + 2 * (ia | offset[k]),
                _mm256_permute2f128_pd(out[k], out[k | pair_bit], 0x20));
            _mm256_storeu_pd(
                raw + 2 * (ib | offset[k]),
                _mm256_permute2f128_pd(out[k], out[k | pair_bit], 0x31));
        }
    }
    if (g < groups)
        scalar_4q(amps, sorted, offset, u, g, groups);
}

// ---------------------------------------------------------------------
// AVX2, single precision (4 complex<float> lanes per ymm). Plain
// contiguous cases only; small-stride cases fall back to scalar.

__attribute__((target("avx2"))) inline __m256
cmul_ps(__m256 a, __m256 wr, __m256 wi)
{
    const __m256 t1 = _mm256_mul_ps(a, wr);
    const __m256 sw = _mm256_permute_ps(a, 0xB1);
    const __m256 t2 = _mm256_mul_ps(sw, wi);
    return _mm256_addsub_ps(t1, t2);
}

__attribute__((target("avx2"))) inline void
matvec_ps(const std::complex<float> *u, std::size_t n, const __m256 *in,
          __m256 *out)
{
    for (std::size_t r = 0; r < n; ++r) {
        __m256 acc = _mm256_setzero_ps();
        for (std::size_t c = 0; c < n; ++c) {
            const std::complex<float> w = u[r * n + c];
            acc = _mm256_add_ps(
                acc, cmul_ps(in[c], _mm256_set1_ps(w.real()),
                             _mm256_set1_ps(w.imag())));
        }
        out[r] = acc;
    }
}

__attribute__((target("avx2"))) inline void
avx2_1q_ps(std::complex<float> *amps, std::size_t dim, std::size_t stride,
           const std::complex<float> *u)
{
    if (stride < 4) {
        scalar_1q(amps, dim, stride, u, 0, dim);
        return;
    }
    float *raw = reinterpret_cast<float *>(amps);
    const __m256 u00r = _mm256_set1_ps(u[0].real());
    const __m256 u00i = _mm256_set1_ps(u[0].imag());
    const __m256 u01r = _mm256_set1_ps(u[1].real());
    const __m256 u01i = _mm256_set1_ps(u[1].imag());
    const __m256 u10r = _mm256_set1_ps(u[2].real());
    const __m256 u10i = _mm256_set1_ps(u[2].imag());
    const __m256 u11r = _mm256_set1_ps(u[3].real());
    const __m256 u11i = _mm256_set1_ps(u[3].imag());
    for (std::size_t base = 0; base < dim; base += 2 * stride) {
        for (std::size_t off = 0; off < stride; off += 4) {
            float *p0 = raw + 2 * (base + off);
            float *p1 = p0 + 2 * stride;
            const __m256 a0 = _mm256_loadu_ps(p0);
            const __m256 a1 = _mm256_loadu_ps(p1);
            _mm256_storeu_ps(p0,
                             _mm256_add_ps(cmul_ps(a0, u00r, u00i),
                                           cmul_ps(a1, u01r, u01i)));
            _mm256_storeu_ps(p1,
                             _mm256_add_ps(cmul_ps(a0, u10r, u10i),
                                           cmul_ps(a1, u11r, u11i)));
        }
    }
}

__attribute__((target("avx2"))) inline void
avx2_diag_1q_ps(std::complex<float> *amps, std::size_t dim,
                std::size_t stride, std::complex<float> d0,
                std::complex<float> d1)
{
    float *raw = reinterpret_cast<float *>(amps);
    if (stride >= 4) {
        const __m256 d0r = _mm256_set1_ps(d0.real());
        const __m256 d0i = _mm256_set1_ps(d0.imag());
        const __m256 d1r = _mm256_set1_ps(d1.real());
        const __m256 d1i = _mm256_set1_ps(d1.imag());
        for (std::size_t base = 0; base < dim; base += 2 * stride) {
            for (std::size_t off = 0; off < stride; off += 4) {
                float *p0 = raw + 2 * (base + off);
                float *p1 = p0 + 2 * stride;
                _mm256_storeu_ps(
                    p0, cmul_ps(_mm256_loadu_ps(p0), d0r, d0i));
                _mm256_storeu_ps(
                    p1, cmul_ps(_mm256_loadu_ps(p1), d1r, d1i));
            }
        }
        return;
    }
    if (dim < 4) {
        scalar_diag_1q(amps, stride, d0, d1, 0, dim);
        return;
    }
    // stride 1 or 2: build a mixed per-lane multiplier (pattern period
    // 2*stride divides the 4-lane width). Lane k holds amplitude
    // index i with i % 4 == k, whose diagonal factor is d1 iff the
    // stride bit of i is set.
    const std::complex<float> lane[4] = {
        (0 & stride) ? d1 : d0, (1 & stride) ? d1 : d0,
        (2 & stride) ? d1 : d0, (3 & stride) ? d1 : d0};
    const __m256 mr =
        _mm256_set_ps(lane[3].real(), lane[3].real(), lane[2].real(),
                      lane[2].real(), lane[1].real(), lane[1].real(),
                      lane[0].real(), lane[0].real());
    const __m256 mi =
        _mm256_set_ps(lane[3].imag(), lane[3].imag(), lane[2].imag(),
                      lane[2].imag(), lane[1].imag(), lane[1].imag(),
                      lane[0].imag(), lane[0].imag());
    for (std::size_t i = 0; i + 4 <= dim; i += 4) {
        float *p = raw + 2 * i;
        _mm256_storeu_ps(p, cmul_ps(_mm256_loadu_ps(p), mr, mi));
    }
}

__attribute__((target("avx2"))) inline void
avx2_2q_ps(std::complex<float> *amps, std::size_t dim, std::size_t m0,
           std::size_t m1, const std::complex<float> *u)
{
    const std::size_t lo = m0 < m1 ? m0 : m1;
    const std::size_t hi = m0 < m1 ? m1 : m0;
    const std::size_t groups = dim >> 2;
    if (lo < 4) {
        scalar_2q(amps, m0, m1, lo, hi, u, 0, groups);
        return;
    }
    float *raw = reinterpret_cast<float *>(amps);
    for (std::size_t g = 0; g + 4 <= groups; g += 4) {
        const std::size_t i =
            insert_zero_bit(insert_zero_bit(g, lo), hi);
        const std::size_t idx[4] = {i, i | m1, i | m0, i | m0 | m1};
        __m256 in[4], out[4];
        for (std::size_t k = 0; k < 4; ++k)
            in[k] = _mm256_loadu_ps(raw + 2 * idx[k]);
        matvec_ps(u, 4, in, out);
        for (std::size_t r = 0; r < 4; ++r)
            _mm256_storeu_ps(raw + 2 * idx[r], out[r]);
    }
    if (groups & 3)
        scalar_2q(amps, m0, m1, lo, hi, u, groups & ~std::size_t{3},
                  groups);
}

__attribute__((target("avx2"))) inline void
avx2_4q_ps(std::complex<float> *amps, std::size_t dim,
           const std::size_t *sorted, const std::size_t *offset,
           const std::complex<float> *u)
{
    const std::size_t groups = dim >> 4;
    if (sorted[0] < 4) {
        scalar_4q(amps, sorted, offset, u, 0, groups);
        return;
    }
    float *raw = reinterpret_cast<float *>(amps);
    for (std::size_t g = 0; g + 4 <= groups; g += 4) {
        std::size_t i = g;
        for (int a = 0; a < 4; ++a)
            i = insert_zero_bit(i, sorted[a]);
        __m256 in[16], out[16];
        for (std::size_t k = 0; k < 16; ++k)
            in[k] = _mm256_loadu_ps(raw + 2 * (i | offset[k]));
        matvec_ps(u, 16, in, out);
        for (std::size_t r = 0; r < 16; ++r)
            _mm256_storeu_ps(raw + 2 * (i | offset[r]), out[r]);
    }
    if (groups & 3)
        scalar_4q(amps, sorted, offset, u, groups & ~std::size_t{3},
                  groups);
}

// ---------------------------------------------------------------------
// AVX-512F, double precision (4 complex<double> lanes per zmm). Plain
// contiguous cases; smaller strides delegate to the AVX2 kernels
// (which remain bit-identical).

/** AVX-512 has no addsub: negate the real lanes of t2 and add, which
 *  is IEEE-identical to the subtraction (a - b == a + (-b)). */
__attribute__((target("avx512f"))) inline __m512d
cmul512_pd(__m512d a, __m512d wr, __m512d wi, __m512d negreal)
{
    const __m512d t1 = _mm512_mul_pd(a, wr);
    const __m512d sw = _mm512_permute_pd(a, 0x55);
    __m512d t2 = _mm512_mul_pd(sw, wi);
    t2 = _mm512_castsi512_pd(_mm512_xor_si512(
        _mm512_castpd_si512(t2), _mm512_castpd_si512(negreal)));
    return _mm512_add_pd(t1, t2);
}

__attribute__((target("avx512f"))) inline __m512d
negreal512()
{
    return _mm512_set_pd(0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0);
}

__attribute__((target("avx512f"))) inline void
matvec512_pd(const std::complex<double> *u, std::size_t n,
             const __m512d *in, __m512d *out)
{
    const __m512d nr = negreal512();
    for (std::size_t r = 0; r < n; ++r) {
        __m512d acc = _mm512_setzero_pd();
        for (std::size_t c = 0; c < n; ++c) {
            const std::complex<double> w = u[r * n + c];
            acc = _mm512_add_pd(
                acc, cmul512_pd(in[c], _mm512_set1_pd(w.real()),
                                _mm512_set1_pd(w.imag()), nr));
        }
        out[r] = acc;
    }
}

__attribute__((target("avx512f"))) inline void
avx512_1q_pd(std::complex<double> *amps, std::size_t dim,
             std::size_t stride, const std::complex<double> *u)
{
    double *raw = reinterpret_cast<double *>(amps);
    const __m512d nr = negreal512();
    const __m512d u00r = _mm512_set1_pd(u[0].real());
    const __m512d u00i = _mm512_set1_pd(u[0].imag());
    const __m512d u01r = _mm512_set1_pd(u[1].real());
    const __m512d u01i = _mm512_set1_pd(u[1].imag());
    const __m512d u10r = _mm512_set1_pd(u[2].real());
    const __m512d u10i = _mm512_set1_pd(u[2].imag());
    const __m512d u11r = _mm512_set1_pd(u[3].real());
    const __m512d u11i = _mm512_set1_pd(u[3].imag());
    for (std::size_t base = 0; base < dim; base += 2 * stride) {
        for (std::size_t off = 0; off < stride; off += 4) {
            double *p0 = raw + 2 * (base + off);
            double *p1 = p0 + 2 * stride;
            const __m512d a0 = _mm512_loadu_pd(p0);
            const __m512d a1 = _mm512_loadu_pd(p1);
            _mm512_storeu_pd(
                p0, _mm512_add_pd(cmul512_pd(a0, u00r, u00i, nr),
                                  cmul512_pd(a1, u01r, u01i, nr)));
            _mm512_storeu_pd(
                p1, _mm512_add_pd(cmul512_pd(a0, u10r, u10i, nr),
                                  cmul512_pd(a1, u11r, u11i, nr)));
        }
    }
}

__attribute__((target("avx512f"))) inline void
avx512_diag_1q_pd(std::complex<double> *amps, std::size_t dim,
                  std::size_t stride, std::complex<double> d0,
                  std::complex<double> d1)
{
    double *raw = reinterpret_cast<double *>(amps);
    const __m512d nr = negreal512();
    const __m512d d0r = _mm512_set1_pd(d0.real());
    const __m512d d0i = _mm512_set1_pd(d0.imag());
    const __m512d d1r = _mm512_set1_pd(d1.real());
    const __m512d d1i = _mm512_set1_pd(d1.imag());
    for (std::size_t base = 0; base < dim; base += 2 * stride) {
        for (std::size_t off = 0; off < stride; off += 4) {
            double *p0 = raw + 2 * (base + off);
            double *p1 = p0 + 2 * stride;
            _mm512_storeu_pd(
                p0, cmul512_pd(_mm512_loadu_pd(p0), d0r, d0i, nr));
            _mm512_storeu_pd(
                p1, cmul512_pd(_mm512_loadu_pd(p1), d1r, d1i, nr));
        }
    }
}

__attribute__((target("avx512f"))) inline void
avx512_2q_pd(std::complex<double> *amps, std::size_t dim, std::size_t m0,
             std::size_t m1, const std::complex<double> *u)
{
    double *raw = reinterpret_cast<double *>(amps);
    const std::size_t lo = m0 < m1 ? m0 : m1;
    const std::size_t hi = m0 < m1 ? m1 : m0;
    const std::size_t groups = dim >> 2;
    for (std::size_t g = 0; g + 4 <= groups; g += 4) {
        const std::size_t i =
            insert_zero_bit(insert_zero_bit(g, lo), hi);
        const std::size_t idx[4] = {i, i | m1, i | m0, i | m0 | m1};
        __m512d in[4], out[4];
        for (std::size_t k = 0; k < 4; ++k)
            in[k] = _mm512_loadu_pd(raw + 2 * idx[k]);
        matvec512_pd(u, 4, in, out);
        for (std::size_t r = 0; r < 4; ++r)
            _mm512_storeu_pd(raw + 2 * idx[r], out[r]);
    }
    if (groups & 3)
        scalar_2q(amps, m0, m1, lo, hi, u, groups & ~std::size_t{3},
                  groups);
}

__attribute__((target("avx512f"))) inline void
avx512_4q_pd(std::complex<double> *amps, std::size_t dim,
             const std::size_t *sorted, const std::size_t *offset,
             const std::complex<double> *u)
{
    double *raw = reinterpret_cast<double *>(amps);
    const std::size_t groups = dim >> 4;
    for (std::size_t g = 0; g + 4 <= groups; g += 4) {
        std::size_t i = g;
        for (int a = 0; a < 4; ++a)
            i = insert_zero_bit(i, sorted[a]);
        __m512d in[16], out[16];
        for (std::size_t k = 0; k < 16; ++k)
            in[k] = _mm512_loadu_pd(raw + 2 * (i | offset[k]));
        matvec512_pd(u, 16, in, out);
        for (std::size_t r = 0; r < 16; ++r)
            _mm512_storeu_pd(raw + 2 * (i | offset[r]), out[r]);
    }
    if (groups & 3)
        scalar_4q(amps, sorted, offset, u, groups & ~std::size_t{3},
                  groups);
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#pragma GCC pop_options
#endif

#endif // ELV_VEC_X86

// ---------------------------------------------------------------------
// Tier dispatch. Float has no dedicated AVX-512 kernels (the proxy
// path's win is the halved memory traffic, already realized at 256
// bits); an AVX-512 host runs floats through the AVX2 kernels.

template <typename T>
inline void
apply_1q(std::complex<T> *amps, std::size_t dim, std::size_t stride,
         const std::complex<T> *u)
{
#if ELV_VEC_X86
    const KernelTier tier = active_tier();
    if constexpr (std::is_same_v<T, double>) {
        if (tier == KernelTier::AVX512 && stride >= 4) {
            avx512_1q_pd(amps, dim, stride, u);
            return;
        }
        if (tier != KernelTier::Baseline) {
            avx2_1q_pd(amps, dim, stride, u);
            return;
        }
    } else {
        if (tier != KernelTier::Baseline) {
            avx2_1q_ps(amps, dim, stride, u);
            return;
        }
    }
#endif
    scalar_1q(amps, dim, stride, u, 0, dim);
}

template <typename T>
inline void
apply_diag_1q(std::complex<T> *amps, std::size_t dim, std::size_t stride,
              std::complex<T> d0, std::complex<T> d1)
{
#if ELV_VEC_X86
    const KernelTier tier = active_tier();
    if constexpr (std::is_same_v<T, double>) {
        if (tier == KernelTier::AVX512 && stride >= 4) {
            avx512_diag_1q_pd(amps, dim, stride, d0, d1);
            return;
        }
        if (tier != KernelTier::Baseline) {
            avx2_diag_1q_pd(amps, dim, stride, d0, d1);
            return;
        }
    } else {
        if (tier != KernelTier::Baseline) {
            avx2_diag_1q_ps(amps, dim, stride, d0, d1);
            return;
        }
    }
#endif
    scalar_diag_1q(amps, stride, d0, d1, 0, dim);
}

template <typename T>
inline void
apply_2q(std::complex<T> *amps, std::size_t dim, std::size_t m0,
         std::size_t m1, const std::complex<T> *u)
{
    const std::size_t lo = m0 < m1 ? m0 : m1;
    const std::size_t hi = m0 < m1 ? m1 : m0;
#if ELV_VEC_X86
    const KernelTier tier = active_tier();
    if constexpr (std::is_same_v<T, double>) {
        if (tier == KernelTier::AVX512 && lo >= 4) {
            avx512_2q_pd(amps, dim, m0, m1, u);
            return;
        }
        if (tier != KernelTier::Baseline) {
            avx2_2q_pd(amps, dim, m0, m1, u);
            return;
        }
    } else {
        if (tier != KernelTier::Baseline) {
            avx2_2q_ps(amps, dim, m0, m1, u);
            return;
        }
    }
#endif
    scalar_2q(amps, m0, m1, lo, hi, u, 0, dim >> 2);
}

template <typename T>
inline void
apply_4q(std::complex<T> *amps, std::size_t dim, std::size_t m0,
         std::size_t m1, std::size_t m2, std::size_t m3,
         const std::complex<T> *u)
{
    // Gather needs the insertion masks in ascending order; the local
    // basis order stays |q0 q1 q2 q3> via the offset table.
    std::size_t sorted[4] = {m0, m1, m2, m3};
    for (int a = 0; a < 4; ++a)
        for (int b = a + 1; b < 4; ++b)
            if (sorted[b] < sorted[a])
                std::swap(sorted[a], sorted[b]);
    std::size_t offset[16];
    for (std::size_t k = 0; k < 16; ++k)
        offset[k] = ((k & 8) ? m0 : 0) | ((k & 4) ? m1 : 0) |
                    ((k & 2) ? m2 : 0) | ((k & 1) ? m3 : 0);
#if ELV_VEC_X86
    const KernelTier tier = active_tier();
    if constexpr (std::is_same_v<T, double>) {
        if (tier == KernelTier::AVX512 && sorted[0] >= 4) {
            avx512_4q_pd(amps, dim, sorted, offset, u);
            return;
        }
        if (tier != KernelTier::Baseline) {
            avx2_4q_pd(amps, dim, sorted, offset, u);
            return;
        }
    } else {
        if (tier != KernelTier::Baseline) {
            avx2_4q_ps(amps, dim, sorted, offset, u);
            return;
        }
    }
#endif
    scalar_4q(amps, sorted, offset, u, 0, dim >> 4);
}

} // namespace elv::sim::vec
