#include "sim/gradients.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "sim/fusion.hpp"

namespace elv::sim {

namespace {

/** Apply U_op^dagger for a fixed-angle op. */
void
apply_op_dagger(StateVector &psi, const circ::Op &op,
                const std::array<double, 3> &angles)
{
    if (op.num_qubits() == 1)
        psi.apply_1q(dagger(gate_matrix_1q(op.kind, angles)), op.qubits[0]);
    else
        psi.apply_2q(dagger(gate_matrix_2q(op.kind, angles)), op.qubits[0],
                     op.qubits[1]);
}

/** 2 * Re(<lhs| M |rhs>) where M is the derivative matrix of the op. */
double
deriv_overlap(const StateVector &lhs, const StateVector &rhs,
              const circ::Op &op, const std::array<double, 3> &angles,
              int slot)
{
    StateVector mu = rhs;
    if (op.num_qubits() == 1)
        mu.apply_1q(gate_matrix_1q_deriv(op.kind, angles, slot),
                    op.qubits[0]);
    else
        mu.apply_2q(gate_matrix_2q_deriv(op.kind, angles, slot),
                    op.qubits[0], op.qubits[1]);
    Amp acc(0);
    for (std::size_t i = 0; i < mu.dim(); ++i)
        acc += std::conj(lhs.amp(i)) * mu.amp(i);
    return 2.0 * acc.real();
}

} // namespace

std::vector<double>
expectations(const circ::Circuit &circuit, const std::vector<double> &params,
             const std::vector<double> &x,
             const std::vector<DiagonalObservable> &obs)
{
    StateVector psi(circuit.num_qubits());
    // Through the fusion cache: parameter-shift gradients evaluate the
    // same circuit 2P+1 times per call, so the compile cost amortizes
    // immediately.
    fused_run(psi, circuit, params, x);
    std::vector<double> values;
    values.reserve(obs.size());
    // All observables share the measured-qubit distribution; evaluate it
    // once when they use identical qubit sets.
    for (const auto &o : obs)
        values.push_back(o.expectation(psi));
    return values;
}

GradientResult
adjoint_gradient(const circ::Circuit &circuit,
                 const std::vector<double> &params,
                 const std::vector<double> &x,
                 const std::vector<DiagonalObservable> &obs,
                 bool with_embedding_grads)
{
    const auto &ops = circuit.ops();
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].kind == circ::GateKind::AmpEmbed)
            ELV_REQUIRE(i == 0, "amplitude embedding must be the first op "
                                "for adjoint differentiation");
    }

    // Map op index -> position in embedding_op_indices() order.
    std::vector<int> embed_position(ops.size(), -1);
    std::size_t num_embeds = 0;
    if (with_embedding_grads) {
        for (std::size_t i = 0; i < ops.size(); ++i) {
            if (ops[i].role != circ::ParamRole::Embedding)
                continue;
            ELV_REQUIRE(ops[i].kind != circ::GateKind::AmpEmbed,
                        "amplitude embeddings have no angle gradient");
            ELV_REQUIRE(ops[i].data_index2 < 0,
                        "product embeddings unsupported for embedding "
                        "gradients");
            embed_position[i] = static_cast<int>(num_embeds++);
        }
    }

    GradientResult result;
    result.values.resize(obs.size());
    result.jacobian.assign(obs.size(),
                           std::vector<double>(
                               static_cast<std::size_t>(
                                   circuit.num_params()),
                               0.0));
    if (with_embedding_grads)
        result.embedding_jacobian.assign(
            obs.size(), std::vector<double>(num_embeds, 0.0));
    result.circuit_executions = 1;

    StateVector forward(circuit.num_qubits());
    // Fused forward pass; the reverse sweep stays op-by-op because it
    // needs per-op derivative insertions.
    fused_run(forward, circuit, params, x);

    for (std::size_t oi = 0; oi < obs.size(); ++oi) {
        result.values[oi] = obs[oi].expectation(forward);

        StateVector psi = forward;
        StateVector lambda = forward;
        obs[oi].apply_to(lambda);

        for (std::size_t k = ops.size(); k-- > 0;) {
            const circ::Op &op = ops[k];
            if (op.kind == circ::GateKind::AmpEmbed)
                break; // state preparation: nothing differentiable before
            const auto angles = circ::op_angles(op, params, x);
            apply_op_dagger(psi, op, angles);
            if (op.role == circ::ParamRole::Variational) {
                for (int slot = 0; slot < op.num_params(); ++slot) {
                    result.jacobian[oi][static_cast<std::size_t>(
                        op.param_index + slot)] =
                        deriv_overlap(lambda, psi, op, angles, slot);
                }
            } else if (with_embedding_grads &&
                       op.role == circ::ParamRole::Embedding) {
                result.embedding_jacobian[oi][static_cast<std::size_t>(
                    embed_position[k])] =
                    deriv_overlap(lambda, psi, op, angles, 0);
            }
            apply_op_dagger(lambda, op, angles);
        }
    }
    return result;
}

GradientResult
parameter_shift_gradient(const circ::Circuit &circuit,
                         const std::vector<double> &params,
                         const std::vector<double> &x,
                         const std::vector<DiagonalObservable> &obs)
{
    GradientResult result;
    result.values = expectations(circuit, params, x, obs);
    result.circuit_executions = 1;
    result.jacobian.assign(
        obs.size(),
        std::vector<double>(static_cast<std::size_t>(circuit.num_params()),
                            0.0));

    auto eval_shifted = [&](std::size_t pi, double shift) {
        std::vector<double> shifted = params;
        shifted[pi] += shift;
        ++result.circuit_executions;
        return expectations(circuit, shifted, x, obs);
    };

    for (const circ::Op &op : circuit.ops()) {
        if (op.role != circ::ParamRole::Variational)
            continue;
        for (int slot = 0; slot < op.num_params(); ++slot) {
            const std::size_t pi =
                static_cast<std::size_t>(op.param_index + slot);
            if (op.kind == circ::GateKind::CRY) {
                // Four-term rule for generators with eigenvalues
                // {0, +-1/2}: frequencies {1/2, 1}.
                const double c1 = (std::sqrt(2.0) + 1.0) /
                                  (4.0 * std::sqrt(2.0));
                const double c2 = (std::sqrt(2.0) - 1.0) /
                                  (4.0 * std::sqrt(2.0));
                const auto p1 = eval_shifted(pi, M_PI / 2);
                const auto m1 = eval_shifted(pi, -M_PI / 2);
                const auto p2 = eval_shifted(pi, 3 * M_PI / 2);
                const auto m2 = eval_shifted(pi, -3 * M_PI / 2);
                for (std::size_t oi = 0; oi < obs.size(); ++oi)
                    result.jacobian[oi][pi] =
                        c1 * (p1[oi] - m1[oi]) - c2 * (p2[oi] - m2[oi]);
            } else {
                // Exact two-term rule for rotations with generator
                // eigenvalues +-1/2.
                const auto plus = eval_shifted(pi, M_PI / 2);
                const auto minus = eval_shifted(pi, -M_PI / 2);
                for (std::size_t oi = 0; oi < obs.size(); ++oi)
                    result.jacobian[oi][pi] =
                        0.5 * (plus[oi] - minus[oi]);
            }
        }
    }
    return result;
}

} // namespace elv::sim
