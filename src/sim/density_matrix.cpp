#include "sim/density_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace elv::sim {

template <typename T>
BasicDensityMatrix<T>::BasicDensityMatrix(int num_qubits)
    : num_qubits_(num_qubits), vec_(2 * num_qubits)
{
    ELV_REQUIRE(num_qubits >= 1 && num_qubits <= 13,
                "density matrix limited to 1..13 qubits");
}

template <typename T>
void
BasicDensityMatrix<T>::reset()
{
    vec_.reset();
}

template <typename T>
typename BasicDensityMatrix<T>::AmpT
BasicDensityMatrix<T>::element(std::size_t row, std::size_t col) const
{
    const std::size_t n = static_cast<std::size_t>(num_qubits_);
    return vec_.amp(row | (col << n));
}

template <typename T>
void
BasicDensityMatrix<T>::set_pure(const BasicStateVector<T> &psi)
{
    ELV_REQUIRE(psi.num_qubits() == num_qubits_,
                "pure-state qubit count mismatch");
    auto &data = vec_.amps();
    const std::size_t dim = psi.dim();
    for (std::size_t c = 0; c < dim; ++c)
        for (std::size_t r = 0; r < dim; ++r)
            data[r | (c << num_qubits_)] =
                psi.amp(r) * std::conj(psi.amp(c));
}

template <typename T>
void
BasicDensityMatrix<T>::apply_1q(const Mat2 &u, int q)
{
    vec_.apply_1q(u, q);
    vec_.apply_1q(conjugate(u), q + num_qubits_);
}

template <typename T>
void
BasicDensityMatrix<T>::apply_2q(const Mat4 &u, int q0, int q1)
{
    vec_.apply_2q(u, q0, q1);
    vec_.apply_2q(conjugate(u), q0 + num_qubits_, q1 + num_qubits_);
}

template <typename T>
void
BasicDensityMatrix<T>::apply_kraus_1q(const std::vector<Mat2> &kraus, int q)
{
    ELV_REQUIRE(!kraus.empty(), "empty Kraus set");
    // Member scratch, sized on first use: copying into it and the
    // final swap recycle both buffers, so repeated channel
    // applications allocate nothing.
    auto &state = vec_.amps();
    kraus_original_ = state;
    kraus_acc_.assign(state.size(), AmpT(0));
    for (const Mat2 &k : kraus) {
        std::copy(kraus_original_.begin(), kraus_original_.end(),
                  state.begin());
        apply_1q(k, q);
        for (std::size_t i = 0; i < state.size(); ++i)
            kraus_acc_[i] += state[i];
    }
    std::swap(state, kraus_acc_);
}

template <typename T>
void
BasicDensityMatrix<T>::apply_kraus_2q(const std::vector<Mat4> &kraus,
                                      int q0, int q1)
{
    ELV_REQUIRE(!kraus.empty(), "empty Kraus set");
    auto &state = vec_.amps();
    kraus_original_ = state;
    kraus_acc_.assign(state.size(), AmpT(0));
    for (const Mat4 &k : kraus) {
        std::copy(kraus_original_.begin(), kraus_original_.end(),
                  state.begin());
        apply_2q(k, q0, q1);
        for (std::size_t i = 0; i < state.size(); ++i)
            kraus_acc_[i] += state[i];
    }
    std::swap(state, kraus_acc_);
}

template <typename T>
void
BasicDensityMatrix<T>::apply_superop_1q(const Mat4 &s, int q)
{
    ELV_REQUIRE(q >= 0 && q < num_qubits_, "qubit out of range");
    ELV_METRIC_COUNT("sim.superop_applies");
    vec_.apply_2q(s, q, q + num_qubits_);
}

template <typename T>
void
BasicDensityMatrix<T>::apply_superop_2q(const Mat16 &s, int q0, int q1)
{
    ELV_REQUIRE(q0 >= 0 && q0 < num_qubits_ && q1 >= 0 &&
                    q1 < num_qubits_ && q0 != q1,
                "bad 2-qubit operands");
    ELV_METRIC_COUNT("sim.superop_applies");
    vec_.apply_4q(s, q0, q1, q0 + num_qubits_, q1 + num_qubits_);
}

template <typename T>
void
BasicDensityMatrix<T>::apply_depolarizing_1q(double p, int q)
{
    ELV_REQUIRE(p >= 0.0 && p <= 1.0, "bad depolarizing probability");
    const T lambda = static_cast<T>(4.0 * p / 3.0);
    const T keep = static_cast<T>(1) - lambda;
    const T half = static_cast<T>(0.5);
    const std::size_t dim = std::size_t{1} << num_qubits_;
    const std::size_t m = std::size_t{1} << q;
    auto &data = vec_.amps();
    for (std::size_t c = 0; c < dim; ++c) {
        for (std::size_t r = 0; r < dim; ++r) {
            const bool br = r & m, bc = c & m;
            const std::size_t idx = r | (c << num_qubits_);
            if (br != bc) {
                data[idx] *= keep;
            } else if (!br) {
                // Handle the (0,0)/(1,1) pair once, at the 0 slot.
                const std::size_t idx1 = (r | m) | ((c | m) <<
                                                    num_qubits_);
                const AmpT mix = half * (data[idx] + data[idx1]);
                data[idx] = keep * data[idx] + lambda * mix;
                data[idx1] = keep * data[idx1] + lambda * mix;
            }
        }
    }
}

template <typename T>
void
BasicDensityMatrix<T>::apply_depolarizing_2q(double p, int q0, int q1)
{
    ELV_REQUIRE(p >= 0.0 && p <= 1.0, "bad depolarizing probability");
    ELV_REQUIRE(q0 != q1, "depolarizing on equal qubits");
    const T lambda = static_cast<T>(16.0 * p / 15.0);
    const T keep = static_cast<T>(1) - lambda;
    const std::size_t dim = std::size_t{1} << num_qubits_;
    const std::size_t m0 = std::size_t{1} << q0;
    const std::size_t m1 = std::size_t{1} << q1;
    const std::size_t both = m0 | m1;
    auto &data = vec_.amps();
    for (std::size_t c = 0; c < dim; ++c) {
        for (std::size_t r = 0; r < dim; ++r) {
            const bool same = ((r ^ c) & both) == 0;
            const std::size_t idx = r | (c << num_qubits_);
            if (!same) {
                data[idx] *= keep;
            } else if ((r & both) == 0) {
                // Average the four matched diagonal-in-subspace slots.
                const std::size_t rows[4] = {r, r | m1, r | m0, r | both};
                AmpT mix(0);
                std::size_t idxs[4];
                for (int k = 0; k < 4; ++k) {
                    const std::size_t cc =
                        (c & ~both) | (rows[k] & both);
                    idxs[k] = rows[k] | (cc << num_qubits_);
                    mix += data[idxs[k]];
                }
                mix *= static_cast<T>(0.25);
                for (auto i : idxs)
                    data[i] = keep * data[i] + lambda * mix;
            }
        }
    }
}

template <typename T>
void
BasicDensityMatrix<T>::apply_thermal_relaxation(double gamma,
                                                double lambda, int q)
{
    ELV_REQUIRE(gamma >= 0.0 && gamma <= 1.0 && lambda >= 0.0 &&
                    lambda <= 1.0,
                "bad relaxation parameters");
    const T keep = static_cast<T>(1.0 - gamma);
    const T gain = static_cast<T>(gamma);
    const T coherence =
        static_cast<T>(std::sqrt((1.0 - gamma) * (1.0 - lambda)));
    const std::size_t dim = std::size_t{1} << num_qubits_;
    const std::size_t m = std::size_t{1} << q;
    auto &data = vec_.amps();
    for (std::size_t c = 0; c < dim; ++c) {
        for (std::size_t r = 0; r < dim; ++r) {
            const bool br = r & m, bc = c & m;
            const std::size_t idx = r | (c << num_qubits_);
            if (br != bc) {
                data[idx] *= coherence;
            } else if (!br) {
                const std::size_t idx1 =
                    (r | m) | ((c | m) << num_qubits_);
                // (0,0) gains the decayed (1,1) population; then (1,1)
                // shrinks. Ordering matters: read old (1,1) first.
                data[idx] += gain * data[idx1];
                data[idx1] *= keep;
            }
        }
    }
}

template <typename T>
void
BasicDensityMatrix<T>::apply_op(const circ::Op &op,
                                const std::vector<double> &params,
                                const std::vector<double> &x)
{
    if (op.kind == circ::GateKind::AmpEmbed) {
        BasicStateVector<T> psi(num_qubits_);
        psi.set_amplitude_embedding(x);
        set_pure(psi);
        return;
    }
    if (specialized_) {
        const int n = num_qubits_;
        switch (op.kind) {
          case circ::GateKind::CX:
            vec_.apply_cx(op.qubits[0], op.qubits[1]);
            vec_.apply_cx(op.qubits[0] + n, op.qubits[1] + n);
            return;
          case circ::GateKind::CZ:
            vec_.apply_cz(op.qubits[0], op.qubits[1]);
            vec_.apply_cz(op.qubits[0] + n, op.qubits[1] + n);
            return;
          case circ::GateKind::SWAP:
            vec_.apply_swap(op.qubits[0], op.qubits[1]);
            vec_.apply_swap(op.qubits[0] + n, op.qubits[1] + n);
            return;
          default:
            break;
        }
        if (circ::gate_is_diagonal_1q(op.kind)) {
            const auto angles = circ::op_angles(op, params, x);
            const Mat2 u = gate_matrix_1q(op.kind, angles);
            vec_.apply_diag_1q(u[0][0], u[1][1], op.qubits[0]);
            vec_.apply_diag_1q(std::conj(u[0][0]), std::conj(u[1][1]),
                               op.qubits[0] + n);
            return;
        }
    }
    const auto angles = circ::op_angles(op, params, x);
    if (op.num_qubits() == 1)
        apply_1q(gate_matrix_1q(op.kind, angles), op.qubits[0]);
    else
        apply_2q(gate_matrix_2q(op.kind, angles), op.qubits[0],
                 op.qubits[1]);
}

template <typename T>
void
BasicDensityMatrix<T>::run(const circ::Circuit &circuit,
                           const std::vector<double> &params,
                           const std::vector<double> &x)
{
    ELV_REQUIRE(circuit.num_qubits() == num_qubits_,
                "circuit/state qubit count mismatch");
    // Coarse-granularity span: one per circuit run, never per gate.
    ELV_TRACE_SCOPE("dm.run", "sim");
    reset();
    for (const circ::Op &op : circuit.ops())
        apply_op(op, params, x);
}

template <typename T>
double
BasicDensityMatrix<T>::trace() const
{
    double t = 0.0;
    const std::size_t dim = std::size_t{1} << num_qubits_;
    for (std::size_t i = 0; i < dim; ++i)
        t += static_cast<double>(element(i, i).real());
    return t;
}

template <typename T>
double
BasicDensityMatrix<T>::purity() const
{
    // Tr(rho^2) = sum_{r,c} |rho(r,c)|^2 for Hermitian rho.
    double p = 0.0;
    for (const AmpT &a : vec_.amps()) {
        const double re = a.real();
        const double im = a.imag();
        p += re * re + im * im;
    }
    return p;
}

template <typename T>
std::vector<double>
BasicDensityMatrix<T>::probabilities(const std::vector<int> &qubits) const
{
    ELV_REQUIRE(qubits.size() <= 20, "too many measured qubits");
    std::vector<double> probs(std::size_t{1} << qubits.size(), 0.0);
    const std::size_t dim = std::size_t{1} << num_qubits_;
    for (std::size_t i = 0; i < dim; ++i) {
        const double p = static_cast<double>(element(i, i).real());
        std::size_t outcome = 0;
        for (std::size_t b = 0; b < qubits.size(); ++b)
            if (i & (std::size_t{1} << qubits[b]))
                outcome |= std::size_t{1} << b;
        probs[outcome] += p;
    }
    return probs;
}

template class BasicDensityMatrix<double>;
template class BasicDensityMatrix<float>;

} // namespace elv::sim
