/**
 * @file
 * Diagonal observables over a measured-qubit subset.
 *
 * Classification heads in this library are diagonal observables: Pauli-Z
 * expectations and outcome-group projectors (class logits are probability
 * masses of groups of computational-basis outcomes, the TorchQuantum
 * convention). Diagonal observables keep both the adjoint and the
 * parameter-shift differentiation paths simple and exact.
 */
#pragma once

#include <vector>

#include "sim/statevector.hpp"

namespace elv::sim {

/** O = sum_k w_k |k><k| over the outcomes of an ordered qubit subset. */
class DiagonalObservable
{
  public:
    /**
     * @param qubits   measured qubits; bit i of the outcome index is the
     *                 readout of qubits[i]
     * @param weights  one weight per outcome (size 2^qubits.size())
     */
    DiagonalObservable(std::vector<int> qubits,
                       std::vector<double> weights);

    const std::vector<int> &qubits() const { return qubits_; }
    const std::vector<double> &weights() const { return weights_; }

    /** <psi|O|psi>. */
    double expectation(const StateVector &psi) const;

    /** Expectation given a precomputed outcome distribution. */
    double expectation(const std::vector<double> &outcome_probs) const;

    /** psi <- O psi (entrywise reweighting of amplitudes). */
    void apply_to(StateVector &psi) const;

    /** Z on a single qubit (weights +1 / -1). */
    static DiagonalObservable pauli_z(int qubit);

    /**
     * Projector onto outcomes assigned to `group` under round-robin
     * assignment outcome -> outcome % num_groups (the class-logit head).
     */
    static DiagonalObservable outcome_group(const std::vector<int> &qubits,
                                            int num_groups, int group);

  private:
    std::vector<int> qubits_;
    std::vector<double> weights_;
};

/**
 * Build the class-logit heads for a circuit: one outcome-group projector
 * per class over the circuit's measured qubits.
 */
std::vector<DiagonalObservable> class_projectors(
    const std::vector<int> &measured_qubits, int num_classes);

} // namespace elv::sim
