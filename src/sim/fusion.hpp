/**
 * @file
 * Gate-fusion pass over the circuit IR.
 *
 * A FusedProgram is a compiled op stream where runs of adjacent fixed
 * 1-qubit gates on the same qubit are collapsed into one Mat2, and
 * fixed 1-qubit gates adjacent to a fixed 2-qubit gate are absorbed
 * into its Mat4. Parametric gates (variational or embedding) and the
 * amplitude-embedding pseudo-op are fusion *barriers*: their angles
 * depend on runtime (params, x) values, so they are kept as IR ops and
 * nothing fuses across them on the qubits they touch. A fused program
 * therefore replays bit-identically-shaped arithmetic per gate group
 * while executing far fewer state-vector passes on Clifford-heavy
 * circuits (CNR replicas are all-fixed and fuse maximally).
 *
 * FusedProgram::run matches StateVector::run up to floating-point
 * reassociation within each fused group (~1e-15 per amplitude).
 *
 * The process-wide FusionCache memoizes compiled programs by the exact
 * serialized circuit text, so CNR replicas, RepCap re-executions and
 * parameter-shift loops compile once per distinct circuit.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/circuit.hpp"
#include "sim/statevector.hpp"
#include "sim/unitaries.hpp"

namespace elv::sim {

/** One entry of a compiled fused op stream. */
struct FusedOp
{
    enum class Kind {
        One,     ///< dense Mat2 on q0 (one or more fused fixed gates)
        Two,     ///< dense Mat4 on (q0, q1), basis |q0 q1>
        Barrier, ///< parametric / amplitude-embedding IR op, kept as-is
    };

    Kind kind = Kind::Barrier;
    Mat2 m2{};
    Mat4 m4{};
    int q0 = -1;
    int q1 = -1;
    /** The original IR op (Barrier entries only). */
    circ::Op op{};
};

/** A circuit compiled through the gate-fusion pass. */
class FusedProgram
{
  public:
    /** Compile `circuit` into a fused op stream. */
    static FusedProgram compile(const circ::Circuit &circuit);

    /**
     * Run from |0...0>: resets `psi`, then applies the fused stream.
     * Equivalent to StateVector::run on the source circuit within
     * floating-point reassociation of each fused group. Works on both
     * precision instantiations; fused matrices stay double and convert
     * at the kernel boundary.
     */
    template <typename T>
    void run(BasicStateVector<T> &psi,
             const std::vector<double> &params = {},
             const std::vector<double> &x = {}) const;

    const std::vector<FusedOp> &ops() const { return ops_; }

    /** Source-circuit ops eliminated by fusion. */
    std::uint64_t ops_merged() const { return ops_merged_; }

    /** Source-circuit op count before fusion. */
    std::size_t source_ops() const { return source_ops_; }

    /**
     * Leading source ops whose matrices resolved fully at compile time
     * (everything before the first fusion barrier): the state they
     * produce is identical for every (params, x), so a cached prefix
     * state could replace re-executing them on each run. This is the
     * compiled-level counterpart of the lint dataflow pass's
     * const/Clifford region inference (lint/dataflow.hpp) — the
     * dataflow Clifford prefix is always <= this count, since fixed
     * Clifford gates are a subset of fixed gates.
     */
    std::size_t const_prefix_source_ops() const
    {
        return const_prefix_source_ops_;
    }

    int num_qubits() const { return num_qubits_; }

  private:
    std::vector<FusedOp> ops_;
    std::uint64_t ops_merged_ = 0;
    std::size_t source_ops_ = 0;
    std::size_t const_prefix_source_ops_ = 0;
    int num_qubits_ = 1;
};

/**
 * Process-wide cache of compiled FusedPrograms keyed by the exact
 * circuit serialization (collision-free). Bounded: the cache is
 * cleared wholesale when it reaches capacity, which keeps the common
 * access pattern (a handful of hot circuits re-run thousands of times)
 * fully cached without ever growing unboundedly across a search.
 */
class FusionCache
{
  public:
    static FusionCache &global();

    /** The compiled program for `circuit`, compiling on first use. */
    std::shared_ptr<const FusedProgram> get(const circ::Circuit &circuit);

    /** Entries currently cached (for tests). */
    std::size_t size() const;

    /** Drop every cached program. */
    void clear();

  private:
    static constexpr std::size_t kCapacity = 256;

    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::shared_ptr<const FusedProgram>>
        programs_;
};

/**
 * Run `circuit` on `psi` through the fusion cache. Drop-in replacement
 * for StateVector::run on hot paths that re-execute the same circuit
 * many times (training, RepCap, CNR ideal outputs). Compiled programs
 * are precision-agnostic, so both instantiations share one cache entry
 * per circuit.
 */
template <typename T>
void fused_run(BasicStateVector<T> &psi, const circ::Circuit &circuit,
               const std::vector<double> &params = {},
               const std::vector<double> &x = {});

extern template void
FusedProgram::run(BasicStateVector<double> &, const std::vector<double> &,
                  const std::vector<double> &) const;
extern template void
FusedProgram::run(BasicStateVector<float> &, const std::vector<double> &,
                  const std::vector<double> &) const;
extern template void fused_run(BasicStateVector<double> &,
                               const circ::Circuit &,
                               const std::vector<double> &,
                               const std::vector<double> &);
extern template void fused_run(BasicStateVector<float> &,
                               const circ::Circuit &,
                               const std::vector<double> &,
                               const std::vector<double> &);

} // namespace elv::sim
