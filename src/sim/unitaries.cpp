#include "sim/unitaries.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace elv::sim {

namespace {

constexpr Amp kI = Amp(0.0, 1.0);

Mat2
rx(double t)
{
    const double c = std::cos(t / 2), s = std::sin(t / 2);
    return {{{Amp(c), -kI * s}, {-kI * s, Amp(c)}}};
}

Mat2
ry(double t)
{
    const double c = std::cos(t / 2), s = std::sin(t / 2);
    return {{{Amp(c), Amp(-s)}, {Amp(s), Amp(c)}}};
}

Mat2
rz(double t)
{
    return {{{std::exp(-kI * (t / 2)), Amp(0)},
             {Amp(0), std::exp(kI * (t / 2))}}};
}

Mat2
u3(double t, double p, double l)
{
    const double c = std::cos(t / 2), s = std::sin(t / 2);
    return {{{Amp(c), -std::exp(kI * l) * s},
             {std::exp(kI * p) * s, std::exp(kI * (p + l)) * c}}};
}

} // namespace

Mat2
gate_matrix_1q(circ::GateKind kind, const std::array<double, 3> &a)
{
    using circ::GateKind;
    constexpr double kSqrtHalf = 0.70710678118654752440;
    switch (kind) {
      case GateKind::RX: return rx(a[0]);
      case GateKind::RY: return ry(a[0]);
      case GateKind::RZ: return rz(a[0]);
      case GateKind::U3: return u3(a[0], a[1], a[2]);
      case GateKind::H:
        return {{{Amp(kSqrtHalf), Amp(kSqrtHalf)},
                 {Amp(kSqrtHalf), Amp(-kSqrtHalf)}}};
      case GateKind::S:
        return {{{Amp(1), Amp(0)}, {Amp(0), kI}}};
      case GateKind::Sdg:
        return {{{Amp(1), Amp(0)}, {Amp(0), -kI}}};
      case GateKind::X:
        return {{{Amp(0), Amp(1)}, {Amp(1), Amp(0)}}};
      case GateKind::Y:
        return {{{Amp(0), -kI}, {kI, Amp(0)}}};
      case GateKind::Z:
        return {{{Amp(1), Amp(0)}, {Amp(0), Amp(-1)}}};
      default:
        ELV_REQUIRE(false, "not a 1-qubit gate");
    }
    return identity2();
}

Mat4
gate_matrix_2q(circ::GateKind kind, const std::array<double, 3> &a)
{
    using circ::GateKind;
    Mat4 m = {};
    switch (kind) {
      case GateKind::CX:
        m[0][0] = m[1][1] = m[2][3] = m[3][2] = Amp(1);
        return m;
      case GateKind::CZ:
        m[0][0] = m[1][1] = m[2][2] = Amp(1);
        m[3][3] = Amp(-1);
        return m;
      case GateKind::SWAP:
        m[0][0] = m[1][2] = m[2][1] = m[3][3] = Amp(1);
        return m;
      case GateKind::CRY: {
        const double c = std::cos(a[0] / 2), s = std::sin(a[0] / 2);
        m[0][0] = m[1][1] = Amp(1);
        m[2][2] = Amp(c);
        m[2][3] = Amp(-s);
        m[3][2] = Amp(s);
        m[3][3] = Amp(c);
        return m;
      }
      default:
        ELV_REQUIRE(false, "not a 2-qubit gate");
    }
    return m;
}

Mat2
gate_matrix_1q_deriv(circ::GateKind kind, const std::array<double, 3> &a,
                     int slot)
{
    using circ::GateKind;
    const double t = a[0], p = a[1], l = a[2];
    switch (kind) {
      case GateKind::RX: {
        ELV_REQUIRE(slot == 0, "RX has one parameter");
        const double c = std::cos(t / 2), s = std::sin(t / 2);
        return {{{Amp(-s / 2), -kI * (c / 2)},
                 {-kI * (c / 2), Amp(-s / 2)}}};
      }
      case GateKind::RY: {
        ELV_REQUIRE(slot == 0, "RY has one parameter");
        const double c = std::cos(t / 2), s = std::sin(t / 2);
        return {{{Amp(-s / 2), Amp(-c / 2)}, {Amp(c / 2), Amp(-s / 2)}}};
      }
      case GateKind::RZ: {
        ELV_REQUIRE(slot == 0, "RZ has one parameter");
        return {{{-kI * 0.5 * std::exp(-kI * (t / 2)), Amp(0)},
                 {Amp(0), kI * 0.5 * std::exp(kI * (t / 2))}}};
      }
      case GateKind::U3: {
        const double c = std::cos(t / 2), s = std::sin(t / 2);
        if (slot == 0) {
            return {{{Amp(-s / 2), -std::exp(kI * l) * (c / 2)},
                     {std::exp(kI * p) * (c / 2),
                      -std::exp(kI * (p + l)) * (s / 2)}}};
        }
        if (slot == 1) {
            return {{{Amp(0), Amp(0)},
                     {kI * std::exp(kI * p) * s,
                      kI * std::exp(kI * (p + l)) * c}}};
        }
        ELV_REQUIRE(slot == 2, "U3 has three parameters");
        return {{{Amp(0), -kI * std::exp(kI * l) * s},
                 {Amp(0), kI * std::exp(kI * (p + l)) * c}}};
      }
      default:
        ELV_REQUIRE(false, "gate has no parameters");
    }
    return identity2();
}

Mat4
gate_matrix_2q_deriv(circ::GateKind kind, const std::array<double, 3> &a,
                     int slot)
{
    ELV_REQUIRE(kind == circ::GateKind::CRY && slot == 0,
                "only CRY among 2-qubit gates is parametric");
    const double c = std::cos(a[0] / 2), s = std::sin(a[0] / 2);
    Mat4 m = {};
    m[2][2] = Amp(-s / 2);
    m[2][3] = Amp(-c / 2);
    m[3][2] = Amp(c / 2);
    m[3][3] = Amp(-s / 2);
    return m;
}

Mat2
dagger(const Mat2 &m)
{
    Mat2 out;
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t j = 0; j < 2; ++j)
            out[i][j] = std::conj(m[j][i]);
    return out;
}

Mat4
dagger(const Mat4 &m)
{
    Mat4 out;
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            out[i][j] = std::conj(m[j][i]);
    return out;
}

Mat2
conjugate(const Mat2 &m)
{
    Mat2 out;
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t j = 0; j < 2; ++j)
            out[i][j] = std::conj(m[i][j]);
    return out;
}

Mat4
conjugate(const Mat4 &m)
{
    Mat4 out;
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            out[i][j] = std::conj(m[i][j]);
    return out;
}

Mat2
matmul(const Mat2 &a, const Mat2 &b)
{
    Mat2 out = {};
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t k = 0; k < 2; ++k)
            for (std::size_t j = 0; j < 2; ++j)
                out[i][j] += a[i][k] * b[k][j];
    return out;
}

Mat4
matmul(const Mat4 &a, const Mat4 &b)
{
    Mat4 out = {};
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t k = 0; k < 4; ++k)
            for (std::size_t j = 0; j < 4; ++j)
                out[i][j] += a[i][k] * b[k][j];
    return out;
}

Mat2
identity2()
{
    Mat2 m = {};
    m[0][0] = m[1][1] = Amp(1);
    return m;
}

Mat4
identity4()
{
    Mat4 m = {};
    for (std::size_t i = 0; i < 4; ++i)
        m[i][i] = Amp(1);
    return m;
}

Mat16
matmul(const Mat16 &a, const Mat16 &b)
{
    Mat16 out = {};
    for (std::size_t i = 0; i < 16; ++i)
        for (std::size_t k = 0; k < 16; ++k) {
            const Amp aik = a[i][k];
            if (aik == Amp(0))
                continue;
            for (std::size_t j = 0; j < 16; ++j)
                out[i][j] += aik * b[k][j];
        }
    return out;
}

Mat16
identity16()
{
    Mat16 m = {};
    for (std::size_t i = 0; i < 16; ++i)
        m[i][i] = Amp(1);
    return m;
}

Mat4
embed_1q_in_2q(const Mat2 &u, int slot)
{
    ELV_REQUIRE(slot == 0 || slot == 1, "bad embedding slot");
    Mat4 out = {};
    // Local index = 2 * bit(q0) + bit(q1).
    for (std::size_t a = 0; a < 2; ++a)
        for (std::size_t b = 0; b < 2; ++b)
            for (std::size_t c = 0; c < 2; ++c)
                for (std::size_t d = 0; d < 2; ++d) {
                    const Amp v = slot == 0
                                      ? (b == d ? u[a][c] : Amp(0))
                                      : (a == c ? u[b][d] : Amp(0));
                    out[2 * a + b][2 * c + d] = v;
                }
    return out;
}

Mat4
swap_qubit_order(const Mat4 &u)
{
    // Index map 2*b0 + b1 -> 2*b1 + b0 swaps rows/cols 1 and 2.
    auto p = [](std::size_t i) { return ((i & 1) << 1) | (i >> 1); };
    Mat4 out;
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            out[p(i)][p(j)] = u[i][j];
    return out;
}

} // namespace elv::sim
