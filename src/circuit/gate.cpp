#include "circuit/gate.hpp"

#include "common/logging.hpp"

namespace elv::circ {

int
gate_num_qubits(GateKind kind)
{
    switch (kind) {
      case GateKind::RX:
      case GateKind::RY:
      case GateKind::RZ:
      case GateKind::U3:
      case GateKind::H:
      case GateKind::S:
      case GateKind::Sdg:
      case GateKind::X:
      case GateKind::Y:
      case GateKind::Z:
        return 1;
      case GateKind::CX:
      case GateKind::CZ:
      case GateKind::SWAP:
      case GateKind::CRY:
        return 2;
      case GateKind::AmpEmbed:
        return 0;
    }
    ELV_REQUIRE(false, "unknown gate kind");
    return 0;
}

int
gate_num_params(GateKind kind)
{
    switch (kind) {
      case GateKind::RX:
      case GateKind::RY:
      case GateKind::RZ:
      case GateKind::CRY:
        return 1;
      case GateKind::U3:
        return 3;
      default:
        return 0;
    }
}

bool
gate_is_clifford(GateKind kind)
{
    switch (kind) {
      case GateKind::H:
      case GateKind::S:
      case GateKind::Sdg:
      case GateKind::X:
      case GateKind::Y:
      case GateKind::Z:
      case GateKind::CX:
      case GateKind::CZ:
      case GateKind::SWAP:
        return true;
      default:
        return false;
    }
}

bool
gate_is_parametric(GateKind kind)
{
    return gate_num_params(kind) > 0;
}

bool
gate_is_diagonal_1q(GateKind kind)
{
    switch (kind) {
      case GateKind::RZ:
      case GateKind::S:
      case GateKind::Sdg:
      case GateKind::Z:
        return true;
      default:
        return false;
    }
}

std::string
gate_name(GateKind kind)
{
    switch (kind) {
      case GateKind::RX: return "RX";
      case GateKind::RY: return "RY";
      case GateKind::RZ: return "RZ";
      case GateKind::U3: return "U3";
      case GateKind::H: return "H";
      case GateKind::S: return "S";
      case GateKind::Sdg: return "Sdg";
      case GateKind::X: return "X";
      case GateKind::Y: return "Y";
      case GateKind::Z: return "Z";
      case GateKind::CX: return "CX";
      case GateKind::CZ: return "CZ";
      case GateKind::SWAP: return "SWAP";
      case GateKind::CRY: return "CRY";
      case GateKind::AmpEmbed: return "AmpEmbed";
    }
    return "?";
}

} // namespace elv::circ
