/**
 * @file
 * Clifford replica construction (paper Sec. 5.1).
 *
 * A Clifford replica of a circuit replaces every parametric rotation with
 * a random Clifford gate of the same axis: single-qubit rotation angles
 * are snapped to random multiples of pi/2 and lowered to {H, S, Sdg, Z}
 * sequences; controlled rotations are snapped to {0, pi}. Fixed gates and
 * the measurement set are preserved, so replicas keep the original
 * circuit's structure, qubit footprint and (approximately) its depth —
 * which is why their fidelity predicts the fidelity of the original.
 */
#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"

namespace elv::circ {

/** How replica angles are chosen. */
enum class ReplicaMode {
    /**
     * Random multiples of pi/2 per parametric gate (the paper's choice:
     * parameter values are unknown before training, and change during it).
     */
    Random,
    /**
     * Snap the circuit's *bound* angles to the nearest Clifford angle
     * (the compilation-time strategy of prior work; provided for the
     * ablation of replica construction strategies).
     */
    Nearest,
};

/**
 * Build one Clifford replica. With ReplicaMode::Nearest, `params` and `x`
 * supply the bound angles to snap; with ReplicaMode::Random they are
 * ignored and may be empty.
 */
Circuit make_clifford_replica(const Circuit &circuit, elv::Rng &rng,
                              ReplicaMode mode = ReplicaMode::Random,
                              const std::vector<double> &params = {},
                              const std::vector<double> &x = {});

/** Build `m` independent random Clifford replicas. */
std::vector<Circuit> make_clifford_replicas(const Circuit &circuit, int m,
                                            elv::Rng &rng);

/** Snap an angle to the nearest multiple of pi/2, returned in [0, 2pi). */
double snap_to_clifford_angle(double angle);

/**
 * True iff the circuit consists purely of Clifford gates (no parametric
 * rotations, no amplitude embedding), i.e. can run on the stabilizer
 * simulator.
 */
bool is_clifford_circuit(const Circuit &circuit);

} // namespace elv::circ
