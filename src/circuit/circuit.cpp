#include "circuit/circuit.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/logging.hpp"

namespace elv::circ {

std::array<double, 3>
op_angles(const Op &op, const std::vector<double> &params,
          const std::vector<double> &x)
{
    std::array<double, 3> angles = {0.0, 0.0, 0.0};
    const int np = op.num_params();
    if (op.role == ParamRole::Variational) {
        ELV_REQUIRE(op.param_index >= 0 &&
                        op.param_index + np <=
                            static_cast<int>(params.size()),
                    "parameter vector too short for op");
        for (int i = 0; i < np; ++i)
            angles[static_cast<std::size_t>(i)] =
                params[static_cast<std::size_t>(op.param_index + i)];
    } else if (op.role == ParamRole::Embedding) {
        ELV_REQUIRE(op.data_index >= 0 &&
                        op.data_index < static_cast<int>(x.size()),
                    "input sample too short for embedding gate");
        double angle = x[static_cast<std::size_t>(op.data_index)];
        if (op.data_index2 >= 0) {
            ELV_REQUIRE(op.data_index2 < static_cast<int>(x.size()),
                        "input sample too short for product embedding");
            angle *= x[static_cast<std::size_t>(op.data_index2)];
        }
        angles[0] = angle;
    }
    return angles;
}

Circuit::Circuit(int num_qubits) : num_qubits_(num_qubits)
{
    ELV_REQUIRE(num_qubits > 0, "circuit needs at least one qubit");
}

void
Circuit::check_qubits(const std::vector<int> &qubits, int expected) const
{
    ELV_REQUIRE(static_cast<int>(qubits.size()) == expected,
                "wrong qubit count for gate");
    for (int q : qubits)
        ELV_REQUIRE(q >= 0 && q < num_qubits_, "qubit index out of range");
    if (expected == 2)
        ELV_REQUIRE(qubits[0] != qubits[1], "2-qubit gate on equal qubits");
}

std::size_t
Circuit::add_gate(GateKind kind, const std::vector<int> &qubits)
{
    ELV_REQUIRE(!gate_is_parametric(kind) && kind != GateKind::AmpEmbed,
                "add_gate is for fixed gates");
    check_qubits(qubits, gate_num_qubits(kind));
    Op op;
    op.kind = kind;
    op.qubits[0] = qubits[0];
    if (qubits.size() > 1)
        op.qubits[1] = qubits[1];
    ops_.push_back(op);
    return ops_.size() - 1;
}

std::size_t
Circuit::add_variational(GateKind kind, const std::vector<int> &qubits)
{
    ELV_REQUIRE(gate_is_parametric(kind),
                "add_variational needs a parametric gate");
    check_qubits(qubits, gate_num_qubits(kind));
    Op op;
    op.kind = kind;
    op.qubits[0] = qubits[0];
    if (qubits.size() > 1)
        op.qubits[1] = qubits[1];
    op.role = ParamRole::Variational;
    ops_.push_back(op);
    reindex_params();
    return ops_.size() - 1;
}

std::size_t
Circuit::add_embedding(GateKind kind, const std::vector<int> &qubits,
                       int data_index, int data_index2)
{
    ELV_REQUIRE(gate_num_params(kind) == 1,
                "embedding gates must take exactly one parameter");
    ELV_REQUIRE(data_index >= 0, "negative data index");
    check_qubits(qubits, gate_num_qubits(kind));
    Op op;
    op.kind = kind;
    op.qubits[0] = qubits[0];
    if (qubits.size() > 1)
        op.qubits[1] = qubits[1];
    op.role = ParamRole::Embedding;
    op.data_index = data_index;
    op.data_index2 = data_index2;
    ops_.push_back(op);
    return ops_.size() - 1;
}

std::size_t
Circuit::add_amplitude_embedding()
{
    Op op;
    op.kind = GateKind::AmpEmbed;
    op.role = ParamRole::Embedding;
    op.data_index = 0;
    ops_.push_back(op);
    return ops_.size() - 1;
}

std::size_t
Circuit::append_op(const Op &op, const std::vector<int> &mapping)
{
    Op copy = op;
    if (!mapping.empty() && copy.kind != GateKind::AmpEmbed) {
        for (int k = 0; k < copy.num_qubits(); ++k) {
            const int lq = copy.qubits[static_cast<std::size_t>(k)];
            ELV_REQUIRE(lq >= 0 &&
                            lq < static_cast<int>(mapping.size()),
                        "mapping too short for op");
            copy.qubits[static_cast<std::size_t>(k)] =
                mapping[static_cast<std::size_t>(lq)];
        }
    }
    if (copy.kind != GateKind::AmpEmbed) {
        std::vector<int> qubits = {copy.qubits[0]};
        if (copy.num_qubits() == 2)
            qubits.push_back(copy.qubits[1]);
        check_qubits(qubits, copy.num_qubits());
    }
    if (copy.role == ParamRole::Variational) {
        ELV_REQUIRE(copy.param_index >= 0, "op lacks a parameter slot");
        params_pinned_ = true;
        num_params_ =
            std::max(num_params_, copy.param_index + copy.num_params());
    }
    ops_.push_back(copy);
    return ops_.size() - 1;
}

void
Circuit::designate_embedding(std::size_t op_index, int data_index)
{
    ELV_REQUIRE(op_index < ops_.size(), "op index out of range");
    Op &op = ops_[op_index];
    ELV_REQUIRE(op.role == ParamRole::Variational && op.num_params() == 1,
                "only 1-parameter variational gates can embed data");
    ELV_REQUIRE(data_index >= 0, "negative data index");
    op.role = ParamRole::Embedding;
    op.data_index = data_index;
    op.param_index = -1;
    reindex_params();
}

void
Circuit::declare_params(int count)
{
    ELV_REQUIRE(count >= num_params_,
                "declare_params cannot drop bound parameter slots");
    num_params_ = count;
    params_pinned_ = true;
}

void
Circuit::set_measured(std::vector<int> qubits)
{
    std::set<int> seen;
    for (int q : qubits) {
        ELV_REQUIRE(q >= 0 && q < num_qubits_,
                    "measured qubit out of range");
        ELV_REQUIRE(seen.insert(q).second, "duplicate measured qubit");
    }
    measured_ = std::move(qubits);
}

void
Circuit::reindex_params()
{
    ELV_REQUIRE(!params_pinned_,
                "cannot re-index parameters after append_op pinned them");
    int next = 0;
    for (Op &op : ops_) {
        if (op.role == ParamRole::Variational) {
            op.param_index = next;
            next += op.num_params();
        }
    }
    num_params_ = next;
}

bool
Circuit::has_amplitude_embedding() const
{
    return count_kind(GateKind::AmpEmbed) > 0;
}

int
Circuit::num_embedding_gates() const
{
    int n = 0;
    for (const Op &op : ops_)
        if (op.role == ParamRole::Embedding)
            ++n;
    return n;
}

int
Circuit::num_data_features() const
{
    int highest = -1;
    for (const Op &op : ops_) {
        if (op.role != ParamRole::Embedding)
            continue;
        highest = std::max({highest, op.data_index, op.data_index2});
    }
    return highest + 1;
}

int
Circuit::depth() const
{
    std::vector<int> level(static_cast<std::size_t>(num_qubits_), 0);
    for (const Op &op : ops_) {
        if (op.kind == GateKind::AmpEmbed) {
            const int top =
                *std::max_element(level.begin(), level.end()) + 1;
            std::fill(level.begin(), level.end(), top);
            continue;
        }
        int top = level[static_cast<std::size_t>(op.qubits[0])];
        if (op.num_qubits() == 2)
            top = std::max(top,
                           level[static_cast<std::size_t>(op.qubits[1])]);
        ++top;
        level[static_cast<std::size_t>(op.qubits[0])] = top;
        if (op.num_qubits() == 2)
            level[static_cast<std::size_t>(op.qubits[1])] = top;
    }
    return *std::max_element(level.begin(), level.end());
}

int
Circuit::count_1q() const
{
    int n = 0;
    for (const Op &op : ops_)
        if (op.kind != GateKind::AmpEmbed && op.num_qubits() == 1)
            ++n;
    return n;
}

int
Circuit::count_2q() const
{
    int n = 0;
    for (const Op &op : ops_)
        if (op.num_qubits() == 2)
            ++n;
    return n;
}

int
Circuit::count_kind(GateKind kind) const
{
    int n = 0;
    for (const Op &op : ops_)
        if (op.kind == kind)
            ++n;
    return n;
}

std::vector<int>
Circuit::touched_qubits() const
{
    std::set<int> touched;
    for (const Op &op : ops_) {
        if (op.kind == GateKind::AmpEmbed) {
            for (int q = 0; q < num_qubits_; ++q)
                touched.insert(q);
            continue;
        }
        touched.insert(op.qubits[0]);
        if (op.num_qubits() == 2)
            touched.insert(op.qubits[1]);
    }
    for (int q : measured_)
        touched.insert(q);
    return {touched.begin(), touched.end()};
}

std::vector<std::size_t>
Circuit::embedding_op_indices() const
{
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < ops_.size(); ++i)
        if (ops_[i].role == ParamRole::Embedding)
            idx.push_back(i);
    return idx;
}

std::vector<std::size_t>
Circuit::variational_op_indices() const
{
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < ops_.size(); ++i)
        if (ops_[i].role == ParamRole::Variational)
            idx.push_back(i);
    return idx;
}

std::string
Circuit::to_string() const
{
    std::ostringstream oss;
    oss << "Circuit(" << num_qubits_ << " qubits, " << num_params_
        << " params)\n";
    for (const Op &op : ops_) {
        oss << "  " << gate_name(op.kind);
        if (op.kind != GateKind::AmpEmbed) {
            oss << " q" << op.qubits[0];
            if (op.num_qubits() == 2)
                oss << ",q" << op.qubits[1];
        }
        if (op.role == ParamRole::Variational)
            oss << " theta[" << op.param_index << "]";
        else if (op.role == ParamRole::Embedding &&
                 op.kind != GateKind::AmpEmbed) {
            oss << " x[" << op.data_index << "]";
            if (op.data_index2 >= 0)
                oss << "*x[" << op.data_index2 << "]";
        }
        oss << "\n";
    }
    oss << "  measure {";
    for (std::size_t i = 0; i < measured_.size(); ++i)
        oss << (i ? "," : "") << measured_[i];
    oss << "}\n";
    return oss.str();
}

Circuit
Circuit::remapped(const std::vector<int> &mapping, int new_num_qubits) const
{
    ELV_REQUIRE(static_cast<int>(mapping.size()) >= num_qubits_,
                "mapping too short");
    ELV_REQUIRE(!has_amplitude_embedding(),
                "cannot remap amplitude-embedding circuits");
    // Validate the mapping over the qubits the circuit actually uses.
    // Unused source qubits may carry -1 (compacted() marks dropped
    // qubits that way), but a used qubit must land on a unique target
    // inside the new register — an aliased or out-of-range target would
    // silently produce a different circuit.
    std::vector<int> target_owner(static_cast<std::size_t>(new_num_qubits),
                                  -1);
    for (int q : touched_qubits()) {
        const int target = mapping[static_cast<std::size_t>(q)];
        if (target < 0 || target >= new_num_qubits) {
            std::ostringstream oss;
            oss << "Circuit::remapped: qubit " << q << " maps to "
                << target << ", outside the target register [0, "
                << new_num_qubits << ")";
            elv::fatal(oss.str());
        }
        int &owner = target_owner[static_cast<std::size_t>(target)];
        if (owner >= 0) {
            std::ostringstream oss;
            oss << "Circuit::remapped: qubits " << owner << " and " << q
                << " both map to target " << target
                << "; aliasing would silently merge them";
            elv::fatal(oss.str());
        }
        owner = q;
    }
    Circuit out(new_num_qubits);
    out.ops_ = ops_;
    for (Op &op : out.ops_) {
        op.qubits[0] = mapping[static_cast<std::size_t>(op.qubits[0])];
        if (op.num_qubits() == 2)
            op.qubits[1] = mapping[static_cast<std::size_t>(op.qubits[1])];
    }
    out.num_params_ = num_params_;
    out.params_pinned_ = params_pinned_;
    out.measured_.reserve(measured_.size());
    for (int q : measured_)
        out.measured_.push_back(mapping[static_cast<std::size_t>(q)]);
    return out;
}

Circuit
Circuit::compacted(std::vector<int> &kept) const
{
    kept = touched_qubits();
    ELV_REQUIRE(!kept.empty(), "compacting an empty circuit");
    if (static_cast<int>(kept.size()) == num_qubits_)
        return *this; // already compact (identity relabeling)
    std::vector<int> inverse(static_cast<std::size_t>(num_qubits_), -1);
    for (std::size_t i = 0; i < kept.size(); ++i)
        inverse[static_cast<std::size_t>(kept[i])] = static_cast<int>(i);
    return remapped(inverse, static_cast<int>(kept.size()));
}

} // namespace elv::circ
