#include "circuit/clifford_replica.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace elv::circ {

namespace {

/** Reduce an angle to the index k of the nearest multiple of pi/2. */
int
nearest_quarter_turn(double angle)
{
    const double turns = angle / (M_PI / 2.0);
    int k = static_cast<int>(std::llround(turns)) % 4;
    if (k < 0)
        k += 4;
    return k;
}

/** Append RZ(k * pi/2) as Clifford gates. */
void
append_clifford_rz(Circuit &out, int q, int k)
{
    switch (k & 3) {
      case 0: break;
      case 1: out.add_gate(GateKind::S, {q}); break;
      case 2: out.add_gate(GateKind::Z, {q}); break;
      case 3: out.add_gate(GateKind::Sdg, {q}); break;
    }
}

/** Append RX(k * pi/2) = H RZ(k * pi/2) H. */
void
append_clifford_rx(Circuit &out, int q, int k)
{
    if ((k & 3) == 0)
        return;
    out.add_gate(GateKind::H, {q});
    append_clifford_rz(out, q, k);
    out.add_gate(GateKind::H, {q});
}

/** Append RY(k * pi/2) = Sdg, RX(k * pi/2), S in circuit order. */
void
append_clifford_ry(Circuit &out, int q, int k)
{
    if ((k & 3) == 0)
        return;
    out.add_gate(GateKind::Sdg, {q});
    append_clifford_rx(out, q, k);
    out.add_gate(GateKind::S, {q});
}

/** Append CRY(k * pi) — identity (k even) or Sdg(c) CY(c, t) (k odd). */
void
append_clifford_cry_pi(Circuit &out, int c, int t, bool apply)
{
    if (!apply)
        return;
    // CRY(pi) = diag-control of (-i Y) = Sdg on the control times CY;
    // CY(c, t) = Sdg(t) CX(c, t) S(t).
    out.add_gate(GateKind::Sdg, {c});
    out.add_gate(GateKind::Sdg, {t});
    out.add_gate(GateKind::CX, {c, t});
    out.add_gate(GateKind::S, {t});
}

} // namespace

double
snap_to_clifford_angle(double angle)
{
    return nearest_quarter_turn(angle) * (M_PI / 2.0);
}

bool
is_clifford_circuit(const Circuit &circuit)
{
    for (const Op &op : circuit.ops())
        if (!gate_is_clifford(op.kind))
            return false;
    return true;
}

Circuit
make_clifford_replica(const Circuit &circuit, elv::Rng &rng,
                      ReplicaMode mode, const std::vector<double> &params,
                      const std::vector<double> &x)
{
    ELV_REQUIRE(!circuit.has_amplitude_embedding(),
                "amplitude embeddings have no Clifford replica");

    Circuit out(circuit.num_qubits());
    for (const Op &op : circuit.ops()) {
        if (op.role == ParamRole::None) {
            out.add_gate(op.kind, op.num_qubits() == 2
                                      ? std::vector<int>{op.qubits[0],
                                                         op.qubits[1]}
                                      : std::vector<int>{op.qubits[0]});
            continue;
        }

        // Resolve the snapped quarter-turn indices for this gate.
        std::array<double, 3> bound = {0.0, 0.0, 0.0};
        if (mode == ReplicaMode::Nearest)
            bound = op_angles(op, params, x);
        auto quarter = [&](int slot) {
            if (mode == ReplicaMode::Random)
                return static_cast<int>(rng.uniform_index(4));
            return nearest_quarter_turn(
                bound[static_cast<std::size_t>(slot)]);
        };

        const int q = op.qubits[0];
        switch (op.kind) {
          case GateKind::RX:
            append_clifford_rx(out, q, quarter(0));
            break;
          case GateKind::RY:
            append_clifford_ry(out, q, quarter(0));
            break;
          case GateKind::RZ:
            append_clifford_rz(out, q, quarter(0));
            break;
          case GateKind::U3: {
            // U3(theta, phi, lambda) = RZ(phi) RY(theta) RZ(lambda):
            // circuit order lambda, theta, phi.
            append_clifford_rz(out, q, quarter(2));
            append_clifford_ry(out, q, quarter(0));
            append_clifford_rz(out, q, quarter(1));
            break;
          }
          case GateKind::CRY: {
            // Controlled rotations are Clifford only at multiples of pi.
            bool apply;
            if (mode == ReplicaMode::Random) {
                apply = rng.bernoulli(0.5);
            } else {
                const int half =
                    static_cast<int>(std::llround(bound[0] / M_PI));
                apply = (half % 2) != 0;
            }
            append_clifford_cry_pi(out, op.qubits[0], op.qubits[1], apply);
            break;
          }
          default:
            ELV_REQUIRE(false, "unexpected parametric gate kind");
        }
    }
    out.set_measured(circuit.measured());
    return out;
}

std::vector<Circuit>
make_clifford_replicas(const Circuit &circuit, int m, elv::Rng &rng)
{
    ELV_REQUIRE(m > 0, "need at least one replica");
    std::vector<Circuit> replicas;
    replicas.reserve(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i)
        replicas.push_back(make_clifford_replica(circuit, rng));
    return replicas;
}

} // namespace elv::circ
