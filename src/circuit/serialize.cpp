#include "circuit/serialize.hpp"

#include <map>
#include <ostream>
#include <sstream>

#include "common/logging.hpp"

namespace elv::circ {

namespace {

/** QASM gate name for a kind (lower case per the spec). */
std::string
qasm_name(GateKind kind)
{
    switch (kind) {
      case GateKind::RX: return "rx";
      case GateKind::RY: return "ry";
      case GateKind::RZ: return "rz";
      case GateKind::U3: return "u3";
      case GateKind::H: return "h";
      case GateKind::S: return "s";
      case GateKind::Sdg: return "sdg";
      case GateKind::X: return "x";
      case GateKind::Y: return "y";
      case GateKind::Z: return "z";
      case GateKind::CX: return "cx";
      case GateKind::CZ: return "cz";
      case GateKind::SWAP: return "swap";
      case GateKind::CRY: return "cry";
      case GateKind::AmpEmbed: break;
    }
    ELV_REQUIRE(false, "gate not expressible in QASM");
    return {};
}

} // namespace

std::string
to_qasm(const Circuit &circuit, const std::vector<double> &params,
        const std::vector<double> &x)
{
    if (circuit.has_amplitude_embedding())
        elv::fatal("amplitude embeddings cannot be exported to QASM");

    std::ostringstream oss;
    oss << "OPENQASM 2.0;\n";
    oss << "include \"qelib1.inc\";\n";
    oss << "qreg q[" << circuit.num_qubits() << "];\n";
    if (!circuit.measured().empty())
        oss << "creg c[" << circuit.measured().size() << "];\n";

    for (const Op &op : circuit.ops()) {
        oss << qasm_name(op.kind);
        const int np = op.num_params();
        if (np > 0) {
            const auto angles = op_angles(op, params, x);
            oss << "(";
            for (int s = 0; s < np; ++s)
                oss << (s ? "," : "") << angles[static_cast<std::size_t>(s)];
            oss << ")";
        }
        oss << " q[" << op.qubits[0] << "]";
        if (op.num_qubits() == 2)
            oss << ",q[" << op.qubits[1] << "]";
        oss << ";\n";
    }
    for (std::size_t b = 0; b < circuit.measured().size(); ++b)
        oss << "measure q[" << circuit.measured()[b] << "] -> c[" << b
            << "];\n";
    return oss.str();
}

std::string
to_text(const Circuit &circuit)
{
    std::ostringstream oss;
    oss << "elv-circuit 1\n";
    oss << "qubits " << circuit.num_qubits() << "\n";
    for (const Op &op : circuit.ops()) {
        switch (op.role) {
          case ParamRole::None:
            oss << "gate " << gate_name(op.kind) << " " << op.qubits[0];
            if (op.num_qubits() == 2)
                oss << " " << op.qubits[1];
            break;
          case ParamRole::Variational:
            oss << "var " << gate_name(op.kind) << " " << op.qubits[0];
            if (op.num_qubits() == 2)
                oss << " " << op.qubits[1];
            break;
          case ParamRole::Embedding:
            if (op.kind == GateKind::AmpEmbed) {
                oss << "ampembed";
                break;
            }
            oss << "embed " << gate_name(op.kind) << " " << op.qubits[0];
            if (op.num_qubits() == 2)
                oss << " " << op.qubits[1];
            oss << " feat " << op.data_index;
            if (op.data_index2 >= 0)
                oss << "*" << op.data_index2;
            break;
        }
        oss << "\n";
    }
    oss << "measure";
    for (int q : circuit.measured())
        oss << " " << q;
    oss << "\n";
    return oss.str();
}

Circuit
from_text(const std::string &text)
{
    std::istringstream iss(text);
    std::string line;

    auto fail = [](const std::string &why) -> void {
        elv::fatal("malformed circuit text: " + why);
    };

    if (!std::getline(iss, line) || line != "elv-circuit 1")
        fail("missing 'elv-circuit 1' header");

    std::map<std::string, GateKind> kinds;
    for (GateKind kind :
         {GateKind::RX, GateKind::RY, GateKind::RZ, GateKind::U3,
          GateKind::H, GateKind::S, GateKind::Sdg, GateKind::X,
          GateKind::Y, GateKind::Z, GateKind::CX, GateKind::CZ,
          GateKind::SWAP, GateKind::CRY})
        kinds[gate_name(kind)] = kind;

    int num_qubits = 0;
    {
        if (!std::getline(iss, line))
            fail("missing 'qubits' line");
        std::istringstream ls(line);
        std::string keyword;
        ls >> keyword >> num_qubits;
        if (keyword != "qubits" || num_qubits < 1)
            fail("bad 'qubits' line: " + line);
    }

    Circuit circuit(num_qubits);
    bool measured_seen = false;
    while (std::getline(iss, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string keyword;
        ls >> keyword;

        if (keyword == "measure") {
            std::vector<int> measured;
            int q;
            while (ls >> q)
                measured.push_back(q);
            circuit.set_measured(measured);
            measured_seen = true;
            continue;
        }
        if (keyword == "ampembed") {
            circuit.add_amplitude_embedding();
            continue;
        }

        std::string name;
        ls >> name;
        const auto it = kinds.find(name);
        if (it == kinds.end())
            fail("unknown gate '" + name + "'");
        const GateKind kind = it->second;

        std::vector<int> qubits(
            static_cast<std::size_t>(gate_num_qubits(kind)));
        for (int &q : qubits)
            if (!(ls >> q))
                fail("missing qubit operand: " + line);

        if (keyword == "gate") {
            circuit.add_gate(kind, qubits);
        } else if (keyword == "var") {
            circuit.add_variational(kind, qubits);
        } else if (keyword == "embed") {
            std::string feat_kw, spec;
            ls >> feat_kw >> spec;
            if (feat_kw != "feat" || spec.empty())
                fail("embedding without 'feat': " + line);
            int feature = -1, feature2 = -1;
            const auto star = spec.find('*');
            try {
                if (star == std::string::npos) {
                    feature = std::stoi(spec);
                } else {
                    feature = std::stoi(spec.substr(0, star));
                    feature2 = std::stoi(spec.substr(star + 1));
                }
            } catch (const std::exception &) {
                fail("bad feature spec: " + spec);
            }
            circuit.add_embedding(kind, qubits, feature, feature2);
        } else {
            fail("unknown directive '" + keyword + "'");
        }
    }
    if (!measured_seen)
        fail("missing 'measure' line");
    return circuit;
}

std::string
to_text_line(const Circuit &circuit)
{
    const std::string text = to_text(circuit);
    std::string line;
    line.reserve(text.size() + 8);
    for (char c : text) {
        if (c == '\\')
            line += "\\\\";
        else if (c == '\n')
            line += "\\n";
        else
            line += c;
    }
    return line;
}

Circuit
from_text_line(const std::string &line)
{
    std::string text;
    text.reserve(line.size());
    for (std::size_t i = 0; i < line.size(); ++i) {
        if (line[i] != '\\') {
            text += line[i];
            continue;
        }
        if (i + 1 >= line.size())
            elv::fatal("malformed circuit line: trailing backslash");
        ++i;
        if (line[i] == '\\')
            text += '\\';
        else if (line[i] == 'n')
            text += '\n';
        else
            elv::fatal(std::string("malformed circuit line: bad escape "
                                   "'\\") +
                       line[i] + "'");
    }
    return from_text(text);
}

std::ostream &
operator<<(std::ostream &os, const Circuit &circuit)
{
    return os << to_text(circuit);
}

} // namespace elv::circ
