/**
 * @file
 * Circuit intermediate representation.
 *
 * A Circuit is an ordered list of operations over `num_qubits` logical
 * qubits. Parametric gates carry a role: *variational* gates read their
 * angles from the trainable parameter vector, *embedding* gates read them
 * from the classical input sample (optionally a product of two features,
 * as used by IQP embeddings). This is the object every other subsystem
 * (simulators, compiler, search, baselines) operates on.
 */
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "circuit/gate.hpp"

namespace elv::circ {

/** How a parametric gate obtains its rotation angle. */
enum class ParamRole {
    None,        ///< fixed gate, no parameters
    Variational, ///< angles come from the trainable parameter vector
    Embedding,   ///< angles come from the classical input sample
};

/** A single gate application. */
struct Op
{
    GateKind kind = GateKind::H;
    /** Acted-on qubits; entry 1 is -1 for 1-qubit gates. */
    std::array<int, 2> qubits = {-1, -1};
    ParamRole role = ParamRole::None;
    /** First slot in the parameter vector (variational gates only). */
    int param_index = -1;
    /** Feature index embedded by this gate (embedding gates only). */
    int data_index = -1;
    /** Second feature index for product embeddings (angle = x_i * x_j). */
    int data_index2 = -1;

    /** Number of qubits this op acts on. */
    int num_qubits() const { return gate_num_qubits(kind); }
    /** Number of continuous parameters this op consumes. */
    int num_params() const { return gate_num_params(kind); }
};

/**
 * Resolve the (up to 3) rotation angles of an operation given the
 * trainable parameters and the input sample. Fixed gates return zeros.
 */
std::array<double, 3> op_angles(const Op &op,
                                const std::vector<double> &params,
                                const std::vector<double> &x);

/** An ordered gate list plus measurement set over logical qubits. */
class Circuit
{
  public:
    explicit Circuit(int num_qubits);

    /** Default: a trivial 1-qubit circuit (useful for result structs). */
    Circuit() : Circuit(1) {}

    /** @name Construction @{ */

    /** Append a fixed (non-parametric) gate. Returns the op index. */
    std::size_t add_gate(GateKind kind, const std::vector<int> &qubits);

    /** Append a variational parametric gate. Returns the op index. */
    std::size_t add_variational(GateKind kind, const std::vector<int> &qubits);

    /**
     * Append an embedding gate encoding feature `data_index` (or the
     * product with `data_index2` when the latter is >= 0).
     */
    std::size_t add_embedding(GateKind kind, const std::vector<int> &qubits,
                              int data_index, int data_index2 = -1);

    /** Append an amplitude-embedding pseudo-op over all qubits. */
    std::size_t add_amplitude_embedding();

    /**
     * Append a copy of `op`, retaining its parameter slot and embedding
     * metadata, with qubits relabeled through `mapping` (empty =
     * identity). For compiler passes, which may reorder commuting gates
     * and must keep parameter indices aligned with the source circuit.
     * A circuit built this way rejects subsequent add_variational /
     * designate_embedding calls (they would re-index the slots).
     */
    std::size_t append_op(const Op &op,
                          const std::vector<int> &mapping = {});

    /**
     * Convert an existing variational single-parameter gate into an
     * embedding gate for `data_index` (Algorithm 1, line 14). Parameter
     * slots of subsequent gates are re-indexed.
     */
    void designate_embedding(std::size_t op_index, int data_index);

    /**
     * Pin the declared parameter count to `count` (>= the count implied
     * by the ops) and freeze slot numbering. append_op infers num_params
     * as the highest bound slot + 1, which under-declares a circuit
     * whose *trailing* slots are intentionally unbound — the shape the
     * lint dataflow pruner produces when it elides dead rotations while
     * keeping the parameter vector layout of the original circuit.
     */
    void declare_params(int count);

    /** Set the measured qubits (order defines output bit order). */
    void set_measured(std::vector<int> qubits);

    /** @} */
    /** @name Introspection @{ */

    int num_qubits() const { return num_qubits_; }
    /** Total variational parameter count. */
    int num_params() const { return num_params_; }
    const std::vector<Op> &ops() const { return ops_; }
    const std::vector<int> &measured() const { return measured_; }
    /** True iff the circuit contains an amplitude-embedding op. */
    bool has_amplitude_embedding() const;

    /** Number of embedding gates (amplitude embedding counts as one). */
    int num_embedding_gates() const;

    /**
     * Highest data feature index referenced by any embedding gate,
     * plus one; 0 when the circuit embeds no data.
     */
    int num_data_features() const;

    /** Circuit depth (longest per-qubit dependency chain). */
    int depth() const;

    /** Count of 1-qubit gates (amplitude embedding excluded). */
    int count_1q() const;

    /** Count of 2-qubit gates. */
    int count_2q() const;

    /** Count of ops of a specific gate kind. */
    int count_kind(GateKind kind) const;

    /** All qubits touched by at least one op or measurement. */
    std::vector<int> touched_qubits() const;

    /** Indices of ops with role Embedding. */
    std::vector<std::size_t> embedding_op_indices() const;

    /** Indices of ops with role Variational. */
    std::vector<std::size_t> variational_op_indices() const;

    /** Human-readable multi-line dump for debugging and examples. */
    std::string to_string() const;

    /** @} */
    /** @name Transformation @{ */

    /**
     * Relabel qubits: logical qubit q becomes `mapping[q]`. The result
     * has `new_num_qubits` qubits (>= max mapped index + 1).
     *
     * Every qubit the circuit uses (gates or measurements) must map to
     * a distinct target inside `[0, new_num_qubits)`; a duplicate or
     * out-of-range target raises elv::UsageError rather than silently
     * aliasing qubits. Unused qubits may map to -1 (compacted() relies
     * on this to drop them).
     */
    Circuit remapped(const std::vector<int> &mapping,
                     int new_num_qubits) const;

    /**
     * Compact to the touched qubits only: returns the reduced circuit and
     * fills `kept` with the original indices of the retained qubits (in
     * increasing order). Used to simulate small circuits living on large
     * devices.
     */
    Circuit compacted(std::vector<int> &kept) const;

    /** @} */

  private:
    void reindex_params();
    void check_qubits(const std::vector<int> &qubits, int expected) const;

    int num_qubits_;
    int num_params_ = 0;
    /** Set once append_op has pinned parameter slots. */
    bool params_pinned_ = false;
    std::vector<Op> ops_;
    std::vector<int> measured_;
};

} // namespace elv::circ
