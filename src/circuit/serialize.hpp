/**
 * @file
 * Circuit serialization: OpenQASM 2.0 export (for interoperability with
 * the wider toolchain — Qiskit et al. can load the emitted files) and a
 * native text round-trip format that preserves the IR's variational/
 * embedding metadata, which QASM cannot express.
 */
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/circuit.hpp"

namespace elv::circ {

/**
 * Emit OpenQASM 2.0. Parametric gates need bound values, so `params`
 * and `x` must cover the circuit's parameter/feature counts. Amplitude
 * embeddings cannot be expressed and are rejected.
 */
std::string to_qasm(const Circuit &circuit,
                    const std::vector<double> &params,
                    const std::vector<double> &x);

/**
 * Native text format, line-oriented and diff-friendly:
 *
 *   elv-circuit 1
 *   qubits 4
 *   gate H 0
 *   var RX 2            # variational, slot assigned in order
 *   embed RY 1 feat 0   # embedding of feature 0
 *   embed RZ 3 feat 0*1 # product embedding
 *   gate CX 0 1
 *   measure 0 2
 *
 * Round-trips every IR construct except pinned parameter slots
 * (deserialized circuits are re-indexed in op order, which matches any
 * circuit built through the public builders).
 */
std::string to_text(const Circuit &circuit);

/** Parse the native text format; throws UsageError on malformed input. */
Circuit from_text(const std::string &text);

/**
 * Native text format flattened onto a single line (newlines escaped as
 * "\n", backslashes as "\\"), for embedding circuits in line-oriented
 * journals such as the search checkpoint.
 */
std::string to_text_line(const Circuit &circuit);

/** Parse the single-line escaped form produced by to_text_line. */
Circuit from_text_line(const std::string &line);

/** Convenience: stream a circuit as native text. */
std::ostream &operator<<(std::ostream &os, const Circuit &circuit);

} // namespace elv::circ
