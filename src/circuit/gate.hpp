/**
 * @file
 * Gate vocabulary and static gate metadata.
 *
 * The gate set follows the paper's setting: parametric rotations
 * (RX/RY/RZ/U3) usable as variational or data-embedding gates, the
 * Clifford fixed gates (H/S/Sdg/X/Y/Z/CX/CZ/SWAP) used for replicas and
 * entanglement, and an amplitude-embedding pseudo-op for the
 * human-designed baseline.
 */
#pragma once

#include <string>

namespace elv::circ {

/** All gate kinds understood by the IR and the simulators. */
enum class GateKind {
    RX,       ///< 1-qubit X rotation, 1 parameter
    RY,       ///< 1-qubit Y rotation, 1 parameter
    RZ,       ///< 1-qubit Z rotation, 1 parameter
    U3,       ///< general 1-qubit gate, 3 parameters (theta, phi, lambda)
    H,        ///< Hadamard
    S,        ///< phase gate sqrt(Z)
    Sdg,      ///< inverse phase gate
    X,        ///< Pauli X
    Y,        ///< Pauli Y
    Z,        ///< Pauli Z
    CX,       ///< controlled-X
    CZ,       ///< controlled-Z
    SWAP,     ///< 2-qubit swap
    CRY,      ///< controlled RY, 1 parameter (QuantumSupernet embedding)
    AmpEmbed, ///< amplitude embedding of the input vector (all qubits)
};

/** Number of qubits the gate acts on (AmpEmbed reports 0 = "all"). */
int gate_num_qubits(GateKind kind);

/** Number of continuous parameters the gate takes. */
int gate_num_params(GateKind kind);

/** True for fixed gates that are members of the Clifford group. */
bool gate_is_clifford(GateKind kind);

/** True for parametric rotation gates (RX/RY/RZ/U3/CRY). */
bool gate_is_parametric(GateKind kind);

/**
 * True for 1-qubit gates whose unitary is diagonal (RZ/S/Sdg/Z); the
 * simulators apply these with two scalar multiplies instead of a 2x2
 * matmul.
 */
bool gate_is_diagonal_1q(GateKind kind);

/** Printable mnemonic, e.g. "RX". */
std::string gate_name(GateKind kind);

} // namespace elv::circ
