#include "circuit/builders.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace elv::circ {

void
append_angle_embedding(Circuit &c, int num_features)
{
    const int n = c.num_qubits();
    for (int f = 0; f < num_features; ++f)
        c.add_embedding(GateKind::RX, {f % n}, f);
}

void
append_iqp_embedding(Circuit &c, int num_features)
{
    const int n = c.num_qubits();
    int f = 0;
    while (f < num_features) {
        const int layer = std::min(n, num_features - f);
        for (int q = 0; q < layer; ++q)
            c.add_gate(GateKind::H, {q});
        for (int q = 0; q < layer; ++q)
            c.add_embedding(GateKind::RZ, {q}, f + q);
        // Pairwise interactions RZZ(x_i * x_j) = CX . RZ . CX.
        for (int q = 0; q + 1 < layer; ++q) {
            c.add_gate(GateKind::CX, {q, q + 1});
            c.add_embedding(GateKind::RZ, {q + 1}, f + q, f + q + 1);
            c.add_gate(GateKind::CX, {q, q + 1});
        }
        f += layer;
    }
}

void
append_basic_entangler_layers(Circuit &c, int num_layers)
{
    const int n = c.num_qubits();
    for (int layer = 0; layer < num_layers; ++layer) {
        for (int q = 0; q < n; ++q)
            c.add_variational(GateKind::RX, {q});
        if (n >= 2) {
            for (int q = 0; q < n; ++q)
                c.add_gate(GateKind::CX, {q, (q + 1) % n});
        }
    }
}

Circuit
build_human_designed(int num_qubits, int num_features, int num_params,
                     int num_meas, EmbeddingScheme scheme)
{
    ELV_REQUIRE(num_meas <= num_qubits, "more measurements than qubits");
    Circuit c(num_qubits);
    switch (scheme) {
      case EmbeddingScheme::Angle:
        append_angle_embedding(c, num_features);
        break;
      case EmbeddingScheme::IQP:
        append_iqp_embedding(c, num_features);
        break;
      case EmbeddingScheme::Amplitude:
        c.add_amplitude_embedding();
        break;
    }
    const int layers =
        std::max(1, (num_params + num_qubits - 1) / num_qubits);
    append_basic_entangler_layers(c, layers);
    std::vector<int> meas(static_cast<std::size_t>(num_meas));
    for (int i = 0; i < num_meas; ++i)
        meas[static_cast<std::size_t>(i)] = i;
    c.set_measured(std::move(meas));
    return c;
}

Circuit
build_random_rxyz_cz(int num_qubits, int num_features, int num_params,
                     int num_meas, elv::Rng &rng)
{
    ELV_REQUIRE(num_meas <= num_qubits, "more measurements than qubits");
    Circuit c(num_qubits);
    append_angle_embedding(c, num_features);

    const GateKind rotations[3] = {GateKind::RX, GateKind::RY, GateKind::RZ};
    int placed = 0;
    while (placed < num_params) {
        // Roughly one CZ for every two rotations, matching the RXYZ + CZ
        // block structure from the QuantumNAS gate-set study.
        if (num_qubits >= 2 && rng.uniform() < 0.33) {
            const int a = static_cast<int>(
                rng.uniform_index(static_cast<std::size_t>(num_qubits)));
            int b = static_cast<int>(rng.uniform_index(
                static_cast<std::size_t>(num_qubits - 1)));
            if (b >= a)
                ++b;
            c.add_gate(GateKind::CZ, {a, b});
        } else {
            const GateKind kind = rotations[rng.uniform_index(3)];
            const int q = static_cast<int>(
                rng.uniform_index(static_cast<std::size_t>(num_qubits)));
            c.add_variational(kind, {q});
            ++placed;
        }
    }

    std::vector<int> meas(static_cast<std::size_t>(num_meas));
    for (int i = 0; i < num_meas; ++i)
        meas[static_cast<std::size_t>(i)] = i;
    c.set_measured(std::move(meas));
    return c;
}

} // namespace elv::circ
