/**
 * @file
 * Builders for the standard circuit templates used by the paper's
 * baselines: angle / IQP / amplitude data embeddings, the Pennylane-style
 * BasicEntanglerLayers variational template, and random RXYZ+CZ circuits
 * (the QuantumNAS gate set).
 */
#pragma once

#include "circuit/circuit.hpp"
#include "common/rng.hpp"

namespace elv::circ {

/**
 * Append an angle embedding: one RX per qubit encoding one input feature.
 * When `num_features` exceeds the qubit count, additional layers re-upload
 * the remaining features (data re-uploading).
 */
void append_angle_embedding(Circuit &c, int num_features);

/**
 * Append an IQP-style embedding: H on every qubit, RZ(x_i) per qubit,
 * then RZ(x_i * x_j) on neighbouring qubit pairs conjugated by CX.
 * Extra features beyond the qubit count are re-uploaded in later layers.
 */
void append_iqp_embedding(Circuit &c, int num_features);

/**
 * Append `num_layers` BasicEntanglerLayers blocks: a trainable RX per
 * qubit followed by a ring of CX gates.
 */
void append_basic_entangler_layers(Circuit &c, int num_layers);

/** Embedding scheme choices for the human-designed baseline. */
enum class EmbeddingScheme { Angle, IQP, Amplitude };

/**
 * Build a full human-designed baseline circuit: the chosen data embedding
 * followed by enough BasicEntanglerLayers to reach `num_params` trainable
 * parameters, measuring `num_meas` qubits.
 */
Circuit build_human_designed(int num_qubits, int num_features,
                             int num_params, int num_meas,
                             EmbeddingScheme scheme);

/**
 * Build a random circuit from the RXYZ + CZ gate set (the best-performing
 * QuantumNAS gate set): random trainable rotations and CZ gates on random
 * qubit pairs of a fully-connected logical register, with an angle
 * embedding in front. `num_params` counts trainable rotation parameters.
 */
Circuit build_random_rxyz_cz(int num_qubits, int num_features,
                             int num_params, int num_meas, elv::Rng &rng);

} // namespace elv::circ
