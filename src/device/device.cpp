#include "device/device.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace elv::dev {

namespace {

/** Static description of one catalog entry. */
struct CatalogEntry
{
    const char *name;
    /** Table 3 medians. */
    double readout_median;
    double error_1q_median;
    double error_2q_median;
    /** Coherence medians (microseconds). */
    double t1_median_us;
    double t2_median_us;
    /** Durations (nanoseconds). */
    double dur_1q_ns;
    double dur_2q_ns;
    double dur_ro_ns;
};

// Readout / 1Q / 2Q medians follow Table 3 of the paper; T1/T2 and
// durations use typical public values for each vendor's platform.
const CatalogEntry kCatalog[] = {
    {"oqc_lucy", 1.3e-1, 6.2e-4, 4.4e-2, 40.0, 30.0, 40.0, 400.0, 1000.0},
    {"rigetti_aspen_m2", 7.0e-2, 1.4e-3, 8.8e-2, 25.0, 20.0, 40.0, 180.0,
     1500.0},
    {"rigetti_aspen_m3", 8.0e-2, 1.5e-3, 9.3e-2, 25.0, 20.0, 40.0, 180.0,
     1500.0},
    {"ibmq_jakarta", 2.6e-2, 2.2e-4, 8.5e-3, 120.0, 60.0, 35.0, 300.0,
     700.0},
    {"ibm_nairobi", 2.4e-2, 2.7e-4, 9.6e-3, 115.0, 70.0, 35.0, 300.0,
     700.0},
    {"ibm_lagos", 1.9e-2, 2.1e-4, 9.8e-3, 125.0, 80.0, 35.0, 300.0, 700.0},
    {"ibm_perth", 2.8e-2, 2.8e-4, 8.7e-3, 110.0, 65.0, 35.0, 300.0, 700.0},
    {"ibm_geneva", 2.7e-2, 2.2e-4, 1.1e-2, 130.0, 75.0, 35.0, 300.0,
     700.0},
    {"ibm_guadalupe", 2.0e-2, 2.9e-4, 8.9e-3, 120.0, 90.0, 35.0, 300.0,
     700.0},
    {"ibmq_kolkata", 1.2e-2, 2.3e-4, 9.0e-3, 140.0, 100.0, 35.0, 300.0,
     700.0},
    {"ibmq_mumbai", 1.9e-2, 2.0e-4, 9.6e-3, 135.0, 95.0, 35.0, 300.0,
     700.0},
    {"ibm_kyoto", 1.4e-2, 2.5e-4, 9.1e-3, 180.0, 110.0, 35.0, 300.0,
     700.0},
    {"ibm_osaka", 1.7e-2, 2.2e-4, 1.0e-2, 190.0, 115.0, 35.0, 300.0,
     700.0},
    {"ibmq_manila", 2.5e-2, 2.5e-4, 8.0e-3, 120.0, 60.0, 35.0, 300.0,
     700.0},
};

Topology
topology_for(const std::string &name)
{
    if (name == "oqc_lucy")
        return ring_topology(8);
    if (name == "rigetti_aspen_m2")
        return aspen_lattice(2, 5, false);
    if (name == "rigetti_aspen_m3")
        return aspen_lattice(2, 5, true);
    if (name == "ibmq_jakarta" || name == "ibm_nairobi" ||
        name == "ibm_lagos" || name == "ibm_perth")
        return ibm_falcon_7();
    if (name == "ibm_geneva" || name == "ibm_guadalupe")
        return ibm_heavy_hex_16();
    if (name == "ibmq_kolkata" || name == "ibmq_mumbai")
        return ibm_falcon_27();
    if (name == "ibm_kyoto" || name == "ibm_osaka")
        return ibm_eagle_127();
    if (name == "ibmq_manila")
        return line_topology(5);
    elv::fatal("unknown device: " + name);
}

/** FNV-1a hash of the device name, used as a deterministic seed. */
std::uint64_t
name_seed(const std::string &name)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (char c : name) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

/**
 * Sample values lognormally around `median` (so the generated device's
 * median matches the catalog) with mild spread, clamped to [lo, hi].
 */
std::vector<double>
sample_around(std::size_t n, double median, double sigma, double lo,
              double hi, elv::Rng &rng)
{
    std::vector<double> out(n);
    for (auto &v : out)
        v = std::clamp(median * std::exp(sigma * rng.normal()), lo, hi);
    // Force the exact median: shift the middle order statistic.
    std::vector<double> sorted = out;
    std::sort(sorted.begin(), sorted.end());
    const double current = sorted[n / 2];
    if (current > 0.0) {
        const double scale = median / current;
        for (auto &v : out)
            v = std::clamp(v * scale, lo, hi);
    }
    return out;
}

} // namespace

void
Device::validate() const
{
    const std::size_t n = static_cast<std::size_t>(num_qubits());
    const std::size_t m = topology.edges().size();
    const std::string who = name.empty() ? "<unnamed device>" : name;

    auto check_size = [&](const std::vector<double> &values,
                          std::size_t expected, const char *field) {
        if (values.size() != expected)
            elv::fatal(who + ": calibration vector '" + field +
                       "' has " + std::to_string(values.size()) +
                       " entries, expected " + std::to_string(expected));
    };
    check_size(t1_us, n, "t1_us");
    check_size(t2_us, n, "t2_us");
    check_size(readout_error, n, "readout_error");
    check_size(error_1q, n, "error_1q");
    check_size(error_2q, m, "error_2q");

    auto check_time = [&](const std::vector<double> &values,
                          const char *field) {
        for (std::size_t q = 0; q < values.size(); ++q)
            if (!std::isfinite(values[q]) || values[q] <= 0.0)
                elv::fatal(who + ": " + field + "[" + std::to_string(q) +
                           "] = " + std::to_string(values[q]) +
                           " is not a positive finite time");
    };
    check_time(t1_us, "t1_us");
    check_time(t2_us, "t2_us");

    auto check_rate = [&](const std::vector<double> &values,
                          const char *field) {
        for (std::size_t i = 0; i < values.size(); ++i)
            if (!std::isfinite(values[i]) || values[i] < 0.0 ||
                values[i] > 1.0)
                elv::fatal(who + ": " + field + "[" + std::to_string(i) +
                           "] = " + std::to_string(values[i]) +
                           " is not a rate in [0, 1]");
    };
    check_rate(readout_error, "readout_error");
    check_rate(error_1q, "error_1q");
    check_rate(error_2q, "error_2q");

    if (!std::isfinite(duration_1q_ns) || duration_1q_ns <= 0.0 ||
        !std::isfinite(duration_2q_ns) || duration_2q_ns <= 0.0 ||
        !std::isfinite(duration_readout_ns) || duration_readout_ns <= 0.0)
        elv::fatal(who + ": gate/readout durations must be positive");
}

double
Device::edge_error(int a, int b) const
{
    const int idx = topology.edge_index(a, b);
    if (idx < 0)
        elv::fatal("no coupler between requested qubits");
    return error_2q[static_cast<std::size_t>(idx)];
}

double
Device::median(std::vector<double> values)
{
    ELV_REQUIRE(!values.empty(), "median of empty vector");
    std::sort(values.begin(), values.end());
    return values[values.size() / 2];
}

std::vector<std::string>
device_catalog()
{
    std::vector<std::string> names;
    for (const auto &entry : kCatalog)
        names.emplace_back(entry.name);
    return names;
}

Device
make_device(const std::string &name)
{
    const CatalogEntry *entry = nullptr;
    for (const auto &e : kCatalog)
        if (name == e.name)
            entry = &e;
    if (!entry)
        elv::fatal("unknown device: " + name);

    Device dev{name, topology_for(name), {}, {}, {}, {}, {}};
    dev.duration_1q_ns = entry->dur_1q_ns;
    dev.duration_2q_ns = entry->dur_2q_ns;
    dev.duration_readout_ns = entry->dur_ro_ns;

    elv::Rng rng(name_seed(name));
    const std::size_t n =
        static_cast<std::size_t>(dev.topology.num_qubits());
    const std::size_t m = dev.topology.edges().size();

    dev.t1_us = sample_around(n, entry->t1_median_us, 0.25, 5.0, 500.0,
                              rng);
    dev.t2_us = sample_around(n, entry->t2_median_us, 0.25, 3.0, 500.0,
                              rng);
    // T2 <= 2 * T1 physically.
    for (std::size_t q = 0; q < n; ++q)
        dev.t2_us[q] = std::min(dev.t2_us[q], 2.0 * dev.t1_us[q]);
    dev.readout_error = sample_around(n, entry->readout_median, 0.3,
                                      1e-4, 0.45, rng);
    dev.error_1q = sample_around(n, entry->error_1q_median, 0.3, 1e-5,
                                 0.2, rng);
    dev.error_2q = sample_around(m, entry->error_2q_median, 0.3, 1e-4,
                                 0.45, rng);
    dev.validate();
    return dev;
}

} // namespace elv::dev
