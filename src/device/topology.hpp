/**
 * @file
 * Device coupling-graph representation and generators for the topology
 * families used in the paper's evaluation: IBM heavy-hex (7/16/27/127
 * qubits), Rigetti Aspen octagon lattices, the OQC Lucy ring, and linear
 * chains (IBMQ Manila).
 */
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace elv::dev {

/** Undirected coupling graph of a quantum device. */
class Topology
{
  public:
    Topology(int num_qubits, std::vector<std::pair<int, int>> edges);

    int num_qubits() const { return num_qubits_; }
    const std::vector<std::pair<int, int>> &edges() const { return edges_; }
    const std::vector<int> &neighbors(int q) const;
    bool has_edge(int a, int b) const;

    /** Index of edge (a, b) in edges(); -1 when absent. */
    int edge_index(int a, int b) const;

    /** True iff the whole graph is connected. */
    bool is_connected() const;

    /**
     * BFS distance between two qubits (number of hops); used by the
     * router's lookahead heuristic. Returns -1 if unreachable.
     */
    int distance(int a, int b) const;

    /** All-pairs distance matrix (row-major n x n). */
    std::vector<int> all_pairs_distances() const;

  private:
    int num_qubits_;
    std::vector<std::pair<int, int>> edges_;
    std::vector<std::vector<int>> adjacency_;
};

/** @name Topology generators @{ */

/** Linear chain 0-1-...-(n-1) (e.g. IBMQ Manila, n = 5). */
Topology line_topology(int n);

/** Ring of n qubits (e.g. OQC Lucy, n = 8). */
Topology ring_topology(int n);

/** The 7-qubit IBM Falcon "H" shape (Jakarta/Nairobi/Lagos/Perth). */
Topology ibm_falcon_7();

/** The 16-qubit IBM heavy-hex (Guadalupe/Geneva as used in Table 3). */
Topology ibm_heavy_hex_16();

/** The 27-qubit IBM Falcon heavy-hex (Kolkata/Mumbai). */
Topology ibm_falcon_27();

/**
 * Generic heavy-hex lattice generator: `rows` x `cols` hexagon cells
 * (horizontal qubit rows of length 4 * cols + 1 joined by bridge qubits
 * every fourth site, alternating offset per row pair).
 */
Topology heavy_hex_lattice(int rows, int cols);

/**
 * The 127-qubit IBM Eagle heavy-hex layout (Kyoto/Osaka): seven qubit
 * rows of lengths 14/15/15/15/15/15/14 joined by six bridge rows of four
 * qubits each.
 */
Topology ibm_eagle_127();

/**
 * Rigetti Aspen-style lattice: a grid of 8-qubit octagon rings connected
 * horizontally and vertically. aspen_lattice(2, 5) has 80 qubits
 * (Aspen-M-2); `drop_last` removes the final qubit (79-qubit Aspen-M-3).
 */
Topology aspen_lattice(int rows, int cols, bool drop_last = false);

/** @} */

/**
 * Sample a random connected subgraph of `size` qubits: grow from a random
 * seed qubit by repeatedly adding a uniformly random frontier neighbor.
 * Requires size <= num_qubits and a connected topology region.
 */
std::vector<int> sample_connected_subgraph(const Topology &topo, int size,
                                           elv::Rng &rng);

} // namespace elv::dev
