#include "device/topology.hpp"

#include <algorithm>
#include <queue>
#include <set>

#include "common/logging.hpp"

namespace elv::dev {

Topology::Topology(int num_qubits, std::vector<std::pair<int, int>> edges)
    : num_qubits_(num_qubits), edges_(std::move(edges)),
      adjacency_(static_cast<std::size_t>(num_qubits))
{
    ELV_REQUIRE(num_qubits > 0, "topology needs at least one qubit");
    std::set<std::pair<int, int>> seen;
    for (auto &[a, b] : edges_) {
        ELV_REQUIRE(a >= 0 && a < num_qubits && b >= 0 && b < num_qubits &&
                        a != b,
                    "bad edge");
        if (a > b)
            std::swap(a, b);
        ELV_REQUIRE(seen.insert({a, b}).second, "duplicate edge");
    }
    for (const auto &[a, b] : edges_) {
        adjacency_[static_cast<std::size_t>(a)].push_back(b);
        adjacency_[static_cast<std::size_t>(b)].push_back(a);
    }
    for (auto &nbrs : adjacency_)
        std::sort(nbrs.begin(), nbrs.end());
}

const std::vector<int> &
Topology::neighbors(int q) const
{
    ELV_REQUIRE(q >= 0 && q < num_qubits_, "qubit out of range");
    return adjacency_[static_cast<std::size_t>(q)];
}

bool
Topology::has_edge(int a, int b) const
{
    return edge_index(a, b) >= 0;
}

int
Topology::edge_index(int a, int b) const
{
    if (a > b)
        std::swap(a, b);
    for (std::size_t i = 0; i < edges_.size(); ++i)
        if (edges_[i].first == a && edges_[i].second == b)
            return static_cast<int>(i);
    return -1;
}

bool
Topology::is_connected() const
{
    std::vector<int> dist(static_cast<std::size_t>(num_qubits_), -1);
    std::queue<int> frontier;
    frontier.push(0);
    dist[0] = 0;
    int visited = 1;
    while (!frontier.empty()) {
        const int q = frontier.front();
        frontier.pop();
        for (int nb : neighbors(q)) {
            if (dist[static_cast<std::size_t>(nb)] < 0) {
                dist[static_cast<std::size_t>(nb)] =
                    dist[static_cast<std::size_t>(q)] + 1;
                frontier.push(nb);
                ++visited;
            }
        }
    }
    return visited == num_qubits_;
}

int
Topology::distance(int a, int b) const
{
    ELV_REQUIRE(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_,
                "qubit out of range");
    if (a == b)
        return 0;
    std::vector<int> dist(static_cast<std::size_t>(num_qubits_), -1);
    std::queue<int> frontier;
    frontier.push(a);
    dist[static_cast<std::size_t>(a)] = 0;
    while (!frontier.empty()) {
        const int q = frontier.front();
        frontier.pop();
        for (int nb : neighbors(q)) {
            if (dist[static_cast<std::size_t>(nb)] < 0) {
                dist[static_cast<std::size_t>(nb)] =
                    dist[static_cast<std::size_t>(q)] + 1;
                if (nb == b)
                    return dist[static_cast<std::size_t>(nb)];
                frontier.push(nb);
            }
        }
    }
    return -1;
}

std::vector<int>
Topology::all_pairs_distances() const
{
    const std::size_t n = static_cast<std::size_t>(num_qubits_);
    std::vector<int> dist(n * n, -1);
    for (int src = 0; src < num_qubits_; ++src) {
        std::queue<int> frontier;
        frontier.push(src);
        dist[static_cast<std::size_t>(src) * n +
             static_cast<std::size_t>(src)] = 0;
        while (!frontier.empty()) {
            const int q = frontier.front();
            frontier.pop();
            for (int nb : neighbors(q)) {
                auto &d = dist[static_cast<std::size_t>(src) * n +
                               static_cast<std::size_t>(nb)];
                if (d < 0) {
                    d = dist[static_cast<std::size_t>(src) * n +
                             static_cast<std::size_t>(q)] +
                        1;
                    frontier.push(nb);
                }
            }
        }
    }
    return dist;
}

Topology
line_topology(int n)
{
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i + 1 < n; ++i)
        edges.emplace_back(i, i + 1);
    return Topology(n, std::move(edges));
}

Topology
ring_topology(int n)
{
    ELV_REQUIRE(n >= 3, "ring needs at least three qubits");
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i < n; ++i)
        edges.emplace_back(i, (i + 1) % n);
    return Topology(n, std::move(edges));
}

Topology
ibm_falcon_7()
{
    // The Falcon r5.11H coupling map (Jakarta/Nairobi/Lagos/Perth):
    //   0 - 1 - 2
    //       |
    //       3
    //       |
    //   4 - 5 - 6
    return Topology(7, {{0, 1}, {1, 2}, {1, 3}, {3, 5}, {4, 5}, {5, 6}});
}

Topology
ibm_heavy_hex_16()
{
    // The ibmq_guadalupe coupling map.
    return Topology(16, {{0, 1},
                         {1, 2},
                         {1, 4},
                         {2, 3},
                         {3, 5},
                         {4, 7},
                         {5, 8},
                         {6, 7},
                         {7, 10},
                         {8, 9},
                         {8, 11},
                         {10, 12},
                         {11, 14},
                         {12, 13},
                         {12, 15},
                         {13, 14}});
}

Topology
ibm_falcon_27()
{
    // The 27-qubit Falcon coupling map (Kolkata/Mumbai/Montreal family).
    return Topology(27, {{0, 1},   {1, 2},   {1, 4},   {2, 3},   {3, 5},
                         {4, 7},   {5, 8},   {6, 7},   {7, 10},  {8, 9},
                         {8, 11},  {10, 12}, {11, 14}, {12, 13}, {12, 15},
                         {13, 14}, {14, 16}, {15, 18}, {16, 19}, {17, 18},
                         {18, 21}, {19, 20}, {19, 22}, {21, 23}, {22, 25},
                         {23, 24}, {24, 25}, {25, 26}});
}

Topology
heavy_hex_lattice(int rows, int cols)
{
    // Heavy-hex lattice made of `rows` x `cols` hexagon cells:
    // horizontal qubit rows joined by bridge qubits every fourth site,
    // with the bridge offset alternating per row pair.
    ELV_REQUIRE(rows >= 1 && cols >= 1, "bad lattice shape");
    const int row_len = 4 * cols + 1;
    const int num_rows = rows + 1;
    std::vector<std::pair<int, int>> edges;
    std::vector<int> row_base(static_cast<std::size_t>(num_rows));
    int next = 0;
    std::vector<int> bridge_base(static_cast<std::size_t>(rows));

    for (int r = 0; r < num_rows; ++r) {
        row_base[static_cast<std::size_t>(r)] = next;
        for (int i = 0; i + 1 < row_len; ++i)
            edges.emplace_back(next + i, next + i + 1);
        next += row_len;
        if (r < rows) {
            // Bridges between row r and row r+1, every 4 sites, offset
            // alternating by row parity.
            bridge_base[static_cast<std::size_t>(r)] = next;
            const int offset = (r % 2 == 0) ? 0 : 2;
            for (int i = offset; i < row_len; i += 4)
                ++next;
        }
    }
    // Now wire the bridges (second pass, with known row bases).
    for (int r = 0; r < rows; ++r) {
        const int offset = (r % 2 == 0) ? 0 : 2;
        int b = bridge_base[static_cast<std::size_t>(r)];
        for (int i = offset; i < row_len; i += 4) {
            edges.emplace_back(row_base[static_cast<std::size_t>(r)] + i,
                               b);
            edges.emplace_back(
                row_base[static_cast<std::size_t>(r + 1)] + i, b);
            ++b;
        }
    }
    return Topology(next, std::move(edges));
}

Topology
ibm_eagle_127()
{
    // Seven qubit rows on a 15-column grid; the top row is missing its
    // last column and the bottom row its first. Bridge qubits join
    // consecutive rows at columns {0, 4, 8, 12} for even row pairs and
    // {2, 6, 10, 14} for odd ones, giving the 127-qubit Eagle layout.
    const int kCols = 15;
    const int kRows = 7;
    std::vector<std::vector<int>> grid(
        static_cast<std::size_t>(kRows),
        std::vector<int>(static_cast<std::size_t>(kCols), -1));
    int next = 0;
    std::vector<std::pair<int, int>> edges;

    auto present = [kRows, kCols](int r, int c) {
        if (c < 0 || c >= kCols)
            return false;
        if (r == 0 && c == kCols - 1)
            return false;
        if (r == kRows - 1 && c == 0)
            return false;
        return true;
    };

    for (int r = 0; r < kRows; ++r) {
        int prev = -1;
        for (int c = 0; c < kCols; ++c) {
            if (!present(r, c))
                continue;
            grid[static_cast<std::size_t>(r)]
                [static_cast<std::size_t>(c)] = next;
            if (prev >= 0)
                edges.emplace_back(prev, next);
            prev = next;
            ++next;
        }
        if (r + 1 < kRows) {
            const int offset = (r % 2 == 0) ? 0 : 2;
            for (int c = offset; c < kCols; c += 4) {
                if (!present(r, c) || !present(r + 1, c))
                    continue;
                // Bridge qubit between (r, c) and (r + 1, c); the lower
                // row is wired in the next iteration, so remember the
                // pending edge via a sentinel pass below.
                edges.emplace_back(
                    grid[static_cast<std::size_t>(r)]
                        [static_cast<std::size_t>(c)],
                    next);
                // Lower endpoint is wired after the next row is laid
                // out; store (bridge, r + 1, c) implicitly by pushing a
                // placeholder resolved in the second loop below.
                ++next;
            }
        }
    }

    // Second pass: connect each bridge to its lower row endpoint.
    // Bridges were allocated between the rows in index order, so recover
    // their ids by replaying the layout.
    next = 0;
    for (int r = 0; r < kRows; ++r) {
        for (int c = 0; c < kCols; ++c)
            if (present(r, c))
                ++next;
        if (r + 1 < kRows) {
            const int offset = (r % 2 == 0) ? 0 : 2;
            for (int c = offset; c < kCols; c += 4) {
                if (!present(r, c) || !present(r + 1, c))
                    continue;
                edges.emplace_back(
                    next, grid[static_cast<std::size_t>(r + 1)]
                              [static_cast<std::size_t>(c)]);
                ++next;
            }
        }
    }
    return Topology(next, std::move(edges));
}

Topology
aspen_lattice(int rows, int cols, bool drop_last)
{
    // Each cell is an 8-qubit octagon ring; octagon qubit k of cell
    // (r, c) is indexed 8 * (r * cols + c) + k. Neighbouring octagons
    // share two horizontal or vertical couplers, mirroring the Rigetti
    // Aspen family.
    ELV_REQUIRE(rows >= 1 && cols >= 1, "bad lattice shape");
    const int n = 8 * rows * cols - (drop_last ? 1 : 0);
    std::vector<std::pair<int, int>> edges;
    auto idx = [cols](int r, int c, int k) {
        return 8 * (r * cols + c) + k;
    };
    auto add = [&edges, n](int a, int b) {
        if (a < n && b < n)
            edges.emplace_back(a, b);
    };
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            for (int k = 0; k < 8; ++k)
                add(idx(r, c, k), idx(r, c, (k + 1) % 8));
            // Horizontal couplers: qubits 1,2 of a cell to 6,5 of the
            // next cell in the row.
            if (c + 1 < cols) {
                add(idx(r, c, 1), idx(r, c + 1, 6));
                add(idx(r, c, 2), idx(r, c + 1, 5));
            }
            // Vertical couplers: qubits 3,4 to 0,7 of the cell below.
            if (r + 1 < rows) {
                add(idx(r, c, 3), idx(r + 1, c, 0));
                add(idx(r, c, 4), idx(r + 1, c, 7));
            }
        }
    }
    return Topology(n, std::move(edges));
}

std::vector<int>
sample_connected_subgraph(const Topology &topo, int size, elv::Rng &rng)
{
    ELV_REQUIRE(size >= 1 && size <= topo.num_qubits(),
                "bad subgraph size");
    for (int attempt = 0; attempt < 64; ++attempt) {
        std::set<int> chosen;
        std::vector<int> frontier;
        const int seed = static_cast<int>(rng.uniform_index(
            static_cast<std::size_t>(topo.num_qubits())));
        chosen.insert(seed);
        for (int nb : topo.neighbors(seed))
            frontier.push_back(nb);
        while (static_cast<int>(chosen.size()) < size &&
               !frontier.empty()) {
            const std::size_t pick = rng.uniform_index(frontier.size());
            const int q = frontier[pick];
            frontier.erase(frontier.begin() +
                           static_cast<std::ptrdiff_t>(pick));
            if (chosen.count(q))
                continue;
            chosen.insert(q);
            for (int nb : topo.neighbors(q))
                if (!chosen.count(nb))
                    frontier.push_back(nb);
        }
        if (static_cast<int>(chosen.size()) == size)
            return {chosen.begin(), chosen.end()};
        // Seed landed in a too-small component; retry.
    }
    elv::fatal("could not sample a connected subgraph of the requested "
               "size; the device may be too fragmented");
}

} // namespace elv::dev
