/**
 * @file
 * Device models: topology plus per-qubit/per-edge calibration data, and
 * the catalog of the devices used in the paper (Table 3, plus IBMQ
 * Manila and Rigetti Aspen-M-2 which appear in Secs. 5.2-5.3).
 *
 * Real calibration snapshots are not redistributable, so per-qubit
 * values are sampled deterministically (seeded by the device name)
 * around the paper's published median error rates; the medians of the
 * generated devices therefore match Table 3.
 */
#pragma once

#include <string>
#include <vector>

#include "device/topology.hpp"

namespace elv::dev {

/** A quantum device: coupling graph + calibration snapshot. */
struct Device
{
    std::string name;
    Topology topology;

    /** Per-qubit T1 relaxation times (microseconds). */
    std::vector<double> t1_us;
    /** Per-qubit T2 dephasing times (microseconds). */
    std::vector<double> t2_us;
    /** Per-qubit readout error (assignment flip probability). */
    std::vector<double> readout_error;
    /** Per-qubit 1-qubit gate error. */
    std::vector<double> error_1q;
    /** Per-edge 2-qubit gate error (indexed like topology.edges()). */
    std::vector<double> error_2q;

    /** Gate/readout durations (nanoseconds). */
    double duration_1q_ns = 35.0;
    double duration_2q_ns = 300.0;
    double duration_readout_ns = 700.0;

    int num_qubits() const { return topology.num_qubits(); }

    /**
     * Validate the calibration snapshot: t1/t2/readout/error_1q sized
     * to num_qubits(), error_2q sized to topology.edges(), coherence
     * times positive and finite, all error rates in [0, 1]. Reports the
     * first violation with a precise fatal() message instead of letting
     * a malformed snapshot cause silent out-of-bounds reads in the
     * noise models. Called by make_device() and by every noisy
     * executor at construction.
     */
    void validate() const;

    /** 2-qubit error for edge (a, b); fatal if the edge is absent. */
    double edge_error(int a, int b) const;

    /** Median over a vector (used in tests against Table 3). */
    static double median(std::vector<double> values);
};

/** Names accepted by make_device(). */
std::vector<std::string> device_catalog();

/**
 * Build a device from the catalog. Accepted names (Table 3 plus the two
 * extra devices the paper references):
 *   oqc_lucy, rigetti_aspen_m2, rigetti_aspen_m3, ibmq_jakarta,
 *   ibm_nairobi, ibm_lagos, ibm_perth, ibm_geneva, ibm_guadalupe,
 *   ibmq_kolkata, ibmq_mumbai, ibm_kyoto, ibm_osaka, ibmq_manila
 */
Device make_device(const std::string &name);

} // namespace elv::dev
