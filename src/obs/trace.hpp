/**
 * @file
 * Scoped-span tracer emitting Chrome `trace_event` JSON.
 *
 * `ELV_TRACE_SCOPE("name", "category")` drops an RAII span into the
 * enclosing block; when tracing is on, the scope's wall-clock interval
 * is recorded as a complete ("ph":"X") event tagged with the calling
 * thread's ordinal. The resulting file loads directly in Perfetto
 * (https://ui.perfetto.dev) or chrome://tracing, where same-thread
 * spans nest by containment — candidate-level spans appear under their
 * phase span.
 *
 * Cost model: with tracing off (the default) a scope is one relaxed
 * atomic load and a branch; with ELV_OBS_DISABLED the macro expands to
 * nothing. When tracing is on, events append to per-thread buffers
 * (one uncontended mutex each, taken only at append and at drain), so
 * pool workers never serialize against each other mid-run.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace elv::obs {

/** One complete span (Chrome trace "X" event). */
struct TraceEvent
{
    std::string name;
    /** Static category string ("search", "exec", "pool", "sim", ...). */
    const char *category = "";
    /** Microseconds since the tracer's epoch. */
    double ts_us = 0.0;
    double dur_us = 0.0;
    /** elv::thread_ordinal() of the emitting thread. */
    int tid = 0;
    /** Optional integer argument (candidate index, task index, ...). */
    std::int64_t arg = 0;
    bool has_arg = false;
};

/**
 * Process-wide trace collector. start() flips the recording flag;
 * spans created while it is set record themselves on destruction.
 * stop() flips it back; write() renders everything collected since the
 * last drain as a Chrome trace JSON file.
 */
class Tracer
{
  public:
    static Tracer &global();

    Tracer();
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    void start();
    void stop();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Microseconds since this tracer's construction (steady clock). */
    double now_us() const;

    /** Append one event to the calling thread's buffer. */
    void record(TraceEvent event);

    /**
     * Move every buffered event out (all threads' buffers, in thread
     * order). Call after the traced work has completed — concurrent
     * recorders keep appending safely, but their in-flight spans may
     * land in a later drain.
     */
    std::vector<TraceEvent> drain();

    /**
     * stop(), drain() and write the Chrome trace JSON ("traceEvents"
     * array plus thread-name metadata) to `path`. Returns false (with
     * a warning) when the file cannot be written.
     */
    bool write(const std::string &path);

  private:
    struct ThreadBuffer
    {
        std::mutex mutex;
        std::vector<TraceEvent> events;
        int tid = 0;
    };

    /** The calling thread's buffer, registering it on first use. */
    ThreadBuffer &local_buffer();

    std::atomic<bool> enabled_{false};
    std::chrono::steady_clock::time_point epoch_;
    std::mutex mutex_;
    /** shared_ptr keeps buffers alive past their thread's exit. */
    std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/**
 * Render events as Chrome trace JSON: a "traceEvents" array of "X"
 * spans plus "M" thread-name metadata for every tid present. Shared by
 * `Tracer::write` and per-job `SpanLog` artifacts so both open in
 * Perfetto identically.
 */
std::string chrome_trace_json(const std::vector<TraceEvent> &events);

/**
 * Write `events` to `path` as Chrome trace JSON. Returns false (with a
 * warning) when the file cannot be written.
 */
bool write_chrome_trace(const std::string &path,
                        const std::vector<TraceEvent> &events);

/**
 * Small thread-safe span collection with its own timeline — the
 * per-job counterpart of the process-wide `Tracer`. The owner supplies
 * timestamps (microseconds since whatever epoch it picks, typically
 * job submission), appends spans from any thread, and writes a
 * Perfetto-loadable artifact when the job completes. Unlike the global
 * tracer it is always on: whether a job is traced is the owner's
 * decision, not a process flag.
 */
class SpanLog
{
  public:
    /** Append one span (thread-safe). */
    void add(TraceEvent event);

    /** Convenience: append a complete span. */
    void add_span(std::string name, const char *category, double ts_us,
                  double dur_us, std::int64_t arg = 0,
                  bool has_arg = false);

    /** Copy of all spans, stably sorted by start time. */
    std::vector<TraceEvent> events() const;

    /** Render via `write_chrome_trace`. */
    bool write(const std::string &path) const;

  private:
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
};

/**
 * RAII span: captures the start time if tracing is on at construction,
 * records a complete event at destruction. Prefer the macro forms.
 */
class TraceScope
{
  public:
    explicit TraceScope(const char *name, const char *category = "elv");

    /** Span with an integer argument (shown in the event's args). */
    TraceScope(const char *name, const char *category, std::int64_t arg);

    /** Span with a dynamic name (built only when tracing is on). */
    TraceScope(std::string name, const char *category = "elv");

    ~TraceScope();

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    const char *static_name_;
    std::string dynamic_name_;
    const char *category_;
    double start_us_ = 0.0;
    std::int64_t arg_ = 0;
    bool has_arg_ = false;
    bool active_;
};

} // namespace elv::obs

#ifndef ELV_OBS_DISABLED

#define ELV_OBS_CONCAT_IMPL(a, b) a##b
#define ELV_OBS_CONCAT(a, b) ELV_OBS_CONCAT_IMPL(a, b)

/** Trace the enclosing scope: ELV_TRACE_SCOPE(name [, category [, arg]]). */
#define ELV_TRACE_SCOPE(...)                                               \
    ::elv::obs::TraceScope ELV_OBS_CONCAT(elv_trace_scope_,               \
                                          __LINE__){__VA_ARGS__}

#else // ELV_OBS_DISABLED

#define ELV_TRACE_SCOPE(...) ((void)0)

#endif // ELV_OBS_DISABLED
