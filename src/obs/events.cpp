#include "obs/events.hpp"

#include <algorithm>
#include <chrono>

#include "common/logging.hpp"

namespace elv::obs {

EventRing::EventRing(std::size_t capacity) : capacity_(capacity)
{
    ELV_REQUIRE(capacity_ > 0, "event ring capacity must be positive");
    ring_.resize(capacity_);
}

std::uint64_t
EventRing::emit(std::string kind, std::string subject, std::string detail)
{
    const std::int64_t wall_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t seq = next_seq_++;
    Event &slot = ring_[static_cast<std::size_t>((seq - 1) % capacity_)];
    slot.seq = seq;
    slot.wall_ms = wall_ms;
    slot.kind = std::move(kind);
    slot.subject = std::move(subject);
    slot.detail = std::move(detail);
    return seq;
}

EventSlice
EventRing::since(std::uint64_t cursor, std::size_t limit) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    EventSlice out;
    const std::uint64_t last = next_seq_ - 1;
    out.last_seq = last;
    if (last == 0)
        return out;
    const std::uint64_t first =
        last >= capacity_ ? last - capacity_ + 1 : 1;
    out.first_seq = first;
    if (cursor >= last)
        return out;
    // Clip from the *old* end first: a stale cursor yields the newest
    // `limit` events plus a first_seq the reader can diff for loss.
    std::uint64_t begin = std::max(cursor + 1, first);
    const std::uint64_t available = last - begin + 1;
    if (limit > 0 && available > limit)
        begin = last - static_cast<std::uint64_t>(limit) + 1;
    out.events.reserve(static_cast<std::size_t>(last - begin + 1));
    for (std::uint64_t seq = begin; seq <= last; ++seq)
        out.events.push_back(
            ring_[static_cast<std::size_t>((seq - 1) % capacity_)]);
    return out;
}

} // namespace elv::obs
