#include "obs/profiler.hpp"

#include <atomic>
#include <fstream>
#include <map>
#include <vector>

#include "common/logging.hpp"

#if !defined(ELV_OBS_DISABLED) && defined(__linux__) && defined(__GLIBC__)
#define ELV_PROFILER_SUPPORTED 1
#else
#define ELV_PROFILER_SUPPORTED 0
#endif

#if ELV_PROFILER_SUPPORTED
#include <cstring>
#include <cxxabi.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>
#endif

namespace elv::obs {

#if ELV_PROFILER_SUPPORTED

namespace {

constexpr std::size_t kMaxDepth = 48;
constexpr std::size_t kRingSlots = 1 << 16; // ~24 MiB of frame slots

struct Slot
{
    void *frames[kMaxDepth];
    /** Frame count, stored with release order *after* the frames — the
     * publication point a racing reader synchronizes on. 0 = not yet
     * published. */
    std::atomic<int> depth{0};
};

// All profiler state is static and preallocated at start(): the signal
// handler may fire on any thread at any instant, so it can only touch
// memory that is already mapped and needs no locks.
Slot *g_ring = nullptr;
std::atomic<std::uint32_t> g_next_slot{0};
std::atomic<std::uint64_t> g_dropped{0};
std::atomic<bool> g_armed{false};
std::atomic<bool> g_running{false};
struct sigaction g_previous_action;

extern "C" void
profiler_signal_handler(int)
{
    // Async-signal context: atomics + backtrace() into a claimed slot,
    // nothing else. backtrace was primed in start(), so it no longer
    // allocates here.
    if (!g_armed.load(std::memory_order_acquire))
        return;
    const std::uint32_t index =
        g_next_slot.fetch_add(1, std::memory_order_relaxed);
    if (index >= kRingSlots) {
        g_dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    Slot &slot = g_ring[index];
    const int depth =
        backtrace(slot.frames, static_cast<int>(kMaxDepth));
    slot.depth.store(depth, std::memory_order_release);
}

/** "module(mangled+0x1a) [0x7f...]" → demangled function name. */
std::string
symbol_name(const std::string &raw)
{
    const std::size_t open = raw.find('(');
    const std::size_t plus = raw.find('+', open == std::string::npos
                                               ? 0
                                               : open);
    std::string mangled;
    if (open != std::string::npos && plus != std::string::npos &&
        plus > open + 1)
        mangled = raw.substr(open + 1, plus - open - 1);
    if (mangled.empty()) {
        // No in-binary symbol (static function, or built without
        // -rdynamic): fall back to the module basename so the frame
        // still aggregates meaningfully.
        const std::size_t end = open == std::string::npos
                                    ? raw.find(' ')
                                    : open;
        std::string module = raw.substr(0, end);
        const std::size_t slash = module.rfind('/');
        if (slash != std::string::npos)
            module = module.substr(slash + 1);
        return module.empty() ? std::string("[unknown]")
                              : "[" + module + "]";
    }
    int status = 0;
    char *demangled = abi::__cxa_demangle(mangled.c_str(), nullptr,
                                          nullptr, &status);
    if (status == 0 && demangled) {
        std::string out(demangled);
        free(demangled); // NOLINT: __cxa_demangle mallocs
        // Folded format separators would split the frame.
        for (char &c : out)
            if (c == ';' || c == '\n')
                c = ':';
        return out;
    }
    free(demangled); // NOLINT
    return mangled;
}

} // namespace

Profiler &
Profiler::global()
{
    static Profiler instance;
    return instance;
}

bool
Profiler::start(int hz)
{
    if (hz <= 0 || hz > 1000) {
        elv::warn("profiler rate must lie in [1, 1000] Hz");
        return false;
    }
    if (g_running.load(std::memory_order_relaxed)) {
        elv::warn("profiler already running");
        return false;
    }
    if (!g_ring)
        g_ring = new Slot[kRingSlots];
    g_next_slot.store(0, std::memory_order_relaxed);
    g_dropped.store(0, std::memory_order_relaxed);
    for (std::size_t s = 0; s < kRingSlots; ++s)
        g_ring[s].depth.store(0, std::memory_order_relaxed);

    // Prime backtrace(): its first call may dlopen libgcc_s, which
    // must not happen inside the signal handler.
    void *prime[4];
    backtrace(prime, 4);

    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = profiler_signal_handler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = SA_RESTART;
    if (sigaction(SIGPROF, &action, &g_previous_action) != 0) {
        elv::warn("profiler: sigaction(SIGPROF) failed");
        return false;
    }
    g_armed.store(true, std::memory_order_release);

    itimerval timer;
    timer.it_interval.tv_sec = 0;
    timer.it_interval.tv_usec = 1000000 / hz;
    timer.it_value = timer.it_interval;
    if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
        g_armed.store(false, std::memory_order_release);
        sigaction(SIGPROF, &g_previous_action, nullptr);
        elv::warn("profiler: setitimer(ITIMER_PROF) failed");
        return false;
    }
    g_running.store(true, std::memory_order_relaxed);
    return true;
}

void
Profiler::stop()
{
    if (!g_running.exchange(false, std::memory_order_relaxed))
        return;
    itimerval off;
    std::memset(&off, 0, sizeof(off));
    setitimer(ITIMER_PROF, &off, nullptr);
    g_armed.store(false, std::memory_order_release);
    sigaction(SIGPROF, &g_previous_action, nullptr);
}

bool
Profiler::running() const
{
    return g_running.load(std::memory_order_relaxed);
}

Profiler::Stats
Profiler::stats() const
{
    Stats out;
    const std::uint32_t claimed =
        g_next_slot.load(std::memory_order_relaxed);
    out.samples = std::min<std::uint64_t>(claimed, kRingSlots);
    out.dropped = g_dropped.load(std::memory_order_relaxed);
    return out;
}

bool
Profiler::write_collapsed(const std::string &path)
{
    stop();
    if (!g_ring) {
        elv::warn("profiler: no samples collected");
        return false;
    }
    const std::size_t used = std::min<std::size_t>(
        g_next_slot.load(std::memory_order_relaxed), kRingSlots);

    // Symbolize each unique address once; backtrace_symbols mallocs
    // per call, so batch per-slot but cache by address.
    std::map<void *, std::string> names;
    std::map<std::string, std::uint64_t> folded;
    std::uint64_t kept = 0;
    for (std::size_t s = 0; s < used; ++s) {
        const int depth = g_ring[s].depth.load(std::memory_order_acquire);
        if (depth <= 0)
            continue; // unpublished slot from a racing late tick
        // frames[0] is the handler, frames[1] the kernel signal
        // trampoline — drop both so stacks root at the profiled code.
        const int skip = std::min(2, depth - 1);
        std::string line;
        for (int f = depth - 1; f >= skip; --f) {
            void *addr = g_ring[s].frames[f];
            auto it = names.find(addr);
            if (it == names.end()) {
                char **symbols = backtrace_symbols(&addr, 1);
                std::string name =
                    symbols ? symbol_name(symbols[0])
                            : std::string("[unknown]");
                free(symbols); // NOLINT: backtrace_symbols mallocs
                it = names.emplace(addr, std::move(name)).first;
            }
            if (!line.empty())
                line += ';';
            line += it->second;
        }
        if (line.empty())
            continue;
        ++folded[line];
        ++kept;
    }
    if (kept == 0) {
        elv::warn("profiler: no samples collected");
        return false;
    }
    std::ofstream out(path);
    if (!out) {
        elv::warn("cannot write profile file " + path);
        return false;
    }
    for (const auto &[stack, count] : folded)
        out << stack << " " << count << "\n";
    const std::uint64_t dropped =
        g_dropped.load(std::memory_order_relaxed);
    elv::inform("profiler: wrote " + std::to_string(kept) +
                " samples (" + std::to_string(folded.size()) +
                " unique stacks" +
                (dropped ? ", " + std::to_string(dropped) + " dropped"
                         : std::string()) +
                ") to " + path);
    return true;
}

#else // !ELV_PROFILER_SUPPORTED

Profiler &
Profiler::global()
{
    static Profiler instance;
    return instance;
}

bool
Profiler::start(int)
{
    elv::warn("profiler unavailable in this build");
    return false;
}

void
Profiler::stop()
{
}

bool
Profiler::running() const
{
    return false;
}

Profiler::Stats
Profiler::stats() const
{
    return {};
}

bool
Profiler::write_collapsed(const std::string &)
{
    return false;
}

#endif // ELV_PROFILER_SUPPORTED

} // namespace elv::obs
