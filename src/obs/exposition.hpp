/**
 * @file
 * Prometheus text-exposition renderer over `MetricsSnapshot`.
 *
 * Renders exposition format 0.0.4: `# TYPE` headers, counters with a
 * `_total` suffix, gauges (current plus `_max` high-water), histograms
 * as cumulative `_bucket{le="..."}` series with `_sum`/`_count`, and —
 * because bucket math at the dashboard is easy to get wrong — ready
 * quantile gauges (`_q50/_q90/_q99`) computed server-side from the
 * same buckets. Dotted registry names map to the Prometheus grammar by
 * `elv_` prefixing and dot → underscore (`server.queue.depth` →
 * `elv_server_queue_depth`); the mapping is deterministic and sorted
 * because snapshots are.
 *
 * `Exposition` adds per-counter EWMA rate gauges (`_rate`) on top of
 * the stateless render: it owns a `RateTracker` that each `render()`
 * feeds with the scrape-time snapshot, so rates converge across
 * scrapes without any store beyond the tracker itself.
 */
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace elv::obs {

/** `elv_` + name with every non-[a-zA-Z0-9_] byte replaced by `_`. */
std::string prometheus_metric_name(const std::string &name);

/**
 * Render one snapshot as Prometheus text (no rate series). Pure
 * function of the snapshot — what the tests pin down.
 */
std::string render_prometheus(const MetricsSnapshot &snapshot);

/**
 * Stateful exposition endpoint: snapshot + EWMA rates. One instance per
 * serving loop; `render()` is not thread-safe (the HTTP responder
 * serializes scrapes through it).
 */
class Exposition
{
  public:
    explicit Exposition(double rate_tau_sec = 30.0);

    /**
     * Snapshot `registry`, fold the snapshot into the rate tracker at
     * `now_sec` (caller-supplied monotonic seconds) and render the
     * exposition text including `_rate` gauges.
     */
    std::string render(const Registry &registry, double now_sec);

  private:
    RateTracker rates_;
};

} // namespace elv::obs
