#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>

#include "common/logging.hpp"
#include "obs/json.hpp"

namespace elv::obs {

Tracer &
Tracer::global()
{
    static Tracer instance;
    return instance;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

void
Tracer::start()
{
    enabled_.store(true, std::memory_order_relaxed);
}

void
Tracer::stop()
{
    enabled_.store(false, std::memory_order_relaxed);
}

double
Tracer::now_us() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

Tracer::ThreadBuffer &
Tracer::local_buffer()
{
    // One buffer per (tracer, thread); the shared_ptr registered with
    // the tracer keeps events reachable after the thread exits (pool
    // workers die with the pool, usually before the trace is written).
    thread_local std::shared_ptr<ThreadBuffer> buffer;
    thread_local Tracer *owner = nullptr;
    if (!buffer || owner != this) {
        buffer = std::make_shared<ThreadBuffer>();
        buffer->tid = elv::thread_ordinal();
        owner = this;
        std::lock_guard<std::mutex> lock(mutex_);
        buffers_.push_back(buffer);
    }
    return *buffer;
}

void
Tracer::record(TraceEvent event)
{
    ThreadBuffer &buffer = local_buffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.events.push_back(std::move(event));
}

std::vector<TraceEvent>
Tracer::drain()
{
    std::vector<TraceEvent> out;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        for (TraceEvent &event : buffer->events)
            out.push_back(std::move(event));
        buffer->events.clear();
    }
    // Chronological order reads better in Perfetto's JSON view and
    // makes the nesting tests straightforward.
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.ts_us < b.ts_us;
                     });
    return out;
}

std::string
chrome_trace_json(const std::vector<TraceEvent> &events)
{
    std::vector<int> tids;
    for (const TraceEvent &event : events)
        tids.push_back(event.tid);
    std::sort(tids.begin(), tids.end());
    tids.erase(std::unique(tids.begin(), tids.end()), tids.end());

    JsonWriter json;
    json.begin_object();
    json.key("traceEvents").begin_array();
    for (const int tid : tids) {
        json.begin_object()
            .kv("name", "thread_name")
            .kv("ph", "M")
            .kv("pid", 1)
            .kv("tid", tid)
            .key("args")
            .begin_object()
            .kv("name", tid == 0 ? std::string("main")
                                 : "thread-" + std::to_string(tid))
            .end_object()
            .end_object();
    }
    for (const TraceEvent &event : events) {
        json.begin_object()
            .kv("name", event.name)
            .kv("cat", std::string(event.category))
            .kv("ph", "X")
            .kv("ts", event.ts_us)
            .kv("dur", event.dur_us)
            .kv("pid", 1)
            .kv("tid", event.tid);
        if (event.has_arg)
            json.key("args")
                .begin_object()
                .kv("i", event.arg)
                .end_object();
        json.end_object();
    }
    json.end_array();
    json.kv("displayTimeUnit", "ms");
    json.end_object();
    return json.str();
}

bool
write_chrome_trace(const std::string &path,
                   const std::vector<TraceEvent> &events)
{
    std::ofstream out(path);
    if (!out) {
        elv::warn("cannot write trace file " + path);
        return false;
    }
    out << chrome_trace_json(events) << "\n";
    return true;
}

bool
Tracer::write(const std::string &path)
{
    stop();
    return write_chrome_trace(path, drain());
}

void
SpanLog::add(TraceEvent event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(event));
}

void
SpanLog::add_span(std::string name, const char *category, double ts_us,
                  double dur_us, std::int64_t arg, bool has_arg)
{
    TraceEvent event;
    event.name = std::move(name);
    event.category = category;
    event.ts_us = ts_us;
    event.dur_us = dur_us;
    event.tid = elv::thread_ordinal();
    event.arg = arg;
    event.has_arg = has_arg;
    add(std::move(event));
}

std::vector<TraceEvent>
SpanLog::events() const
{
    std::vector<TraceEvent> out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out = events_;
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.ts_us < b.ts_us;
                     });
    return out;
}

bool
SpanLog::write(const std::string &path) const
{
    return write_chrome_trace(path, events());
}

TraceScope::TraceScope(const char *name, const char *category)
    : static_name_(name), category_(category),
      active_(Tracer::global().enabled())
{
    if (active_)
        start_us_ = Tracer::global().now_us();
}

TraceScope::TraceScope(const char *name, const char *category,
                       std::int64_t arg)
    : static_name_(name), category_(category), arg_(arg), has_arg_(true),
      active_(Tracer::global().enabled())
{
    if (active_)
        start_us_ = Tracer::global().now_us();
}

TraceScope::TraceScope(std::string name, const char *category)
    : static_name_(nullptr), dynamic_name_(std::move(name)),
      category_(category), active_(Tracer::global().enabled())
{
    if (active_)
        start_us_ = Tracer::global().now_us();
}

TraceScope::~TraceScope()
{
    if (!active_)
        return;
    TraceEvent event;
    event.name = static_name_ ? std::string(static_name_)
                              : std::move(dynamic_name_);
    event.category = category_;
    event.ts_us = start_us_;
    event.dur_us = Tracer::global().now_us() - start_us_;
    event.tid = elv::thread_ordinal();
    event.arg = arg_;
    event.has_arg = has_arg_;
    Tracer::global().record(std::move(event));
}

} // namespace elv::obs
