/**
 * @file
 * SIGPROF-based sampling profiler emitting collapsed-stack output.
 *
 * `start(hz)` arms `ITIMER_PROF`, which ticks on CPU time consumed by
 * the whole process and delivers SIGPROF to some running thread — so
 * samples land where the cycles go, pool workers included, with zero
 * per-sample cooperation from the profiled code. The handler captures
 * a raw backtrace into a preallocated lock-free ring and returns;
 * everything that allocates (symbolization, demangling, aggregation)
 * happens at `write_collapsed()` time on the caller's thread.
 *
 * Output is the "folded" format flamegraph.pl and speedscope consume:
 * one line per unique stack, root first, semicolon-separated, followed
 * by the sample count:
 *
 *     main;elivagar_search;run_cnr;apply_fused_2q 412
 *
 * Safety rules (see DESIGN.md §13):
 *  - the handler touches only the preallocated ring and atomics —
 *    no malloc, no locks, no stdio;
 *  - `backtrace()` is primed once in `start()` (its first call may
 *    dlopen libgcc, which is not async-signal-safe);
 *  - slots are claimed with a fetch_add and published with a release
 *    store of the frame count, so a reader racing a late tick skips
 *    incomplete slots instead of reading torn frames;
 *  - when the ring fills, further samples are counted as dropped, not
 *    blocked on.
 *
 * Compiled to no-op stubs under -DELV_OBS=OFF and on platforms without
 * <execinfo.h>; `start()` then returns false with a warning.
 */
#pragma once

#include <cstdint>
#include <string>

namespace elv::obs {

class Profiler
{
  public:
    static Profiler &global();

    struct Stats
    {
        std::uint64_t samples = 0;
        std::uint64_t dropped = 0;
    };

    /**
     * Install the SIGPROF handler and arm ITIMER_PROF at `hz` samples
     * per second of process CPU time. Returns false (with a warning)
     * when profiling is unsupported or already running.
     */
    bool start(int hz = 97);

    /** Disarm the timer and restore the previous SIGPROF disposition. */
    void stop();

    bool running() const;

    Stats stats() const;

    /**
     * stop() if running, symbolize the sampled stacks and append the
     * collapsed-stack lines to `path`. Returns false when nothing was
     * sampled or the file cannot be written.
     */
    bool write_collapsed(const std::string &path);
};

} // namespace elv::obs
