/**
 * @file
 * Bounded in-memory event ring for operational events.
 *
 * Metrics answer "how much"; the event ring answers "what just
 * happened": job admitted / started / shed / finished, degradation-
 * ladder transitions. Events carry a monotonic sequence number, a
 * wall-clock timestamp and a small free-form detail string. The ring
 * holds the last `capacity` events — readers poll with `since(seq)` and
 * detect loss by gaps in the sequence numbers (first_seq in the read
 * result), so a slow reader degrades to "missed N events", never to
 * blocking a writer.
 *
 * Thread-safe: one mutex around a fixed-size circular buffer. Writers
 * are server-control-plane paths (admission, worker transitions), not
 * simulator hot loops, so a mutex is the right tool.
 */
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace elv::obs {

/** One operational event. */
struct Event
{
    /** Monotonic, 1-based; never reused within a ring. */
    std::uint64_t seq = 0;
    /** Unix epoch milliseconds at emission. */
    std::int64_t wall_ms = 0;
    /** Stable machine-readable kind ("job.admitted", "ladder.shrink"). */
    std::string kind;
    /** Subject id when the event is about a job ("job-3"), else empty. */
    std::string subject;
    /** Human-readable detail. */
    std::string detail;
};

/** Result of reading the ring from a sequence cursor. */
struct EventSlice
{
    /** Oldest sequence number still held (0 when the ring is empty). */
    std::uint64_t first_seq = 0;
    /** Newest sequence number emitted so far. */
    std::uint64_t last_seq = 0;
    /** Events with seq > the requested cursor, oldest first. */
    std::vector<Event> events;
};

class EventRing
{
  public:
    explicit EventRing(std::size_t capacity = 256);

    /** Append an event; evicts the oldest when full. Returns its seq. */
    std::uint64_t emit(std::string kind, std::string subject,
                       std::string detail);

    /**
     * Events with seq > `cursor`, oldest first, at most `limit` (the
     * newest are preferred when clipping). `cursor` 0 reads from the
     * oldest retained event.
     */
    EventSlice since(std::uint64_t cursor, std::size_t limit = 64) const;

    std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::uint64_t next_seq_ = 1;
    /** Circular: ring_[(seq - 1) % capacity_] holds event `seq`. */
    std::vector<Event> ring_;
};

} // namespace elv::obs
