/**
 * @file
 * Thread-safe metrics registry: named counters, gauges and fixed-bucket
 * histograms backed by atomics.
 *
 * Counters are sharded per thread (the shard index is the caller's
 * thread ordinal), so a hot-path increment is one relaxed atomic add on
 * a cache line no other thread touches; reading a counter sums the
 * shards. Gauges and histograms are single atomics / atomic bucket
 * arrays — they sit on colder paths (queue depths, backoff delays).
 *
 * Collection is *disabled* by default: every `ELV_METRIC_*` macro loads
 * one relaxed atomic flag and branches away, so instrumented hot paths
 * (gate-kernel dispatch, shot sampling) show no measurable cost until a
 * run opts in with `--metrics`. Building with -DELV_OBS=OFF (which
 * defines ELV_OBS_DISABLED) compiles the macros away entirely.
 *
 * Naming convention: dotted lowercase paths, `layer.noun[.verb]` —
 * `sim.kernel.cx`, `pool.steals`, `exec.retries`.
 */
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/logging.hpp"

namespace elv::obs {

/** Monotonic counter, sharded across threads. */
class Counter
{
  public:
    /** Relaxed atomic add on the calling thread's shard. */
    void
    add(std::uint64_t n = 1)
    {
        shards_[static_cast<std::size_t>(elv::thread_ordinal()) %
                kShards]
            .value.fetch_add(n, std::memory_order_relaxed);
    }

    /** Sum over all shards (racy against concurrent adds, as usual). */
    std::uint64_t
    value() const
    {
        std::uint64_t total = 0;
        for (const Shard &shard : shards_)
            total += shard.value.load(std::memory_order_relaxed);
        return total;
    }

    void
    reset()
    {
        for (Shard &shard : shards_)
            shard.value.store(0, std::memory_order_relaxed);
    }

  private:
    static constexpr std::size_t kShards = 16;

    /** Cache-line padded so shards never false-share. */
    struct alignas(64) Shard
    {
        std::atomic<std::uint64_t> value{0};
    };

    std::array<Shard, kShards> shards_;
};

/** Instantaneous signed value with a high-water mark. */
class Gauge
{
  public:
    void
    set(std::int64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
        update_max(v);
    }

    /** Relaxed add (negative deltas allowed); tracks the maximum. */
    void
    add(std::int64_t delta)
    {
        const std::int64_t now =
            value_.fetch_add(delta, std::memory_order_relaxed) + delta;
        update_max(now);
    }

    std::int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Largest value ever set/reached (since construction or reset). */
    std::int64_t max_value() const
    {
        return max_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        value_.store(0, std::memory_order_relaxed);
        max_.store(0, std::memory_order_relaxed);
    }

  private:
    void
    update_max(std::int64_t v)
    {
        std::int64_t seen = max_.load(std::memory_order_relaxed);
        while (v > seen &&
               !max_.compare_exchange_weak(seen, v,
                                           std::memory_order_relaxed)) {
        }
    }

    std::atomic<std::int64_t> value_{0};
    std::atomic<std::int64_t> max_{0};
};

/**
 * Fixed-bucket histogram. Bucket i counts observations v with
 * edges[i-1] < v <= edges[i] (Prometheus-style upper bounds); the last
 * bucket is the +inf overflow. Edges are fixed at registration.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> edges);

    /** Atomic increment of the owning bucket (binary search on edges). */
    void observe(double v);

    const std::vector<double> &edges() const { return edges_; }

    /** Bucket counts, size edges().size() + 1 (last = overflow). */
    std::vector<std::uint64_t> counts() const;

    /** Total observations. */
    std::uint64_t total() const;

    /** Sum of all observed values (CAS-accumulated double). */
    double sum() const;

    /**
     * Estimated q-quantile (q in [0, 1]) by cumulative-bucket linear
     * interpolation, Prometheus `histogram_quantile` style: the target
     * rank is located in the cumulative counts, then interpolated
     * linearly inside the owning bucket (first bucket interpolates from
     * max(0, nothing) — i.e. from 0 when edges[0] > 0, else from
     * edges[0]); ranks landing in the +inf overflow clamp to the last
     * finite edge. Returns NaN when the histogram is empty.
     */
    double quantile(double q) const;

    void reset();

  private:
    std::vector<double> edges_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
    std::atomic<double> sum_{0.0};
};

/**
 * Quantile estimation over a bucketed distribution — the math behind
 * `Histogram::quantile`, usable on snapshot data. `counts` has
 * `edges.size() + 1` entries (last = +inf overflow). Returns NaN for an
 * empty distribution or a malformed counts size.
 */
double histogram_quantile(const std::vector<double> &edges,
                          const std::vector<std::uint64_t> &counts,
                          double q);

/** Point-in-time copy of every registered metric, sorted by name. */
struct MetricsSnapshot
{
    struct CounterValue
    {
        std::string name;
        std::uint64_t value;
    };
    struct GaugeValue
    {
        std::string name;
        std::int64_t value;
        std::int64_t max;
    };
    struct HistogramValue
    {
        std::string name;
        std::vector<double> edges;
        std::vector<std::uint64_t> counts;
        double sum = 0.0;

        /** Quantile estimate over the snapshotted buckets. */
        double
        quantile(double q) const
        {
            return histogram_quantile(edges, counts, q);
        }
    };

    std::vector<CounterValue> counters;
    std::vector<GaugeValue> gauges;
    std::vector<HistogramValue> histograms;

    /** Value of a counter by name (0 when absent). */
    std::uint64_t counter(const std::string &name) const;
};

/**
 * Exponentially-weighted moving-average rates for counters, fed by
 * successive snapshots. Each `update(snapshot, now_sec)` computes the
 * instantaneous per-second rate of every counter since the previous
 * update and folds it into a per-counter EWMA with time-aware weight
 * `alpha = 1 - exp(-dt / tau)` — irregular scrape intervals therefore
 * converge to the same steady-state as regular ones. Timestamps are
 * caller-supplied (any monotonic seconds source), which keeps the math
 * deterministic under test.
 *
 * Not thread-safe: owned and driven by one consumer (the exposition
 * endpoint), not by instrumented hot paths.
 */
class RateTracker
{
  public:
    /** `tau_sec` is the EWMA time constant (smoothing horizon). */
    explicit RateTracker(double tau_sec = 30.0);

    /** Fold one snapshot in. The first call only seeds the baseline. */
    void update(const MetricsSnapshot &snapshot, double now_sec);

    /** Smoothed per-second rate for a counter (0 when unknown). */
    double rate(const std::string &name) const;

    /** Every tracked (name, rate) pair, sorted by name. */
    std::vector<std::pair<std::string, double>> rates() const;

  private:
    struct State
    {
        std::uint64_t last_value = 0;
        double ewma = 0.0;
        bool seeded = false;
    };

    double tau_sec_;
    double last_time_sec_ = 0.0;
    bool has_time_ = false;
    std::map<std::string, State> states_;
};

/**
 * Process-wide named-metric registry. Registration (the first call for
 * a given name) takes a mutex; the returned references are stable for
 * the registry's lifetime, so hot paths register once (function-local
 * static) and then touch only the metric's atomics.
 */
class Registry
{
  public:
    static Registry &global();

    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Whether `ELV_METRIC_*` macro sites record (default off). */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void
    set_enabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /** The counter registered under `name` (registering it if new). */
    Counter &counter(const std::string &name);

    /** The gauge registered under `name` (registering it if new). */
    Gauge &gauge(const std::string &name);

    /**
     * The histogram registered under `name`. `edges` must be strictly
     * ascending; it is fixed by the first registration and ignored on
     * lookups of an existing histogram.
     */
    Histogram &histogram(const std::string &name,
                         std::vector<double> edges);

    /** Copy out every metric, sorted by name. */
    MetricsSnapshot snapshot() const;

    /** Zero every metric (registrations survive). */
    void reset();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
    std::atomic<bool> enabled_{false};
};

} // namespace elv::obs

/**
 * Hot-path instrumentation macros. Each site registers its metric once
 * (function-local static) and afterwards costs one relaxed load of the
 * enabled flag plus, when collection is on, one relaxed atomic update.
 * With ELV_OBS_DISABLED (CMake -DELV_OBS=OFF) they expand to nothing —
 * no registration, no load, no branch.
 */
#ifndef ELV_OBS_DISABLED

#define ELV_METRIC_COUNT_N(name, n)                                        \
    do {                                                                   \
        static ::elv::obs::Counter &elv_metric_counter_ =                  \
            ::elv::obs::Registry::global().counter(name);                  \
        if (::elv::obs::Registry::global().enabled())                      \
            elv_metric_counter_.add(n);                                    \
    } while (0)

#define ELV_METRIC_COUNT(name) ELV_METRIC_COUNT_N(name, 1)

#define ELV_METRIC_GAUGE_ADD(name, delta)                                  \
    do {                                                                   \
        static ::elv::obs::Gauge &elv_metric_gauge_ =                      \
            ::elv::obs::Registry::global().gauge(name);                    \
        if (::elv::obs::Registry::global().enabled())                      \
            elv_metric_gauge_.add(delta);                                  \
    } while (0)

#define ELV_METRIC_OBSERVE(name, edges, v)                                 \
    do {                                                                   \
        static ::elv::obs::Histogram &elv_metric_hist_ =                   \
            ::elv::obs::Registry::global().histogram(name, edges);         \
        if (::elv::obs::Registry::global().enabled())                      \
            elv_metric_hist_.observe(v);                                   \
    } while (0)

#else // ELV_OBS_DISABLED

#define ELV_METRIC_COUNT_N(name, n) ((void)0)
#define ELV_METRIC_COUNT(name) ((void)0)
#define ELV_METRIC_GAUGE_ADD(name, delta) ((void)0)
#define ELV_METRIC_OBSERVE(name, edges, v) ((void)0)

#endif // ELV_OBS_DISABLED
