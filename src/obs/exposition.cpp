#include "obs/exposition.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace elv::obs {

namespace {

/**
 * Shortest decimal form that round-trips the double: Prometheus `le`
 * labels must match across scrapes, so "0.005" has to render as
 * "0.005", not "0.0050000000000000001".
 */
std::string
format_double(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    char buf[64];
    for (int precision = 1; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

void
append_series(std::string &out, const std::string &name,
              const std::string &type, const std::string &value)
{
    out += "# TYPE " + name + " " + type + "\n";
    out += name + " " + value + "\n";
}

} // namespace

std::string
prometheus_metric_name(const std::string &name)
{
    std::string out = "elv_";
    out.reserve(name.size() + 4);
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    return out;
}

std::string
render_prometheus(const MetricsSnapshot &snapshot)
{
    std::string out;
    for (const MetricsSnapshot::CounterValue &c : snapshot.counters)
        append_series(out, prometheus_metric_name(c.name) + "_total",
                      "counter", std::to_string(c.value));
    for (const MetricsSnapshot::GaugeValue &g : snapshot.gauges) {
        const std::string name = prometheus_metric_name(g.name);
        append_series(out, name, "gauge", std::to_string(g.value));
        append_series(out, name + "_max", "gauge",
                      std::to_string(g.max));
    }
    for (const MetricsSnapshot::HistogramValue &h : snapshot.histograms) {
        const std::string name = prometheus_metric_name(h.name);
        out += "# TYPE " + name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < h.edges.size(); ++b) {
            cumulative += h.counts[b];
            out += name + "_bucket{le=\"" + format_double(h.edges[b]) +
                   "\"} " + std::to_string(cumulative) + "\n";
        }
        cumulative += h.counts.back();
        out += name + "_bucket{le=\"+Inf\"} " +
               std::to_string(cumulative) + "\n";
        out += name + "_sum " + format_double(h.sum) + "\n";
        out += name + "_count " + std::to_string(cumulative) + "\n";
        // Ready-made quantile gauges so dashboards need no PromQL
        // bucket math; same interpolation as histogram_quantile().
        static constexpr struct
        {
            const char *suffix;
            double q;
        } kQuantiles[] = {{"_q50", 0.5}, {"_q90", 0.9}, {"_q99", 0.99}};
        for (const auto &[suffix, q] : kQuantiles)
            append_series(out, name + suffix, "gauge",
                          format_double(h.quantile(q)));
    }
    return out;
}

Exposition::Exposition(double rate_tau_sec) : rates_(rate_tau_sec) {}

std::string
Exposition::render(const Registry &registry, double now_sec)
{
    const MetricsSnapshot snapshot = registry.snapshot();
    rates_.update(snapshot, now_sec);
    std::string out = render_prometheus(snapshot);
    for (const auto &[name, rate] : rates_.rates())
        append_series(out, prometheus_metric_name(name) + "_rate",
                      "gauge", format_double(rate));
    return out;
}

} // namespace elv::obs
