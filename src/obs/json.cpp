#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

#include "common/logging.hpp"
#include "common/table.hpp"

namespace elv::obs {

void
JsonWriter::pre_value()
{
    ELV_REQUIRE(!done_, "JSON document already complete");
    if (is_object_.empty())
        return; // top-level value
    if (is_object_.back()) {
        ELV_REQUIRE(pending_key_, "object member needs a key first");
        pending_key_ = false;
    } else if (has_element_.back()) {
        out_ += ", ";
    }
    has_element_.back() = true;
}

JsonWriter &
JsonWriter::begin_object()
{
    pre_value();
    out_ += '{';
    is_object_.push_back(true);
    has_element_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::end_object()
{
    ELV_REQUIRE(!is_object_.empty() && is_object_.back() &&
                    !pending_key_,
                "no object to close here");
    out_ += '}';
    is_object_.pop_back();
    has_element_.pop_back();
    if (is_object_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::begin_array()
{
    pre_value();
    out_ += '[';
    is_object_.push_back(false);
    has_element_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::end_array()
{
    ELV_REQUIRE(!is_object_.empty() && !is_object_.back(),
                "no array to close here");
    out_ += ']';
    is_object_.pop_back();
    has_element_.pop_back();
    if (is_object_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    ELV_REQUIRE(!is_object_.empty() && is_object_.back() &&
                    !pending_key_,
                "key() only valid inside an object");
    if (has_element_.back())
        out_ += ", ";
    out_ += Table::json_escape(k);
    out_ += ": ";
    has_element_.back() = true;
    pending_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    if (!pending_key_)
        pre_value();
    else
        pending_key_ = false;
    out_ += Table::json_escape(v);
    if (is_object_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    if (!std::isfinite(v))
        return raw("null");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return raw(buf);
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    return raw(std::to_string(v));
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    return raw(std::to_string(v));
}

JsonWriter &
JsonWriter::value(int v)
{
    return raw(std::to_string(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    return raw(v ? "true" : "false");
}

JsonWriter &
JsonWriter::raw(const std::string &json)
{
    if (!pending_key_)
        pre_value();
    else
        pending_key_ = false;
    out_ += json;
    if (is_object_.empty())
        done_ = true;
    return *this;
}

std::string
JsonWriter::str() const
{
    ELV_REQUIRE(is_object_.empty() && !pending_key_,
                "unclosed JSON container");
    return out_;
}

} // namespace elv::obs
