#include "obs/metrics.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace elv::obs {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges))
{
    ELV_REQUIRE(!edges_.empty(), "histogram needs at least one edge");
    ELV_REQUIRE(std::is_sorted(edges_.begin(), edges_.end()) &&
                    std::adjacent_find(edges_.begin(), edges_.end()) ==
                        edges_.end(),
                "histogram edges must be strictly ascending");
    buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
        edges_.size() + 1);
    for (std::size_t b = 0; b <= edges_.size(); ++b)
        buckets_[b].store(0, std::memory_order_relaxed);
}

void
Histogram::observe(double v)
{
    const std::size_t bucket = static_cast<std::size_t>(
        std::lower_bound(edges_.begin(), edges_.end(), v) -
        edges_.begin());
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::uint64_t>
Histogram::counts() const
{
    std::vector<std::uint64_t> out(edges_.size() + 1);
    for (std::size_t b = 0; b < out.size(); ++b)
        out[b] = buckets_[b].load(std::memory_order_relaxed);
    return out;
}

std::uint64_t
Histogram::total() const
{
    std::uint64_t total = 0;
    for (std::size_t b = 0; b <= edges_.size(); ++b)
        total += buckets_[b].load(std::memory_order_relaxed);
    return total;
}

void
Histogram::reset()
{
    for (std::size_t b = 0; b <= edges_.size(); ++b)
        buckets_[b].store(0, std::memory_order_relaxed);
}

std::uint64_t
MetricsSnapshot::counter(const std::string &name) const
{
    for (const CounterValue &c : counters)
        if (c.name == name)
            return c.value;
    return 0;
}

Registry &
Registry::global()
{
    static Registry instance;
    return instance;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name, std::vector<double> edges)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>(std::move(edges));
    return *slot;
}

MetricsSnapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    // std::map iterates in key order, so the snapshot is name-sorted.
    for (const auto &[name, counter] : counters_)
        snap.counters.push_back({name, counter->value()});
    for (const auto &[name, gauge] : gauges_)
        snap.gauges.push_back({name, gauge->value(), gauge->max_value()});
    for (const auto &[name, hist] : histograms_)
        snap.histograms.push_back({name, hist->edges(), hist->counts()});
    return snap;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, counter] : counters_)
        counter->reset();
    for (const auto &[name, gauge] : gauges_)
        gauge->reset();
    for (const auto &[name, hist] : histograms_)
        hist->reset();
}

} // namespace elv::obs
