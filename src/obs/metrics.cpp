#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hpp"

namespace elv::obs {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges))
{
    ELV_REQUIRE(!edges_.empty(), "histogram needs at least one edge");
    ELV_REQUIRE(std::is_sorted(edges_.begin(), edges_.end()) &&
                    std::adjacent_find(edges_.begin(), edges_.end()) ==
                        edges_.end(),
                "histogram edges must be strictly ascending");
    buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
        edges_.size() + 1);
    for (std::size_t b = 0; b <= edges_.size(); ++b)
        buckets_[b].store(0, std::memory_order_relaxed);
}

void
Histogram::observe(double v)
{
    const std::size_t bucket = static_cast<std::size_t>(
        std::lower_bound(edges_.begin(), edges_.end(), v) -
        edges_.begin());
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    // CAS loop instead of fetch_add(double): portable to toolchains
    // without lock-free FP RMW, and this path is cold relative to the
    // bucket increment anyway.
    double seen = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(seen, seen + v,
                                       std::memory_order_relaxed)) {
    }
}

std::vector<std::uint64_t>
Histogram::counts() const
{
    std::vector<std::uint64_t> out(edges_.size() + 1);
    for (std::size_t b = 0; b < out.size(); ++b)
        out[b] = buckets_[b].load(std::memory_order_relaxed);
    return out;
}

std::uint64_t
Histogram::total() const
{
    std::uint64_t total = 0;
    for (std::size_t b = 0; b <= edges_.size(); ++b)
        total += buckets_[b].load(std::memory_order_relaxed);
    return total;
}

double
Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

double
Histogram::quantile(double q) const
{
    return histogram_quantile(edges_, counts(), q);
}

void
Histogram::reset()
{
    for (std::size_t b = 0; b <= edges_.size(); ++b)
        buckets_[b].store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

double
histogram_quantile(const std::vector<double> &edges,
                   const std::vector<std::uint64_t> &counts, double q)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    if (edges.empty() || counts.size() != edges.size() + 1)
        return nan;
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts)
        total += c;
    if (total == 0 || !(q >= 0.0) || !(q <= 1.0))
        return nan;

    // Rank of the target observation in the cumulative distribution
    // (Prometheus-style: q * total, located in cumulative counts).
    const double rank = q * static_cast<double>(total);
    double cumulative = 0.0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
        const double in_bucket = static_cast<double>(counts[b]);
        if (cumulative + in_bucket < rank && b + 1 < counts.size()) {
            cumulative += in_bucket;
            continue;
        }
        if (b == edges.size()) {
            // +inf overflow: no finite upper edge to interpolate
            // toward, so clamp to the largest finite edge.
            return edges.back();
        }
        const double upper = edges[b];
        // First finite bucket spans (0, edges[0]] when the edge is
        // positive (latency-style histograms); otherwise it collapses
        // onto its own edge.
        const double lower =
            b == 0 ? (upper > 0.0 ? 0.0 : upper) : edges[b - 1];
        if (in_bucket <= 0.0)
            return upper;
        const double fraction =
            std::min(1.0, std::max(0.0, (rank - cumulative) / in_bucket));
        return lower + (upper - lower) * fraction;
    }
    return edges.back();
}

RateTracker::RateTracker(double tau_sec) : tau_sec_(tau_sec)
{
    ELV_REQUIRE(tau_sec_ > 0.0, "rate tracker tau must be positive");
}

void
RateTracker::update(const MetricsSnapshot &snapshot, double now_sec)
{
    const double dt = has_time_ ? now_sec - last_time_sec_ : 0.0;
    for (const MetricsSnapshot::CounterValue &c : snapshot.counters) {
        State &state = states_[c.name];
        if (!state.seeded || dt <= 0.0) {
            // First sight of this counter (or a non-advancing clock):
            // just record the baseline, a rate needs two points.
            state.last_value = c.value;
            state.seeded = true;
            continue;
        }
        // Counters are monotonic; a backwards step means reset() ran,
        // so restart the baseline rather than reporting a huge
        // negative rate.
        if (c.value < state.last_value) {
            state.last_value = c.value;
            state.ewma = 0.0;
            continue;
        }
        const double instant =
            static_cast<double>(c.value - state.last_value) / dt;
        const double alpha = 1.0 - std::exp(-dt / tau_sec_);
        state.ewma += alpha * (instant - state.ewma);
        state.last_value = c.value;
    }
    last_time_sec_ = now_sec;
    has_time_ = true;
}

double
RateTracker::rate(const std::string &name) const
{
    const auto it = states_.find(name);
    return it == states_.end() ? 0.0 : it->second.ewma;
}

std::vector<std::pair<std::string, double>>
RateTracker::rates() const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(states_.size());
    for (const auto &[name, state] : states_)
        out.emplace_back(name, state.ewma);
    return out;
}

std::uint64_t
MetricsSnapshot::counter(const std::string &name) const
{
    for (const CounterValue &c : counters)
        if (c.name == name)
            return c.value;
    return 0;
}

Registry &
Registry::global()
{
    static Registry instance;
    return instance;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name, std::vector<double> edges)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>(std::move(edges));
    return *slot;
}

MetricsSnapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    // std::map iterates in key order, so the snapshot is name-sorted.
    for (const auto &[name, counter] : counters_)
        snap.counters.push_back({name, counter->value()});
    for (const auto &[name, gauge] : gauges_)
        snap.gauges.push_back({name, gauge->value(), gauge->max_value()});
    for (const auto &[name, hist] : histograms_)
        snap.histograms.push_back(
            {name, hist->edges(), hist->counts(), hist->sum()});
    return snap;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, counter] : counters_)
        counter->reset();
    for (const auto &[name, gauge] : gauges_)
        gauge->reset();
    for (const auto &[name, hist] : histograms_)
        hist->reset();
}

} // namespace elv::obs
