/**
 * @file
 * Minimal streaming JSON writer for the observability artifacts (trace
 * files, run reports, bench metadata). Handles comma placement and
 * escaping; emits `null` for non-finite doubles so every artifact stays
 * parseable by strict consumers (`python3 -m json.tool`, Perfetto).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace elv::obs {

/** Stack-based JSON builder; misuse trips ELV_REQUIRE. */
class JsonWriter
{
  public:
    JsonWriter &begin_object();
    JsonWriter &end_object();
    JsonWriter &begin_array();
    JsonWriter &end_array();

    /** Member key inside an object; must be followed by a value. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);

    /** Splice a pre-rendered JSON fragment as one value. */
    JsonWriter &raw(const std::string &json);

    /** @name key+value shorthands @{ */
    template <typename T>
    JsonWriter &
    kv(const std::string &k, const T &v)
    {
        return key(k).value(v);
    }
    /** @} */

    /** The document; requires every container to be closed. */
    std::string str() const;

  private:
    /** Comma/validity bookkeeping before a value or key is emitted. */
    void pre_value();

    std::string out_;
    /** One frame per open container: true = object, false = array. */
    std::vector<bool> is_object_;
    /** Whether the current container already holds an element. */
    std::vector<bool> has_element_;
    bool pending_key_ = false;
    bool done_ = false;
};

} // namespace elv::obs
