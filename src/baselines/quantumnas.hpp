/**
 * @file
 * QuantumNAS baseline (Wang et al., HPCA 2022) as described in the
 * paper's Secs. 1-2: train a SuperCircuit with weight sharing, then run
 * an evolutionary *circuit-mapping co-search* — genomes pair a
 * subcircuit configuration with a logical-to-physical qubit mapping —
 * scoring candidates with inherited parameters on the noisy device.
 * Because genome mappings are explicit, non-adjacent gates are routed
 * with SWAP chains that respect the genome's placement (this is the
 * hardware-inefficiency Elivagar's Table 5 measures).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/supercircuit.hpp"
#include "device/device.hpp"
#include "qml/dataset.hpp"

namespace elv::base {

/** Evolutionary co-search settings. */
struct QuantumNasConfig
{
    int population = 16;
    int generations = 6;
    int tournament = 3;
    /** Parameter budget of searched subcircuits. */
    int target_params = 20;
    /** Validation samples per fitness evaluation. */
    int valid_samples = 24;
    /**
     * Genomes whose routed circuit spreads over more physical qubits
     * than this get zero fitness without evaluation: long SWAP chains
     * are hardware-inefficient (the very pathology Table 5 measures),
     * and bounding the footprint also bounds the noisy-simulation cost
     * of fitness evaluation on large devices.
     */
    int max_touched_qubits = 10;
    std::uint64_t seed = 0;
};

/** Co-search output. */
struct QuantumNasResult
{
    /** Best physical circuit (genome mapping applied, SWAPs inserted). */
    circ::Circuit best_physical;
    /** Its configuration and mapping. */
    SuperConfig best_config;
    std::vector<int> best_mapping;
    /** Inherited parameters of the best subcircuit. */
    std::vector<double> inherited_params;
    /** Noisy validation accuracy of the winner. */
    double best_fitness = 0.0;
    /** Device executions spent on fitness evaluations. */
    std::uint64_t search_executions = 0;
};

/**
 * Route a logical circuit onto the device under a FIXED logical ->
 * physical mapping: non-adjacent 2-qubit gates get SWAP chains along
 * shortest paths (the mapping evolves, the router does not). Exposed for
 * tests and for the Table 5 comparison.
 */
circ::Circuit route_with_fixed_mapping(const circ::Circuit &logical,
                                       const dev::Topology &topology,
                                       const std::vector<int> &mapping);

/**
 * Run the evolutionary co-search against a trained SuperCircuit.
 * `shared_params` is the weight-shared store from train_supercircuit.
 */
QuantumNasResult quantumnas_search(const SuperCircuit &super,
                                   const std::vector<double> &shared_params,
                                   const dev::Device &device,
                                   const qml::Dataset &valid,
                                   const QuantumNasConfig &config);

} // namespace elv::base
