#include "baselines/quantum_supernet.hpp"

#include <limits>

#include "common/logging.hpp"
#include "qml/classifier.hpp"

namespace elv::base {

SupernetResult
supernet_search(const SuperCircuit &super,
                const std::vector<double> &shared_params,
                const qml::Dataset &valid, const SupernetConfig &config)
{
    ELV_REQUIRE(config.num_samples >= 1, "need at least one sample");
    valid.check();
    elv::Rng rng(config.seed ^ 0x5375704eULL);

    qml::Dataset subset = valid;
    {
        elv::Rng sub_rng(config.seed ^ 0x1234ULL);
        shuffle_dataset(subset, sub_rng);
        subset = qml::take(subset, static_cast<std::size_t>(
                                       config.valid_samples));
    }

    SupernetResult result;
    result.best_loss = std::numeric_limits<double>::infinity();

    for (int n = 0; n < config.num_samples; ++n) {
        const SuperConfig candidate =
            super.random_config(config.target_params, rng);
        std::vector<int> slot_map;
        const circ::Circuit circuit =
            super.instantiate(candidate, slot_map);
        const auto params =
            super.inherited_params(candidate, shared_params);

        const auto eval = qml::evaluate(circuit, params, subset);
        result.search_executions += subset.size();

        if (eval.loss < result.best_loss) {
            result.best_loss = eval.loss;
            result.best_config = candidate;
            result.best_logical = circuit;
            result.inherited_params = params;
        }
    }
    return result;
}

} // namespace elv::base
