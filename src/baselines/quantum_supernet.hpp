/**
 * @file
 * QuantumSupernet baseline (Du et al., npj QI 2022) as characterized in
 * the paper: a trained SuperCircuit (with the deep CRY-entangler
 * embedding noted in Sec. 9.2) searched by plain random sampling —
 * candidate configurations are scored by their inherited-parameter
 * SuperCircuit loss on a validation set, and the lowest-loss
 * configuration wins.
 */
#pragma once

#include <cstdint>

#include "baselines/supercircuit.hpp"
#include "device/device.hpp"
#include "qml/dataset.hpp"

namespace elv::base {

/** Random-search settings. */
struct SupernetConfig
{
    /** Candidate configurations sampled. */
    int num_samples = 32;
    /** Parameter budget per candidate. */
    int target_params = 20;
    /** Validation samples per candidate evaluation. */
    int valid_samples = 24;
    std::uint64_t seed = 0;
};

/** Random-search output. */
struct SupernetResult
{
    /** Best logical circuit (needs routing before noisy execution). */
    circ::Circuit best_logical;
    SuperConfig best_config;
    std::vector<double> inherited_params;
    double best_loss = 0.0;
    /** Executions spent scoring candidates. */
    std::uint64_t search_executions = 0;
};

/** Run the random search against a trained SuperCircuit. */
SupernetResult supernet_search(const SuperCircuit &super,
                               const std::vector<double> &shared_params,
                               const qml::Dataset &valid,
                               const SupernetConfig &config);

} // namespace elv::base
