/**
 * @file
 * The two non-search baselines of Sec. 7.4: Random (average of random
 * RXYZ + CZ circuits) and Human-designed (angle / IQP / amplitude
 * embeddings in front of BasicEntanglerLayers, averaged).
 */
#pragma once

#include <vector>

#include "circuit/builders.hpp"
#include "circuit/circuit.hpp"
#include "common/rng.hpp"

namespace elv::base {

/** Shape parameters shared by the simple baselines. */
struct BaselineShape
{
    int num_qubits = 4;
    int num_features = 4;
    int num_params = 20;
    int num_meas = 1;
};

/** `count` random RXYZ + CZ circuits (the Random baseline). */
std::vector<circ::Circuit> random_baseline(const BaselineShape &shape,
                                           int count, elv::Rng &rng);

/**
 * The three human-designed circuits (angle, IQP, amplitude embedding;
 * the paper reports their average performance).
 */
std::vector<circ::Circuit> human_baseline(const BaselineShape &shape);

} // namespace elv::base
