#include "baselines/quantumnas.hpp"

#include <algorithm>
#include <queue>

#include "common/logging.hpp"
#include "noise/noise_model.hpp"
#include "qml/classifier.hpp"

namespace elv::base {

using circ::Circuit;
using circ::GateKind;
using circ::Op;

circ::Circuit
route_with_fixed_mapping(const Circuit &logical,
                         const dev::Topology &topology,
                         const std::vector<int> &mapping)
{
    ELV_REQUIRE(static_cast<int>(mapping.size()) >= logical.num_qubits(),
                "mapping too short");
    // current[lq] = physical qubit currently holding logical qubit lq.
    std::vector<int> current(mapping.begin(),
                             mapping.begin() + logical.num_qubits());
    std::vector<int> holder(static_cast<std::size_t>(
                                topology.num_qubits()),
                            -1);
    for (std::size_t lq = 0; lq < current.size(); ++lq)
        holder[static_cast<std::size_t>(current[lq])] =
            static_cast<int>(lq);

    Circuit out(topology.num_qubits());

    auto shortest_path = [&topology](int from, int to) {
        std::vector<int> parent(
            static_cast<std::size_t>(topology.num_qubits()), -1);
        std::queue<int> frontier;
        frontier.push(from);
        parent[static_cast<std::size_t>(from)] = from;
        while (!frontier.empty()) {
            const int q = frontier.front();
            frontier.pop();
            if (q == to)
                break;
            for (int nb : topology.neighbors(q)) {
                if (parent[static_cast<std::size_t>(nb)] < 0) {
                    parent[static_cast<std::size_t>(nb)] = q;
                    frontier.push(nb);
                }
            }
        }
        std::vector<int> path;
        for (int q = to; q != from;
             q = parent[static_cast<std::size_t>(q)])
            path.push_back(q);
        path.push_back(from);
        std::reverse(path.begin(), path.end());
        return path;
    };

    auto apply_swap = [&](int pa, int pb) {
        out.add_gate(GateKind::SWAP, {pa, pb});
        const int la = holder[static_cast<std::size_t>(pa)];
        const int lb = holder[static_cast<std::size_t>(pb)];
        if (la >= 0)
            current[static_cast<std::size_t>(la)] = pb;
        if (lb >= 0)
            current[static_cast<std::size_t>(lb)] = pa;
        std::swap(holder[static_cast<std::size_t>(pa)],
                  holder[static_cast<std::size_t>(pb)]);
    };

    for (const Op &op : logical.ops()) {
        if (op.num_qubits() == 2) {
            int pa = current[static_cast<std::size_t>(op.qubits[0])];
            const int pb = current[static_cast<std::size_t>(op.qubits[1])];
            if (!topology.has_edge(pa, pb)) {
                // Walk qubit a along the shortest path until adjacent.
                const auto path = shortest_path(pa, pb);
                for (std::size_t step = 0; step + 2 < path.size(); ++step)
                    apply_swap(path[step], path[step + 1]);
                pa = current[static_cast<std::size_t>(op.qubits[0])];
                ELV_REQUIRE(topology.has_edge(pa, pb),
                            "SWAP chain failed to make operands adjacent");
            }
        }
        out.append_op(op, current);
    }

    std::vector<int> measured;
    for (int lq : logical.measured())
        measured.push_back(current[static_cast<std::size_t>(lq)]);
    out.set_measured(measured);
    return out;
}

namespace {

/** A genome: subcircuit configuration plus qubit mapping. */
struct Genome
{
    SuperConfig config;
    std::vector<int> mapping;
    double fitness = -1.0;
};

std::vector<int>
random_mapping(int logical, const dev::Topology &topology, elv::Rng &rng)
{
    // Place the register on a connected region (scattered placements on
    // large devices would need impractically long SWAP chains).
    auto region =
        dev::sample_connected_subgraph(topology, logical, rng);
    rng.shuffle(region);
    return region;
}

void
mutate_mapping(std::vector<int> &mapping, const dev::Topology &topology,
               elv::Rng &rng)
{
    if (rng.bernoulli(0.5) && mapping.size() >= 2) {
        // Swap two logical assignments.
        const std::size_t a = rng.uniform_index(mapping.size());
        const std::size_t b = rng.uniform_index(mapping.size());
        std::swap(mapping[a], mapping[b]);
    } else {
        // Move one logical qubit to an unused physical qubit adjacent
        // to the occupied region (keeps the placement local).
        std::vector<std::uint8_t> used(
            static_cast<std::size_t>(topology.num_qubits()), 0);
        for (int p : mapping)
            used[static_cast<std::size_t>(p)] = 1;
        std::vector<int> frontier;
        for (int p : mapping)
            for (int nb : topology.neighbors(p))
                if (!used[static_cast<std::size_t>(nb)])
                    frontier.push_back(nb);
        if (!frontier.empty())
            mapping[rng.uniform_index(mapping.size())] =
                frontier[rng.uniform_index(frontier.size())];
    }
}

} // namespace

QuantumNasResult
quantumnas_search(const SuperCircuit &super,
                  const std::vector<double> &shared_params,
                  const dev::Device &device, const qml::Dataset &valid,
                  const QuantumNasConfig &config)
{
    ELV_REQUIRE(config.population >= 2 && config.generations >= 1,
                "bad evolutionary settings");
    valid.check();
    elv::Rng rng(config.seed ^ 0x714e4153ULL);

    const noise::NoisyDensitySimulator noisy(device);
    QuantumNasResult result;

    // Fitness evaluation subset (fixed across the search for fairness).
    qml::Dataset subset = valid;
    {
        elv::Rng sub_rng(config.seed ^ 0xabcdULL);
        shuffle_dataset(subset, sub_rng);
        subset = qml::take(subset, static_cast<std::size_t>(
                                       config.valid_samples));
    }

    auto evaluate = [&](Genome &genome) {
        std::vector<int> slot_map;
        const Circuit logical = super.instantiate(genome.config, slot_map);
        const Circuit physical = route_with_fixed_mapping(
            logical, device.topology, genome.mapping);
        if (static_cast<int>(physical.touched_qubits().size()) >
            config.max_touched_qubits) {
            genome.fitness = 0.0;
            return;
        }
        const auto params =
            super.inherited_params(genome.config, shared_params);
        const auto eval = qml::evaluate(
            physical, params, subset,
            [&noisy, &result](const Circuit &c,
                              const std::vector<double> &p,
                              const std::vector<double> &x) {
                ++result.search_executions;
                return noisy.run_distribution(c, p, x);
            });
        genome.fitness = eval.accuracy;
    };

    // Initial population.
    std::vector<Genome> population;
    for (int i = 0; i < config.population; ++i) {
        Genome genome;
        genome.config = super.random_config(config.target_params, rng);
        genome.mapping = random_mapping(super.num_qubits(),
                                        device.topology, rng);
        evaluate(genome);
        population.push_back(std::move(genome));
    }

    auto tournament_pick = [&](void) -> const Genome & {
        const Genome *best = nullptr;
        for (int t = 0; t < config.tournament; ++t) {
            const Genome &g =
                population[rng.uniform_index(population.size())];
            if (!best || g.fitness > best->fitness)
                best = &g;
        }
        return *best;
    };

    for (int gen = 0; gen < config.generations; ++gen) {
        std::vector<Genome> next;
        // Elitism: carry the best genome over unchanged.
        const auto best_it = std::max_element(
            population.begin(), population.end(),
            [](const Genome &a, const Genome &b) {
                return a.fitness < b.fitness;
            });
        next.push_back(*best_it);

        while (static_cast<int>(next.size()) < config.population) {
            const Genome &pa = tournament_pick();
            const Genome &pb = tournament_pick();
            Genome child;
            child.config = super.crossover(pa.config, pb.config,
                                           config.target_params, rng);
            child.mapping =
                rng.bernoulli(0.5) ? pa.mapping : pb.mapping;
            super.mutate_config(child.config, rng);
            mutate_mapping(child.mapping, device.topology, rng);
            evaluate(child);
            next.push_back(std::move(child));
        }
        population = std::move(next);
    }

    const auto best_it = std::max_element(
        population.begin(), population.end(),
        [](const Genome &a, const Genome &b) {
            return a.fitness < b.fitness;
        });
    result.best_config = best_it->config;
    result.best_mapping = best_it->mapping;
    result.best_fitness = best_it->fitness;
    std::vector<int> slot_map;
    const Circuit logical =
        super.instantiate(best_it->config, slot_map);
    result.best_physical = route_with_fixed_mapping(
        logical, device.topology, best_it->mapping);
    result.inherited_params =
        super.inherited_params(best_it->config, shared_params);
    return result;
}

} // namespace elv::base
