#include "baselines/supercircuit.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hpp"
#include "qml/optimizer.hpp"
#include "sim/gradients.hpp"
#include "sim/observable.hpp"

namespace elv::base {

using circ::Circuit;
using circ::GateKind;

int
SuperConfig::active_params() const
{
    int n = 0;
    for (std::uint8_t f : rotation_active)
        n += f;
    return n;
}

SuperCircuit::SuperCircuit(int num_qubits, int num_layers,
                           int num_features, int num_meas,
                           bool cry_embedding)
    : num_qubits_(num_qubits), num_layers_(num_layers),
      num_features_(num_features), num_meas_(num_meas),
      cry_embedding_(cry_embedding)
{
    ELV_REQUIRE(num_qubits >= 2 && num_layers >= 1, "bad SuperCircuit");
    ELV_REQUIRE(num_meas >= 1 && num_meas <= num_qubits,
                "bad measurement count");
}

int
SuperCircuit::num_slots() const
{
    return num_layers_ * num_qubits_ * 3;
}

SuperConfig
SuperCircuit::random_config(int target_params, elv::Rng &rng) const
{
    ELV_REQUIRE(target_params >= 1 && target_params <= num_slots(),
                "bad target parameter count");
    SuperConfig config;
    config.rotation_active.assign(
        static_cast<std::size_t>(num_slots()), 0);
    for (std::size_t slot : rng.choose(
             static_cast<std::size_t>(num_slots()),
             static_cast<std::size_t>(target_params)))
        config.rotation_active[slot] = 1;

    const int ent_slots = num_layers_ * num_qubits_;
    const int ent_target =
        std::min(ent_slots, std::max(1, target_params / 2));
    config.entangler_active.assign(static_cast<std::size_t>(ent_slots),
                                   0);
    for (std::size_t slot :
         rng.choose(static_cast<std::size_t>(ent_slots),
                    static_cast<std::size_t>(ent_target)))
        config.entangler_active[slot] = 1;
    return config;
}

void
SuperCircuit::mutate_config(SuperConfig &config, elv::Rng &rng) const
{
    // Move a uniformly chosen active rotation to an inactive slot, and
    // similarly shuffle one entangler, keeping the budgets constant.
    auto move_bit = [&rng](std::vector<std::uint8_t> &bits) {
        std::vector<std::size_t> on, off;
        for (std::size_t i = 0; i < bits.size(); ++i)
            (bits[i] ? on : off).push_back(i);
        if (on.empty() || off.empty())
            return;
        bits[on[rng.uniform_index(on.size())]] = 0;
        bits[off[rng.uniform_index(off.size())]] = 1;
    };
    move_bit(config.rotation_active);
    if (rng.bernoulli(0.5))
        move_bit(config.entangler_active);
}

SuperConfig
SuperCircuit::crossover(const SuperConfig &a, const SuperConfig &b,
                        int target_params, elv::Rng &rng) const
{
    SuperConfig child;
    child.rotation_active.resize(a.rotation_active.size());
    child.entangler_active.resize(a.entangler_active.size());
    for (std::size_t i = 0; i < child.rotation_active.size(); ++i)
        child.rotation_active[i] = rng.bernoulli(0.5)
                                       ? a.rotation_active[i]
                                       : b.rotation_active[i];
    for (std::size_t i = 0; i < child.entangler_active.size(); ++i)
        child.entangler_active[i] = rng.bernoulli(0.5)
                                        ? a.entangler_active[i]
                                        : b.entangler_active[i];

    // Repair the rotation budget to exactly target_params.
    auto repair = [&rng](std::vector<std::uint8_t> &bits, int target) {
        std::vector<std::size_t> on, off;
        for (std::size_t i = 0; i < bits.size(); ++i)
            (bits[i] ? on : off).push_back(i);
        while (static_cast<int>(on.size()) > target) {
            const std::size_t pick = rng.uniform_index(on.size());
            bits[on[pick]] = 0;
            on.erase(on.begin() + static_cast<std::ptrdiff_t>(pick));
        }
        while (static_cast<int>(on.size()) < target && !off.empty()) {
            const std::size_t pick = rng.uniform_index(off.size());
            bits[off[pick]] = 1;
            on.push_back(off[pick]);
            off.erase(off.begin() + static_cast<std::ptrdiff_t>(pick));
        }
    };
    repair(child.rotation_active, target_params);
    const int ent_target = std::min(
        static_cast<int>(child.entangler_active.size()),
        std::max(1, target_params / 2));
    repair(child.entangler_active, ent_target);
    return child;
}

Circuit
SuperCircuit::instantiate(const SuperConfig &config,
                          std::vector<int> &slot_map) const
{
    ELV_REQUIRE(config.rotation_active.size() ==
                        static_cast<std::size_t>(num_slots()) &&
                    config.entangler_active.size() ==
                        static_cast<std::size_t>(num_layers_ *
                                                 num_qubits_),
                "configuration shape mismatch");
    slot_map.clear();
    Circuit c(num_qubits_);

    // Fixed data embedding prefix.
    for (int f = 0; f < num_features_; ++f)
        c.add_embedding(GateKind::RX, {f % num_qubits_}, f);
    if (cry_embedding_) {
        // QuantumSupernet-style deep embedding: chains of entangling
        // CRY gates carrying the features again.
        for (int rep = 0; rep < 2; ++rep)
            for (int q = 0; q + 1 < num_qubits_; ++q)
                c.add_embedding(GateKind::CRY, {q, q + 1},
                                (q + rep) % num_features_);
    }

    const GateKind rotations[3] = {GateKind::RX, GateKind::RY,
                                   GateKind::RZ};
    for (int layer = 0; layer < num_layers_; ++layer) {
        for (int q = 0; q < num_qubits_; ++q) {
            for (int r = 0; r < 3; ++r) {
                const int slot = (layer * num_qubits_ + q) * 3 + r;
                if (!config.rotation_active[static_cast<std::size_t>(
                        slot)])
                    continue;
                c.add_variational(rotations[r], {q});
                slot_map.push_back(slot);
            }
        }
        for (int q = 0; q < num_qubits_; ++q) {
            const int slot = layer * num_qubits_ + q;
            if (!config.entangler_active[static_cast<std::size_t>(slot)])
                continue;
            c.add_gate(GateKind::CZ, {q, (q + 1) % num_qubits_});
        }
    }

    std::vector<int> meas(static_cast<std::size_t>(num_meas_));
    for (int m = 0; m < num_meas_; ++m)
        meas[static_cast<std::size_t>(m)] = m;
    c.set_measured(meas);
    return c;
}

std::vector<double>
SuperCircuit::inherited_params(const SuperConfig &config,
                               const std::vector<double> &shared) const
{
    ELV_REQUIRE(shared.size() == static_cast<std::size_t>(num_slots()),
                "shared store size mismatch");
    std::vector<int> slot_map;
    instantiate(config, slot_map);
    std::vector<double> params;
    params.reserve(slot_map.size());
    for (int slot : slot_map)
        params.push_back(shared[static_cast<std::size_t>(slot)]);
    return params;
}

SuperTrainResult
train_supercircuit(const SuperCircuit &super, const qml::Dataset &data,
                   int target_params, const qml::TrainConfig &config)
{
    data.check();
    elv::Rng rng(config.seed ^ 0x5570657243ULL);

    SuperTrainResult result;
    result.shared_params.resize(
        static_cast<std::size_t>(super.num_slots()));
    for (auto &p : result.shared_params)
        p = rng.uniform(-M_PI, M_PI);

    qml::Adam optimizer(result.shared_params.size(),
                        config.learning_rate);

    std::vector<std::size_t> order(data.samples.size());
    std::iota(order.begin(), order.end(), std::size_t{0});

    for (int epoch = 0; epoch < config.epochs; ++epoch) {
        rng.shuffle(order);
        std::size_t cursor = 0;
        int batches = 0;
        while (cursor < order.size()) {
            const std::size_t batch_end =
                std::min(order.size(),
                         cursor +
                             static_cast<std::size_t>(config.batch_size));

            // Weight sharing: one random subcircuit per batch.
            const SuperConfig sub =
                super.random_config(target_params, rng);
            std::vector<int> slot_map;
            const Circuit circuit = super.instantiate(sub, slot_map);
            std::vector<double> params(slot_map.size());
            for (std::size_t i = 0; i < slot_map.size(); ++i)
                params[i] = result.shared_params[static_cast<std::size_t>(
                    slot_map[i])];

            const auto projectors = sim::class_projectors(
                circuit.measured(), data.num_classes);
            std::vector<double> shared_grad(result.shared_params.size(),
                                            0.0);
            std::vector<std::uint8_t> active_mask(
                result.shared_params.size(), 0);
            for (int slot : slot_map)
                active_mask[static_cast<std::size_t>(slot)] = 1;

            for (std::size_t bi = cursor; bi < batch_end; ++bi) {
                const std::size_t idx = order[bi];
                const std::vector<sim::DiagonalObservable> obs = {
                    projectors[static_cast<std::size_t>(
                        data.labels[idx])]};
                sim::GradientResult g;
                if (config.backend == qml::GradientBackend::Adjoint)
                    g = sim::adjoint_gradient(circuit, params,
                                              data.samples[idx], obs);
                else
                    g = sim::parameter_shift_gradient(
                        circuit, params, data.samples[idx], obs);
                result.circuit_executions += g.circuit_executions;

                const double p_y = std::max(g.values[0], 1e-10);
                const double coeff =
                    -1.0 /
                    (p_y * static_cast<double>(batch_end - cursor));
                for (std::size_t pi = 0; pi < params.size(); ++pi)
                    shared_grad[static_cast<std::size_t>(slot_map[pi])] +=
                        coeff * g.jacobian[0][pi];
            }

            optimizer.step_masked(result.shared_params, shared_grad,
                                  active_mask);
            cursor = batch_end;
            ++batches;
            if (config.max_batches_per_epoch > 0 &&
                batches >= config.max_batches_per_epoch)
                break;
        }
    }
    return result;
}

} // namespace elv::base
