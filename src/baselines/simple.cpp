#include "baselines/simple.hpp"

namespace elv::base {

std::vector<circ::Circuit>
random_baseline(const BaselineShape &shape, int count, elv::Rng &rng)
{
    std::vector<circ::Circuit> circuits;
    circuits.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        circuits.push_back(circ::build_random_rxyz_cz(
            shape.num_qubits, shape.num_features, shape.num_params,
            shape.num_meas, rng));
    return circuits;
}

std::vector<circ::Circuit>
human_baseline(const BaselineShape &shape)
{
    using circ::EmbeddingScheme;
    std::vector<circ::Circuit> circuits;
    for (EmbeddingScheme scheme :
         {EmbeddingScheme::Angle, EmbeddingScheme::IQP,
          EmbeddingScheme::Amplitude})
        circuits.push_back(circ::build_human_designed(
            shape.num_qubits, shape.num_features, shape.num_params,
            shape.num_meas, scheme));
    return circuits;
}

} // namespace elv::base
