/**
 * @file
 * SuperCircuit substrate shared by the QuantumNAS and QuantumSupernet
 * baselines (Sec. 2.3).
 *
 * A SuperCircuit is an over-parameterized layered circuit with a shared
 * parameter store: every possible gate slot (RX/RY/RZ per qubit per
 * layer, plus a CZ ring) owns one persistent parameter. A *configuration*
 * activates a subset of slots, yielding a subcircuit. Training samples a
 * random configuration per batch and updates the shared store, so any
 * subcircuit's performance can later be estimated with inherited
 * parameters — the classical weight-sharing NAS recipe the paper
 * identifies as the SuperCircuit bottleneck.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "qml/dataset.hpp"
#include "qml/trainer.hpp"

namespace elv::base {

/** Which gate slots of the SuperCircuit are active. */
struct SuperConfig
{
    /** One flag per rotation slot (layer-major, qubit-major, RX/RY/RZ). */
    std::vector<std::uint8_t> rotation_active;
    /** One flag per CZ-ring slot (layer-major, ring position). */
    std::vector<std::uint8_t> entangler_active;

    /** Number of active rotation slots (trainable parameters). */
    int active_params() const;
};

/** Layered RXYZ + CZ SuperCircuit with a fixed angle embedding. */
class SuperCircuit
{
  public:
    /**
     * @param num_qubits logical register size
     * @param num_layers rotation + entangler layers
     * @param num_features input dimensionality (angle-embedded prefix)
     * @param num_meas measured qubits
     * @param cry_embedding when true, the embedding prefix additionally
     *        uses layers of entangling CRY gates (the QuantumSupernet
     *        style embedding discussed in Sec. 9.2)
     */
    SuperCircuit(int num_qubits, int num_layers, int num_features,
                 int num_meas, bool cry_embedding = false);

    int num_qubits() const { return num_qubits_; }
    int num_layers() const { return num_layers_; }
    /** Total rotation slots (size of the shared parameter store). */
    int num_slots() const;

    /** Sample a configuration with approximately `target_params` active
     * rotations and a proportional number of entanglers. */
    SuperConfig random_config(int target_params, elv::Rng &rng) const;

    /** Mutate a configuration in place (flip a few slot bits while
     * keeping the active-parameter count). */
    void mutate_config(SuperConfig &config, elv::Rng &rng) const;

    /** Uniform crossover of two configurations (same active count kept
     * approximately by repair). */
    SuperConfig crossover(const SuperConfig &a, const SuperConfig &b,
                          int target_params, elv::Rng &rng) const;

    /**
     * Instantiate the subcircuit selected by `config`. Circuit parameter
     * slot i corresponds to shared-store slot `slot_map[i]`.
     */
    circ::Circuit instantiate(const SuperConfig &config,
                              std::vector<int> &slot_map) const;

    /** Gather the inherited parameters of a configuration. */
    std::vector<double> inherited_params(
        const SuperConfig &config,
        const std::vector<double> &shared) const;

  private:
    int num_qubits_;
    int num_layers_;
    int num_features_;
    int num_meas_;
    bool cry_embedding_;
};

/** SuperCircuit training output. */
struct SuperTrainResult
{
    /** Shared parameter store after training. */
    std::vector<double> shared_params;
    /** Circuit executions consumed (backend-dependent accounting). */
    std::uint64_t circuit_executions = 0;
};

/**
 * Train the shared parameter store by sampling one random configuration
 * per mini-batch (weight-sharing training).
 */
SuperTrainResult train_supercircuit(const SuperCircuit &super,
                                    const qml::Dataset &data,
                                    int target_params,
                                    const qml::TrainConfig &config);

} // namespace elv::base
