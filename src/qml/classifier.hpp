/**
 * @file
 * Classification head shared by all methods: class logits are the
 * probability masses of outcome groups over the measured qubits (the
 * TorchQuantum convention), so every circuit with >= log2(classes)
 * measured qubits is a classifier with no extra parameters.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "circuit/circuit.hpp"
#include "qml/dataset.hpp"

namespace elv::qml {

/**
 * Distribution provider: returns the outcome distribution over the
 * circuit's measured qubits for one input sample. Lets the same
 * prediction code run against the noiseless state-vector backend, the
 * noisy density-matrix backend, or sampled hardware-style shots.
 */
using DistributionFn = std::function<std::vector<double>(
    const circ::Circuit &, const std::vector<double> &params,
    const std::vector<double> &x)>;

/** Noiseless state-vector distribution provider. */
DistributionFn statevector_distribution();

/**
 * Wrap a distribution provider with finite-shot sampling: each call
 * draws `shots` outcomes from the inner distribution and returns the
 * empirical histogram. This is how hardware estimates probabilities,
 * and it is what turns noise-shrunk class margins into accuracy loss
 * (stochastic Pauli noise alone preserves the argmax).
 */
DistributionFn with_shot_noise(DistributionFn inner, int shots,
                               std::uint64_t seed);

/** Class probabilities from an outcome distribution (sums to 1). */
std::vector<double> class_probabilities_from(
    const std::vector<double> &outcome_probs, int num_classes);

/** Class probabilities of a sample (noiseless). */
std::vector<double> class_probabilities(const circ::Circuit &circuit,
                                         const std::vector<double> &params,
                                         const std::vector<double> &x,
                                         int num_classes);

/** argmax class. */
int predict_class(const std::vector<double> &class_probs);

/** Cross-entropy -log p_label with clamping. */
double cross_entropy(const std::vector<double> &class_probs, int label);

/** Mean loss and accuracy of a circuit over a dataset. */
struct EvalResult
{
    double loss = 0.0;
    double accuracy = 0.0;
};

/** Evaluate with an arbitrary distribution provider. */
EvalResult evaluate(const circ::Circuit &circuit,
                    const std::vector<double> &params, const Dataset &data,
                    const DistributionFn &dist_fn);

/** Evaluate noiselessly. */
EvalResult evaluate(const circ::Circuit &circuit,
                    const std::vector<double> &params,
                    const Dataset &data);

} // namespace elv::qml
