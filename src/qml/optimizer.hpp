/**
 * @file
 * Adam optimizer (the paper trains every circuit with Adam, lr = 0.01,
 * no weight decay or scheduling — Sec. 7.3).
 */
#pragma once

#include <cstdint>
#include <vector>

namespace elv::qml {

/** Adam with bias correction. */
class Adam
{
  public:
    explicit Adam(std::size_t num_params, double lr = 0.01,
                  double beta1 = 0.9, double beta2 = 0.999,
                  double epsilon = 1e-8);

    /** Apply one update in place: params -= lr * m_hat / (sqrt(v)+eps). */
    void step(std::vector<double> &params,
              const std::vector<double> &grads);

    /**
     * Sparse update for weight-shared (SuperCircuit) training: only
     * parameters with mask[i] != 0 are touched — their moments update
     * and they step, with per-parameter bias correction; inactive
     * parameters keep their moments frozen (plain Adam would keep
     * moving them on stale momentum).
     */
    void step_masked(std::vector<double> &params,
                     const std::vector<double> &grads,
                     const std::vector<std::uint8_t> &mask);

    /** Reset moment estimates and the step counter. */
    void reset();

    double learning_rate() const { return lr_; }

  private:
    double lr_, beta1_, beta2_, epsilon_;
    long step_count_ = 0;
    std::vector<double> m_, v_;
    /** Per-parameter step counts for step_masked bias correction. */
    std::vector<long> slot_steps_;
};

} // namespace elv::qml
