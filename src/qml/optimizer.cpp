#include "qml/optimizer.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace elv::qml {

Adam::Adam(std::size_t num_params, double lr, double beta1, double beta2,
           double epsilon)
    : lr_(lr), beta1_(beta1), beta2_(beta2), epsilon_(epsilon),
      m_(num_params, 0.0), v_(num_params, 0.0),
      slot_steps_(num_params, 0)
{
    ELV_REQUIRE(lr > 0.0, "learning rate must be positive");
}

void
Adam::step(std::vector<double> &params, const std::vector<double> &grads)
{
    ELV_REQUIRE(params.size() == m_.size() && grads.size() == m_.size(),
                "optimizer size mismatch");
    ++step_count_;
    const double bc1 = 1.0 - std::pow(beta1_, step_count_);
    const double bc2 = 1.0 - std::pow(beta2_, step_count_);
    for (std::size_t i = 0; i < params.size(); ++i) {
        m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grads[i];
        v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grads[i] * grads[i];
        const double m_hat = m_[i] / bc1;
        const double v_hat = v_[i] / bc2;
        params[i] -= lr_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
}

void
Adam::step_masked(std::vector<double> &params,
                  const std::vector<double> &grads,
                  const std::vector<std::uint8_t> &mask)
{
    ELV_REQUIRE(params.size() == m_.size() && grads.size() == m_.size() &&
                    mask.size() == m_.size(),
                "optimizer size mismatch");
    for (std::size_t i = 0; i < params.size(); ++i) {
        if (!mask[i])
            continue;
        const long t = ++slot_steps_[i];
        m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grads[i];
        v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grads[i] * grads[i];
        const double m_hat = m_[i] / (1.0 - std::pow(beta1_, t));
        const double v_hat = v_[i] / (1.0 - std::pow(beta2_, t));
        params[i] -= lr_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
}

void
Adam::reset()
{
    step_count_ = 0;
    std::fill(m_.begin(), m_.end(), 0.0);
    std::fill(v_.begin(), v_.end(), 0.0);
    std::fill(slot_steps_.begin(), slot_steps_.end(), 0L);
}

} // namespace elv::qml
