#include "qml/classifier.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/rng.hpp"
#include "common/logging.hpp"
#include "common/validate.hpp"
#include "sim/fusion.hpp"
#include "sim/statevector.hpp"

namespace elv::qml {

DistributionFn
statevector_distribution()
{
    return [](const circ::Circuit &circuit,
              const std::vector<double> &params,
              const std::vector<double> &x) {
        std::vector<int> kept;
        const circ::Circuit local = circuit.compacted(kept);
        sim::StateVector psi(local.num_qubits());
        // Cached fused execution: evaluation sweeps re-run the same
        // circuit once per sample.
        sim::fused_run(psi, local, params, x);
        auto probs = psi.probabilities(local.measured());
        // Numerical guardrail at the DistributionFn boundary: NaN or
        // lost mass here silently corrupts every downstream loss.
        elv::validate_distribution(probs,
                                   elv::DistributionPolicy::Renormalize,
                                   "statevector distribution");
        return probs;
    };
}

DistributionFn
with_shot_noise(DistributionFn inner, int shots, std::uint64_t seed)
{
    ELV_REQUIRE(shots >= 1, "need at least one shot");
    // Shared generator: one provider instance samples a single stream.
    auto rng = std::make_shared<elv::Rng>(seed ^ 0x73686f74ULL);
    return [inner = std::move(inner), shots,
            rng](const circ::Circuit &circuit,
                 const std::vector<double> &params,
                 const std::vector<double> &x) {
        auto exact = inner(circuit, params, x);
        // Sampling from a NaN/unnormalized distribution would silently
        // bias every histogram; validate (and repair drift) first.
        elv::validate_distribution(exact,
                                   elv::DistributionPolicy::Renormalize,
                                   "shot-noise provider input");
        std::vector<double> histogram(exact.size(), 0.0);
        for (int s = 0; s < shots; ++s) {
            const std::size_t outcome =
                sim::StateVector::sample_from(exact, *rng);
            histogram[outcome] += 1.0 / shots;
        }
        return histogram;
    };
}

std::vector<double>
class_probabilities_from(const std::vector<double> &outcome_probs,
                         int num_classes)
{
    ELV_REQUIRE(num_classes >= 2, "need at least two classes");
    ELV_REQUIRE(outcome_probs.size() >=
                    static_cast<std::size_t>(num_classes),
                "not enough outcomes for the class count");
    std::vector<double> probs(static_cast<std::size_t>(num_classes), 0.0);
    for (std::size_t k = 0; k < outcome_probs.size(); ++k)
        probs[k % static_cast<std::size_t>(num_classes)] +=
            outcome_probs[k];
    // Outcome distributions can carry tiny negative float error.
    double total = 0.0;
    for (double &p : probs) {
        p = std::max(p, 0.0);
        total += p;
    }
    if (total > 0.0)
        for (double &p : probs)
            p /= total;
    return probs;
}

std::vector<double>
class_probabilities(const circ::Circuit &circuit,
                    const std::vector<double> &params,
                    const std::vector<double> &x, int num_classes)
{
    return class_probabilities_from(
        statevector_distribution()(circuit, params, x), num_classes);
}

int
predict_class(const std::vector<double> &class_probs)
{
    ELV_REQUIRE(!class_probs.empty(), "empty class probabilities");
    return static_cast<int>(std::max_element(class_probs.begin(),
                                             class_probs.end()) -
                            class_probs.begin());
}

double
cross_entropy(const std::vector<double> &class_probs, int label)
{
    ELV_REQUIRE(label >= 0 &&
                    label < static_cast<int>(class_probs.size()),
                "label out of range");
    const double p = std::max(
        class_probs[static_cast<std::size_t>(label)], 1e-10);
    return -std::log(p);
}

EvalResult
evaluate(const circ::Circuit &circuit, const std::vector<double> &params,
         const Dataset &data, const DistributionFn &dist_fn)
{
    ELV_REQUIRE(!data.samples.empty(), "empty evaluation set");
    EvalResult result;
    int correct = 0;
    for (std::size_t i = 0; i < data.samples.size(); ++i) {
        const auto outcome = dist_fn(circuit, params, data.samples[i]);
        const auto probs =
            class_probabilities_from(outcome, data.num_classes);
        result.loss += cross_entropy(probs, data.labels[i]);
        if (predict_class(probs) == data.labels[i])
            ++correct;
    }
    result.loss /= static_cast<double>(data.samples.size());
    result.accuracy = static_cast<double>(correct) /
                      static_cast<double>(data.samples.size());
    return result;
}

EvalResult
evaluate(const circ::Circuit &circuit, const std::vector<double> &params,
         const Dataset &data)
{
    return evaluate(circuit, params, data, statevector_distribution());
}

} // namespace elv::qml
