/**
 * @file
 * Synthetic generators for the 9 QML benchmarks of Table 2.
 *
 * The originals (MNIST, FMNIST, UCI Banknote, Vowel) are not
 * redistributable inside this repository, so each benchmark is replaced
 * by a synthetic dataset with the same number of classes, feature
 * dimensionality, and train/test sizes, and with the intra-class
 * clustering / inter-class separation structure that drives both
 * training and RepCap (see DESIGN.md, "Substitutions"):
 *
 *  - Moons: the classic two-interleaved-half-circles construction
 *    (identical to scikit-learn's make_moons).
 *  - Bank: 4-D two-class data with correlated features, mimicking the
 *    Banknote wavelet statistics.
 *  - MNIST-k / FMNIST-k: per-class smooth image prototypes on the same
 *    4x4 (or 6x6 for MNIST-10) grids the paper mean-pools to, plus pixel
 *    noise and sub-pixel jitter.
 *  - Vowel-2/4: anisotropic Gaussian class clusters in a higher
 *    dimension reduced to 10 features with this repo's own PCA.
 */
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "qml/dataset.hpp"

namespace elv::qml {

/** Table 2 row: benchmark shape plus circuit-size configuration. */
struct BenchmarkSpec
{
    std::string name;
    int classes = 2;
    int dim = 2;
    int train = 0;
    int test = 0;
    /** Parameter budget of searched circuits (Table 2 "Params"). */
    int params = 0;
    /** Qubits used by searched circuits for this task. */
    int qubits = 4;
    /** Measured qubits (enough for `classes` outcome groups). */
    int meas = 1;
};

/** A generated train/test pair. */
struct Benchmark
{
    BenchmarkSpec spec;
    Dataset train;
    Dataset test;
};

/** The 9 benchmark specs of Table 2, in the paper's order. */
std::vector<BenchmarkSpec> benchmark_table();

/** Look up one spec by name (fatal on unknown name). */
BenchmarkSpec benchmark_spec(const std::string &name);

/**
 * Generate a benchmark. `scale` in (0, 1] shrinks the train/test sizes
 * proportionally (the benches use scaled-down sizes to stay fast);
 * features are normalized into [-pi/2, pi/2] using train-set ranges.
 */
Benchmark make_benchmark(const std::string &name, std::uint64_t seed,
                         double scale = 1.0);

/** @name Raw generators (sizes chosen by the caller) @{ */
Dataset make_moons(int count, double noise, elv::Rng &rng);
Dataset make_bank(int count, elv::Rng &rng);
Dataset make_prototype_images(int count, int classes, int side,
                              double noise, elv::Rng &rng);
Dataset make_vowel(int count, int classes, elv::Rng &rng);
/** @} */

} // namespace elv::qml
