/**
 * @file
 * Gradient-based circuit training (Sec. 7.3 methodology: Adam,
 * cross-entropy on outcome-group class probabilities, mini-batches),
 * with the two gradient backends of the paper's cost analysis:
 *
 *  - Adjoint ("backpropagation on a classical simulator", Table 4 'C'):
 *    one execution per sample per step, independent of parameter count.
 *  - ParameterShift ("training on quantum hardware", Table 4 'Q'):
 *    1 + 2P executions per sample per step — the linear-in-parameters
 *    scaling that dominates SuperCircuit-based QCS cost.
 *
 * Every simulated circuit execution is tallied so the Table 4 speedups
 * are measured rather than estimated.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "qml/classifier.hpp"
#include "qml/dataset.hpp"
#include "sim/precision.hpp"

namespace elv::qml {

/** How gradients are computed. */
enum class GradientBackend { Adjoint, ParameterShift };

/** Training hyperparameters (paper defaults scaled by the caller). */
struct TrainConfig
{
    int epochs = 30;
    int batch_size = 32;
    double learning_rate = 0.01;
    GradientBackend backend = GradientBackend::Adjoint;
    std::uint64_t seed = 0;
    /** Cap on batches per epoch (0 = use every batch). */
    int max_batches_per_epoch = 0;
    /**
     * Worker threads for batched gradient evaluation: each sample of a
     * mini-batch is an independent pool task, and the loss/gradient
     * reduction runs serially in sample-index order afterwards, so the
     * result is bit-identical for every thread count. 1 (default) =
     * inline serial execution, <= 0 = all hardware threads. The
     * distribution-provider path always runs serially (providers may
     * carry shared mutable state, e.g. a shot-noise RNG stream).
     */
    int threads = 1;
    /**
     * Optional distribution provider the training loop differentiates
     * *through* with the parameter-shift rule — set it to a noisy
     * backend to train against device noise (the noise-injection
     * training of QuantumNAT/RoQNN, and how training on real hardware
     * works). Requires backend == ParameterShift; CRY gates are not
     * supported on this path (their 4-term rule is, but keeping the
     * provider interface simple is worth the restriction).
     */
    DistributionFn distribution;
    /**
     * Requested amplitude precision. Training ALWAYS runs in
     * complex<double> — Adam accumulation and parameter-shift
     * differences cancel below single precision — so Float32Proxy here
     * is never honored; it only makes the training pre-flight emit the
     * "precision-misuse" lint warning. The field exists so a config
     * that shares precision between scoring and training surfaces the
     * mistake instead of silently training in the wrong precision.
     */
    sim::Precision precision = sim::Precision::Float64;
    /**
     * Elide dead structure (lint/dataflow.hpp) before training: ops
     * outside the measurement lightcone are removed and their
     * now-unbound parameter slots dropped from the optimized vector —
     * they receive zero gradient signal, so optimizing them is pure
     * waste. The returned params are still sized to the ORIGINAL
     * circuit: dead slots hold their initialization draws, exactly
     * what element-wise Adam leaves them at when their gradient is
     * identically zero. Initial draws and the epoch shuffles consume
     * the same RNG stream either way (inits are drawn full-size, then
     * scattered into the reduced vector), so live-slot trajectories
     * and the loss history match the unpruned run. Fingerprinted.
     */
    bool prune_dead_structure = false;
};

/** Trained parameters plus bookkeeping. */
struct TrainResult
{
    std::vector<double> params;
    /** Mean training loss per epoch. */
    std::vector<double> loss_history;
    /** Circuit executions consumed (backend-dependent accounting). */
    std::uint64_t circuit_executions = 0;
};

/**
 * Train the variational parameters of `circuit` on `data`. The circuit
 * must measure enough qubits for data.num_classes outcome groups.
 */
TrainResult train_circuit(const circ::Circuit &circuit,
                          const Dataset &data, const TrainConfig &config);

/**
 * Closed-form circuit-execution count for training on quantum hardware
 * via the parameter-shift rule: steps * batch * (1 + 2 * params). Used
 * by the Table 4 'Q' speedup model for runs too large to simulate.
 */
std::uint64_t parameter_shift_execution_count(int num_params, int epochs,
                                              int batches_per_epoch,
                                              int batch_size);

/**
 * Parameter-shift execution count for `epochs` passes over a dataset
 * of `num_samples` (optionally capped at `max_batches` batches of
 * `batch_size` per epoch; 0 = no cap). The batched scheduler visits
 * every sample exactly once per epoch regardless of how batch
 * boundaries fall — a partial final batch contributes its true size —
 * and fanning samples across simulator threads never changes what a
 * quantum device would have to execute. The steps x batch_size
 * overload above over-counts whenever batch_size does not divide the
 * per-epoch sample count.
 */
std::uint64_t parameter_shift_execution_count_dataset(int num_params,
                                                      int epochs,
                                                      int num_samples,
                                                      int batch_size,
                                                      int max_batches = 0);

} // namespace elv::qml
