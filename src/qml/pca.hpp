/**
 * @file
 * Principal component analysis via Jacobi eigendecomposition of the
 * covariance matrix. Used to build the Vowel-2/Vowel-4 benchmarks, which
 * the paper constructs by keeping the 10 most significant PCA
 * dimensions.
 */
#pragma once

#include <vector>

namespace elv::qml {

/** A fitted PCA transform. */
class Pca
{
  public:
    /**
     * Fit on row-major data (each inner vector is one sample); keeps the
     * `components` leading principal directions.
     */
    Pca(const std::vector<std::vector<double>> &data, int components);

    /** Project one sample onto the principal components. */
    std::vector<double> transform(const std::vector<double> &x) const;

    /** Project a whole dataset. */
    std::vector<std::vector<double>> transform(
        const std::vector<std::vector<double>> &data) const;

    /** Eigenvalues of the kept components (descending). */
    const std::vector<double> &explained_variance() const
    {
        return eigenvalues_;
    }

  private:
    std::vector<double> mean_;
    /** components_ x dim, row-major. */
    std::vector<std::vector<double>> components_;
    std::vector<double> eigenvalues_;
};

} // namespace elv::qml
