#include "qml/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/validate.hpp"
#include "lint/dataflow.hpp"
#include "lint/preflight.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "qml/optimizer.hpp"
#include "sim/gradients.hpp"
#include "sim/observable.hpp"

namespace elv::qml {

namespace {

/**
 * Parameter-shift gradient of one diagonal observable, evaluating every
 * circuit through an arbitrary distribution provider (e.g. the noisy
 * device simulator). Exact two-term rule; CRY rejected.
 */
sim::GradientResult
provider_shift_gradient(const circ::Circuit &circuit,
                        const std::vector<double> &params,
                        const std::vector<double> &x,
                        const sim::DiagonalObservable &obs,
                        const DistributionFn &provider)
{
    sim::GradientResult result;
    result.values = {obs.expectation(provider(circuit, params, x))};
    result.circuit_executions = 1;
    result.jacobian.assign(
        1, std::vector<double>(static_cast<std::size_t>(
                                   circuit.num_params()),
                               0.0));

    for (const circ::Op &op : circuit.ops()) {
        if (op.role != circ::ParamRole::Variational)
            continue;
        ELV_REQUIRE(op.kind != circ::GateKind::CRY,
                    "CRY unsupported with a distribution provider");
        for (int slot = 0; slot < op.num_params(); ++slot) {
            const std::size_t pi =
                static_cast<std::size_t>(op.param_index + slot);
            std::vector<double> shifted = params;
            shifted[pi] += M_PI / 2;
            const double plus =
                obs.expectation(provider(circuit, shifted, x));
            shifted[pi] -= M_PI;
            const double minus =
                obs.expectation(provider(circuit, shifted, x));
            result.circuit_executions += 2;
            result.jacobian[0][pi] = 0.5 * (plus - minus);
        }
    }
    return result;
}

} // namespace

TrainResult
train_circuit(const circ::Circuit &circuit, const Dataset &data,
              const TrainConfig &config)
{
    data.check();
    ELV_REQUIRE(!circuit.measured().empty(), "circuit measures nothing");
    ELV_REQUIRE((std::size_t{1} << circuit.measured().size()) >=
                    static_cast<std::size_t>(data.num_classes),
                "not enough measured qubits for the class count");

    // Training-boundary pre-flight: beyond the structural rules, this
    // is where the precision-misuse warning fires — gradients always
    // run f64, so a Float32Proxy request here is a configuration smell,
    // not a speedup (see sim/precision.hpp).
    {
        lint::LintOptions lint_options;
        lint_options.training_path = true;
        lint_options.precision = config.precision;
        lint::preflight(circuit, lint::Boundary::Training, lint_options);
    }

    // Optional dead-structure elision: out-of-lightcone ops are removed
    // and their parameter slots densely renumbered; param_map records
    // original slot -> reduced slot (-1 = dropped).
    lint::FixResult fix;
    bool pruned = false;
    if (config.prune_dead_structure) {
        fix = lint::elide_dead_structure(circuit);
        if (fix.ops_elided > 0) {
            pruned = true;
            ELV_METRIC_COUNT_N("lint.ops_elided",
                               static_cast<std::uint64_t>(
                                   fix.ops_elided));
            if (fix.params_elided > 0)
                ELV_METRIC_COUNT_N("lint.params_elided",
                                   static_cast<std::uint64_t>(
                                       fix.params_elided));
        }
    }
    // elide_dead_structure preserves the register, so qubit labels of
    // `source` stay physical (the provider path depends on that).
    const circ::Circuit &source = pruned ? fix.circuit : circuit;

    // Work on the compacted circuit (Elivagar circuits live on large
    // devices); parameters are unaffected by compaction.
    std::vector<int> kept;
    const circ::Circuit local = source.compacted(kept);

    elv::Rng rng(config.seed ^ 0x7261696eULL);
    TrainResult result;
    // Draw initializations at the ORIGINAL parameter count even when
    // pruning dropped slots: the per-epoch shuffles below share this
    // stream, so the draw count must not depend on the prune.
    std::vector<double> full_init(
        static_cast<std::size_t>(circuit.num_params()));
    for (auto &p : full_init)
        p = rng.uniform(-M_PI, M_PI);
    if (pruned) {
        result.params.resize(
            static_cast<std::size_t>(local.num_params()));
        for (std::size_t s = 0; s < fix.param_map.size(); ++s)
            if (fix.param_map[s] >= 0)
                result.params[static_cast<std::size_t>(
                    fix.param_map[s])] = full_init[s];
    } else {
        result.params = full_init;
    }
    if (full_init.empty()) {
        result.loss_history.assign(
            static_cast<std::size_t>(config.epochs), 0.0);
        return result;
    }

    Adam optimizer(result.params.size(), config.learning_rate);
    const auto projectors =
        sim::class_projectors(local.measured(), data.num_classes);

    // Guard the training loop against a misbehaving provider: one NaN
    // distribution would silently poison the Adam moments for good.
    DistributionFn provider;
    if (config.distribution) {
        provider = [inner = config.distribution](
                       const circ::Circuit &c,
                       const std::vector<double> &p,
                       const std::vector<double> &xs) {
            auto probs = inner(c, p, xs);
            elv::validate_distribution(
                probs, elv::DistributionPolicy::Renormalize,
                "training distribution provider");
            return probs;
        };
    }

    std::vector<std::size_t> order(data.samples.size());
    std::iota(order.begin(), order.end(), std::size_t{0});

    // One pool for the whole call. Size 1 (the default) executes every
    // task inline in index order — the serial reference path.
    par::ThreadPool pool(config.threads);

    for (int epoch = 0; epoch < config.epochs; ++epoch) {
        rng.shuffle(order);
        double epoch_loss = 0.0;
        std::size_t seen = 0;
        int batches = 0;

        std::size_t cursor = 0;
        while (cursor < order.size()) {
            const std::size_t batch_end =
                std::min(order.size(),
                         cursor +
                             static_cast<std::size_t>(config.batch_size));
            const std::size_t batch_n = batch_end - cursor;
            std::vector<double> grad(result.params.size(), 0.0);

            // Each sample's loss/gradient is a pure function of
            // (circuit, params, sample) — no RNG, no shared mutable
            // state — so the batch fans out across the pool; the
            // reduction below then runs serially in sample-index
            // order, reproducing the serial loop's floating-point
            // accumulation exactly for every thread count.
            std::vector<sim::GradientResult> batch_grads;
            if (config.distribution) {
                ELV_REQUIRE(config.backend ==
                                GradientBackend::ParameterShift,
                            "a custom distribution provider needs "
                            "the parameter-shift backend");
                // Providers may carry shared mutable state (e.g. a
                // shot-noise RNG stream): stay serial.
                batch_grads.reserve(batch_n);
                for (std::size_t k = 0; k < batch_n; ++k) {
                    ELV_METRIC_COUNT("train.batch_tasks");
                    const std::size_t idx = order[cursor + k];
                    // Pass the UNCOMPACTED circuit: providers interpret
                    // qubit labels as physical device qubits, which
                    // compaction would strip (dead-structure elision
                    // preserves the register, so `source` is safe).
                    // Parameter slots and the measured-qubit order are
                    // compaction-invariant.
                    batch_grads.push_back(provider_shift_gradient(
                        source, result.params, data.samples[idx],
                        projectors[static_cast<std::size_t>(
                            data.labels[idx])],
                        provider));
                }
            } else {
                batch_grads = pool.parallel_map<sim::GradientResult>(
                    batch_n, [&](std::size_t k) {
                        ELV_METRIC_COUNT("train.batch_tasks");
                        const std::size_t idx = order[cursor + k];
                        const auto &x = data.samples[idx];
                        // Only the label-class projector feeds the
                        // loss gradient:
                        // dL/dtheta = -(1/p_y) dp_y/dtheta.
                        const std::vector<sim::DiagonalObservable> obs =
                            {projectors[static_cast<std::size_t>(
                                data.labels[idx])]};
                        return config.backend == GradientBackend::Adjoint
                                   ? sim::adjoint_gradient(
                                         local, result.params, x, obs)
                                   : sim::parameter_shift_gradient(
                                         local, result.params, x, obs);
                    });
            }

            // Index-ordered reduction (same accumulation order as the
            // serial loop).
            for (std::size_t k = 0; k < batch_n; ++k) {
                const sim::GradientResult &g = batch_grads[k];
                result.circuit_executions += g.circuit_executions;
                const double p_y = std::max(g.values[0], 1e-10);
                epoch_loss += -std::log(p_y);
                ++seen;
                const double coeff =
                    -1.0 / (p_y * static_cast<double>(batch_n));
                for (std::size_t pi = 0; pi < grad.size(); ++pi)
                    grad[pi] += coeff * g.jacobian[0][pi];
            }

            optimizer.step(result.params, grad);
            cursor = batch_end;
            ++batches;
            if (config.max_batches_per_epoch > 0 &&
                batches >= config.max_batches_per_epoch)
                break;
        }
        result.loss_history.push_back(
            seen > 0 ? epoch_loss / static_cast<double>(seen) : 0.0);
    }

    if (pruned) {
        // Expand back to the original slot layout: live slots carry
        // their trained values, dead slots their initialization draws
        // (what zero-gradient element-wise Adam leaves them at).
        std::vector<double> expanded = std::move(full_init);
        for (std::size_t s = 0; s < fix.param_map.size(); ++s)
            if (fix.param_map[s] >= 0)
                expanded[s] = result.params[static_cast<std::size_t>(
                    fix.param_map[s])];
        result.params = std::move(expanded);
    }
    return result;
}

std::uint64_t
parameter_shift_execution_count(int num_params, int epochs,
                                int batches_per_epoch, int batch_size)
{
    const std::uint64_t per_sample =
        1 + 2 * static_cast<std::uint64_t>(num_params);
    return per_sample * static_cast<std::uint64_t>(epochs) *
           static_cast<std::uint64_t>(batches_per_epoch) *
           static_cast<std::uint64_t>(batch_size);
}

std::uint64_t
parameter_shift_execution_count_dataset(int num_params, int epochs,
                                        int num_samples, int batch_size,
                                        int max_batches)
{
    ELV_REQUIRE(num_params >= 0 && epochs >= 0 && num_samples >= 0 &&
                    batch_size >= 1 && max_batches >= 0,
                "bad execution-count arguments");
    std::uint64_t per_epoch = static_cast<std::uint64_t>(num_samples);
    if (max_batches > 0)
        per_epoch = std::min(per_epoch,
                             static_cast<std::uint64_t>(max_batches) *
                                 static_cast<std::uint64_t>(batch_size));
    const std::uint64_t per_sample =
        1 + 2 * static_cast<std::uint64_t>(num_params);
    return per_sample * static_cast<std::uint64_t>(epochs) * per_epoch;
}

} // namespace elv::qml
