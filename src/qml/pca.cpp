#include "qml/pca.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hpp"

namespace elv::qml {

namespace {

/**
 * Cyclic Jacobi eigendecomposition of a symmetric matrix (row-major,
 * n x n). Returns eigenvalues; fills `vectors` with eigenvectors as rows.
 */
std::vector<double>
jacobi_eigen(std::vector<double> a, int n,
             std::vector<std::vector<double>> &vectors)
{
    vectors.assign(static_cast<std::size_t>(n),
                   std::vector<double>(static_cast<std::size_t>(n), 0.0));
    for (int i = 0; i < n; ++i)
        vectors[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] =
            1.0;

    auto at = [&a, n](int r, int c) -> double & {
        return a[static_cast<std::size_t>(r) *
                     static_cast<std::size_t>(n) +
                 static_cast<std::size_t>(c)];
    };

    for (int sweep = 0; sweep < 100; ++sweep) {
        double off = 0.0;
        for (int p = 0; p < n; ++p)
            for (int q = p + 1; q < n; ++q)
                off += at(p, q) * at(p, q);
        if (off < 1e-22)
            break;
        for (int p = 0; p < n; ++p) {
            for (int q = p + 1; q < n; ++q) {
                if (std::abs(at(p, q)) < 1e-15)
                    continue;
                const double theta =
                    (at(q, q) - at(p, p)) / (2.0 * at(p, q));
                const double t =
                    (theta >= 0 ? 1.0 : -1.0) /
                    (std::abs(theta) + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;
                for (int k = 0; k < n; ++k) {
                    const double akp = at(k, p), akq = at(k, q);
                    at(k, p) = c * akp - s * akq;
                    at(k, q) = s * akp + c * akq;
                }
                for (int k = 0; k < n; ++k) {
                    const double apk = at(p, k), aqk = at(q, k);
                    at(p, k) = c * apk - s * aqk;
                    at(q, k) = s * apk + c * aqk;
                }
                for (int k = 0; k < n; ++k) {
                    auto &v = vectors;
                    const double vpk =
                        v[static_cast<std::size_t>(p)]
                         [static_cast<std::size_t>(k)];
                    const double vqk =
                        v[static_cast<std::size_t>(q)]
                         [static_cast<std::size_t>(k)];
                    v[static_cast<std::size_t>(p)]
                     [static_cast<std::size_t>(k)] = c * vpk - s * vqk;
                    v[static_cast<std::size_t>(q)]
                     [static_cast<std::size_t>(k)] = s * vpk + c * vqk;
                }
            }
        }
    }

    std::vector<double> eigenvalues(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        eigenvalues[static_cast<std::size_t>(i)] = at(i, i);
    return eigenvalues;
}

} // namespace

Pca::Pca(const std::vector<std::vector<double>> &data, int components)
{
    ELV_REQUIRE(!data.empty(), "PCA needs data");
    const int dim = static_cast<int>(data.front().size());
    ELV_REQUIRE(components >= 1 && components <= dim,
                "bad PCA component count");

    mean_.assign(static_cast<std::size_t>(dim), 0.0);
    for (const auto &row : data)
        for (int f = 0; f < dim; ++f)
            mean_[static_cast<std::size_t>(f)] +=
                row[static_cast<std::size_t>(f)];
    for (double &m : mean_)
        m /= static_cast<double>(data.size());

    // Covariance matrix.
    std::vector<double> cov(static_cast<std::size_t>(dim) *
                                static_cast<std::size_t>(dim),
                            0.0);
    for (const auto &row : data) {
        for (int i = 0; i < dim; ++i) {
            const double di = row[static_cast<std::size_t>(i)] -
                              mean_[static_cast<std::size_t>(i)];
            for (int j = i; j < dim; ++j) {
                const double dj = row[static_cast<std::size_t>(j)] -
                                  mean_[static_cast<std::size_t>(j)];
                cov[static_cast<std::size_t>(i) * static_cast<std::size_t>(dim) +
                    static_cast<std::size_t>(j)] += di * dj;
            }
        }
    }
    const double denom = static_cast<double>(
        data.size() > 1 ? data.size() - 1 : 1);
    for (int i = 0; i < dim; ++i)
        for (int j = i; j < dim; ++j) {
            const double v = cov[static_cast<std::size_t>(i) * static_cast<std::size_t>(dim) +
                                 static_cast<std::size_t>(j)] /
                             denom;
            cov[static_cast<std::size_t>(i) * static_cast<std::size_t>(dim) +
                static_cast<std::size_t>(j)] = v;
            cov[static_cast<std::size_t>(j) * static_cast<std::size_t>(dim) +
                static_cast<std::size_t>(i)] = v;
        }

    std::vector<std::vector<double>> vectors;
    std::vector<double> eigenvalues = jacobi_eigen(cov, dim, vectors);

    // Order by descending eigenvalue; keep the top `components`.
    std::vector<int> order(static_cast<std::size_t>(dim));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&eigenvalues](int a, int b) {
        return eigenvalues[static_cast<std::size_t>(a)] >
               eigenvalues[static_cast<std::size_t>(b)];
    });
    for (int k = 0; k < components; ++k) {
        components_.push_back(
            vectors[static_cast<std::size_t>(order[
                static_cast<std::size_t>(k)])]);
        eigenvalues_.push_back(
            eigenvalues[static_cast<std::size_t>(order[
                static_cast<std::size_t>(k)])]);
    }
}

std::vector<double>
Pca::transform(const std::vector<double> &x) const
{
    ELV_REQUIRE(x.size() == mean_.size(), "PCA dimension mismatch");
    std::vector<double> out(components_.size(), 0.0);
    for (std::size_t k = 0; k < components_.size(); ++k)
        for (std::size_t f = 0; f < x.size(); ++f)
            out[k] += components_[k][f] * (x[f] - mean_[f]);
    return out;
}

std::vector<std::vector<double>>
Pca::transform(const std::vector<std::vector<double>> &data) const
{
    std::vector<std::vector<double>> out;
    out.reserve(data.size());
    for (const auto &row : data)
        out.push_back(transform(row));
    return out;
}

} // namespace elv::qml
