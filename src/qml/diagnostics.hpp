/**
 * @file
 * Trainability diagnostics. The paper's introduction names vanishing
 * gradients (barren plateaus, McClean et al. — ref [84]) as one of the
 * practical failure modes of hand-crafted QML circuits; this module
 * measures the standard diagnostic — the variance of a cost gradient
 * over random parameter initializations — so users can screen searched
 * circuits for trainability before spending a training budget.
 */
#pragma once

#include <cstdint>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"

namespace elv::qml {

/** Gradient-variance measurement options. */
struct GradientVarianceOptions
{
    /** Random parameter initializations sampled. */
    int num_samples = 32;
    /**
     * Parameter slot whose gradient is tracked (-1 = the first slot,
     * the McClean et al. convention of fixing one parameter).
     */
    int param_index = -1;
};

/** Gradient-variance result. */
struct GradientVariance
{
    /** Var_theta[ dE/d(theta_k) ] over random initializations. */
    double variance = 0.0;
    /** Mean gradient (should hover near 0 for random circuits). */
    double mean = 0.0;
    std::uint64_t circuit_executions = 0;
};

/**
 * Estimate the gradient variance of <Z_(first measured qubit)> with
 * respect to one parameter over random initializations, via the adjoint
 * engine. Inputs (data embeddings) are bound to zeros. Exponentially
 * small variance in the qubit count is the barren-plateau signature.
 */
GradientVariance gradient_variance(const circ::Circuit &circuit,
                                   elv::Rng &rng,
                                   const GradientVarianceOptions &options =
                                       {});

} // namespace elv::qml
