/**
 * @file
 * Dataset container and utilities for the QML benchmarks: splits,
 * shuffling, per-feature normalization (into rotation-angle range) and
 * per-class subsampling (used by RepCap, which draws d_c samples per
 * class).
 */
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"

namespace elv::qml {

/** A labeled classification dataset. */
struct Dataset
{
    /** Feature rows (all the same length). */
    std::vector<std::vector<double>> samples;
    /** Class labels in [0, num_classes). */
    std::vector<int> labels;
    int num_classes = 0;

    std::size_t size() const { return samples.size(); }
    int dim() const
    {
        return samples.empty() ? 0
                               : static_cast<int>(samples.front().size());
    }

    /** Validate invariants (sizes, label range); throws on violation. */
    void check() const;
};

/** Shuffle samples and labels together. */
void shuffle_dataset(Dataset &data, elv::Rng &rng);

/**
 * Min-max scale every feature into [lo, hi] (computed on this dataset;
 * constant features map to the interval midpoint).
 */
void normalize_features(Dataset &data, double lo, double hi);

/**
 * Scale `data` using ranges computed from `reference` (apply the train
 * normalization to the test set).
 */
void normalize_features_like(Dataset &data, const Dataset &reference,
                             double lo, double hi);

/** First `count` rows as a new dataset (after an external shuffle). */
Dataset take(const Dataset &data, std::size_t count);

/**
 * Draw `per_class` random sample indices from each class (fewer if a
 * class is smaller). Returns indices grouped by class label order.
 */
std::vector<std::size_t> sample_per_class(const Dataset &data,
                                          int per_class, elv::Rng &rng);

} // namespace elv::qml
