#include "qml/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "qml/pca.hpp"

namespace elv::qml {

std::vector<BenchmarkSpec>
benchmark_table()
{
    // name, classes, dim, train, test, params, qubits, meas — the first
    // six columns follow Table 2; qubits/meas are the circuit sizes used
    // throughout the reproduction.
    return {
        {"moons", 2, 2, 600, 120, 16, 4, 1},
        {"bank", 2, 4, 1100, 120, 20, 4, 1},
        {"mnist-2", 2, 16, 1600, 400, 20, 4, 1},
        {"mnist-4", 4, 16, 8000, 2000, 40, 4, 2},
        {"fmnist-2", 2, 16, 1600, 200, 32, 4, 1},
        {"fmnist-4", 4, 16, 8000, 2000, 24, 4, 2},
        {"vowel-2", 2, 10, 600, 120, 32, 4, 1},
        {"vowel-4", 4, 10, 600, 120, 40, 5, 2},
        {"mnist-10", 10, 36, 60000, 10000, 72, 6, 4},
    };
}

BenchmarkSpec
benchmark_spec(const std::string &name)
{
    for (const auto &spec : benchmark_table())
        if (spec.name == name)
            return spec;
    elv::fatal("unknown benchmark: " + name);
}

Dataset
make_moons(int count, double noise, elv::Rng &rng)
{
    Dataset data;
    data.num_classes = 2;
    for (int i = 0; i < count; ++i) {
        const int y = i % 2;
        const double t = M_PI * rng.uniform();
        double x0, x1;
        if (y == 0) {
            x0 = std::cos(t);
            x1 = std::sin(t);
        } else {
            x0 = 1.0 - std::cos(t);
            x1 = 0.5 - std::sin(t);
        }
        data.samples.push_back(
            {x0 + noise * rng.normal(), x1 + noise * rng.normal()});
        data.labels.push_back(y);
    }
    return data;
}

Dataset
make_bank(int count, elv::Rng &rng)
{
    // Two partially overlapping 4-D Gaussians with correlated features,
    // shaped like the Banknote wavelet statistics (balanced classes).
    Dataset data;
    data.num_classes = 2;
    const double means[2][4] = {{2.2, 4.2, -1.0, -0.5},
                                {-1.8, -0.8, 2.2, -1.2}};
    for (int i = 0; i < count; ++i) {
        const int y = i % 2;
        const double g0 = rng.normal(), g1 = rng.normal();
        const double g2 = rng.normal(), g3 = rng.normal();
        // Correlations: feature 1 couples to 0, feature 3 to 2.
        std::vector<double> x = {
            means[y][0] + 2.0 * g0,
            means[y][1] + 1.4 * g1 + 1.2 * g0,
            means[y][2] + 1.8 * g2,
            means[y][3] + 0.9 * g3 - 0.8 * g2,
        };
        data.samples.push_back(std::move(x));
        data.labels.push_back(y);
    }
    return data;
}

Dataset
make_prototype_images(int count, int classes, int side, double noise,
                      elv::Rng &rng)
{
    ELV_REQUIRE(classes >= 2 && side >= 2, "bad prototype image shape");
    // One smooth prototype per class: a sum of 2-3 Gaussian blobs at
    // class-specific positions, like heavily downsampled digits.
    const int dim = side * side;
    std::vector<std::vector<double>> prototypes;
    for (int c = 0; c < classes; ++c) {
        std::vector<double> proto(static_cast<std::size_t>(dim), 0.0);
        const int blobs = 2 + static_cast<int>(rng.uniform_index(2));
        for (int b = 0; b < blobs; ++b) {
            const double cx = rng.uniform(0.0, side - 1.0);
            const double cy = rng.uniform(0.0, side - 1.0);
            const double sigma = rng.uniform(0.6, 1.4);
            for (int i = 0; i < side; ++i) {
                for (int j = 0; j < side; ++j) {
                    const double d2 = (i - cy) * (i - cy) +
                                      (j - cx) * (j - cx);
                    proto[static_cast<std::size_t>(i * side + j)] +=
                        std::exp(-d2 / (2.0 * sigma * sigma));
                }
            }
        }
        prototypes.push_back(std::move(proto));
    }

    Dataset data;
    data.num_classes = classes;
    for (int n = 0; n < count; ++n) {
        const int y = n % classes;
        const auto &proto = prototypes[static_cast<std::size_t>(y)];
        // Sub-pixel jitter: shift by up to one pixel via interpolation
        // of the rolled image.
        const int dx = static_cast<int>(rng.uniform_index(3)) - 1;
        const int dy = static_cast<int>(rng.uniform_index(3)) - 1;
        std::vector<double> x(static_cast<std::size_t>(dim));
        for (int i = 0; i < side; ++i) {
            for (int j = 0; j < side; ++j) {
                const int si = std::clamp(i + dy, 0, side - 1);
                const int sj = std::clamp(j + dx, 0, side - 1);
                x[static_cast<std::size_t>(i * side + j)] =
                    proto[static_cast<std::size_t>(si * side + sj)] +
                    noise * rng.normal();
            }
        }
        data.samples.push_back(std::move(x));
        data.labels.push_back(y);
    }
    return data;
}

Dataset
make_vowel(int count, int classes, elv::Rng &rng)
{
    // Anisotropic Gaussian clusters in 14 dimensions, reduced to the 10
    // most significant PCA dimensions (mirroring the paper's pipeline).
    const int raw_dim = 14;
    const int kept = 10;
    std::vector<std::vector<double>> means;
    std::vector<std::vector<double>> scales;
    for (int c = 0; c < classes; ++c) {
        std::vector<double> mu(static_cast<std::size_t>(raw_dim));
        std::vector<double> sc(static_cast<std::size_t>(raw_dim));
        for (int f = 0; f < raw_dim; ++f) {
            mu[static_cast<std::size_t>(f)] = rng.uniform(-2.0, 2.0);
            sc[static_cast<std::size_t>(f)] = rng.uniform(0.3, 1.1);
        }
        means.push_back(std::move(mu));
        scales.push_back(std::move(sc));
    }

    std::vector<std::vector<double>> raw;
    std::vector<int> labels;
    for (int n = 0; n < count; ++n) {
        const int y = n % classes;
        std::vector<double> x(static_cast<std::size_t>(raw_dim));
        for (int f = 0; f < raw_dim; ++f)
            x[static_cast<std::size_t>(f)] =
                means[static_cast<std::size_t>(y)]
                     [static_cast<std::size_t>(f)] +
                scales[static_cast<std::size_t>(y)]
                      [static_cast<std::size_t>(f)] *
                    rng.normal();
        raw.push_back(std::move(x));
        labels.push_back(y);
    }

    const Pca pca(raw, kept);
    Dataset data;
    data.num_classes = classes;
    data.samples = pca.transform(raw);
    data.labels = std::move(labels);
    return data;
}

Benchmark
make_benchmark(const std::string &name, std::uint64_t seed, double scale)
{
    ELV_REQUIRE(scale > 0.0 && scale <= 1.0, "bad benchmark scale");
    const BenchmarkSpec spec = benchmark_spec(name);
    const int train_n = std::max(
        spec.classes * 4,
        static_cast<int>(std::lround(spec.train * scale)));
    const int test_n = std::max(
        spec.classes * 4,
        static_cast<int>(std::lround(spec.test * scale)));

    elv::Rng rng(seed ^ 0xe11a6a9000ULL);
    const int total = train_n + test_n;
    Dataset all;
    if (name == "moons") {
        all = make_moons(total, 0.15, rng);
    } else if (name == "bank") {
        all = make_bank(total, rng);
    } else if (name == "vowel-2" || name == "vowel-4") {
        all = make_vowel(total, spec.classes, rng);
    } else {
        const int side = spec.dim == 36 ? 6 : 4;
        all = make_prototype_images(total, spec.classes, side, 0.18, rng);
    }
    all.check();
    shuffle_dataset(all, rng);

    Benchmark bench;
    bench.spec = spec;
    bench.train = take(all, static_cast<std::size_t>(train_n));
    Dataset rest;
    rest.num_classes = all.num_classes;
    rest.samples.assign(all.samples.begin() + train_n, all.samples.end());
    rest.labels.assign(all.labels.begin() + train_n, all.labels.end());
    bench.test = rest;

    // Normalize into rotation-angle range using train statistics.
    const Dataset train_copy = bench.train;
    normalize_features(bench.train, -M_PI / 2, M_PI / 2);
    normalize_features_like(bench.test, train_copy, -M_PI / 2, M_PI / 2);
    return bench;
}

} // namespace elv::qml
