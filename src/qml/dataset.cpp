#include "qml/dataset.hpp"

#include <algorithm>
#include <limits>

#include "common/logging.hpp"

namespace elv::qml {

void
Dataset::check() const
{
    ELV_REQUIRE(samples.size() == labels.size(),
                "sample/label count mismatch");
    ELV_REQUIRE(num_classes > 0, "dataset needs at least one class");
    const std::size_t d = samples.empty() ? 0 : samples.front().size();
    for (const auto &row : samples)
        ELV_REQUIRE(row.size() == d, "ragged dataset rows");
    for (int y : labels)
        ELV_REQUIRE(y >= 0 && y < num_classes, "label out of range");
}

void
shuffle_dataset(Dataset &data, elv::Rng &rng)
{
    for (std::size_t i = data.samples.size(); i > 1; --i) {
        const std::size_t j = rng.uniform_index(i);
        std::swap(data.samples[i - 1], data.samples[j]);
        std::swap(data.labels[i - 1], data.labels[j]);
    }
}

namespace {

struct FeatureRange
{
    std::vector<double> lo, hi;
};

FeatureRange
feature_ranges(const Dataset &data)
{
    const std::size_t d = static_cast<std::size_t>(data.dim());
    FeatureRange r;
    r.lo.assign(d, std::numeric_limits<double>::infinity());
    r.hi.assign(d, -std::numeric_limits<double>::infinity());
    for (const auto &row : data.samples) {
        for (std::size_t f = 0; f < d; ++f) {
            r.lo[f] = std::min(r.lo[f], row[f]);
            r.hi[f] = std::max(r.hi[f], row[f]);
        }
    }
    return r;
}

void
apply_ranges(Dataset &data, const FeatureRange &r, double lo, double hi)
{
    const std::size_t d = static_cast<std::size_t>(data.dim());
    ELV_REQUIRE(r.lo.size() == d, "normalization dimension mismatch");
    for (auto &row : data.samples) {
        for (std::size_t f = 0; f < d; ++f) {
            const double span = r.hi[f] - r.lo[f];
            if (span <= 0.0) {
                row[f] = 0.5 * (lo + hi);
            } else {
                const double t =
                    std::clamp((row[f] - r.lo[f]) / span, 0.0, 1.0);
                row[f] = lo + t * (hi - lo);
            }
        }
    }
}

} // namespace

void
normalize_features(Dataset &data, double lo, double hi)
{
    if (data.samples.empty())
        return;
    apply_ranges(data, feature_ranges(data), lo, hi);
}

void
normalize_features_like(Dataset &data, const Dataset &reference, double lo,
                        double hi)
{
    if (data.samples.empty() || reference.samples.empty())
        return;
    apply_ranges(data, feature_ranges(reference), lo, hi);
}

Dataset
take(const Dataset &data, std::size_t count)
{
    Dataset out;
    out.num_classes = data.num_classes;
    const std::size_t n = std::min(count, data.samples.size());
    out.samples.assign(data.samples.begin(),
                       data.samples.begin() +
                           static_cast<std::ptrdiff_t>(n));
    out.labels.assign(data.labels.begin(),
                      data.labels.begin() +
                          static_cast<std::ptrdiff_t>(n));
    return out;
}

std::vector<std::size_t>
sample_per_class(const Dataset &data, int per_class, elv::Rng &rng)
{
    std::vector<std::size_t> chosen;
    for (int c = 0; c < data.num_classes; ++c) {
        std::vector<std::size_t> members;
        for (std::size_t i = 0; i < data.labels.size(); ++i)
            if (data.labels[i] == c)
                members.push_back(i);
        rng.shuffle(members);
        const std::size_t n = std::min(
            members.size(), static_cast<std::size_t>(per_class));
        chosen.insert(chosen.end(), members.begin(),
                      members.begin() + static_cast<std::ptrdiff_t>(n));
    }
    return chosen;
}

} // namespace elv::qml
