#include "qml/diagnostics.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "sim/gradients.hpp"
#include "sim/observable.hpp"

namespace elv::qml {

GradientVariance
gradient_variance(const circ::Circuit &circuit, elv::Rng &rng,
                  const GradientVarianceOptions &options)
{
    ELV_REQUIRE(options.num_samples >= 2, "need at least two samples");
    ELV_REQUIRE(circuit.num_params() >= 1,
                "circuit has no trainable parameters");
    ELV_REQUIRE(!circuit.measured().empty(), "circuit measures nothing");

    std::vector<int> kept;
    const circ::Circuit local = circuit.compacted(kept);
    const int slot = options.param_index < 0 ? 0 : options.param_index;
    ELV_REQUIRE(slot < local.num_params(), "parameter index out of range");

    const std::vector<sim::DiagonalObservable> obs = {
        sim::DiagonalObservable::pauli_z(local.measured().front())};
    const std::vector<double> x(
        static_cast<std::size_t>(std::max(1, local.num_data_features())),
        0.0);

    GradientVariance result;
    std::vector<double> params(
        static_cast<std::size_t>(local.num_params()));
    double sum = 0.0, sum_sq = 0.0;
    for (int s = 0; s < options.num_samples; ++s) {
        for (auto &p : params)
            p = rng.uniform(-M_PI, M_PI);
        const auto g = sim::adjoint_gradient(local, params, x, obs);
        result.circuit_executions += g.circuit_executions;
        const double grad =
            g.jacobian[0][static_cast<std::size_t>(slot)];
        sum += grad;
        sum_sq += grad * grad;
    }
    const double n = static_cast<double>(options.num_samples);
    result.mean = sum / n;
    result.variance =
        std::max(0.0, sum_sq / n - result.mean * result.mean);
    return result;
}

} // namespace elv::qml
